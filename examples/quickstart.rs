//! Quickstart: build a TensorIR program, schedule it by hand, validate it,
//! check correctness on the interpreter, and price it on a simulated GPU.
//!
//! Run with: `cargo run --example quickstart`

use tir::builder::matmul_func;
use tir::{DataType, ThreadTag};
use tir_exec::{assert_same_semantics, simulate, Machine};
use tir_schedule::Schedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the paper's running example: C[i, j] += A[i, k] * B[k, j].
    let func = matmul_func("matmul", 256, 256, 256, DataType::float32());
    println!("--- original program ---\n{func}");

    // 2. Schedule it: tile 16x16, bind the tile grid to GPU threads.
    let mut sch = Schedule::new(func.clone());
    let block = sch.get_block("C")?;
    let loops = sch.get_loops(&block)?;
    let i = sch.split(&loops[0], &[16, 16])?;
    let j = sch.split(&loops[1], &[16, 16])?;
    sch.reorder(&[i[0].clone(), j[0].clone(), i[1].clone(), j[1].clone()])?;
    let grid = sch.fuse(&[i[0].clone(), j[0].clone()])?;
    sch.bind(&grid, ThreadTag::BlockIdxX)?;
    sch.bind(&i[1], ThreadTag::ThreadIdxX)?;
    println!("--- scheduled program ---\n{}", sch.func());
    println!("--- schedule trace ---\n{}", sch.trace());

    // 3. Validate (§3.3): affine bindings, threading, region cover.
    tir_analysis::validate(sch.func()).map_err(|e| format!("{}", e[0]))?;
    println!("validation: ok");

    // 4. The interpreter proves the schedule preserved semantics exactly.
    assert_same_semantics(&func, sch.func(), 1, 0.0);
    println!("interpreter equivalence: ok");

    // 5. Price both versions on the simulated GPU.
    let machine = Machine::sim_gpu();
    let before = simulate(&func, &machine);
    let after = simulate(sch.func(), &machine);
    println!(
        "simulated time on {}: {:.3} ms -> {:.3} ms ({:.1}x)",
        machine.name,
        before * 1e3,
        after * 1e3,
        before / after
    );
    Ok(())
}
