//! End-to-end model compilation: fuse the BERT-large dataflow graph, tune
//! every distinct fused kernel on the simulated GPU, and compare against
//! the framework baselines.
//!
//! Run with: `cargo run --release --example end_to_end`

use tir_autoschedule::{Strategy, TuneOptions};
use tir_exec::Machine;
use tir_graph::{bert_large, evaluate_model, Framework};
use tir_tensorize::builtin_registry;

fn main() {
    let machine = Machine::sim_gpu();
    let intrins = builtin_registry();
    let model = bert_large(tir::DataType::float16());
    println!(
        "{}: {:.1} GMACs across {} graph nodes ({} distinct tunable)",
        model.name,
        model.total_macs() / 1e9,
        model.nodes.len(),
        model.distinct_tunable()
    );

    let opts = TuneOptions {
        trials: 16,
        ..Default::default()
    };
    let result = evaluate_model(&model, &machine, &intrins, Strategy::TensorIr, &opts)
        .expect("well-formed model");
    println!("\nper-kernel breakdown after fusion (TensorIR):");
    for g in &result.per_group {
        let fused = if g.fused_ops > 0 {
            format!(" [+{} fused]", g.fused_ops)
        } else {
            String::new()
        };
        println!(
            "  {:<28} {:>9.3} ms x{:<3} (tuned in {:>6.1} s, {} trials){}",
            g.name,
            g.time_s * 1e3,
            g.count,
            g.tuning_cost_s,
            g.trials,
            fused
        );
    }
    println!(
        "\nTensorIR end-to-end: {:.3} ms (tuning cost {:.1} min; fusion saved {:.3} ms launch + {:.3} ms traffic)",
        result.latency_s * 1e3,
        result.tuning_cost_s / 60.0,
        result.saved_launch_s() * 1e3,
        result.saved_traffic_s() * 1e3
    );
    for fw in [Framework::PyTorch, Framework::TensorRt] {
        match fw.model_latency(&model, &machine) {
            Some(t) => println!(
                "{:<18} {:.3} ms  (TensorIR is {:.2}x)",
                fw.label(),
                t * 1e3,
                t / result.latency_s
            ),
            None => println!("{:<18} unsupported", fw.label()),
        }
    }
}
