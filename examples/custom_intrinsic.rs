//! Defining a *custom* tensor intrinsic and targeting it — the paper's
//! §5.3 point: porting TensorIR to a new backend is "providing the new
//! description of the tensor intrinsic to the system".
//!
//! Here we invent an 8x8x8 bfloat16 matrix unit, register it, and let the
//! same auto-tensorization machinery map a batched matmul onto it.
//!
//! Run with: `cargo run --release --example custom_intrinsic`

use tir::DataType;
use tir_exec::assert_same_semantics;
use tir_exec::machine::{Machine, TensorUnitPerf};
use tir_tensorize::intrin::{matmul_intrin, IntrinRegistry};
use tir_tensorize::{auto_tensorize, find_tensorizable_block};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the new instruction with the same TensorIR vocabulary
    //    (§4.1): an 8x8x8 bf16 matmul unit.
    let intrin = matmul_intrin(
        "bf16_mma_8x8x8",
        8,
        8,
        8,
        DataType::bfloat16(),
        DataType::bfloat16(),
    );
    let mut registry = IntrinRegistry::new();
    registry.register(intrin.clone());

    // 2. Declare its throughput on a machine model.
    let mut machine = Machine::sim_gpu();
    machine.tensor_units.insert(
        "bf16_mma_8x8x8".to_string(),
        TensorUnitPerf {
            macs_per_cycle_per_core: 512.0,
        },
    );

    // 3. Any matching workload now tensorizes automatically.
    let func =
        tir_workloads::batch_matmul(4, 24, 24, 24, DataType::bfloat16(), DataType::bfloat16());
    let block = find_tensorizable_block(&func, &intrin).expect("bmm matches the intrinsic");
    let t = auto_tensorize(&func, &block, &intrin)?;
    println!(
        "batch matmul tensorized onto {}: fused extents {:?}, batch stays outer",
        intrin.name, t.fused_extents
    );
    assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
    println!("interpreter check: bit-exact");

    // 4. And the simulator prices it at the declared unit's throughput.
    let before = tir_exec::simulate(&func, &machine);
    let after = tir_exec::simulate(t.schedule.func(), &machine);
    println!(
        "simulated: {:.3} ms scalar -> {:.3} ms on the new unit",
        before * 1e3,
        after * 1e3
    );
    Ok(())
}
