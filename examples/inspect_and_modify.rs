//! The §3.4 programming-effort workflow: dump a program as text, inspect
//! it, hand-edit it, parse it back, validate, and keep scheduling — "print
//! out the program at any transformation stage for debugging and mix
//! automatic rewriting with schedule transformations."
//!
//! Run with: `cargo run --example inspect_and_modify`

use tir::parser::parse_func;
use tir::DataType;
use tir_exec::assert_same_semantics;
use tir_schedule::Schedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Start from a generated workload and apply one transformation.
    let func = tir::builder::matmul_func("matmul", 32, 32, 32, DataType::float32());
    let mut sch = Schedule::new(func.clone());
    let block = sch.get_block("C")?;
    let loops = sch.get_loops(&block)?;
    sch.split(&loops[2], &[8, 4])?;

    // 2. Dump the program at this stage.
    let text = sch.func().to_string();
    println!("--- dumped after split ---\n{text}");

    // 3. "Hand-edit" the text: unroll the inner reduction loop by editing
    //    the source, the way a developer would in the Python dialect.
    let edited = text.replace("for k0_1 in range(4):", "for k0_1 in T.unroll(4):");
    let reparsed = parse_func(&edited)?;
    println!("--- reparsed after hand edit ---\n{reparsed}");

    // 4. The edited program still validates and computes the same result.
    tir_analysis::validate(&reparsed).map_err(|e| format!("{}", e[0]))?;
    assert_same_semantics(&func, &reparsed, 1, 0.0);
    println!("hand-edited program: valid and bit-exact");

    // 5. Keep scheduling the re-imported program.
    let mut sch2 = Schedule::new(reparsed);
    let block = sch2.get_block("C")?;
    let loops = sch2.get_loops(&block)?;
    sch2.parallel(&loops[0])?;
    tir_analysis::validate(sch2.func()).map_err(|e| format!("{}", e[0]))?;
    assert_same_semantics(&func, sch2.func(), 1, 0.0);
    println!("continued scheduling after re-import: ok");
    println!("--- final trace ---\n{}", sch2.trace());
    Ok(())
}
