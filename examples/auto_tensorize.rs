//! Automatic tensorization walkthrough — the paper's Fig. 8/9 flow.
//!
//! Takes a 64x64x64 matmul and a 4x4x4 matmul intrinsic (implemented by a
//! dot-product instruction), and a NHWC 2-D convolution with a 16x16x16
//! intrinsic, and shows every stage: einsum extraction, characteristic-
//! vector mapping, ReIndex staging, padding, tiling + blockization, and
//! the final tensorized program — with a bit-exact interpreter check.
//!
//! Run with: `cargo run --example auto_tensorize`

use tir::builder::matmul_func;
use tir::DataType;
use tir_exec::assert_same_semantics;
use tir_tensorize::{auto_tensorize, builtin_registry, extract_einsum, propose_mapping};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reg = builtin_registry();

    // --- Part 1: the Fig. 8 workload: matmul with a 4x4x4 intrinsic -----
    let func = matmul_func("matmul", 64, 64, 64, DataType::float32());
    let intrin = reg.get("dot_4x4x4_f32").expect("builtin");
    println!("--- input workload ---\n{func}");

    let block = &tir::visit::find_block(&func.body, "C")
        .expect("block C")
        .block;
    let einsum = extract_einsum(block).map_err(|e| e.to_string())?;
    println!(
        "einsum: {}[..] += {}[..] * {}[..]",
        einsum.output.0.name(),
        einsum.inputs[0].0.name(),
        einsum.inputs[1].0.name()
    );
    let mapping = propose_mapping(block, &einsum, intrin).map_err(|e| e.to_string())?;
    println!(
        "iterator mapping: groups {:?} (fused extents {:?}), batch {:?}",
        mapping
            .groups
            .iter()
            .map(|g| g.iter().map(|v| v.name().to_string()).collect::<Vec<_>>())
            .collect::<Vec<_>>(),
        mapping.group_extents,
        mapping.batch.iter().map(|v| v.name()).collect::<Vec<_>>(),
    );

    let t = auto_tensorize(&func, "C", intrin)?;
    println!(
        "--- tensorized program (outer block {}, inner intrinsic block {}) ---\n{}",
        t.outer_block.name(),
        t.inner_block.name(),
        t.schedule.func()
    );
    assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
    println!("interpreter check: tensorized program is bit-exact\n");

    // --- Part 2: the Fig. 9 workload: conv2d needs ReIndex ---------------
    let conv = tir_workloads::c2d(1, 18, 18, 16, 32, 3, 3, 1, DataType::float16());
    let wmma = reg.get("wmma_16x16x16_f16").expect("builtin");
    let t = auto_tensorize(&conv, "C", wmma)?;
    println!(
        "conv2d -> wmma: fused extents {:?} padded to {:?} (ReIndex stages: {:?})",
        t.fused_extents, t.padded_extents, t.data_movement_blocks
    );
    for pad in t.paddings() {
        println!(
            "  canonical dim {} padded {} -> {}",
            pad.dim, pad.valid, pad.padded
        );
    }
    assert_same_semantics(&conv, t.schedule.func(), 1, 0.0);
    println!("interpreter check: tensorized conv2d is bit-exact");
    Ok(())
}
