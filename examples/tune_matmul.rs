//! Auto-scheduling walkthrough: evolutionary search over the tensorized
//! and scalar sketch spaces on the simulated GPU, comparing the three
//! compilation strategies of the paper's evaluation.
//!
//! Run with: `cargo run --release --example tune_matmul`

use tir::builder::matmul_func;
use tir::DataType;
use tir_autoschedule::{tune_workload, Strategy, TuneOptions};
use tir_exec::Machine;
use tir_tensorize::builtin_registry;

fn main() {
    let func = matmul_func("matmul", 1024, 1024, 1024, DataType::float16());
    let machine = Machine::sim_gpu();
    let intrins = builtin_registry();
    let opts = TuneOptions {
        trials: 48,
        ..Default::default()
    };

    println!(
        "tuning 1024^3 float16 matmul on {} ({} trials per strategy)\n",
        machine.name, opts.trials
    );
    let mut results = Vec::new();
    for strategy in [Strategy::Ansor, Strategy::Amos, Strategy::TensorIr] {
        let r = tune_workload(&func, &machine, &intrins, strategy, &opts);
        println!(
            "{:<12} best {:>9.3} ms | measured {:>3} | filtered {:>3} | tuning cost {:>7.1} s",
            strategy.label(),
            r.best_time * 1e3,
            r.trials_measured,
            r.invalid_filtered,
            r.tuning_cost_s,
        );
        results.push((strategy, r));
    }

    let (_, tir_result) = results.last().expect("three strategies");
    if let Some(best) = &tir_result.best {
        println!("\n--- best TensorIR program ---\n{best}");
        let peak = machine
            .tensor_peak("wmma_16x16x16_f16")
            .expect("tensor unit");
        let macs = 1024f64 * 1024.0 * 1024.0;
        println!(
            "achieved {:.0}% of tensor-core peak",
            100.0 * macs / tir_result.best_time / peak
        );
    }
}
