//! Validation end-to-end: the paper's §3.3 examples and the failure modes
//! the evolutionary search relies on being filtered.

use tir::builder::matmul_func;
use tir::{Block, BlockRealize, Buffer, DataType, Expr, IterVar, PrimFunc, Stmt, ThreadTag, Var};
use tir_analysis::validate::{check_loop_nests, validate, ValidationError};
use tir_schedule::Schedule;

/// The paper's invalid binding: v1 = i, v2 = i * 2 (not independent).
#[test]
fn paper_invalid_binding_rejected() {
    let out = Buffer::new("O", DataType::float32(), vec![16, 32]);
    let i = Var::int("i");
    let (v1, v2) = (Var::int("v1"), Var::int("v2"));
    let body = Stmt::store(
        out.clone(),
        vec![Expr::from(&v1), Expr::from(&v2)],
        Expr::f32(1.0),
    );
    let block = Block::new(
        "b",
        vec![IterVar::spatial(v1, 16), IterVar::spatial(v2, 32)],
        vec![],
        vec![out.full_region()],
        body,
    );
    let realize = BlockRealize::new(vec![Expr::from(&i), Expr::from(&i) * 2], block);
    let func = PrimFunc::new(
        "invalid",
        vec![out],
        Stmt::BlockRealize(Box::new(realize)).in_loop(i, 16),
    );
    let errors = check_loop_nests(&func);
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, ValidationError::LoopNest { .. })),
        "{errors:?}"
    );
}

/// The paper's legal counterpart: v1 = i / 4, v2 = i % 4.
#[test]
fn paper_legal_binding_accepted() {
    let out = Buffer::new("O", DataType::float32(), vec![4, 4]);
    let i = Var::int("i");
    let (v1, v2) = (Var::int("v1"), Var::int("v2"));
    let body = Stmt::store(
        out.clone(),
        vec![Expr::from(&v1), Expr::from(&v2)],
        Expr::f32(1.0),
    );
    let block = Block::new(
        "b",
        vec![IterVar::spatial(v1, 4), IterVar::spatial(v2, 4)],
        vec![],
        vec![out.full_region()],
        body,
    );
    let realize = BlockRealize::new(
        vec![Expr::from(&i).floor_div(4), Expr::from(&i).floor_mod(4)],
        block,
    );
    let func = PrimFunc::new(
        "legal",
        vec![out],
        Stmt::BlockRealize(Box::new(realize)).in_loop(i, 16),
    );
    assert!(validate(&func).is_ok());
}

/// Binding a reduction loop to GPU threads is rejected, and every schedule
/// primitive that fails leaves the program untouched.
#[test]
fn reduction_thread_binding_rejected_and_schedule_survives() {
    let reference = matmul_func("mm", 8, 8, 8, DataType::float32());
    let mut sch = Schedule::new(reference.clone());
    let block = sch.get_block("C").unwrap();
    let loops = sch.get_loops(&block).unwrap();
    // With the auto-verify gate on (the default under `cargo test`), the
    // bind itself is rejected and rolled back.
    if sch.auto_verify() {
        let before = sch.func().to_string();
        let err = sch.bind(&loops[2], ThreadTag::ThreadIdxX).unwrap_err();
        assert!(
            matches!(err, tir_schedule::ScheduleError::Invalid(_)),
            "{err:?}"
        );
        assert_eq!(sch.func().to_string(), before, "gate must roll back");
        assert!(sch.trace().is_empty(), "rejected bind must not be traced");
    }
    // With the gate off, the schedule applies it (it's a pure loop-kind
    // change), and downstream validation must catch it.
    sch.set_auto_verify(false);
    sch.bind(&loops[2], ThreadTag::ThreadIdxX).unwrap();
    let errors = check_loop_nests(sch.func());
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, ValidationError::ReductionOnParallelLoop { .. })),
        "{errors:?}"
    );
}

/// Failed primitives roll back completely (the transactional property the
/// evolutionary search depends on).
#[test]
fn failed_primitives_leave_program_unchanged() {
    let reference = matmul_func("mm", 8, 8, 8, DataType::float32());
    let mut sch = Schedule::new(reference.clone());
    let block = sch.get_block("C").unwrap();
    let loops = sch.get_loops(&block).unwrap();
    let before = sch.func().to_string();

    // Bad split factors.
    assert!(sch.split(&loops[0], &[3, 2]).is_err());
    // Fuse of non-adjacent loops.
    assert!(sch.fuse(&[loops[0].clone(), loops[2].clone()]).is_err());
    // compute_at with no consumer.
    assert!(sch.compute_at(&block, &loops[2]).is_err());
    // Inline of a reduction block.
    assert!(sch.compute_inline(&block).is_err());

    assert_eq!(sch.func().to_string(), before, "schedule must be untouched");
    assert!(sch.trace().is_empty(), "no steps recorded for failures");
    tir_exec::assert_same_semantics(&reference, sch.func(), 1, 0.0);
}

/// Thread launch limits are enforced end-to-end through a schedule.
#[test]
fn launch_limit_checked_through_schedule() {
    let func = matmul_func("mm", 2048, 8, 8, DataType::float32());
    let mut sch = Schedule::new(func);
    // The gate would reject the oversized bind at apply time; turn it off to
    // check the standalone validator catches the same program.
    sch.set_auto_verify(false);
    let block = sch.get_block("C").unwrap();
    let loops = sch.get_loops(&block).unwrap();
    sch.bind(&loops[0], ThreadTag::ThreadIdxX).unwrap();
    let errors = check_loop_nests(sch.func());
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, ValidationError::LaunchLimit { .. })),
        "{errors:?}"
    );
}

/// A producer shrunk below what its consumer needs is caught by the
/// region-cover check (producer-covers-consumer, §3.3).
#[test]
fn region_cover_violation_detected() {
    use tir::MemScope;
    // Build B = A + 1 (half extent); C = B * 2 (full extent).
    let a = Buffer::new("A", DataType::float32(), vec![8]);
    let b = Buffer::new("B", DataType::float32(), vec![8]);
    let c = Buffer::new("C", DataType::float32(), vec![8]);
    let (i, vi) = (Var::int("i"), Var::int("vi"));
    let producer = Stmt::BlockRealize(Box::new(BlockRealize::new(
        vec![Expr::from(&i)],
        Block::new(
            "B",
            vec![IterVar::spatial(vi.clone(), 4)],
            vec![tir::BufferRegion::point(a.clone(), vec![Expr::from(&vi)])],
            vec![tir::BufferRegion::point(b.clone(), vec![Expr::from(&vi)])],
            Stmt::store(
                b.clone(),
                vec![Expr::from(&vi)],
                a.load(vec![Expr::from(&vi)]) + Expr::f32(1.0),
            ),
        ),
    )))
    .in_loop(i, 4);
    let consumer = tir::builder::compute("C", &c, |iv| {
        b.load(vec![Expr::from(&iv[0])]) * Expr::f32(2.0)
    });
    let mut func = PrimFunc::new("bad_cover", vec![a, c], Stmt::seq(vec![producer, consumer]));
    func.root_block_mut()
        .unwrap()
        .alloc_buffers
        .push(b.derive("B", MemScope::Global));
    let err = validate(&func).unwrap_err();
    assert!(
        err.iter()
            .any(|e| matches!(e, ValidationError::RegionCover { .. })),
        "{err:?}"
    );
}
