//! Observability must be a pure observer: enabling tracing, and running
//! the tuner at any worker-thread count, must leave the search result
//! bit-identical, and the merged trace report itself must be
//! byte-identical at every thread count (all recorded quantities are
//! simulated, thread-invariant seconds; the merge order is a pure
//! function of deterministic keys).

use std::sync::Arc;

use tir::DataType;
use tir_autoschedule::{tune_workload, Strategy, TuneOptions, TuneResult};
use tir_exec::Machine;
use tir_tensorize::builtin_registry;
use tir_trace::{Collector, TraceReport};
use tir_workloads::ops;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

fn tune(trace: Option<Arc<Collector>>, num_threads: usize) -> (TuneResult, Option<TraceReport>) {
    let func = ops::gmm(64, 64, 64, DataType::float16(), DataType::float32());
    let machine = Machine::sim_gpu();
    let registry = builtin_registry();
    let opts = TuneOptions {
        trials: 24,
        num_threads,
        trace: trace.clone(),
        ..TuneOptions::default()
    };
    let result = tune_workload(&func, &machine, &registry, Strategy::TensorIr, &opts);
    (result, trace.map(|c| c.report()))
}

/// Everything about the search outcome that must not move: the best
/// program (printed form), its time (bit pattern), and the full
/// best-so-far history (bit patterns).
fn outcome_fingerprint(r: &TuneResult) -> (Option<String>, u64, Vec<u64>, usize, usize) {
    (
        r.best.as_ref().map(|f| f.to_string()),
        r.best_time.to_bits(),
        r.history.iter().map(|t| t.to_bits()).collect(),
        r.trials_measured,
        r.cache_hits,
    )
}

#[test]
fn tracing_does_not_perturb_the_search_at_any_thread_count() {
    for threads in THREAD_COUNTS {
        let (plain, _) = tune(None, threads);
        let (disabled, _) = tune(Some(Arc::new(Collector::disabled())), threads);
        let (traced, report) = tune(Some(Arc::new(Collector::new())), threads);

        assert_eq!(
            outcome_fingerprint(&plain),
            outcome_fingerprint(&traced),
            "tracing perturbed the search at {threads} threads"
        );
        assert_eq!(
            outcome_fingerprint(&plain),
            outcome_fingerprint(&disabled),
            "a disabled collector perturbed the search at {threads} threads"
        );
        // tuning_cost_s is thread-dependent by design, but tracing must
        // not move it either.
        assert_eq!(
            plain.tuning_cost_s.to_bits(),
            traced.tuning_cost_s.to_bits(),
            "tracing perturbed tuning_cost_s at {threads} threads"
        );
        let report = report.expect("enabled collector must produce a report");
        assert!(
            !report.spans.is_empty(),
            "enabled tracing produced no spans"
        );
    }
}

#[test]
fn trace_report_is_byte_identical_across_thread_counts() {
    let mut jsons = Vec::new();
    for threads in THREAD_COUNTS {
        let (_, report) = tune(Some(Arc::new(Collector::new())), threads);
        jsons.push((threads, report.unwrap().to_json()));
    }
    let (_, reference) = &jsons[0];
    for (threads, json) in &jsons[1..] {
        assert_eq!(
            json, reference,
            "trace report at {threads} threads differs from the 1-thread report"
        );
    }
}

#[test]
fn measure_events_decompose_the_measure_phase() {
    let (result, report) = tune(Some(Arc::new(Collector::new())), 1);
    let report = report.unwrap();

    // The serial measurement phase reconciles with the 1-thread makespan
    // accounting, and the per-attempt measure.* events decompose it
    // (wasted measurements, which carry no attempt events, may leave the
    // event sum strictly below the phase total).
    let phase = report.phase_sim_s("search.measure");
    assert!(
        (phase - result.tuning_cost_s).abs() <= result.tuning_cost_s * 1e-9,
        "search.measure {phase} != tuning_cost_s {} at one thread",
        result.tuning_cost_s
    );
    let events = report.phase_sim_s("measure.");
    assert!(
        events <= phase * (1.0 + 1e-9),
        "measure.* events {events} exceed the search.measure phase {phase}"
    );
    if result.wasted_measurements == 0 {
        assert!(
            (events - phase).abs() <= phase * 1e-9,
            "measure.* events {events} do not decompose search.measure {phase}"
        );
    }

    // Counters mirror the tuner's own accounting.
    assert_eq!(
        report.counter("search.cache_hits"),
        result.cache_hits as u64
    );
    assert_eq!(report.counter("search.retries"), result.retries);
    assert_eq!(
        report.counter("search.failed_measurements"),
        result.failed_measurements as u64
    );
}
