//! Search-quality integration tests: the strategy ranking the paper's
//! evaluation depends on must hold on the simulator, deterministically.

use tir::DataType;
use tir_autoschedule::{tune_workload, Strategy, TuneOptions};
use tir_exec::Machine;
use tir_tensorize::builtin_registry;

fn opts(trials: usize) -> TuneOptions {
    TuneOptions {
        trials,
        ..Default::default()
    }
}

#[test]
fn strategy_ranking_on_f16_matmul() {
    let func = tir_workloads::gmm(256, 256, 256, DataType::float16(), DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let tir_r = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(24));
    let amos_r = tune_workload(&func, &machine, &reg, Strategy::Amos, &opts(24));
    let ansor_r = tune_workload(&func, &machine, &reg, Strategy::Ansor, &opts(24));
    assert!(tir_r.best.is_some() && amos_r.best.is_some() && ansor_r.best.is_some());
    // TensorIR <= AMOS <= Ansor (with slack for search noise).
    assert!(
        tir_r.best_time <= amos_r.best_time * 1.001,
        "TensorIR {} vs AMOS {}",
        tir_r.best_time,
        amos_r.best_time
    );
    assert!(
        amos_r.best_time < ansor_r.best_time,
        "AMOS {} vs Ansor {}",
        amos_r.best_time,
        ansor_r.best_time
    );
}

#[test]
fn strategy_ranking_on_int8_arm() {
    let func = tir_workloads::gmm(256, 256, 256, DataType::int8(), DataType::int32());
    let machine = Machine::sim_arm();
    let reg = builtin_registry();
    let tir_r = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(16));
    let ansor_r = tune_workload(&func, &machine, &reg, Strategy::Ansor, &opts(16));
    assert!(
        tir_r.best_time < ansor_r.best_time / 2.0,
        "sdot must be a large win: {} vs {}",
        tir_r.best_time,
        ansor_r.best_time
    );
}

#[test]
fn best_program_is_semantics_preserving() {
    // The search's winning schedule must still be bit-exact.
    let func = tir_workloads::gmm(32, 32, 32, DataType::float16(), DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let r = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(12));
    let best = r.best.expect("a valid schedule");
    tir_exec::assert_same_semantics(&func, &best, 1, 0.0);
    tir_analysis::assert_valid(&best);
}

#[test]
fn tuning_is_deterministic() {
    let func = tir_workloads::gmm(128, 128, 128, DataType::float16(), DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let a = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(16));
    let b = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(16));
    assert_eq!(a.best_time, b.best_time);
    assert_eq!(a.trials_measured, b.trials_measured);
    assert_eq!(a.history, b.history);
}

#[test]
fn more_trials_never_hurt() {
    let func = tir_workloads::c2d(1, 30, 30, 64, 64, 3, 3, 1, DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let short = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(8));
    let long = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(32));
    assert!(long.best_time <= short.best_time * 1.0001);
}

#[test]
fn thread_count_invariance_end_to_end() {
    // The full workload path (multi-sketch, budget split) must find the
    // byte-identical best program at any thread count.
    let func = tir_workloads::gmm(128, 128, 128, DataType::float16(), DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let serial = tune_workload(
        &func,
        &machine,
        &reg,
        Strategy::TensorIr,
        &TuneOptions {
            trials: 24,
            num_threads: 1,
            ..Default::default()
        },
    );
    let parallel = tune_workload(
        &func,
        &machine,
        &reg,
        Strategy::TensorIr,
        &TuneOptions {
            trials: 24,
            num_threads: 4,
            ..Default::default()
        },
    );
    assert_eq!(serial.best_time, parallel.best_time);
    assert_eq!(serial.history, parallel.history);
    assert_eq!(
        serial.best.as_ref().expect("serial best").to_string(),
        parallel.best.as_ref().expect("parallel best").to_string(),
        "best programs must match byte-for-byte"
    );
}

#[test]
fn candidate_cache_invariance_end_to_end() {
    // C2D has real structural-duplicate candidates; the cache must change
    // only the accounted tuning cost, never what the search finds.
    let func = tir_workloads::c2d(1, 30, 30, 64, 64, 3, 3, 1, DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let with_cache = tune_workload(
        &func,
        &machine,
        &reg,
        Strategy::TensorIr,
        &TuneOptions {
            trials: 32,
            use_candidate_cache: true,
            ..Default::default()
        },
    );
    let without_cache = tune_workload(
        &func,
        &machine,
        &reg,
        Strategy::TensorIr,
        &TuneOptions {
            trials: 32,
            use_candidate_cache: false,
            ..Default::default()
        },
    );
    assert_eq!(without_cache.cache_hits, 0);
    assert_eq!(with_cache.best_time, without_cache.best_time);
    assert_eq!(with_cache.history, without_cache.history);
    assert_eq!(
        with_cache.best.as_ref().expect("best").to_string(),
        without_cache.best.as_ref().expect("best").to_string()
    );
    assert!(with_cache.tuning_cost_s <= without_cache.tuning_cost_s);
}
