//! Search-quality integration tests: the strategy ranking the paper's
//! evaluation depends on must hold on the simulator, deterministically.

use tir::DataType;
use tir_autoschedule::{tune_workload, Strategy, TuneOptions};
use tir_exec::Machine;
use tir_tensorize::builtin_registry;

fn opts(trials: usize) -> TuneOptions {
    TuneOptions {
        trials,
        ..Default::default()
    }
}

#[test]
fn strategy_ranking_on_f16_matmul() {
    let func = tir_workloads::gmm(256, 256, 256, DataType::float16(), DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let tir_r = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(24));
    let amos_r = tune_workload(&func, &machine, &reg, Strategy::Amos, &opts(24));
    let ansor_r = tune_workload(&func, &machine, &reg, Strategy::Ansor, &opts(24));
    assert!(tir_r.best.is_some() && amos_r.best.is_some() && ansor_r.best.is_some());
    // TensorIR <= AMOS <= Ansor (with slack for search noise).
    assert!(
        tir_r.best_time <= amos_r.best_time * 1.001,
        "TensorIR {} vs AMOS {}",
        tir_r.best_time,
        amos_r.best_time
    );
    assert!(
        amos_r.best_time < ansor_r.best_time,
        "AMOS {} vs Ansor {}",
        amos_r.best_time,
        ansor_r.best_time
    );
}

#[test]
fn strategy_ranking_on_int8_arm() {
    let func = tir_workloads::gmm(256, 256, 256, DataType::int8(), DataType::int32());
    let machine = Machine::sim_arm();
    let reg = builtin_registry();
    let tir_r = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(16));
    let ansor_r = tune_workload(&func, &machine, &reg, Strategy::Ansor, &opts(16));
    assert!(
        tir_r.best_time < ansor_r.best_time / 2.0,
        "sdot must be a large win: {} vs {}",
        tir_r.best_time,
        ansor_r.best_time
    );
}

#[test]
fn best_program_is_semantics_preserving() {
    // The search's winning schedule must still be bit-exact.
    let func = tir_workloads::gmm(32, 32, 32, DataType::float16(), DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let r = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(12));
    let best = r.best.expect("a valid schedule");
    tir_exec::assert_same_semantics(&func, &best, 1, 0.0);
    tir_analysis::assert_valid(&best);
}

#[test]
fn tuning_is_deterministic() {
    let func = tir_workloads::gmm(128, 128, 128, DataType::float16(), DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let a = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(16));
    let b = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(16));
    assert_eq!(a.best_time, b.best_time);
    assert_eq!(a.trials_measured, b.trials_measured);
    assert_eq!(a.history, b.history);
}

#[test]
fn more_trials_never_hurt() {
    let func = tir_workloads::c2d(1, 30, 30, 64, 64, 3, 3, 1, DataType::float16());
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let short = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(8));
    let long = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts(32));
    assert!(long.best_time <= short.best_time * 1.0001);
}
