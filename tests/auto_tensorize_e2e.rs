//! End-to-end auto-tensorization correctness: every operator of the
//! paper's workload suite that maps onto an intrinsic must produce a
//! bit-exact tensorized program, and every sketch-generated schedule must
//! stay bit-exact too.

use tir::DataType;
use tir_autoschedule::sketch::SketchRule;
use tir_autoschedule::sketch_cpu::{CpuScalarSketch, CpuTensorSketch};
use tir_autoschedule::sketch_gpu::{GpuScalarSketch, GpuTensorSketch};
use tir_exec::assert_same_semantics;
use tir_tensorize::{auto_tensorize, builtin_registry, find_tensorizable_block};

/// Small instances of every operator family (fast under the interpreter).
fn small_ops(dtype: DataType) -> Vec<tir::PrimFunc> {
    vec![
        tir_workloads::gmm(12, 10, 8, dtype, tir_workloads::ops::accumulator_of(dtype)),
        tir_workloads::batch_matmul(2, 6, 6, 6, dtype, tir_workloads::ops::accumulator_of(dtype)),
        tir_workloads::c1d(1, 14, 4, 6, 3, 1, dtype),
        tir_workloads::c2d(1, 8, 8, 4, 6, 3, 3, 1, dtype),
        tir_workloads::c3d(1, 5, 5, 5, 2, 4, 2, 1, dtype),
        tir_workloads::dep(1, 8, 8, 4, 3, 3, 1, dtype),
        tir_workloads::dil(1, 10, 10, 4, 6, 3, 3, 2, dtype),
        tir_workloads::grp(1, 6, 6, 2, 2, 4, 3, 3, 1, dtype),
        tir_workloads::t2d(1, 4, 4, 2, 4, 3, 3, 2, dtype),
    ]
}

#[test]
fn every_matchable_op_tensorizes_bit_exactly_f32() {
    let reg = builtin_registry();
    let intrin = reg.get("dot_4x4x4_f32").unwrap();
    let mut tensorized = 0;
    for func in small_ops(DataType::float32()) {
        if let Some(block) = find_tensorizable_block(&func, intrin) {
            let t = auto_tensorize(&func, &block, intrin)
                .unwrap_or_else(|e| panic!("{}: {e}", func.name));
            assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
            tir_analysis::assert_valid(t.schedule.func());
            tensorized += 1;
        }
    }
    // All nine op families map onto a matmul intrinsic (DEP/GRP via batch
    // iterators, conv via ReIndex).
    assert!(tensorized >= 8, "only {tensorized} ops tensorized");
}

#[test]
fn every_matchable_op_tensorizes_bit_exactly_int8() {
    let reg = builtin_registry();
    let intrin = reg.get("sdot_4x4x4_i8").unwrap();
    let mut tensorized = 0;
    for func in small_ops(DataType::int8()) {
        if let Some(block) = find_tensorizable_block(&func, intrin) {
            let t = auto_tensorize(&func, &block, intrin)
                .unwrap_or_else(|e| panic!("{}: {e}", func.name));
            assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
            tensorized += 1;
        }
    }
    assert!(tensorized >= 8, "only {tensorized} ops tensorized");
}

#[test]
fn gpu_sketches_are_semantics_preserving_on_conv() {
    use tir_rand::SeedableRng;
    let func = tir_workloads::c2d(1, 10, 10, 16, 16, 3, 3, 1, DataType::float16());
    let reg = builtin_registry();
    let wmma = reg.get("wmma_16x16x16_f16").unwrap();
    let mut rng = tir_rand::rngs::StdRng::seed_from_u64(11);
    if let Ok(sketch) = GpuTensorSketch::new(&func, "C", wmma, true) {
        let mut checked = 0;
        for _ in 0..6 {
            let d = sketch.sample(&mut rng);
            if let Ok(f) = sketch.apply(&d) {
                assert_same_semantics(&func, &f, 1, 0.0);
                checked += 1;
            }
        }
        assert!(checked >= 1, "no valid tensorized conv candidate");
    }
    let scalar = GpuScalarSketch::new(&func);
    for _ in 0..4 {
        let d = scalar.sample(&mut rng);
        let f = scalar.apply(&d).expect("scalar sketch");
        assert_same_semantics(&func, &f, 1, 0.0);
    }
}

#[test]
fn cpu_sketches_are_semantics_preserving_on_int8_conv() {
    use tir_rand::SeedableRng;
    let func = tir_workloads::c2d(1, 10, 10, 8, 8, 3, 3, 1, DataType::int8());
    let reg = builtin_registry();
    let sdot = reg.get("sdot_4x4x4_i8").unwrap();
    let mut rng = tir_rand::rngs::StdRng::seed_from_u64(13);
    let sketch = CpuTensorSketch::new(&func, "C", sdot).expect("tensor sketch");
    let mut checked = 0;
    for _ in 0..4 {
        let d = sketch.sample(&mut rng);
        if let Ok(f) = sketch.apply(&d) {
            assert_same_semantics(&func, &f, 1, 0.0);
            checked += 1;
        }
    }
    assert!(checked >= 1);
    let scalar = CpuScalarSketch::new(&func);
    let d = scalar.sample(&mut rng);
    let f = scalar.apply(&d).expect("scalar sketch");
    assert_same_semantics(&func, &f, 1, 0.0);
}

#[test]
fn padding_metadata_is_reported() {
    let reg = builtin_registry();
    let intrin = reg.get("dot_4x4x4_f32").unwrap();
    // 10x10x10 matmul: every canonical dim pads 10 -> 12.
    let func = tir_workloads::gmm(10, 10, 10, DataType::float32(), DataType::float32());
    let t = auto_tensorize(&func, "C", intrin).expect("tensorize");
    assert_eq!(t.padded_extents, vec![12, 12, 12]);
    assert_eq!(t.paddings().len(), 3);
    assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
}
