//! Golden-listing tests for the bytecode disassembler and optimizer.
//!
//! Each fixture pins the full disassembly of an *optimized* program, so
//! any change in the optimizer's output — a pass firing differently, a
//! fusion regressing to scalar ops, an access pool reshuffling — shows
//! up as a readable text diff instead of a silent perf cliff. The
//! unoptimized listing of the elementwise fixture is pinned too, as a
//! guard on the compiler's baseline lowering.

use tir::builder::matmul_func;
use tir::{Buffer, DataType, Expr, PrimFunc, Stmt, Var};
use tir_exec::{compile, optimize};
use tir_schedule::Schedule;

fn listing(f: &PrimFunc, opt: bool) -> String {
    let prog = compile(f).expect("compiles");
    let prog = if opt { optimize(prog) } else { prog };
    format!("{prog}")
}

#[track_caller]
fn assert_listing(actual: &str, expected: &str) {
    let expected = expected.trim_start_matches('\n');
    assert!(
        actual == expected,
        "listing drifted from the golden fixture.\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// The canonical matmul: three loops collapse to a guarded `MacLanes`
/// over one fused multiply-accumulate — ten ops total.
#[test]
fn golden_matmul_optimized() {
    let f = matmul_func("gmm", 4, 4, 4, DataType::float32());
    assert_listing(
        &listing(&f, true),
        r"
program gmm (10 ops, 6 regs, 6 slots, 3 loops, 0 hoists, optimized)
   0: const r0 = 4
   1: for_setup L0 v0 extent=r0 end=10
   2: const r0 = 4
   3: for_setup L1 v1 extent=r0 end=9
   4: const r0 = 4
   5: for_setup L2 v2 extent=r0 end=8
   6: mac_lanes L2 v2 x8 mac0 guard[v2] init C[v0*4 + v1*1] = 0
   7: for_next L2 v2 body=6
   8: for_next L1 v1 body=4
   9: for_next L0 v0 body=2
  mac0: C[v0*4 + v1*1] = C[v0*4 + v1*1] Add (A[v0*4 + v2*1] Mul B[v1*1 + v2*4])
",
    );
}

fn elementwise() -> PrimFunc {
    // B[i] = A[i] * 2 + 1
    let a = Buffer::new("A", DataType::float32(), vec![8]);
    let b = Buffer::new("B", DataType::float32(), vec![8]);
    let i = Var::int("i");
    let body = Stmt::store(
        b.clone(),
        vec![Expr::from(&i)],
        a.load(vec![Expr::from(&i)]) * Expr::f32(2.0) + Expr::f32(1.0),
    )
    .in_loop(i, 8);
    PrimFunc::new("ew", vec![a, b], body)
}

/// An elementwise loop: strength reduction turns the index into a direct
/// frame read and the final `Bin; Store` fuses, but the loop stays
/// scalar (its body is not a single fused statement).
#[test]
fn golden_elementwise_optimized() {
    assert_listing(
        &listing(&elementwise(), true),
        r"
program ew (9 ops, 3 regs, 1 slots, 1 loops, 0 hoists, optimized)
   0: const r0 = 8
   1: for_setup L0 v0 extent=r0 end=9
   2: tick
   3: load r1 = A[v0*1]
   4: const r2 = 2
   5: bin r1 = r1 Mul r2
   6: const r2 = 1
   7: bin_store B[v0*1] = r1 Add r2
   8: for_next L0 v0 body=2
",
    );
}

/// The same fixture before optimization — pins the compiler's baseline
/// lowering: a trivially-true block predicate, duplicate `LoadVar`s,
/// and separate Bin / Store, all of which the optimizer removes.
#[test]
fn golden_elementwise_unoptimized() {
    assert_listing(
        &listing(&elementwise(), false),
        r"
program ew (14 ops, 3 regs, 1 slots, 1 loops, 0 hoists)
   0: const r0 = 1
   1: jump_if_zero r0 -> 14
   2: const r0 = 8
   3: for_setup L0 v0 extent=r0 end=14
   4: tick
   5: load_var r0 = v0
   6: load_var r1 = v0
   7: load r1 = A[r1*1]
   8: const r2 = 2
   9: bin r1 = r1 Mul r2
  10: const r2 = 1
  11: bin r1 = r1 Add r2
  12: store B[r0*1] = r1
  13: for_next L0 v0 body=4
",
    );
}

/// A split matmul: the block-var recomputation (`v4 = v0*4 + v1`) lands
/// inside the reduction loop, so lane batching is blocked — but MAC
/// fusion still fires, with the reduce-at-start guard initialising the
/// accumulator via a fused `StoreConst`.
#[test]
fn golden_scheduled_matmul_optimized() {
    let mut sch = Schedule::new(matmul_func("mm", 8, 8, 8, DataType::float32()));
    let block = sch.get_block("C").unwrap();
    let loops = sch.get_loops(&block).unwrap();
    sch.split(&loops[0], &[2, -1]).unwrap();
    let actual = listing(sch.func(), true);
    assert_listing(
        &actual,
        r"
program mm (26 ops, 6 regs, 7 slots, 4 loops, 0 hoists, optimized)
   0: const r0 = 2
   1: for_setup L0 v0 extent=r0 end=26
   2: const r0 = 4
   3: for_setup L1 v1 extent=r0 end=25
   4: const r0 = 8
   5: for_setup L2 v2 extent=r0 end=24
   6: const r0 = 8
   7: for_setup L3 v3 extent=r0 end=23
   8: reset_reduce_flag
   9: load_var r0 = v0
  10: const r1 = 4
  11: bin r0 = r0 Mul r1
  12: load_var r1 = v1
  13: bin r0 = r0 Add r1
  14: set_var v4 = r0
  15: load_var r0 = v3
  16: update_reduce_flag r0
  17: jump_if_reduce_flag_false -> 20
  18: tick
  19: store_const C[v4*8 + v2*1] = 0
  20: tick
  21: fused_mac mac0
  22: for_next L3 v3 body=8
  23: for_next L2 v2 body=6
  24: for_next L1 v1 body=4
  25: for_next L0 v0 body=2
  mac0: C[v4*8 + v2*1] = C[v4*8 + v2*1] Add (A[v4*8 + v3*1] Mul B[v2*1 + v3*8])
",
    );
}
