//! Differential testing of the three execution backends.
//!
//! The optimized bytecode VM (`ExecBackend::Vm`), the unoptimized VM
//! (`ExecBackend::VmUnopt`), and the tree-walking interpreter
//! (`ExecBackend::TreeWalk`) must be observationally identical: bit-exact
//! output tensors (`==`, not allclose) and identical step counts on every
//! run. This suite drives all three backends over
//!
//! * small-shape instances of **every** `tir-workloads` operator family
//!   (gmm, batch_matmul, c1d, c2d, c3d, dep, dil, grp, t2d) across
//!   float32/float16/int8, executed to completion;
//! * the real `bench_suite` entries (too large to execute fully in a
//!   test), fuel-capped so both backends must agree on hitting
//!   `OutOfFuel`;
//! * 100+ randomly-traced scheduled variants (seeded split / fuse /
//!   reorder / parallel / unroll pipelines plus GPU-style
//!   bind + cache_read + cache_write pipelines) of a matmul.

use tir::builder::matmul_func;
use tir::{DataType, PrimFunc, ThreadTag};
use tir_exec::{run_with, ExecBackend, ExecError, Tensor};
use tir_rand::{rngs::StdRng, RngExt, SeedableRng};
use tir_schedule::Schedule;
use tir_workloads::{bench_suite, ops};

/// Runs `func` on all three backends with identical inputs; asserts
/// bit-exact outputs and identical step counts across every pair.
fn backends_agree(func: &PrimFunc, seed: u64) {
    let n = func.params.len();
    let args: Vec<Tensor> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i + 1 >= n {
                Tensor::zeros(p.dtype(), p.shape())
            } else {
                Tensor::random(p.dtype(), p.shape(), seed.wrapping_add(i as u64))
            }
        })
        .collect();
    let tw = run_with(func, args.clone(), ExecBackend::TreeWalk, None)
        .unwrap_or_else(|e| panic!("tree-walk failed on {}: {e}", func.name));
    for backend in [ExecBackend::VmUnopt, ExecBackend::Vm] {
        let vm = run_with(func, args.clone(), backend, None)
            .unwrap_or_else(|e| panic!("{backend:?} failed on {}: {e}", func.name));
        assert_eq!(
            tw.steps, vm.steps,
            "step counts diverge on {}: tree-walk {} vs {backend:?} {}",
            func.name, tw.steps, vm.steps
        );
        for (i, (a, b)) in tw.outputs.iter().zip(&vm.outputs).enumerate() {
            assert_eq!(
                a, b,
                "output {i} of {} is not bit-identical on {backend:?}",
                func.name
            );
        }
    }
}

/// Every operator family in `tir-workloads`, at shapes small enough to
/// execute to completion, across representative dtypes.
#[test]
fn all_workload_families_bit_exact() {
    for (i, dt) in [DataType::float32(), DataType::float16(), DataType::int8()]
        .into_iter()
        .enumerate()
    {
        let acc = ops::accumulator_of(dt);
        let seed = 0xd1f5 + i as u64;
        backends_agree(&ops::gmm(8, 7, 6, dt, acc), seed);
        backends_agree(&ops::batch_matmul(2, 4, 5, 6, dt, acc), seed);
        backends_agree(&ops::c1d(2, 18, 4, 5, 3, 2, dt), seed);
        backends_agree(&ops::c2d(1, 10, 10, 4, 4, 3, 3, 1, dt), seed);
        backends_agree(&ops::c3d(1, 6, 6, 6, 2, 2, 3, 1, dt), seed);
        backends_agree(&ops::dep(1, 10, 10, 4, 3, 3, 2, dt), seed);
        backends_agree(&ops::dil(1, 12, 12, 2, 2, 3, 3, 2, dt), seed);
        backends_agree(&ops::grp(1, 8, 8, 2, 2, 2, 3, 3, 1, dt), seed);
        backends_agree(&ops::t2d(1, 5, 5, 2, 2, 3, 3, 2, dt), seed);
    }
}

/// The real (large) bench-suite entries: both backends must hit the fuel
/// guard — neither may finish, diverge into a different error, or panic.
#[test]
fn bench_suite_fuel_parity() {
    for dt in [DataType::float16(), DataType::int8()] {
        for case in bench_suite(dt) {
            let args: Vec<Tensor> = case
                .func
                .params
                .iter()
                .map(|p| Tensor::zeros(p.dtype(), p.shape()))
                .collect();
            for backend in [ExecBackend::TreeWalk, ExecBackend::VmUnopt, ExecBackend::Vm] {
                let err = run_with(&case.func, args.clone(), backend, Some(4096))
                    .err()
                    .unwrap_or_else(|| {
                        panic!("{:?} finished {} under tiny fuel", backend, case.func.name)
                    });
                assert!(
                    matches!(err, ExecError::OutOfFuel),
                    "{:?} on {}: expected OutOfFuel, got {err}",
                    backend,
                    case.func.name
                );
            }
        }
    }
}

/// 112 seeded random schedule pipelines over a matmul (alternating f32 /
/// f16), mirroring the transform mix of `schedule_semantics.rs`.
#[test]
fn random_scheduled_variants_bit_exact() {
    let n = 8i64;
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for case in 0..112u64 {
        let dt = if case % 2 == 0 {
            DataType::float32()
        } else {
            DataType::float16()
        };
        let reference = matmul_func("mm", n, n, n, dt);
        let len = rng.random_range(1usize..6);
        let ops: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..5)).collect();
        let mut sch = Schedule::new(reference);
        let block = sch.get_block("C").unwrap();
        for (step, op) in ops.iter().enumerate() {
            let loops = sch.get_loops(&block).unwrap();
            match op {
                0 => {
                    for l in &loops {
                        let e = sch.loop_extent(l).unwrap_or(1);
                        if e % 2 == 0 && e > 2 {
                            let _ = sch.split(l, &[2, -1]);
                            break;
                        }
                    }
                }
                1 if loops.len() >= 2 => {
                    let _ = sch.fuse(&loops[..2]);
                }
                2 if loops.len() >= 2 => {
                    let mut order = loops.clone();
                    order.swap(0, 1);
                    let _ = sch.reorder(&order[..2]);
                }
                3 if step == 0 => {
                    let _ = sch.parallel(&loops[0]);
                }
                _ => {
                    let _ = sch.unroll(loops.last().unwrap());
                }
            }
        }
        backends_agree(sch.func(), 0xace + case);
    }
}

/// GPU-style pipelines (split + reorder + fuse + thread binds +
/// cache_read + cache_write) across a grid of tile factors.
#[test]
fn gpu_scheduled_variants_bit_exact() {
    for (v, fi) in [2i64, 4, 8].into_iter().enumerate() {
        for (w, fj) in [2i64, 4, 8, 16].into_iter().enumerate() {
            let reference = matmul_func("mm", 16, 16, 16, DataType::float32());
            let mut sch = Schedule::new(reference);
            let block = sch.get_block("C").unwrap();
            let loops = sch.get_loops(&block).unwrap();
            let i = sch.split(&loops[0], &[fi, -1]).unwrap();
            let j = sch.split(&loops[1], &[fj, -1]).unwrap();
            sch.reorder(&[i[0].clone(), j[0].clone(), i[1].clone(), j[1].clone()])
                .unwrap();
            let bid = sch.fuse(&[i[0].clone(), j[0].clone()]).unwrap();
            sch.bind(&bid, ThreadTag::BlockIdxX).unwrap();
            sch.bind(&i[1], ThreadTag::ThreadIdxX).unwrap();
            let a = sch.func().param("A").unwrap().clone();
            sch.cache_read(&block, &a, tir::MemScope::Shared, Some(&j[1]))
                .unwrap();
            sch.cache_write(&block, tir::MemScope::Local, Some(&j[1]))
                .unwrap();
            backends_agree(sch.func(), 0xca0 + (v * 4 + w) as u64);
        }
    }
}
