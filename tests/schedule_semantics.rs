//! Cross-crate property tests: randomly composed schedules must preserve
//! program semantics exactly (interpreter-checked), and the iterator-map
//! detector must agree with brute-force evaluation.
//!
//! Originally written with `proptest`; rewritten as exhaustive/seeded
//! sweeps over the same parameter ranges so the workspace builds with no
//! external dependencies.

use std::collections::HashMap;

use tir::builder::matmul_func;
use tir::{DataType, Expr, ThreadTag, Var};
use tir_arith::iter_map::{detect_iter_map, eval_iter_sum};
use tir_exec::assert_same_semantics;
use tir_rand::{rngs::StdRng, RngExt, SeedableRng};
use tir_schedule::Schedule;

/// Factor pairs of n.
fn factor_pairs(n: i64) -> Vec<(i64, i64)> {
    (1..=n).filter(|d| n % d == 0).map(|d| (d, n / d)).collect()
}

/// Any split of any loop of a matmul by exact factors preserves semantics
/// and passes validation (exhaustive over loops x factor pairs).
#[test]
fn split_preserves_semantics() {
    let n = 12i64;
    let reference = matmul_func("mm", n, n, n, DataType::float32());
    for loop_idx in 0usize..3 {
        for (a, b) in factor_pairs(n) {
            let mut sch = Schedule::new(reference.clone());
            let block = sch.get_block("C").unwrap();
            let loops = sch.get_loops(&block).unwrap();
            sch.split(&loops[loop_idx], &[a, b]).unwrap();
            tir_analysis::validate(sch.func()).unwrap_or_else(|e| panic!("validation: {}", e[0]));
            assert_same_semantics(&reference, sch.func(), 1, 0.0);
        }
    }
}

/// Random pipelines of split / fuse / reorder / parallel / bind keep the
/// matmul bit-exact (seeded random op sequences).
#[test]
fn random_pipeline_preserves_semantics() {
    let n = 8i64;
    let reference = matmul_func("mm", n, n, n, DataType::float32());
    let mut rng = StdRng::seed_from_u64(0x5c4ed);
    for _case in 0..24 {
        let len = rng.random_range(1usize..6);
        let ops: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..5)).collect();
        let mut sch = Schedule::new(reference.clone());
        let block = sch.get_block("C").unwrap();
        for (step, op) in ops.iter().enumerate() {
            let loops = sch.get_loops(&block).unwrap();
            match op {
                0 => {
                    // Split the first splittable loop by 2.
                    for l in &loops {
                        let e = sch.loop_extent(l).unwrap_or(1);
                        if e % 2 == 0 && e > 2 {
                            let _ = sch.split(l, &[2, -1]);
                            break;
                        }
                    }
                }
                1 if loops.len() >= 2 => {
                    let _ = sch.fuse(&loops[..2]);
                }
                2 if loops.len() >= 2 => {
                    let mut order = loops.clone();
                    order.swap(0, 1);
                    let _ = sch.reorder(&order[..2]);
                }
                3 if step == 0 => {
                    // Parallel only as the first op (outermost loop is
                    // guaranteed spatial there).
                    let _ = sch.parallel(&loops[0]);
                }
                _ => {
                    let _ = sch.unroll(loops.last().unwrap());
                }
            }
        }
        assert_same_semantics(&reference, sch.func(), 1, 0.0);
    }
}

/// detect_iter_map's normalized sums evaluate identically to the raw
/// binding expressions on every point of the domain (exhaustive).
#[test]
fn iter_map_matches_bruteforce() {
    for e1 in 2i64..5 {
        for e2 in 2i64..5 {
            for cut in 1i64..5 {
                let i = Var::int("i");
                let j = Var::int("j");
                let fused = Expr::from(&i) * e2 + Expr::from(&j);
                let total = e1 * e2;
                // Use only divisor-aligned cuts.
                let c = (1..=total)
                    .filter(|d| total % d == 0 && e2 % d == 0)
                    .nth(cut as usize % 2)
                    .unwrap_or(1);
                let bindings = vec![fused.clone().floor_div(c), fused.floor_mod(c)];
                let dom = vec![(i.clone(), e1), (j.clone(), e2)];
                if let Ok(map) = detect_iter_map(&bindings, &dom) {
                    for iv in 0..e1 {
                        for jv in 0..e2 {
                            let vals: HashMap<Var, i64> =
                                [(i.clone(), iv), (j.clone(), jv)].into_iter().collect();
                            let f = iv * e2 + jv;
                            assert_eq!(eval_iter_sum(&map.sums[0], &vals), f / c);
                            assert_eq!(eval_iter_sum(&map.sums[1], &vals), f % c);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn gpu_style_schedule_pipeline_end_to_end() {
    let reference = matmul_func("mm", 16, 16, 16, DataType::float32());
    let mut sch = Schedule::new(reference.clone());
    let block = sch.get_block("C").unwrap();
    let loops = sch.get_loops(&block).unwrap();
    let i = sch.split(&loops[0], &[4, 4]).unwrap();
    let j = sch.split(&loops[1], &[4, 4]).unwrap();
    sch.reorder(&[i[0].clone(), j[0].clone(), i[1].clone(), j[1].clone()])
        .unwrap();
    let bid = sch.fuse(&[i[0].clone(), j[0].clone()]).unwrap();
    sch.bind(&bid, ThreadTag::BlockIdxX).unwrap();
    sch.bind(&i[1], ThreadTag::ThreadIdxX).unwrap();
    let a = sch.func().param("A").unwrap().clone();
    sch.cache_read(&block, &a, tir::MemScope::Shared, Some(&j[1]))
        .unwrap();
    sch.cache_write(&block, tir::MemScope::Local, Some(&j[1]))
        .unwrap();
    tir_analysis::assert_valid(sch.func());
    assert_same_semantics(&reference, sch.func(), 1, 0.0);
}
