//! Paper-figure fidelity tests: the concrete programs and transformations
//! shown in Figures 4, 5, 6 and 7 of the paper, reconstructed and checked
//! end to end.

use tir::parser::parse_func;
use tir::{Buffer, DataType, Expr, PrimFunc, Stmt};
use tir_schedule::Schedule;

/// Figure 4: `C = exp(A + 1)` as two blocks, written in the text dialect,
/// parsed, validated, and executed.
#[test]
fn figure4_fuse_add_exp() {
    let src = r#"@T.prim_func
def fuse_add_exp(A: T.Buffer((64, 64), "float32"), C: T.Buffer((64, 64), "float32")):
    B = T.alloc_buffer((64, 64), "float32", scope="global")
    for i, j in T.grid(64, 64):
        with T.block("block_B"):
            vi = T.axis.spatial(64, i)
            vj = T.axis.spatial(64, j)
            T.reads(A[vi, vj])
            T.writes(B[vi, vj])
            B[vi, vj] = A[vi, vj] + 1.0
    for i in range(64):
        with T.block("block_C"):
            vi = T.axis.spatial(64, i)
            T.reads(B[vi, 0:64])
            T.writes(C[vi, 0:64])
            for j in range(64):
                C[vi, j] = T.exp(B[vi, j])
"#;
    let func = parse_func(src).expect("the Fig. 4 program parses");
    tir_analysis::assert_valid(&func);
    // Execute and check against exp(A + 1).
    let a = tir_exec::Tensor::random(DataType::float32(), &[64, 64], 4);
    let c = tir_exec::Tensor::zeros(DataType::float32(), &[64, 64]);
    let out = tir_exec::Interpreter::run(&func, vec![a.clone(), c]).expect("runs");
    for i in 0..64 {
        for j in 0..64 {
            let expect = ((a.get(&[i, j]) as f32 + 1.0).exp()) as f64;
            let got = out[1].get(&[i, j]);
            assert!(
                (got - expect).abs() < 1e-4,
                "C[{i},{j}] = {got}, want {expect}"
            );
        }
    }
}

/// Figure 5: the 16x16x16-blocks-of-4x4x4 matmul block with its signature.
/// Builds the program, checks the printed signature matches the figure's
/// reads/writes, and validates the iterator domain.
#[test]
fn figure5_block_signature() {
    let src = r#"@T.prim_func
def blocked_matmul(A: T.Buffer((64, 64), "float32"), B: T.Buffer((64, 64), "float32"), C: T.Buffer((64, 64), "float32")):
    for yo, xo, ko in T.grid(16, 16, 16):
        with T.block("mm4x4"):
            vy = T.axis.spatial(16, yo)
            vx = T.axis.spatial(16, xo)
            vk = T.axis.reduce(16, ko)
            T.reads(A[vy * 4:vy * 4 + 4, vk * 4:vk * 4 + 4], B[vk * 4:vk * 4 + 4, vx * 4:vx * 4 + 4])
            T.writes(C[vy * 4:vy * 4 + 4, vx * 4:vx * 4 + 4])
            with T.init():
                for y, x in T.grid(4, 4):
                    C[vy * 4 + y, vx * 4 + x] = 0.0
            for y, x, k in T.grid(4, 4, 4):
                C[vy * 4 + y, vx * 4 + x] = C[vy * 4 + y, vx * 4 + x] + A[vy * 4 + y, vk * 4 + k] * B[vk * 4 + k, vx * 4 + x]
"#;
    let func = parse_func(src).expect("the Fig. 5 program parses");
    tir_analysis::assert_valid(&func);
    // Bit-exact against the plain matmul.
    let reference = tir::builder::matmul_func("mm", 64, 64, 64, DataType::float32());
    tir_exec::assert_same_semantics(&reference, &func, 1, 0.0);
    // The printed signature shows the figure's 4-wide tile regions.
    let text = func.to_string();
    assert!(text.contains("vk = T.axis.reduce(16, ko)"), "{text}");
    assert!(
        text.contains("T.writes(C[vy * 4:vy * 4 + 4, vx * 4:vx * 4 + 4])"),
        "{text}"
    );
}

/// Figure 6: tile block_D's loops 8x8 and compute block_C at the tile —
/// the loop transformation + compute-at flow shown in the figure.
#[test]
fn figure6_loop_transformations_and_compute_at() {
    // C[i, j] = dot(A[i, :], B[:, j]) (as a reduction block), then
    // D[i, j] = max(C[i, j], 0).
    let a = Buffer::new("A", DataType::float32(), vec![64, 64]);
    let b = Buffer::new("B", DataType::float32(), vec![64, 64]);
    let c = Buffer::new("C", DataType::float32(), vec![64, 64]);
    let d = Buffer::new("D", DataType::float32(), vec![64, 64]);
    let mm = tir::builder::reduce_compute("block_C", &c, &[64], Expr::f32(0.0), |sp, rd| {
        a.load(vec![Expr::from(&sp[0]), Expr::from(&rd[0])])
            * b.load(vec![Expr::from(&rd[0]), Expr::from(&sp[1])])
    });
    let relu = tir::builder::compute("block_D", &d, |iv| {
        c.load(iv.iter().map(Expr::from).collect())
            .max(Expr::f32(0.0))
    });
    let mut func = PrimFunc::new("fig6", vec![a, b, d], Stmt::seq(vec![mm, relu]));
    func.root_block_mut().unwrap().alloc_buffers.push(c);
    let reference = func.clone();

    let mut sch = Schedule::new(func);
    let block_d = sch.get_block("block_D").unwrap();
    let loops = sch.get_loops(&block_d).unwrap();
    // Tile D 8x8 (the figure's i0/i1, j0/j1).
    let i = sch.split(&loops[0], &[8, 8]).unwrap();
    let j = sch.split(&loops[1], &[8, 8]).unwrap();
    sch.reorder(&[i[0].clone(), j[0].clone(), i[1].clone(), j[1].clone()])
        .unwrap();
    // Compute block_C at j0, as in the figure's final program.
    let block_c = sch.get_block("block_C").unwrap();
    sch.compute_at(&block_c, &j[0]).unwrap();
    // block_C now sits under i0/j0 with 8x8 inner loops.
    let c_loops = sch.get_loops(&block_c).unwrap();
    assert!(c_loops.len() >= 4, "nested under the tile loops");
    tir_analysis::assert_valid(sch.func());
    tir_exec::assert_same_semantics(&reference, sch.func(), 1, 0.0);
}

/// Figure 7: blockization isolates the inner k1 loop of a split reduction
/// into a new block with a reduce iterator of extent 16.
#[test]
fn figure7_blockization() {
    let func = tir::builder::matmul_func("mm", 64, 64, 64, DataType::float32());
    let reference = func.clone();
    let mut sch = Schedule::new(func);
    let block = sch.get_block("C").unwrap();
    let loops = sch.get_loops(&block).unwrap();
    // for i, j, k0 in grid(64, 64, 16): for k1 in range(4): ...
    let k = sch.split(&loops[2], &[16, 4]).unwrap();
    let outer = sch.blockize(&k[1]).unwrap();
    // The figure's "blockized (vi0, vj0, vk0 = i, j, k0)": outer block has
    // spatial 64, 64 and reduce 16 iterators.
    let br = tir::visit::find_block(&sch.func().body, outer.name()).unwrap();
    let extents: Vec<i64> = br.block.iter_vars.iter().map(|iv| iv.extent).collect();
    assert_eq!(extents, vec![64, 64, 16]);
    assert_eq!(br.block.iter_vars[2].kind, tir::IterKind::Reduce);
    tir_analysis::assert_valid(sch.func());
    tir_exec::assert_same_semantics(&reference, sch.func(), 1, 0.0);
}
