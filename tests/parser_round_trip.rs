//! Print → parse round-trip tests over *transformed* programs: the text
//! dialect must faithfully serialize everything the compiler produces —
//! split/fused/reordered nests, thread bindings, predicates, reduction
//! inits, block annotations, staging buffers and tensorized blocks.

use tir::parser::parse_func;
use tir::structural::func_structural_eq;
use tir::{DataType, PrimFunc, ThreadTag};
use tir_schedule::Schedule;
use tir_tensorize::{auto_tensorize, builtin_registry};

fn round_trip(f: &PrimFunc) {
    let text = f.to_string();
    let parsed = parse_func(&text).unwrap_or_else(|e| panic!("{e}\n--- source ---\n{text}"));
    assert!(
        func_structural_eq(f, &parsed),
        "round trip mismatch:\n--- original ---\n{f}\n--- reparsed ---\n{parsed}"
    );
    // And the reparsed program must execute identically.
    tir_exec::assert_same_semantics(f, &parsed, 1, 0.0);
}

#[test]
fn workload_suite_round_trips() {
    let dt = DataType::float32();
    for f in [
        tir_workloads::gmm(8, 8, 8, dt, dt),
        tir_workloads::c2d(1, 8, 8, 4, 4, 3, 3, 1, dt),
        tir_workloads::dep(1, 8, 8, 4, 3, 3, 1, dt),
        tir_workloads::t2d(1, 4, 4, 2, 2, 3, 3, 2, dt),
        tir_workloads::gmm(8, 8, 8, DataType::int8(), DataType::int32()),
    ] {
        round_trip(&f);
    }
}

#[test]
fn scheduled_program_round_trips() {
    let func = tir::builder::matmul_func("mm", 16, 16, 16, DataType::float32());
    let mut sch = Schedule::new(func);
    let block = sch.get_block("C").unwrap();
    let loops = sch.get_loops(&block).unwrap();
    let i = sch.split(&loops[0], &[4, 4]).unwrap();
    let j = sch.split(&loops[1], &[4, 4]).unwrap();
    sch.reorder(&[i[0].clone(), j[0].clone(), i[1].clone(), j[1].clone()])
        .unwrap();
    let bid = sch.fuse(&[i[0].clone(), j[0].clone()]).unwrap();
    sch.bind(&bid, ThreadTag::BlockIdxX).unwrap();
    sch.bind(&i[1], ThreadTag::ThreadIdxX).unwrap();
    let a = sch.func().param("A").unwrap().clone();
    sch.cache_read(&block, &a, tir::MemScope::Shared, Some(&j[1]))
        .unwrap();
    sch.decompose_reduction(&block, &loops[2]).unwrap();
    round_trip(sch.func());
}

#[test]
fn partial_tile_predicate_round_trips() {
    // Non-divisible split: the T.where predicate must survive.
    let func = tir::builder::matmul_func("mm", 10, 10, 10, DataType::float32());
    let mut sch = Schedule::new(func);
    let block = sch.get_block("C").unwrap();
    let loops = sch.get_loops(&block).unwrap();
    sch.split(&loops[0], &[4, 3]).unwrap();
    let text = sch.func().to_string();
    assert!(text.contains("T.where"), "{text}");
    round_trip(sch.func());
}

#[test]
fn tensorized_program_round_trips() {
    // Tensorized programs exercise annotations, init blocks, padding
    // selects, casts and staging buffers all at once.
    let reg = builtin_registry();
    let intrin = reg.get("dot_4x4x4_f32").unwrap();
    let func = tir::builder::matmul_func("mm", 12, 12, 12, DataType::float32());
    let t = auto_tensorize(&func, "C", intrin).expect("tensorize");
    let text = t.schedule.func().to_string();
    assert!(text.contains("tir.tensor_intrin"), "{text}");
    round_trip(t.schedule.func());
}

#[test]
fn int8_tensorized_round_trips() {
    let reg = builtin_registry();
    let intrin = reg.get("sdot_4x4x4_i8").unwrap();
    let func = tir_workloads::gmm(8, 8, 8, DataType::int8(), DataType::int32());
    let t = auto_tensorize(&func, "C", intrin).expect("tensorize");
    round_trip(t.schedule.func());
}
