//! Differential fuzzing of the static race/bounds analyzer against the VM
//! sanitizer oracle.
//!
//! The static side (`tir_analysis::analyze`: structural validation, bounds
//! intervals, affine race proof, memory-scope rules) claims a program is
//! legal or not without running it. The dynamic side
//! (`tir_exec::run_sanitized`: per-access shadow-memory race tracking and
//! flat bounds checks on the bytecode VM) observes one concrete execution.
//! The contract this suite enforces over a seeded corpus:
//!
//! * **Zero false negatives** — any program the sanitizer convicts
//!   (`DataRace` / `OutOfBounds`) must already have been rejected
//!   statically. The analyzer may only ever err on the side of rejecting.
//! * **False positives are counted** — programs rejected statically but
//!   dynamically clean are reported; on this corpus there are none, and
//!   that precision is regression-guarded.
//!
//! The corpus: seeded random legal schedule pipelines over a matmul
//! (mirroring `vm_differential.rs`), plus deliberately-illegal mutants
//! (reduction loops flipped to `Parallel` / bound to `threadIdx`, store
//! indices shifted out of range) built with the schedule auto-verify gate
//! off or by raw IR surgery, so the analyzer — not the gate — is what's
//! under test.
//!
//! The last test closes the loop with the auto-tuner: a sketch family
//! whose every candidate races is quarantined through
//! `MeasureError::CompileReject` without the simulator ever measuring it.

use tir::builder::matmul_func;
use tir::{Buffer, DataType, Expr, ForKind, PrimFunc, Stmt, ThreadTag, Var};
use tir_autoschedule::{
    tune_with, Decision, DecisionKind, Measurer, SketchRule, TuneOptions, VerifyingMeasurer,
};
use tir_exec::machine::Machine;
use tir_exec::{run_sanitized, ExecError, Tensor};
use tir_rand::{rngs::StdRng, RngExt, SeedableRng};
use tir_schedule::Schedule;

/// Static verdict: the analyzer's diagnostics (empty = legal).
fn static_diagnostics(func: &PrimFunc) -> Vec<String> {
    tir_analysis::analyze(func)
        .iter()
        .map(|e| e.to_string())
        .collect()
}

/// Dynamic verdict: one sanitized execution on seeded random inputs.
/// `Ok(())` means the run completed with no race and no out-of-bounds
/// access; `Err` carries the first violation.
fn sanitize(func: &PrimFunc, seed: u64) -> Result<(), ExecError> {
    let n = func.params.len();
    let args: Vec<Tensor> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i + 1 >= n {
                Tensor::zeros(p.dtype(), p.shape())
            } else {
                Tensor::random(p.dtype(), p.shape(), seed.wrapping_add(i as u64))
            }
        })
        .collect();
    run_sanitized(func, args, None).map(|_| ())
}

/// Whether a dynamic failure is a sanitizer conviction (as opposed to an
/// unrelated execution error, which would be a corpus bug).
fn is_conviction(e: &ExecError) -> bool {
    matches!(e, ExecError::DataRace(_) | ExecError::OutOfBounds(_))
}

/// Random legal pipelines (the `vm_differential.rs` transform mix) with
/// the auto-verify gate off, so the analyzer is exercised rather than
/// presupposed: the static and dynamic verdicts must both be "legal".
#[test]
fn legal_corpus_has_no_false_positives() {
    let n = 8i64;
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let mut false_positives: Vec<(u64, String)> = Vec::new();
    for case in 0..96u64 {
        let dt = if case % 2 == 0 {
            DataType::float32()
        } else {
            DataType::float16()
        };
        let mut sch = Schedule::new(matmul_func("mm", n, n, n, dt));
        sch.set_auto_verify(false);
        let block = sch.get_block("C").unwrap();
        let len = rng.random_range(1usize..6);
        let ops: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..5)).collect();
        for (step, op) in ops.iter().enumerate() {
            let loops = sch.get_loops(&block).unwrap();
            match op {
                0 => {
                    for l in &loops {
                        let e = sch.loop_extent(l).unwrap_or(1);
                        if e % 2 == 0 && e > 2 {
                            let _ = sch.split(l, &[2, -1]);
                            break;
                        }
                    }
                }
                1 if loops.len() >= 2 => {
                    let _ = sch.fuse(&loops[..2]);
                }
                2 if loops.len() >= 2 => {
                    let mut order = loops.clone();
                    order.swap(0, 1);
                    let _ = sch.reorder(&order[..2]);
                }
                3 if step == 0 => {
                    let _ = sch.parallel(&loops[0]);
                }
                _ => {
                    let _ = sch.unroll(loops.last().unwrap());
                }
            }
        }
        let diags = static_diagnostics(sch.func());
        let dynamic = sanitize(sch.func(), 0xace + case);
        if let Err(e) = &dynamic {
            // Dynamic conviction of a legal pipeline would be a sanitizer
            // bug; any dynamic failure here also demands a static reject
            // (zero false negatives).
            assert!(is_conviction(e), "case {case}: unexpected exec error {e}");
            assert!(
                !diags.is_empty(),
                "case {case}: FALSE NEGATIVE — sanitizer found {e} but analyzer was silent"
            );
        }
        if !diags.is_empty() && dynamic.is_ok() {
            false_positives.push((case, diags.join("; ")));
        }
    }
    for (case, why) in &false_positives {
        eprintln!("false positive on legal case {case}: {why}");
    }
    assert_eq!(
        false_positives.len(),
        0,
        "analyzer precision regressed: {} false positives on the legal corpus",
        false_positives.len()
    );
}

/// Rewrites the first `Store` reachable in `s`, shifting its first index
/// by +1 — the classic off-by-one that walks off the end of the buffer.
fn shift_first_store_index(s: &mut Stmt) -> bool {
    match s {
        Stmt::Store { indices, .. } => {
            if let Some(first) = indices.first_mut() {
                *first = first.clone() + Expr::int(1);
                return true;
            }
            false
        }
        Stmt::For(f) => shift_first_store_index(&mut f.body),
        Stmt::Seq(v) => v.iter_mut().any(shift_first_store_index),
        Stmt::IfThenElse {
            then_branch,
            else_branch,
            ..
        } => {
            shift_first_store_index(then_branch)
                || else_branch
                    .as_mut()
                    .is_some_and(|e| shift_first_store_index(e))
        }
        Stmt::BlockRealize(br) => shift_first_store_index(&mut br.block.body),
        _ => false,
    }
}

/// Deliberately-illegal mutants: every one the sanitizer convicts must be
/// statically rejected (the zero-false-negative direction), and every
/// mutant in these families must in fact be rejected statically.
#[test]
fn illegal_mutants_are_all_caught_statically() {
    let mut false_negatives: Vec<String> = Vec::new();
    let mut static_only: usize = 0;
    let mut checked = 0usize;
    for (m, n) in [4i64, 8, 16].into_iter().enumerate() {
        for family in 0..3u8 {
            let mut sch = Schedule::new(matmul_func("mm", n, n, n, DataType::float32()));
            sch.set_auto_verify(false);
            let block = sch.get_block("C").unwrap();
            let loops = sch.get_loops(&block).unwrap();
            let label;
            match family {
                0 => {
                    // Parallel reduction: every iteration of the k loop
                    // read-modify-writes the same C[i, j] cell.
                    sch.parallel(&loops[2]).unwrap();
                    label = format!("parallel-reduction n={n}");
                }
                1 => {
                    // Same race, spelled as a GPU thread binding.
                    sch.bind(&loops[2], ThreadTag::ThreadIdxX).unwrap();
                    label = format!("threadIdx-reduction n={n}");
                }
                _ => {
                    // Off-by-one: C[i+1, j] walks past the last row.
                    let mut func = sch.into_func();
                    assert!(shift_first_store_index(&mut func.body));
                    sch = Schedule::new(func);
                    sch.set_auto_verify(false);
                    label = format!("store-index-shift n={n}");
                }
            }
            let func = sch.func();
            let diags = static_diagnostics(func);
            let dynamic = sanitize(func, 0xbad + m as u64);
            checked += 1;
            match &dynamic {
                Err(e) if is_conviction(e) => {
                    if diags.is_empty() {
                        false_negatives.push(format!("{label}: sanitizer found {e}"));
                    }
                }
                Err(e) => panic!("{label}: unexpected exec error {e}"),
                Ok(()) => {
                    // Statically rejected but this particular execution
                    // didn't trip (e.g. an overlap the flat bounds check
                    // can't see). Counted, not failed: the analyzer is
                    // allowed to be stricter than one concrete run.
                    static_only += 1;
                }
            }
            assert!(
                !diags.is_empty(),
                "{label}: the analyzer must reject this mutant (sanitizer said {dynamic:?})"
            );
        }
    }
    assert!(
        false_negatives.is_empty(),
        "static analyzer missed dynamically-convicted programs:\n{}",
        false_negatives.join("\n")
    );
    eprintln!(
        "illegal mutants: {checked} checked, {static_only} rejected statically \
         without a dynamic conviction on the sampled inputs"
    );
}

/// A sketch family whose every candidate races: all iterations of a
/// parallel loop accumulate into the same cell. The decision only varies
/// a loop extent, so the whole family is illegal.
struct RacySketch;

impl SketchRule for RacySketch {
    fn name(&self) -> &str {
        "racy-family"
    }

    fn space(&self) -> Vec<DecisionKind> {
        vec![DecisionKind::Choice {
            options: (3..19).collect(),
        }]
    }

    fn apply(&self, decisions: &[Decision]) -> Result<PrimFunc, tir_schedule::ScheduleError> {
        let extent = decisions
            .first()
            .and_then(|d| d.first())
            .copied()
            .unwrap_or(8);
        let o = Buffer::new("O", DataType::float32(), vec![1]);
        let i = Var::int("i");
        let store = Stmt::store(
            o.clone(),
            vec![Expr::int(0)],
            o.load(vec![Expr::int(0)]) + Expr::from(&i),
        );
        let body = Stmt::For(Box::new(tir::For::with_kind(
            i,
            Expr::int(extent),
            ForKind::Parallel,
            store,
        )));
        Ok(PrimFunc::new("racy", vec![o], body))
    }
}

/// A backend that records whether the farm was ever reached.
struct CountingSim(std::sync::atomic::AtomicUsize);

impl Measurer for CountingSim {
    fn measure(
        &self,
        _f: &PrimFunc,
        _m: &Machine,
        _c: &tir_autoschedule::MeasureCtx,
    ) -> Result<f64, tir_autoschedule::MeasureError> {
        self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(1.0)
    }
}

/// The tuner integration the issue demands: an illegal sketch family is
/// rejected via `CompileReject` and quarantined — the simulator never
/// measures a single one of its candidates.
#[test]
fn tune_quarantines_illegal_family_without_simulating() {
    let gate = VerifyingMeasurer::new(CountingSim(std::sync::atomic::AtomicUsize::new(0)));
    let opts = TuneOptions {
        trials: 8,
        population: 8,
        measure_per_generation: 4,
        max_generations: Some(6),
        num_threads: 1,
        ..TuneOptions::default()
    };
    let result = tune_with(&RacySketch, &Machine::sim_gpu(), &opts, &gate);
    assert!(result.best.is_none(), "no racy candidate may win");
    assert_eq!(result.trials_measured, 0, "nothing legal to measure");
    assert!(
        result.quarantined >= 1,
        "compile rejects must quarantine the family: {result:?}"
    );
    assert!(result.failed_measurements >= 1);
    assert_eq!(
        gate.inner().0.load(std::sync::atomic::Ordering::SeqCst),
        0,
        "the simulator must never see a statically-illegal candidate"
    );
}
