//! # tensorir — facade crate
//!
//! Re-exports the full TensorIR reproduction: the IR ([`tir`]), arithmetic
//! analysis ([`tir_arith`]), validation ([`tir_analysis`]), scheduling
//! ([`tir_schedule`]), execution substrates ([`tir_exec`]), automatic
//! tensorization ([`tir_tensorize`]), the auto-scheduler
//! ([`tir_autoschedule`]), the operator workload suite ([`tir_workloads`])
//! and the end-to-end graph layer ([`tir_graph`]).
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use tir;
pub use tir_analysis;
pub use tir_arith;
pub use tir_autoschedule;
pub use tir_exec;
pub use tir_graph;
pub use tir_schedule;
pub use tir_tensorize;
pub use tir_workloads;
