//! `tune-profile` — runs one auto-scheduler tuning job with the
//! observability layer enabled and writes the merged trace to a JSON
//! report (`BENCH_trace.json` by default).
//!
//! The run is pinned to one worker thread so the serial per-generation
//! measurement sums recorded in the `search.measure` spans coincide with
//! the `tuning_cost_s` makespan accounting — the report's per-phase
//! breakdown then reconciles with the tuner's own cost figure.
//!
//! After tuning, the best program is compiled to the bytecode VM —
//! through the optimizer pipeline by default, or unoptimized with
//! `--no-opt` (`TuneOptions::exec_backend`), the escape hatch for
//! bisecting optimizer regressions — and executed under
//! [`InstrMixProfile`], folding the instruction mix into the same
//! report as `vm.op.*` counters.
//!
//! With `--check` the emitted report is validated in-process (the CI
//! gate): it must be well-formed JSON, carry every expected phase and
//! counter, and its `search.*` phase times must sum to `tuning_cost_s`
//! within 5%. Any violation exits with code 1.

use std::process::ExitCode;
use std::sync::Arc;

use tir::{DataType, PrimFunc};
use tir_autoschedule::{tune_workload, Strategy, TuneOptions, TuneResult};
use tir_exec::{compile, compile_optimized, ExecBackend, InstrMixProfile, Machine, Tensor};
use tir_tensorize::builtin_registry;
use tir_trace::{is_well_formed_json, Collector, TraceReport};
use tir_workloads::ops;

/// Fuel cap for the post-tuning VM profile run. Large workloads (c2d)
/// run out of fuel before completing; the partial instruction mix is
/// still representative and the report records whether the run finished.
const PROFILE_FUEL: u64 = 20_000_000;

struct Config {
    workload: String,
    machine: String,
    trials: usize,
    out: String,
    check: bool,
    no_opt: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tune-profile [--workload gmm|c2d] [--machine gpu|arm] \
         [--trials N] [--out PATH] [--check] [--no-opt]"
    );
    std::process::exit(2)
}

fn parse_args() -> Config {
    let mut cfg = Config {
        workload: "gmm".to_string(),
        machine: "gpu".to_string(),
        trials: 32,
        out: "BENCH_trace.json".to_string(),
        check: false,
        no_opt: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workload" => cfg.workload = args.next().unwrap_or_else(|| usage()),
            "--machine" => cfg.machine = args.next().unwrap_or_else(|| usage()),
            "--trials" => {
                cfg.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => cfg.out = args.next().unwrap_or_else(|| usage()),
            "--check" => cfg.check = true,
            "--no-opt" => cfg.no_opt = true,
            _ => usage(),
        }
    }
    cfg
}

/// The tuned workload: dtypes follow the bench suite (low-precision MMA
/// dtypes on the GPU, quantized dot-product dtypes on ARM).
fn build_workload(name: &str, machine: &str) -> PrimFunc {
    let (dt, acc) = match machine {
        "gpu" => (DataType::float16(), DataType::float32()),
        "arm" => (DataType::int8(), DataType::int32()),
        _ => usage(),
    };
    match name {
        "gmm" => ops::gmm(128, 128, 128, dt, acc),
        "c2d" => ops::c2d(8, 58, 58, 128, 128, 3, 3, 1, dt),
        _ => usage(),
    }
}

fn build_machine(name: &str) -> Machine {
    match name {
        "gpu" => Machine::sim_gpu(),
        "arm" => Machine::sim_arm(),
        _ => usage(),
    }
}

/// Runs the best program through the bytecode VM under an
/// instruction-mix profiler, folding the mix into the collector as
/// `vm.op.*` counters. The backend picks the compilation pipeline:
/// [`ExecBackend::Vm`] profiles the optimized bytecode (what production
/// dispatches), anything else the plain compiler output. Returns whether
/// the profile run completed within its fuel budget (`None` when the
/// program does not compile to bytecode).
fn profile_best(best: &PrimFunc, backend: ExecBackend, collector: &Collector) -> Option<bool> {
    let prog = match backend {
        ExecBackend::Vm => compile_optimized(best).ok()?,
        _ => compile(best).ok()?,
    };
    let args: Vec<Tensor> = best
        .params
        .iter()
        .map(|b| Tensor::zeros(b.dtype(), b.shape()))
        .collect();
    let mut prof = InstrMixProfile::new();
    let outcome = prog.run_profiled(args, PROFILE_FUEL, &mut prof);
    for (mnemonic, count) in prof.mix() {
        if count > 0 {
            collector.count(&format!("vm.op.{mnemonic}"), count);
        }
    }
    collector.count("vm.dispatches", prof.total());
    Some(outcome.is_ok())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// The full report: run metadata plus the merged trace, all hand-rolled
/// (the container has no network access, so no serde).
fn render_report(
    cfg: &Config,
    result: &TuneResult,
    report: &TraceReport,
    vm_complete: Option<bool>,
) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"workload\": \"{}\",\n",
        json_escape(&cfg.workload)
    ));
    out.push_str(&format!(
        "  \"machine\": \"{}\",\n",
        json_escape(&cfg.machine)
    ));
    out.push_str(&format!("  \"trials\": {},\n", cfg.trials));
    out.push_str(&format!(
        "  \"trials_measured\": {},\n",
        result.trials_measured
    ));
    out.push_str(&format!(
        "  \"best_time_s\": {},\n",
        json_f64(result.best_time)
    ));
    out.push_str(&format!(
        "  \"tuning_cost_s\": {},\n",
        json_f64(result.tuning_cost_s)
    ));
    out.push_str(&format!(
        "  \"phase_sum_s\": {},\n",
        json_f64(report.phase_sim_s("search."))
    ));
    out.push_str(&format!(
        "  \"vm_profile_complete\": {},\n",
        match vm_complete {
            Some(true) => "true",
            Some(false) => "false",
            None => "null",
        }
    ));
    // Indent the embedded trace one level so the file stays readable.
    let trace = report.to_json();
    out.push_str("  \"trace\": ");
    for (i, line) in trace.lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str("\n}\n");
    out
}

/// The CI gate: structural and accounting invariants of the report.
fn check_report(text: &str, result: &TuneResult, report: &TraceReport) -> Vec<String> {
    let mut errors = Vec::new();
    if !is_well_formed_json(text) {
        errors.push("report is not well-formed JSON".to_string());
    }
    for key in [
        "\"workload\"",
        "\"machine\"",
        "\"trials\"",
        "\"best_time_s\"",
        "\"tuning_cost_s\"",
        "\"phase_sum_s\"",
        "\"trace\"",
        "\"phases\"",
        "\"counters\"",
        "\"spans\"",
        "\"streams\"",
    ] {
        if !text.contains(key) {
            errors.push(format!("missing required key {key}"));
        }
    }
    for phase in [
        "search.sketch_instantiate",
        "search.evolve",
        "search.feature_extract",
        "search.model_rank",
        "search.measure",
        "search.refit",
    ] {
        if report.phase(phase).is_none() {
            errors.push(format!("missing phase {phase}"));
        }
    }
    if result.best.is_none() {
        errors.push("tuning found no valid candidate".to_string());
    }
    // At one worker thread the serial measurement sums must reconcile
    // with the makespan accounting: the acceptance bound is 5%, and the
    // phase sum may never exceed the accounted cost by more than float
    // accumulation noise.
    let phase_sum = report.phase_sim_s("search.");
    let cost = result.tuning_cost_s;
    if cost > 0.0 {
        let rel = (phase_sum - cost).abs() / cost;
        if rel > 0.05 {
            errors.push(format!(
                "search.* phase sum {phase_sum} deviates from tuning_cost_s {cost} by {:.2}%",
                rel * 100.0
            ));
        }
        if phase_sum > cost * (1.0 + 1e-9) {
            errors.push(format!(
                "search.* phase sum {phase_sum} exceeds tuning_cost_s {cost}"
            ));
        }
    } else {
        errors.push("tuning_cost_s is not positive".to_string());
    }
    errors
}

fn main() -> ExitCode {
    let cfg = parse_args();
    let func = build_workload(&cfg.workload, &cfg.machine);
    let machine = build_machine(&cfg.machine);
    let registry = builtin_registry();

    let collector = Arc::new(Collector::new());
    let opts = TuneOptions {
        trials: cfg.trials,
        // One worker: serial measurement sums == makespans, so the
        // trace's per-phase breakdown reconciles with tuning_cost_s.
        num_threads: 1,
        exec_backend: if cfg.no_opt {
            ExecBackend::VmUnopt
        } else {
            ExecBackend::Vm
        },
        trace: Some(collector.clone()),
        ..TuneOptions::default()
    };

    let t0 = std::time::Instant::now();
    let result = tune_workload(&func, &machine, &registry, Strategy::TensorIr, &opts);
    let wall_s = t0.elapsed().as_secs_f64();

    let vm_complete = result
        .best
        .as_ref()
        .and_then(|best| profile_best(best, opts.exec_backend, &collector));

    let report = collector.report();
    let text = render_report(&cfg, &result, &report, vm_complete);
    if let Err(e) = std::fs::write(&cfg.out, &text) {
        eprintln!("tune-profile: cannot write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }

    println!(
        "tune-profile: {} on {} ({} trials, {} measured) in {wall_s:.1}s wall",
        cfg.workload, cfg.machine, cfg.trials, result.trials_measured
    );
    println!(
        "  best_time_s {}  tuning_cost_s {}  search.* phase sum {}",
        json_f64(result.best_time),
        json_f64(result.tuning_cost_s),
        json_f64(report.phase_sim_s("search."))
    );
    for p in &report.phases {
        if p.name.starts_with("search.") || p.name.starts_with("measure.") {
            println!("  {:<28} {:>12.6}s  items {}", p.name, p.sim_s, p.items);
        }
    }
    println!("  report written to {}", cfg.out);

    if cfg.check {
        let errors = check_report(&text, &result, &report);
        if !errors.is_empty() {
            for e in &errors {
                eprintln!("tune-profile: CHECK FAILED: {e}");
            }
            return ExitCode::FAILURE;
        }
        println!("  check passed: JSON well-formed, phases reconcile with tuning_cost_s");
    }
    ExitCode::SUCCESS
}
