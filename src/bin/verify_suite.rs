//! `verify-suite` — CI lint running the full static analyzer
//! ([`tir_analysis::analyze`]) over every program we ship:
//!
//! 1. every `tir-workloads::bench_suite` entry (float16 + int8);
//! 2. seeded legal scheduled variants (the transform mix of
//!    `tests/vm_differential.rs`: split/fuse/reorder/parallel/unroll plus
//!    GPU bind + cache_read + cache_write pipelines);
//! 3. sampled auto-scheduler sketch candidates for representative
//!    workloads on the simulated GPU and ARM machines (candidates the old
//!    §3.3 validator already rejects are skipped — the analyzer may
//!    legitimately reject more, which is reported, not fatal).
//!
//! Any diagnostic on classes 1–2 is a regression and fails the process
//! (exit code 1). Per-candidate analysis time is reported for
//! EXPERIMENTS.md.

use std::time::Instant;

use tir::builder::matmul_func;
use tir::{DataType, MemScope, PrimFunc, ThreadTag};
use tir_analysis::analyze;
use tir_autoschedule::{build_sketches, Strategy};
use tir_exec::Machine;
use tir_rand::{rngs::StdRng, RngExt, SeedableRng};
use tir_schedule::Schedule;
use tir_tensorize::builtin_registry;
use tir_workloads::bench_suite;

struct Stats {
    analyzed: usize,
    failures: Vec<(String, String)>,
    total_time_s: f64,
    /// Per-family (programs, seconds) — the EXPERIMENTS.md breakdown.
    by_family: std::collections::BTreeMap<String, (usize, f64)>,
}

impl Stats {
    fn new() -> Self {
        Stats {
            analyzed: 0,
            failures: Vec::new(),
            total_time_s: 0.0,
            by_family: std::collections::BTreeMap::new(),
        }
    }

    fn bucket(&mut self, family: &str, dt: f64) {
        let e = self.by_family.entry(family.to_string()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += dt;
    }

    /// Analyzes one program expected to be legal; records any diagnostic
    /// as a failure.
    fn expect_clean(&mut self, family: &str, label: &str, func: &PrimFunc) {
        let t0 = Instant::now();
        let errors = analyze(func);
        let dt = t0.elapsed().as_secs_f64();
        self.total_time_s += dt;
        self.analyzed += 1;
        self.bucket(family, dt);
        for e in errors {
            self.failures.push((label.to_string(), e.to_string()));
        }
    }
}

/// Class 2a: the seeded random schedule pipelines of
/// `tests/vm_differential.rs`.
fn scheduled_variants(stats: &mut Stats) {
    let n = 8i64;
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for case in 0..112u64 {
        let dt = if case % 2 == 0 {
            DataType::float32()
        } else {
            DataType::float16()
        };
        let mut sch = Schedule::new(matmul_func("mm", n, n, n, dt));
        let block = sch.get_block("C").expect("block C");
        let len = rng.random_range(1usize..6);
        let ops: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..5)).collect();
        for (step, op) in ops.iter().enumerate() {
            let loops = sch.get_loops(&block).expect("loops");
            match op {
                0 => {
                    for l in &loops {
                        let e = sch.loop_extent(l).unwrap_or(1);
                        if e % 2 == 0 && e > 2 {
                            let _ = sch.split(l, &[2, -1]);
                            break;
                        }
                    }
                }
                1 if loops.len() >= 2 => {
                    let _ = sch.fuse(&loops[..2]);
                }
                2 if loops.len() >= 2 => {
                    let mut order = loops.clone();
                    order.swap(0, 1);
                    let _ = sch.reorder(&order[..2]);
                }
                3 if step == 0 => {
                    let _ = sch.parallel(&loops[0]);
                }
                _ => {
                    let _ = sch.unroll(loops.last().expect("nonempty"));
                }
            }
        }
        stats.expect_clean("sched", &format!("variant[{case}]"), sch.func());
    }
}

/// Class 2b: GPU bind + staging pipelines across a tile-factor grid.
fn gpu_variants(stats: &mut Stats) {
    for fi in [2i64, 4, 8] {
        for fj in [2i64, 4, 8, 16] {
            let mut sch = Schedule::new(matmul_func("mm", 16, 16, 16, DataType::float32()));
            let block = sch.get_block("C").expect("block C");
            let loops = sch.get_loops(&block).expect("loops");
            let i = sch.split(&loops[0], &[fi, -1]).expect("split i");
            let j = sch.split(&loops[1], &[fj, -1]).expect("split j");
            sch.reorder(&[i[0].clone(), j[0].clone(), i[1].clone(), j[1].clone()])
                .expect("reorder");
            let bid = sch.fuse(&[i[0].clone(), j[0].clone()]).expect("fuse");
            sch.bind(&bid, ThreadTag::BlockIdxX).expect("bind block");
            sch.bind(&i[1], ThreadTag::ThreadIdxX).expect("bind thread");
            let a = sch.func().param("A").expect("param A").clone();
            sch.cache_read(&block, &a, MemScope::Shared, Some(&j[1]))
                .expect("cache_read");
            sch.cache_write(&block, MemScope::Local, Some(&j[1]))
                .expect("cache_write");
            stats.expect_clean("gpu", &format!("gpu_variant[{fi}x{fj}]"), sch.func());
        }
    }
}

/// Class 3: sampled sketch candidates. Returns (passed, rejected) counts
/// over candidates the legacy validator accepts.
fn sketch_candidates(stats: &mut Stats) -> (usize, usize) {
    let reg = builtin_registry();
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let (mut passed, mut rejected) = (0usize, 0usize);
    let workloads: Vec<(&str, PrimFunc)> = vec![
        (
            "gmm",
            tir_workloads::gmm(64, 64, 64, DataType::float16(), DataType::float16()),
        ),
        (
            "c2d",
            tir_workloads::c2d(1, 14, 14, 16, 16, 3, 3, 1, DataType::float16()),
        ),
    ];
    for machine in [Machine::sim_gpu(), Machine::sim_arm()] {
        for (name, func) in &workloads {
            for sketch in build_sketches(func, &machine, &reg, Strategy::TensorIr) {
                for k in 0..8 {
                    let decisions = sketch.sample(&mut rng);
                    let Ok(candidate) = sketch.apply(&decisions) else {
                        continue;
                    };
                    if tir_analysis::validate(&candidate).is_err() {
                        // Already filtered by the legacy validator.
                        continue;
                    }
                    let t0 = Instant::now();
                    let errors = analyze(&candidate);
                    let dt = t0.elapsed().as_secs_f64();
                    stats.total_time_s += dt;
                    stats.analyzed += 1;
                    stats.bucket(&format!("sketch/{name}"), dt);
                    if errors.is_empty() {
                        passed += 1;
                    } else {
                        rejected += 1;
                        eprintln!(
                            "note: analyzer rejects {name}/{}#{k}: {}",
                            sketch.name(),
                            errors[0]
                        );
                    }
                }
            }
        }
    }
    (passed, rejected)
}

fn main() {
    let mut stats = Stats::new();
    for dt in [DataType::float16(), DataType::int8()] {
        for case in bench_suite(dt) {
            let family = format!("{:?}", case.kind).to_lowercase();
            stats.expect_clean(&family, &format!("suite/{}", case.func.name), &case.func);
        }
    }
    scheduled_variants(&mut stats);
    gpu_variants(&mut stats);
    let (sk_passed, sk_rejected) = sketch_candidates(&mut stats);

    println!(
        "verify-suite: {} programs analyzed in {:.3}s ({:.2} ms/program)",
        stats.analyzed,
        stats.total_time_s,
        1e3 * stats.total_time_s / stats.analyzed.max(1) as f64
    );
    println!("sketch candidates: {sk_passed} clean, {sk_rejected} statically rejected");
    println!("per-family analysis time:");
    for (family, (count, secs)) in &stats.by_family {
        println!(
            "  {family:<12} {count:>4} programs  {:>7.3} ms/program",
            1e3 * secs / (*count).max(1) as f64
        );
    }
    if stats.failures.is_empty() {
        println!("all known-legal programs verify clean");
    } else {
        eprintln!("{} known-legal programs FAILED:", stats.failures.len());
        for (label, err) in &stats.failures {
            eprintln!("  {label}: {err}");
        }
        std::process::exit(1);
    }
}
