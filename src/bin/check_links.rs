//! `check-links` — fails when a relative markdown link in the
//! operator-facing docs points at a file that does not exist.
//!
//! Scans the fixed documentation set (README, ARCHITECTURE,
//! EXPERIMENTS, ROADMAP, docs/OPERATIONS) for inline links
//! `[text](target)`. External links (`http(s)://`, `mailto:`) and
//! pure in-page anchors (`#...`) are skipped; fragments are stripped
//! before checking. Any dead target is reported with its file and
//! exits 1 — the CI gate that keeps the docs navigable as files move.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DOC_FILES: &[&str] = &[
    "README.md",
    "ARCHITECTURE.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "DESIGN.md",
    "docs/OPERATIONS.md",
];

/// Extracts inline-link targets `](...)` from one markdown document.
/// Good enough for this repo's docs: no reference-style links, no
/// parentheses inside targets.
fn link_targets(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(close) = text[i + 2..].find(')') {
                targets.push(text[i + 2..i + 2 + close].to_string());
                i += 2 + close;
                continue;
            }
        }
        i += 1;
    }
    targets
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://") || target.starts_with("https://") || target.starts_with("mailto:")
}

fn main() -> ExitCode {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut dead: Vec<String> = Vec::new();
    let mut checked = 0usize;

    for doc in DOC_FILES {
        let doc_path = root.join(doc);
        let Ok(text) = std::fs::read_to_string(&doc_path) else {
            dead.push(format!("{doc}: documentation file itself is missing"));
            continue;
        };
        let doc_dir = doc_path.parent().unwrap_or(Path::new("."));
        for target in link_targets(&text) {
            if is_external(&target) || target.starts_with('#') || target.is_empty() {
                continue;
            }
            // Strip an in-file fragment (`FILE.md#section`).
            let file_part = target.split('#').next().unwrap_or("");
            if file_part.is_empty() {
                continue;
            }
            checked += 1;
            if !doc_dir.join(file_part).exists() {
                dead.push(format!("{doc}: dead link `{target}`"));
            }
        }
    }

    if dead.is_empty() {
        println!(
            "check-links: {checked} relative links across {} docs, all alive",
            DOC_FILES.len()
        );
        ExitCode::SUCCESS
    } else {
        for d in &dead {
            eprintln!("check-links: {d}");
        }
        eprintln!("check-links: {} dead link(s)", dead.len());
        ExitCode::FAILURE
    }
}
