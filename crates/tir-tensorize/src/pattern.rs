//! Workload einsum extraction and the characteristic-vector iterator
//! mapping of §4.2.
//!
//! Given a reduction block, [`extract_einsum`] recovers the form
//! `O[g0(v)] += I1[g1(v)] * I2[g2(v)]` (Eq. 2/3 of the paper), and
//! [`propose_mapping`] matches the block's iterators to an intrinsic's by
//! comparing characteristic vectors, fusing workload iterators that share
//! a vector.

use tir::visit::collect_vars_expr;
use tir::{BinOp, Block, Buffer, Expr, IterKind, Var};
use tir_analysis::reduction::{detect_block_reduction, ReduceOp};

use crate::intrin::TensorIntrin;

/// A workload in canonical einsum form.
#[derive(Clone, Debug)]
pub struct Einsum {
    /// Output buffer and its index expressions (over block iterators).
    pub output: (Buffer, Vec<Expr>),
    /// Input operands in multiplication order.
    pub inputs: Vec<(Buffer, Vec<Expr>)>,
    /// The reduction combiner (only `Add` is tensorizable today).
    pub op: ReduceOp,
    /// Per-input cast target applied inside the term (if any).
    pub input_casts: Vec<Option<tir::DataType>>,
}

/// Why einsum extraction or mapping failed.
#[derive(Clone, Debug, PartialEq)]
pub enum MatchError {
    /// The block is not a recognized reduction.
    NotReduction,
    /// The reduction term is not a two-operand product.
    NotMulAdd,
    /// Data types do not match the intrinsic's operands.
    DtypeMismatch(String),
    /// A workload iterator's characteristic vector matches no intrinsic
    /// iterator.
    UnmatchedIterator(String),
    /// Iterator kinds disagree between workload and intrinsic.
    KindMismatch(String),
    /// The operand count differs from the intrinsic.
    ArityMismatch,
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::NotReduction => write!(f, "block is not a reduction"),
            MatchError::NotMulAdd => write!(f, "reduction term is not a product"),
            MatchError::DtypeMismatch(s) => write!(f, "dtype mismatch: {s}"),
            MatchError::UnmatchedIterator(s) => {
                write!(f, "iterator {s} matches no intrinsic iterator")
            }
            MatchError::KindMismatch(s) => write!(f, "iterator kind mismatch on {s}"),
            MatchError::ArityMismatch => write!(f, "operand count mismatch"),
        }
    }
}

impl std::error::Error for MatchError {}

fn strip_cast(e: &Expr) -> (&Expr, Option<tir::DataType>) {
    match e {
        Expr::Cast(dt, inner) => (inner, Some(*dt)),
        other => (other, None),
    }
}

/// Extracts the einsum form of a reduction block.
///
/// # Errors
///
/// Fails when the block is not an `O += cast(A) * cast(B)` reduction.
pub fn extract_einsum(block: &Block) -> Result<Einsum, MatchError> {
    let info = detect_block_reduction(block).ok_or(MatchError::NotReduction)?;
    if info.op != ReduceOp::Add {
        return Err(MatchError::NotMulAdd);
    }
    let Expr::Bin(BinOp::Mul, lhs, rhs) = &info.term else {
        return Err(MatchError::NotMulAdd);
    };
    let (lhs, lcast) = strip_cast(lhs);
    let (rhs, rcast) = strip_cast(rhs);
    let (
        Expr::Load {
            buffer: ba,
            indices: ia,
        },
        Expr::Load {
            buffer: bb,
            indices: ib,
        },
    ) = (lhs, rhs)
    else {
        return Err(MatchError::NotMulAdd);
    };
    Ok(Einsum {
        output: (info.buffer.clone(), info.indices.clone()),
        inputs: vec![(ba.clone(), ia.clone()), (bb.clone(), ib.clone())],
        op: info.op,
        input_casts: vec![lcast, rcast],
    })
}

/// Characteristic vector of a block iterator w.r.t. an einsum: one bit per
/// operand (output first), set when the iterator appears in that operand's
/// index expressions.
pub fn characteristic(einsum: &Einsum, var: &Var) -> Vec<bool> {
    let appears = |indices: &[Expr]| indices.iter().any(|e| collect_vars_expr(e).contains(var));
    let mut chi = vec![appears(&einsum.output.1)];
    for (_, idx) in &einsum.inputs {
        chi.push(appears(idx));
    }
    chi
}

/// The proposed iterator mapping: for each intrinsic iterator (in
/// canonical order), the workload block iterators fused onto it (in block
/// declaration order — the paper's "default fusion order").
#[derive(Clone, Debug)]
pub struct IterMapping {
    /// `groups[d]` lists the workload iterators mapped to intrinsic
    /// iterator `d`. A group may be empty (the intrinsic dimension is then
    /// padded from extent 1).
    pub groups: Vec<Vec<Var>>,
    /// Fused extent per group (product of member extents).
    pub group_extents: Vec<i64>,
    /// *Batch* iterators: spatial iterators appearing in the output and
    /// every input (characteristic vector all-ones). They stay as outer
    /// loops around the tensorized computation — this is how batch matmul,
    /// grouped convolution, and depthwise convolution map onto matrix
    /// intrinsics.
    pub batch: Vec<Var>,
    /// Product of batch iterator extents.
    pub batch_extent: i64,
}

/// Proposes the iterator mapping between a workload block and an intrinsic
/// by matching characteristic vectors (§4.2).
///
/// # Errors
///
/// Fails when arity/dtypes disagree, an iterator matches no intrinsic
/// iterator, or kinds mismatch.
pub fn propose_mapping(
    block: &Block,
    einsum: &Einsum,
    intrin: &TensorIntrin,
) -> Result<IterMapping, MatchError> {
    if einsum.inputs.len() != intrin.input_iters.len() {
        return Err(MatchError::ArityMismatch);
    }
    // Data types: compare post-cast input types and the accumulator type.
    for (i, ((buf, _), cast)) in einsum.inputs.iter().zip(&einsum.input_casts).enumerate() {
        let effective = cast.unwrap_or_else(|| buf.dtype());
        // The multiplication operand type must match the intrinsic input
        // type (either directly or via the declared cast).
        if buf.dtype() != intrin.input_dtypes[i] && effective != intrin.output_dtype {
            return Err(MatchError::DtypeMismatch(format!(
                "input {} has type {}, intrinsic expects {}",
                buf.name(),
                buf.dtype(),
                intrin.input_dtypes[i]
            )));
        }
    }
    if einsum.output.0.dtype() != intrin.output_dtype {
        return Err(MatchError::DtypeMismatch(format!(
            "output {} has type {}, intrinsic accumulates {}",
            einsum.output.0.name(),
            einsum.output.0.dtype(),
            intrin.output_dtype
        )));
    }

    let intrin_chis: Vec<Vec<bool>> = (0..intrin.iters.len())
        .map(|d| intrin.characteristic(d))
        .collect();
    let mut groups: Vec<Vec<Var>> = vec![Vec::new(); intrin.iters.len()];
    let mut group_extents: Vec<i64> = vec![1; intrin.iters.len()];
    let mut batch: Vec<Var> = Vec::new();
    let mut batch_extent = 1i64;
    for iv in &block.iter_vars {
        let chi = characteristic(einsum, &iv.var);
        if chi.iter().all(|b| !b) {
            // The iterator touches no operand (degenerate); skip if unit.
            if iv.extent == 1 {
                continue;
            }
            return Err(MatchError::UnmatchedIterator(iv.var.name().to_string()));
        }
        if chi.iter().all(|b| *b) {
            // Appears in every operand: a batch-like iterator.
            if iv.kind != IterKind::Spatial {
                return Err(MatchError::KindMismatch(iv.var.name().to_string()));
            }
            batch.push(iv.var.clone());
            batch_extent *= iv.extent;
            continue;
        }
        let d = intrin_chis
            .iter()
            .position(|c| c == &chi)
            .ok_or_else(|| MatchError::UnmatchedIterator(iv.var.name().to_string()))?;
        if intrin.iters[d].kind != iv.kind {
            return Err(MatchError::KindMismatch(iv.var.name().to_string()));
        }
        groups[d].push(iv.var.clone());
        group_extents[d] *= iv.extent;
    }
    Ok(IterMapping {
        groups,
        group_extents,
        batch,
        batch_extent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrin::builtin_registry;
    use tir::builder::{matmul_func, reduce_compute};
    use tir::visit::find_block;
    use tir::{Buffer, DataType};

    #[test]
    fn matmul_extracts_and_maps() {
        let f = matmul_func("mm", 64, 64, 64, DataType::float32());
        let block = &find_block(&f.body, "C").expect("block").block;
        let einsum = extract_einsum(block).expect("einsum");
        assert_eq!(einsum.inputs.len(), 2);
        let reg = builtin_registry();
        let intrin = reg.get("dot_4x4x4_f32").unwrap();
        let mapping = propose_mapping(block, &einsum, intrin).expect("mapping");
        assert_eq!(mapping.group_extents, vec![64, 64, 64]);
        assert_eq!(mapping.groups[0].len(), 1);
    }

    /// Batch matmul: C[b, i, j] += A[b, i, r] * B[b, r, j] — the paper's
    /// easy case. `b` appears in all three operands; with a 3-operand mm
    /// intrinsic whose vectors are distinct, b matches nothing — the paper
    /// maps (b, i) -> x by fusing. b's vector is [1,1,1] which differs from
    /// every intrinsic vector, so it is unmatched: exactly why the paper's
    /// batch-matmul example keeps b separate by mapping onto i/j/k only
    /// when B is not batched. Use an unbatched B here.
    #[test]
    fn batch_matmul_with_shared_weights_maps() {
        let a = Buffer::new("A", DataType::float32(), vec![2, 8, 8]);
        let b = Buffer::new("B", DataType::float32(), vec![8, 8]);
        let c = Buffer::new("C", DataType::float32(), vec![2, 8, 8]);
        let body = reduce_compute("C", &c, &[8], Expr::f32(0.0), |sp, rd| {
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]),
                Expr::from(&rd[0]),
            ]) * b.load(vec![Expr::from(&rd[0]), Expr::from(&sp[2])])
        });
        let block = &find_block(&body, "C").expect("block").block;
        let einsum = extract_einsum(block).expect("einsum");
        let reg = builtin_registry();
        let intrin = reg.get("dot_4x4x4_f32").unwrap();
        let mapping = propose_mapping(block, &einsum, intrin).expect("mapping");
        // batch and i fuse onto x: extents [2*8, 8, 8].
        assert_eq!(mapping.group_extents, vec![16, 8, 8]);
        assert_eq!(mapping.groups[0].len(), 2);
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let f = matmul_func("mm", 32, 32, 32, DataType::float32());
        let block = &find_block(&f.body, "C").expect("block").block;
        let einsum = extract_einsum(block).expect("einsum");
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        let err = propose_mapping(block, &einsum, wmma).unwrap_err();
        assert!(matches!(err, MatchError::DtypeMismatch(_)), "{err}");
    }

    #[test]
    fn f16_matmul_matches_wmma() {
        let f = matmul_func("mm", 64, 64, 64, DataType::float16());
        let block = &find_block(&f.body, "C").expect("block").block;
        let einsum = extract_einsum(block).expect("einsum");
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        let mapping = propose_mapping(block, &einsum, wmma).expect("mapping");
        assert_eq!(mapping.group_extents, vec![64, 64, 64]);
    }

    #[test]
    fn non_reduction_rejected() {
        let b = Buffer::new("B", DataType::float32(), vec![8]);
        let body = tir::builder::compute("B", &b, |_| Expr::f32(1.0));
        let block = &find_block(&body, "B").expect("block").block;
        assert_eq!(extract_einsum(block).unwrap_err(), MatchError::NotReduction);
    }

    #[test]
    fn characteristic_of_conv_iterators() {
        // C[n, w, f] += A[n, w + rw, rc] * B[rw, rc, f] (1-D conv, already
        // re-indexed form not required for characteristic computation).
        let a = Buffer::new("A", DataType::float32(), vec![2, 10, 4]);
        let b = Buffer::new("B", DataType::float32(), vec![3, 4, 8]);
        let c = Buffer::new("C", DataType::float32(), vec![2, 8, 8]);
        let body = reduce_compute("C", &c, &[3, 4], Expr::f32(0.0), |sp, rd| {
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) + Expr::from(&rd[0]),
                Expr::from(&rd[1]),
            ]) * b.load(vec![
                Expr::from(&rd[0]),
                Expr::from(&rd[1]),
                Expr::from(&sp[2]),
            ])
        });
        let block = &find_block(&body, "C").expect("block").block;
        let einsum = extract_einsum(block).expect("einsum");
        // n: output + A -> [1,1,0]; w: output + A -> [1,1,0];
        // f: output + B -> [1,0,1]; rw: A + B -> [0,1,1]; rc: A + B.
        let chis: Vec<Vec<bool>> = block
            .iter_vars
            .iter()
            .map(|iv| characteristic(&einsum, &iv.var))
            .collect();
        assert_eq!(chis[0], vec![true, true, false]);
        assert_eq!(chis[1], vec![true, true, false]);
        assert_eq!(chis[2], vec![true, false, true]);
        assert_eq!(chis[3], vec![false, true, true]);
        assert_eq!(chis[4], vec![false, true, true]);
        // Mapping onto the mm intrinsic fuses (n, w) -> x and (rw, rc) -> k.
        let reg = builtin_registry();
        let intrin = reg.get("dot_4x4x4_f32").unwrap();
        let mapping = propose_mapping(block, &einsum, intrin).expect("mapping");
        assert_eq!(mapping.group_extents, vec![16, 8, 12]);
    }
}
