//! # tir-tensorize — automatic tensorization for TensorIR
//!
//! Implements §4.1–4.2 of the paper:
//!
//! * [`intrin`] — [`intrin::TensorIntrin`] descriptions of hardware tensor
//!   instructions in the same TensorIR vocabulary (iteration domain,
//!   operand index signatures, dtypes, memory/execution scopes), plus the
//!   built-in registry (Tensor Core `wmma`, the paper's synthetic 4x4x4
//!   dot intrinsic, ARM `sdot`);
//! * [`pattern`] — einsum extraction and the characteristic-vector
//!   iterator mapping;
//! * [`candidate`] — the full candidate-generation pipeline: ReIndex with
//!   fused-layout staging buffers, padding to divisible shapes, tiling,
//!   blockization, and the `tensorize` primitive.
//!
//! # Examples
//!
//! ```
//! use tir::builder::matmul_func;
//! use tir::DataType;
//! use tir_tensorize::{auto_tensorize, builtin_registry};
//!
//! let func = matmul_func("mm", 64, 64, 64, DataType::float32());
//! let reg = builtin_registry();
//! let intrin = reg.get("dot_4x4x4_f32").unwrap();
//! let result = auto_tensorize(&func, "C", intrin).unwrap();
//! assert_eq!(result.padded_extents, vec![64, 64, 64]);
//! ```

#![warn(missing_docs)]

pub mod candidate;
pub mod intrin;
pub mod pattern;

pub use candidate::{
    auto_tensorize, auto_tensorize_with_order, find_tensorizable_block, tensorize, FusionOrder,
    Tensorized,
};
pub use intrin::{builtin_registry, IntrinRegistry, TensorIntrin};
pub use pattern::{extract_einsum, propose_mapping, Einsum, MatchError};
