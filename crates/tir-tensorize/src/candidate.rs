//! Tensorization candidate generation (§4.2) and the `tensorize`
//! primitive.
//!
//! [`auto_tensorize`] drives the paper's Fig. 9 pipeline end to end:
//!
//! 1. extract the einsum and propose an iterator mapping via
//!    characteristic vectors ([`crate::pattern`]);
//! 2. **ReIndex + layout rewrite**: materialize each operand into a staging
//!    buffer whose dimensions are the *fused* iterator groups
//!    (`A_t[fuse(n,h,w), fuse(rh,rw,rc)] = A[g(...)]`), padding every fused
//!    dimension up to a multiple of the intrinsic's size (zero padding is
//!    sound for sum reductions);
//! 3. rebuild the compute block over the canonical (padded) iteration
//!    space, followed by a write-back of the valid output region;
//! 4. tile each canonical loop by the intrinsic dimension and `blockize`
//!    the inner tile;
//! 5. [`tensorize`] the inner block: verify it matches the intrinsic and
//!    mark it opaque with the intrinsic annotation (the scalar body is the
//!    executable implementation; the simulator prices it at intrinsic
//!    throughput).

use std::collections::HashMap;

use tir::visit::subst_expr;
use tir::{
    AnnValue, Block, BlockRealize, Buffer, BufferRegion, Expr, IterKind, IterVar, PrimFunc, Stmt,
    Var,
};
use tir_schedule::{BlockRef, Schedule, ScheduleError};

use crate::intrin::TensorIntrin;
use crate::pattern::{extract_einsum, propose_mapping, Einsum};

/// Annotation key carrying the tensor-intrinsic name on a tensorized block.
pub const INTRIN_ANNOTATION: &str = "tir.tensor_intrin";

/// Result type of tensorization.
pub type Result<T> = std::result::Result<T, ScheduleError>;

/// Outcome of [`auto_tensorize`].
#[derive(Debug)]
pub struct Tensorized {
    /// The schedule holding the transformed program.
    pub schedule: Schedule,
    /// The outer (schedulable) block produced by blockization.
    pub outer_block: BlockRef,
    /// The inner opaque block bound to the intrinsic.
    pub inner_block: BlockRef,
    /// Fused (padded) canonical extents, one per intrinsic iterator.
    pub padded_extents: Vec<i64>,
    /// Original fused extents before padding.
    pub fused_extents: Vec<i64>,
    /// Names of the data-movement blocks created (reindex + write-back).
    pub data_movement_blocks: Vec<String>,
    /// Names of the input staging (fused-layout) buffers, in operand order.
    pub input_staging: Vec<String>,
    /// Name of the output staging buffer.
    pub output_staging: String,
}

fn round_up(v: i64, to: i64) -> i64 {
    ((v + to - 1) / to) * to
}

/// Builds `fuse(v1, .., vr)` per the paper's formula.
fn fuse_expr(vars: &[Var], extents: &[i64]) -> Expr {
    let mut it = vars.iter().zip(extents);
    let (v0, _) = it.next().expect("nonempty group");
    let mut acc = Expr::from(v0);
    for (v, e) in it {
        acc = acc * *e + Expr::from(v);
    }
    acc
}

struct GroupInfo {
    vars: Vec<Var>,
    extents: Vec<i64>,
    fused_extent: i64,
    padded_extent: i64,
    kind: IterKind,
}

/// The order in which workload iterators sharing a characteristic vector
/// are fused onto one intrinsic iterator (§4.2).
///
/// The paper: "Our implementation now uses a default order for all the
/// workloads and can generalize to different fusion orders in the
/// future." — this reproduction implements that generalization: the order
/// changes how operands are laid out in the staging buffers (and hence
/// data-movement locality), never the computed values.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FusionOrder {
    /// Block-declaration order (the paper's default).
    #[default]
    Declaration,
    /// Reversed declaration order (innermost workload iterator becomes the
    /// highest-stride digit of the fused coordinate).
    Reversed,
}

/// Performs the full auto-tensorization pipeline on the named block.
///
/// # Errors
///
/// Fails when the block does not match the intrinsic (see
/// [`crate::pattern::MatchError`]) or a downstream scheduling step fails.
pub fn auto_tensorize(
    func: &PrimFunc,
    block_name: &str,
    intrin: &TensorIntrin,
) -> Result<Tensorized> {
    auto_tensorize_with_order(func, block_name, intrin, FusionOrder::Declaration)
}

/// [`auto_tensorize`] with an explicit iterator fusion order.
///
/// # Errors
///
/// As [`auto_tensorize`].
pub fn auto_tensorize_with_order(
    func: &PrimFunc,
    block_name: &str,
    intrin: &TensorIntrin,
    order: FusionOrder,
) -> Result<Tensorized> {
    let mut sch = Schedule::new(func.clone());
    let block_ref = sch.get_block(block_name)?;

    // Step 1: einsum + mapping.
    let (einsum, mapping, block_iter_extents) = {
        let br = tir::visit::find_block(&sch.func().body, block_name)
            .ok_or_else(|| ScheduleError::BlockNotFound(block_name.to_string()))?;
        let einsum = extract_einsum(&br.block)
            .map_err(|e| ScheduleError::Precondition(format!("einsum extraction: {e}")))?;
        let mapping = propose_mapping(&br.block, &einsum, intrin)
            .map_err(|e| ScheduleError::Precondition(format!("iterator mapping: {e}")))?;
        let extents: HashMap<Var, i64> = br
            .block
            .iter_vars
            .iter()
            .map(|iv| (iv.var.clone(), iv.extent))
            .collect();
        (einsum, mapping, extents)
    };

    let ordered = |vars: &[Var]| -> Vec<Var> {
        let mut v = vars.to_vec();
        if order == FusionOrder::Reversed {
            v.reverse();
        }
        v
    };
    let groups: Vec<GroupInfo> = mapping
        .groups
        .iter()
        .zip(&mapping.group_extents)
        .zip(&intrin.iters)
        .map(|((vars, &fused_extent), ii)| {
            let vars = ordered(vars);
            GroupInfo {
                extents: vars.iter().map(|v| block_iter_extents[v]).collect(),
                vars,
                fused_extent,
                padded_extent: round_up(fused_extent, ii.extent),
                kind: ii.kind,
            }
        })
        .collect();
    let batch_vars = ordered(&mapping.batch);
    let batch = GroupInfo {
        extents: batch_vars.iter().map(|v| block_iter_extents[v]).collect(),
        vars: batch_vars,
        fused_extent: mapping.batch_extent,
        padded_extent: mapping.batch_extent,
        kind: IterKind::Spatial,
    };

    // Step 2/3: rebuild the computation in canonical form.
    let canonical = build_canonical_form(&einsum, intrin, &groups, &batch, block_name)?;
    let compute_name = canonical.compute_name.clone();
    let dm_blocks = canonical.data_movement_blocks.clone();
    let input_staging = canonical.input_staging.clone();
    let output_staging = canonical.output_staging.clone();

    // Replace the original nest with the canonical form.
    let loops = sch.get_loops(&block_ref)?;
    if let Some(outermost) = loops.first() {
        // The nest must contain only the target block.
        let names = sch.blocks_under_loop(outermost)?;
        if names != vec![block_name.to_string()] {
            return Err(ScheduleError::Precondition(format!(
                "tensorize target nest contains other blocks: {names:?}"
            )));
        }
        let stmt = canonical.stmt;
        sch.replace_loop_subtree(outermost, stmt)?;
    } else {
        return Err(ScheduleError::Precondition(
            "target block has no surrounding loops".into(),
        ));
    }
    for buf in canonical.staging_buffers {
        sch.alloc_buffer_at_root(buf)?;
    }

    // Step 4: tile by the intrinsic dims and blockize. The batch loop (if
    // any) is the outermost and is not tiled — it stays outside the
    // intrinsic invocation.
    let compute = sch.get_block(&compute_name)?;
    let loops = sch.get_loops(&compute)?;
    let has_batch = !batch.vars.is_empty();
    let skip = usize::from(has_batch);
    debug_assert_eq!(loops.len(), intrin.iters.len() + skip);
    let mut outers: Vec<_> = loops[..skip].to_vec();
    let mut inners = Vec::new();
    for (l, ii) in loops[skip..].iter().zip(&intrin.iters) {
        let parts = sch.split(l, &[-1, ii.extent])?;
        outers.push(parts[0].clone());
        inners.push(parts[1].clone());
    }
    let order: Vec<_> = outers.iter().chain(inners.iter()).cloned().collect();
    sch.reorder(&order)?;
    let outer_block = sch.blockize(&inners[0])?;

    // Step 5: bind the inner block to the intrinsic.
    let inner_block = sch.get_block(&compute_name)?;
    tensorize(&mut sch, &inner_block, intrin, false)?;

    Ok(Tensorized {
        schedule: sch,
        outer_block,
        inner_block,
        padded_extents: groups.iter().map(|g| g.padded_extent).collect(),
        fused_extents: groups.iter().map(|g| g.fused_extent).collect(),
        data_movement_blocks: dm_blocks,
        input_staging,
        output_staging,
    })
}

struct CanonicalForm {
    stmt: Stmt,
    compute_name: String,
    staging_buffers: Vec<Buffer>,
    data_movement_blocks: Vec<String>,
    input_staging: Vec<String>,
    output_staging: String,
}

/// Builds the staging (ReIndex + layout-rewrite) blocks, the canonical
/// compute block, and the write-back block.
fn build_canonical_form(
    einsum: &Einsum,
    intrin: &TensorIntrin,
    groups: &[GroupInfo],
    batch: &GroupInfo,
    block_name: &str,
) -> Result<CanonicalForm> {
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut staging = Vec::new();
    let mut dm_blocks = Vec::new();
    let has_batch = !batch.vars.is_empty();

    // Resolves the per-dimension group list of one operand: a leading
    // batch dimension (when present) followed by the operand's intrinsic
    // iterator groups.
    let operand_groups = |dims: &[usize]| -> Vec<&GroupInfo> {
        let mut v: Vec<&GroupInfo> = Vec::with_capacity(dims.len() + 1);
        if has_batch {
            v.push(batch);
        }
        v.extend(dims.iter().map(|&d| &groups[d]));
        v
    };

    // Staging buffer per input operand, dims = [batch?] + operand groups.
    let mut input_stage: Vec<Buffer> = Vec::new();
    for (j, (buf, indices)) in einsum.inputs.iter().enumerate() {
        let ogroups = operand_groups(&intrin.input_iters[j]);
        let dims: Vec<i64> = ogroups.iter().map(|g| g.padded_extent).collect();
        let stage = Buffer::new(format!("{}_t", buf.name()), buf.dtype(), dims);
        let nest = reindex_block(
            &format!("{}_reindex", buf.name()),
            buf,
            indices,
            &stage,
            &ogroups,
            false,
        )?;
        dm_blocks.push(format!("{}_reindex", buf.name()));
        stmts.push(nest);
        staging.push(stage.clone());
        input_stage.push(stage);
    }

    // Output staging buffer over [batch?] + output groups.
    let (out_buf, out_indices) = &einsum.output;
    let out_groups = operand_groups(&intrin.output_iters);
    let out_dims: Vec<i64> = out_groups.iter().map(|g| g.padded_extent).collect();
    let out_stage = Buffer::new(format!("{}_t", out_buf.name()), out_buf.dtype(), out_dims);
    staging.push(out_stage.clone());

    // Canonical compute block: iterators [u_b?] + u_d over padded extents.
    let u_batch = Var::int("u_b");
    let l_batch = Var::int("l_b");
    let u_vars: Vec<Var> = intrin
        .iters
        .iter()
        .map(|ii| Var::int(format!("u_{}", ii.name)))
        .collect();
    let loop_vars: Vec<Var> = intrin
        .iters
        .iter()
        .map(|ii| Var::int(format!("l_{}", ii.name)))
        .collect();
    let with_batch = |mut idx: Vec<Expr>| -> Vec<Expr> {
        if has_batch {
            idx.insert(0, Expr::from(&u_batch));
        }
        idx
    };
    let out_idx: Vec<Expr> = with_batch(
        intrin
            .output_iters
            .iter()
            .map(|&d| Expr::from(&u_vars[d]))
            .collect(),
    );
    let mut term: Option<Expr> = None;
    for (j, stage) in input_stage.iter().enumerate() {
        let idx: Vec<Expr> = with_batch(
            intrin.input_iters[j]
                .iter()
                .map(|&d| Expr::from(&u_vars[d]))
                .collect(),
        );
        let mut load = stage.load(idx);
        if let Some(dt) = einsum.input_casts[j] {
            load = load.cast(dt);
        }
        term = Some(match term {
            None => load,
            Some(t) => t * load,
        });
    }
    let term = term.expect("at least one input");
    let body = Stmt::store(
        out_stage.clone(),
        out_idx.clone(),
        out_stage.load(out_idx.clone()) + term,
    );
    let zero = if out_stage.dtype().is_float() {
        Expr::Float(0.0, out_stage.dtype())
    } else {
        Expr::Int(0, out_stage.dtype())
    };
    let init = Stmt::store(out_stage.clone(), out_idx, zero);
    let (reads, writes) = tir::builder::derive_signature(&body, None);
    let reads: Vec<BufferRegion> = reads
        .into_iter()
        .filter(|r| r.buffer != out_stage)
        .collect();
    let compute_name = format!("{block_name}_t");
    let mut iter_vars: Vec<IterVar> = Vec::new();
    let mut realize_bindings: Vec<Expr> = Vec::new();
    let mut compute_loops: Vec<(Var, i64)> = Vec::new();
    if has_batch {
        iter_vars.push(IterVar::spatial(u_batch.clone(), batch.fused_extent));
        realize_bindings.push(Expr::from(&l_batch));
        compute_loops.push((l_batch.clone(), batch.fused_extent));
    }
    for ((v, g), l) in u_vars.iter().zip(groups).zip(&loop_vars) {
        iter_vars.push(match g.kind {
            IterKind::Spatial => IterVar::spatial(v.clone(), g.padded_extent),
            IterKind::Reduce => IterVar::reduce(v.clone(), g.padded_extent),
        });
        realize_bindings.push(Expr::from(l));
        compute_loops.push((l.clone(), g.padded_extent));
    }
    let mut block = Block::new(compute_name.clone(), iter_vars, reads, writes, body);
    block.init = Some(Box::new(init));
    let realize = BlockRealize::new(realize_bindings, block);
    stmts.push(Stmt::BlockRealize(Box::new(realize)).in_loops(compute_loops));

    // Write-back block: C[g0(v)] = C_t[fuse exprs] over the valid region.
    let wb = reindex_block(
        &format!("{}_writeback", out_buf.name()),
        out_buf,
        out_indices,
        &out_stage,
        &out_groups,
        true,
    )?;
    dm_blocks.push(format!("{}_writeback", out_buf.name()));
    stmts.push(wb);

    let input_staging = input_stage.iter().map(|b| b.name().to_string()).collect();
    let output_staging = out_stage.name().to_string();
    Ok(CanonicalForm {
        stmt: Stmt::seq(stmts),
        compute_name,
        staging_buffers: staging,
        data_movement_blocks: dm_blocks,
        input_staging,
        output_staging,
    })
}

/// Builds a ReIndex (layout-rewrite) block between an original buffer and
/// its fused-layout staging buffer.
///
/// When `writeback` is false: `stage[fuse(groups)] = original[g(iters)]`
/// (the ReIndex of §4.2). When true: the reverse copy, reading the staged
/// buffer back into the original layout.
/// Whether a staging buffer is a *pure reshape* of the original operand:
/// no padding, and the operand's indices are exactly the group variables
/// concatenated in order. Such a stage is a strided view in a real
/// backend; the paper notes these ReIndex stages are inlined into
/// consumers and "do not affect the performance", so the cost model treats
/// blocks annotated `tir.reshape_view` as free. The interpreter still
/// executes them (correctness is unaffected).
fn is_pure_reshape(original_indices: &[Expr], operand_groups: &[&GroupInfo]) -> bool {
    if operand_groups
        .iter()
        .any(|g| g.padded_extent != g.fused_extent)
    {
        return false;
    }
    let concat: Vec<&Var> = operand_groups.iter().flat_map(|g| g.vars.iter()).collect();
    if original_indices.len() != concat.len() {
        return false;
    }
    original_indices
        .iter()
        .zip(concat)
        .all(|(e, v)| e.as_var() == Some(v))
}

#[allow(clippy::too_many_arguments)]
fn reindex_block(
    name: &str,
    original: &Buffer,
    original_indices: &[Expr],
    stage: &Buffer,
    operand_groups: &[&GroupInfo],
    writeback: bool,
) -> Result<Stmt> {
    let reshape_view = is_pure_reshape(original_indices, operand_groups);
    if writeback {
        // The write-back copies only the valid region, iterating the
        // original iterator space of the output groups.
        let mut loops: Vec<(Var, i64)> = Vec::new();
        let mut iter_vars: Vec<IterVar> = Vec::new();
        let mut bindings: Vec<Expr> = Vec::new();
        let mut subst: HashMap<Var, Expr> = HashMap::new();
        let mut fused_per_dim: Vec<Expr> = Vec::new();
        for g in operand_groups {
            if g.vars.is_empty() {
                fused_per_dim.push(Expr::int(0));
                continue;
            }
            let mut fresh_group = Vec::new();
            for (v, &e) in g.vars.iter().zip(&g.extents) {
                let lv = Var::int(format!("c_{}", v.name()));
                let bv = Var::int(format!("w_{}", v.name()));
                bindings.push(Expr::from(&lv));
                loops.push((lv, e));
                iter_vars.push(IterVar::spatial(bv.clone(), e));
                subst.insert(v.clone(), Expr::from(&bv));
                fresh_group.push(bv);
            }
            fused_per_dim.push(tir::simplify::simplify_expr(&fuse_expr(
                &fresh_group,
                &g.extents,
            )));
        }
        let orig_idx: Vec<Expr> = original_indices
            .iter()
            .map(|e| subst_expr(e, &subst))
            .collect();
        let body = Stmt::store(original.clone(), orig_idx, stage.load(fused_per_dim));
        let (reads, writes) = tir::builder::derive_signature(&body, None);
        let mut block = Block::new(name, iter_vars, reads, writes, body);
        if reshape_view {
            block
                .annotations
                .insert("tir.reshape_view".to_string(), AnnValue::Int(1));
        }
        let realize = BlockRealize::new(bindings, block);
        return Ok(Stmt::BlockRealize(Box::new(realize)).in_loops(loops));
    }

    // The ReIndex stage sweeps the *padded* fused space, decoding the
    // original iterators from each fused coordinate and writing explicit
    // zeros in the pad region (the paper's "necessary padding on the
    // input/output operands"); zero is the sum-reduction identity.
    let mut loops: Vec<(Var, i64)> = Vec::new();
    let mut iter_vars: Vec<IterVar> = Vec::new();
    let mut bindings: Vec<Expr> = Vec::new();
    let mut stage_idx: Vec<Expr> = Vec::new();
    let mut subst: HashMap<Var, Expr> = HashMap::new();
    let mut guard: Option<Expr> = None;
    for (pos, g) in operand_groups.iter().enumerate() {
        let lv = Var::int(format!("c{pos}"));
        let wv = Var::int(format!("w{pos}"));
        bindings.push(Expr::from(&lv));
        loops.push((lv, g.padded_extent));
        iter_vars.push(IterVar::spatial(wv.clone(), g.padded_extent));
        stage_idx.push(Expr::from(&wv));
        // Decode the group members from the fused coordinate.
        let mut stride: i64 = g.extents.iter().product();
        for (v, &e) in g.vars.iter().zip(&g.extents) {
            stride /= e;
            let mut decoded = Expr::from(&wv);
            if stride != 1 {
                decoded = decoded.floor_div(stride);
            }
            decoded = decoded.floor_mod(e);
            subst.insert(v.clone(), tir::simplify::simplify_expr(&decoded));
        }
        if g.padded_extent != g.fused_extent {
            let cond = Expr::from(&wv).lt(g.fused_extent);
            guard = Some(match guard {
                None => cond,
                Some(gd) => gd.and(cond),
            });
        }
    }
    let orig_idx: Vec<Expr> = original_indices
        .iter()
        .map(|e| tir::simplify::simplify_expr(&subst_expr(e, &subst)))
        .collect();
    let loaded = original.load(orig_idx);
    let zero = if original.dtype().is_float() {
        Expr::Float(0.0, original.dtype())
    } else {
        Expr::Int(0, original.dtype())
    };
    let value = match guard {
        Some(cond) => Expr::select(cond, loaded, zero),
        None => loaded,
    };
    let body = Stmt::store(stage.clone(), stage_idx, value);
    let (reads, writes) = tir::builder::derive_signature(&body, None);
    let mut block = Block::new(name, iter_vars, reads, writes, body);
    if reshape_view {
        block
            .annotations
            .insert("tir.reshape_view".to_string(), AnnValue::Int(1));
    }
    let realize = BlockRealize::new(bindings, block);
    Ok(Stmt::BlockRealize(Box::new(realize)).in_loops(loops))
}

/// Binds a block to a tensor intrinsic: verifies the block's iteration
/// domain and einsum structure match the intrinsic, then marks the block
/// opaque with the [`INTRIN_ANNOTATION`].
///
/// With `check_scopes`, operand memory scopes must also equal the
/// intrinsic's declared scopes (used on fully staged GPU pipelines).
///
/// # Errors
///
/// Fails when the block does not structurally match the intrinsic.
pub fn tensorize(
    sch: &mut Schedule,
    block: &BlockRef,
    intrin: &TensorIntrin,
    check_scopes: bool,
) -> Result<()> {
    // Loops between the block and its nearest enclosing block: the tile
    // iteration space one invocation of the intrinsic covers.
    let tile_loops = sch.loop_infos(block)?;
    let br = tir::visit::find_block(&sch.func().body, block.name())
        .ok_or_else(|| ScheduleError::BlockNotFound(block.name().to_string()))?;
    // Domain check: the per-instance tile extent of each binding (the part
    // swept by the immediately enclosing loops) must equal the intrinsic's
    // iterator extent; kinds must match. After blockization, bindings have
    // the shape `u_outer * tile + inner(loops)`, so zeroing every non-loop
    // variable exposes the inner part.
    let loop_dom: std::collections::HashMap<Var, i64> = tile_loops
        .iter()
        .map(|li| (li.var.clone(), li.extent))
        .collect();
    // Per-iterator tile extent: the portion of the binding swept by the
    // immediately enclosing loops. Iterators with tile extent 1 are outer
    // (batch-like) and do not take part in the intrinsic invocation.
    let mut nontrivial: Vec<(&tir::IterVar, i64)> = Vec::new();
    for (iv, value) in br.block.iter_vars.iter().zip(&br.iter_values) {
        let zero_outer: HashMap<Var, Expr> = tir::visit::collect_vars_expr(value)
            .into_iter()
            .filter(|v| !loop_dom.contains_key(v))
            .map(|v| (v, Expr::int(0)))
            .collect();
        let inner = tir::simplify::simplify_expr(&subst_expr(value, &zero_outer));
        let tile_extent = if inner.is_const_int(0) {
            1
        } else {
            tir_arith::iter_map::normalize(&inner, &loop_dom)
                .ok()
                .and_then(|s| s.strict_extent())
                .unwrap_or(-1)
        };
        if tile_extent == -1 {
            return Err(ScheduleError::Precondition(format!(
                "binding of iterator {} is not a compact tile",
                iv.var.name()
            )));
        }
        if tile_extent > 1 {
            nontrivial.push((iv, tile_extent));
        }
    }
    if nontrivial.len() != intrin.iters.len() {
        return Err(ScheduleError::Precondition(format!(
            "block {} has {} tiled iterators, intrinsic {} has {}",
            block.name(),
            nontrivial.len(),
            intrin.name,
            intrin.iters.len()
        )));
    }
    for ((iv, tile_extent), ii) in nontrivial.iter().zip(&intrin.iters) {
        if iv.kind != ii.kind || *tile_extent != ii.extent {
            return Err(ScheduleError::Precondition(format!(
                "iterator {} sweeps a {:?} tile of {tile_extent}, intrinsic \
                 iterator {} needs a {:?} tile of {}",
                iv.var.name(),
                iv.kind,
                ii.name,
                ii.kind,
                ii.extent
            )));
        }
    }
    let einsum = extract_einsum(&br.block)
        .map_err(|e| ScheduleError::Precondition(format!("einsum extraction: {e}")))?;
    if einsum.inputs.len() != intrin.input_iters.len() {
        return Err(ScheduleError::Precondition(
            "operand count does not match the intrinsic".into(),
        ));
    }
    if check_scopes {
        for (j, (buf, _)) in einsum.inputs.iter().enumerate() {
            if let Some(required) = &intrin.input_scopes[j] {
                if buf.scope() != required {
                    return Err(ScheduleError::Precondition(format!(
                        "input {} is in scope {}, intrinsic {} requires {}",
                        buf.name(),
                        buf.scope(),
                        intrin.name,
                        required
                    )));
                }
            }
        }
        if let Some(required) = &intrin.output_scope {
            if einsum.output.0.scope() != required {
                return Err(ScheduleError::Precondition(format!(
                    "output {} is in scope {}, intrinsic {} requires {}",
                    einsum.output.0.name(),
                    einsum.output.0.scope(),
                    intrin.name,
                    required
                )));
            }
        }
    }
    let intrin_name = intrin.name.clone();
    let exec_scope = intrin.exec_scope.clone();
    sch.annotate_block(block, INTRIN_ANNOTATION, AnnValue::Str(intrin_name))?;
    sch.annotate_block(block, "tir.opaque", AnnValue::Int(1))?;
    if let Some(scope) = exec_scope {
        sch.annotate_block(block, "tir.exec_scope", AnnValue::Str(scope))?;
    }
    Ok(())
}

/// Finds the first tensorizable (einsum) block of a function, trying the
/// given intrinsic, and returns its name on success.
pub fn find_tensorizable_block(func: &PrimFunc, intrin: &TensorIntrin) -> Option<String> {
    let mut found = None;
    tir::visit::for_each_block_realize(&func.body, &mut |br| {
        if found.is_some() || br.block.name == "root" {
            return;
        }
        if let Ok(einsum) = extract_einsum(&br.block) {
            if propose_mapping(&br.block, &einsum, intrin).is_ok() {
                found = Some(br.block.name.clone());
            }
        }
    });
    found
}

/// One padded region description recorded during candidate generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PadInfo {
    /// Intrinsic iterator index.
    pub dim: usize,
    /// Valid extent before padding.
    pub valid: i64,
    /// Padded extent.
    pub padded: i64,
}

impl Tensorized {
    /// Padding applied per canonical dimension (empty when everything was
    /// already divisible).
    pub fn paddings(&self) -> Vec<PadInfo> {
        self.fused_extents
            .iter()
            .zip(&self.padded_extents)
            .enumerate()
            .filter(|(_, (v, p))| v != p)
            .map(|(dim, (&valid, &padded))| PadInfo { dim, valid, padded })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrin::builtin_registry;
    use tir::builder::{matmul_func, reduce_compute};
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    fn dot4() -> TensorIntrin {
        builtin_registry().get("dot_4x4x4_f32").unwrap().clone()
    }

    #[test]
    fn tensorize_matmul_divisible() {
        let func = matmul_func("mm", 64, 64, 64, DataType::float32());
        let t = auto_tensorize(&func, "C", &dot4()).expect("tensorize");
        assert_eq!(t.padded_extents, vec![64, 64, 64]);
        assert!(t.paddings().is_empty());
        // The inner block carries the intrinsic annotation and is opaque.
        let br =
            tir::visit::find_block(&t.schedule.func().body, t.inner_block.name()).expect("inner");
        assert!(matches!(
            br.block.annotations.get(INTRIN_ANNOTATION),
            Some(AnnValue::Str(s)) if s == "dot_4x4x4_f32"
        ));
        assert!(br.block.is_opaque());
        // Bit-exact against the untransformed program.
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        tir_analysis::assert_valid(t.schedule.func());
    }

    #[test]
    fn tensorize_matmul_with_padding() {
        // 30x30x30 is not divisible by 4: every canonical dim pads to 32.
        let func = matmul_func("mm", 30, 30, 30, DataType::float32());
        let t = auto_tensorize(&func, "C", &dot4()).expect("tensorize");
        assert_eq!(t.padded_extents, vec![32, 32, 32]);
        assert_eq!(t.paddings().len(), 3);
        assert_eq!(
            t.paddings()[0],
            PadInfo {
                dim: 0,
                valid: 30,
                padded: 32
            }
        );
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        tir_analysis::assert_valid(t.schedule.func());
    }

    #[test]
    fn tensorize_f16_with_wmma() {
        let func = matmul_func("mm", 32, 32, 32, DataType::float16());
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        let t = auto_tensorize(&func, "C", wmma).expect("tensorize");
        assert_eq!(t.padded_extents, vec![32, 32, 32]);
        // f16 rounding happens identically in both programs.
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        // The warp exec-scope annotation is attached (threading validation
        // of exec scopes applies once the sketch binds threads).
        let br =
            tir::visit::find_block(&t.schedule.func().body, t.inner_block.name()).expect("inner");
        assert!(matches!(
            br.block.annotations.get("tir.exec_scope"),
            Some(AnnValue::Str(s)) if s == "warp"
        ));
    }

    /// 1-D convolution: C[n, w, f] += A[n, w + rw, rc] * B[rw, rc, f].
    /// Exercises ReIndex (A's index `w + rw` is not a bare iterator) and
    /// iterator fusion ((n, w) -> x, (rw, rc) -> k).
    #[test]
    fn tensorize_conv1d_via_reindex() {
        let a = Buffer::new("A", DataType::float32(), vec![2, 11, 4]);
        let b = Buffer::new("B", DataType::float32(), vec![3, 4, 8]);
        let c = Buffer::new("C", DataType::float32(), vec![2, 9, 8]);
        let body = reduce_compute("C", &c, &[3, 4], Expr::f32(0.0), |sp, rd| {
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) + Expr::from(&rd[0]),
                Expr::from(&rd[1]),
            ]) * b.load(vec![
                Expr::from(&rd[0]),
                Expr::from(&rd[1]),
                Expr::from(&sp[2]),
            ])
        });
        let func = PrimFunc::new("conv1d", vec![a, b, c], body);
        let t = auto_tensorize(&func, "C", &dot4()).expect("tensorize conv");
        // x = fuse(n, w) = 18 -> 20; y = f = 8; k = fuse(rw, rc) = 12.
        assert_eq!(t.fused_extents, vec![18, 8, 12]);
        assert_eq!(t.padded_extents, vec![20, 8, 12]);
        // The reindex stages exist.
        assert!(t.data_movement_blocks.contains(&"A_reindex".to_string()));
        assert!(t.data_movement_blocks.contains(&"C_writeback".to_string()));
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        tir_analysis::assert_valid(t.schedule.func());
    }

    #[test]
    fn tensorize_int8_sdot() {
        let func = matmul_func("qmm", 16, 16, 16, DataType::int8());
        // int8 x int8 -> int32 accumulate: build with explicit casts.
        let a = Buffer::new("A", DataType::int8(), vec![16, 16]);
        let b = Buffer::new("B", DataType::int8(), vec![16, 16]);
        let c = Buffer::new("C", DataType::int32(), vec![16, 16]);
        let body = reduce_compute("C", &c, &[16], Expr::Int(0, DataType::int32()), |sp, rd| {
            a.load(vec![Expr::from(&sp[0]), Expr::from(&rd[0])])
                .cast(DataType::int32())
                * b.load(vec![Expr::from(&rd[0]), Expr::from(&sp[1])])
                    .cast(DataType::int32())
        });
        let func2 = PrimFunc::new("qmm", vec![a, b, c], body);
        let _ = func;
        let reg = builtin_registry();
        let sdot = reg.get("sdot_4x4x4_i8").unwrap();
        let t = auto_tensorize(&func2, "C", sdot).expect("tensorize sdot");
        assert_same_semantics(&func2, t.schedule.func(), 1, 0.0);
        tir_analysis::assert_valid(t.schedule.func());
    }

    #[test]
    fn rejects_elementwise_block() {
        let b = Buffer::new("B", DataType::float32(), vec![8, 8]);
        let body = tir::builder::compute("B", &b, |_| Expr::f32(1.0));
        let func = PrimFunc::new("ew", vec![b], body);
        let err = auto_tensorize(&func, "B", &dot4()).unwrap_err();
        assert!(matches!(err, ScheduleError::Precondition(_)), "{err}");
    }

    #[test]
    fn find_tensorizable_block_scans() {
        let func = matmul_func("mm", 16, 16, 16, DataType::float32());
        assert_eq!(
            find_tensorizable_block(&func, &dot4()),
            Some("C".to_string())
        );
        let b = Buffer::new("B", DataType::float32(), vec![8]);
        let ew = PrimFunc::new(
            "ew",
            vec![b.clone()],
            tir::builder::compute("B", &b, |_| Expr::f32(1.0)),
        );
        assert_eq!(find_tensorizable_block(&ew, &dot4()), None);
    }

    #[test]
    fn outer_block_remains_schedulable_after_tensorize() {
        let func = matmul_func("mm", 64, 64, 64, DataType::float32());
        let t = auto_tensorize(&func, "C", &dot4()).expect("tensorize");
        let mut sch = t.schedule;
        let outer_loops = sch.get_loops(&t.outer_block).expect("outer loops");
        assert_eq!(outer_loops.len(), 3);
        // Transform the outer loops without touching the tensorized body.
        let parts = sch.split(&outer_loops[0], &[4, 4]).expect("split outer");
        sch.reorder(&[outer_loops[1].clone(), parts[1].clone()])
            .expect("reorder outer");
        assert_same_semantics(&func, sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::intrin::builtin_registry;
    use tir::builder::reduce_compute;
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    fn dot4() -> TensorIntrin {
        builtin_registry().get("dot_4x4x4_f32").unwrap().clone()
    }

    /// Batch matmul: C[b, i, j] += A[b, i, r] * B[b, r, j]. The batch
    /// iterator appears in every operand and stays as an outer loop.
    #[test]
    fn tensorize_batch_matmul() {
        let a = Buffer::new("A", DataType::float32(), vec![3, 8, 8]);
        let b = Buffer::new("B", DataType::float32(), vec![3, 8, 8]);
        let c = Buffer::new("C", DataType::float32(), vec![3, 8, 8]);
        let body = reduce_compute("C", &c, &[8], Expr::f32(0.0), |sp, rd| {
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]),
                Expr::from(&rd[0]),
            ]) * b.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&rd[0]),
                Expr::from(&sp[2]),
            ])
        });
        let func = PrimFunc::new("bmm", vec![a, b, c], body);
        let t = auto_tensorize(&func, "C", &dot4()).expect("tensorize bmm");
        assert_eq!(t.padded_extents, vec![8, 8, 8]);
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        tir_analysis::assert_valid(t.schedule.func());
    }

    /// Grouped 1-D conv: C[n, w, g, f] += A[n, w + rw, g, ci] *
    /// W[g, rw, ci, f]: g is batch-like.
    #[test]
    fn tensorize_grouped_conv() {
        let a = Buffer::new("A", DataType::float32(), vec![2, 10, 2, 4]);
        let w = Buffer::new("W", DataType::float32(), vec![2, 3, 4, 8]);
        let c = Buffer::new("C", DataType::float32(), vec![2, 8, 2, 8]);
        let body = reduce_compute("C", &c, &[3, 4], Expr::f32(0.0), |sp, rd| {
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) + Expr::from(&rd[0]),
                Expr::from(&sp[2]),
                Expr::from(&rd[1]),
            ]) * w.load(vec![
                Expr::from(&sp[2]),
                Expr::from(&rd[0]),
                Expr::from(&rd[1]),
                Expr::from(&sp[3]),
            ])
        });
        let func = PrimFunc::new("grp", vec![a, w, c], body);
        let t = auto_tensorize(&func, "C", &dot4()).expect("tensorize grp");
        // x = fuse(n, w) = 16; y = f = 8; k = fuse(rw, ci) = 12; batch g=2.
        assert_eq!(t.fused_extents, vec![16, 8, 12]);
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        tir_analysis::assert_valid(t.schedule.func());
    }

    /// Depthwise 1-D conv: C[n, w, c] += A[n, w + rw, c] * W[rw, c]: the
    /// channel c is batch-like and there is no `y` iterator — the y group
    /// is empty and pads from 1 to 4 (reflecting depthwise's poor tensor-
    /// core utilization).
    #[test]
    fn tensorize_depthwise_pads_empty_dim() {
        let a = Buffer::new("A", DataType::float32(), vec![2, 10, 4]);
        let w = Buffer::new("W", DataType::float32(), vec![3, 4]);
        let c = Buffer::new("C", DataType::float32(), vec![2, 8, 4]);
        let body = reduce_compute("C", &c, &[3], Expr::f32(0.0), |sp, rd| {
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) + Expr::from(&rd[0]),
                Expr::from(&sp[2]),
            ]) * w.load(vec![Expr::from(&rd[0]), Expr::from(&sp[2])])
        });
        let func = PrimFunc::new("dep", vec![a, w, c], body);
        let t = auto_tensorize(&func, "C", &dot4()).expect("tensorize dep");
        // x = fuse(n, w) = 16; y empty -> 1 padded to 4; k = rw = 3 -> 4.
        assert_eq!(t.fused_extents, vec![16, 1, 3]);
        assert_eq!(t.padded_extents, vec![16, 4, 4]);
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        tir_analysis::assert_valid(t.schedule.func());
    }
}

#[cfg(test)]
mod fusion_order_tests {
    use super::*;
    use crate::intrin::builtin_registry;
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    /// Both fusion orders produce bit-exact programs; the staged layouts
    /// differ (different decode expressions), which is the knob's point.
    #[test]
    fn reversed_fusion_order_is_bit_exact() {
        let reg = builtin_registry();
        let intrin = reg.get("dot_4x4x4_f32").unwrap();
        let func = tir_workloads::c1d(2, 14, 4, 6, 3, 1, DataType::float32());
        let default = auto_tensorize_with_order(&func, "C", intrin, FusionOrder::Declaration)
            .expect("default order");
        let reversed = auto_tensorize_with_order(&func, "C", intrin, FusionOrder::Reversed)
            .expect("reversed order");
        assert_same_semantics(&func, default.schedule.func(), 1, 0.0);
        // Reversing the reduce-group fusion order permutes the summation
        // order: bit-exactness is not expected for floats, equality within
        // rounding is.
        assert_same_semantics(&func, reversed.schedule.func(), 1, 1e-5);
        // Same canonical extents either way (fusion is a bijection).
        assert_eq!(default.fused_extents, reversed.fused_extents);
        // But the staging programs differ in how coordinates decode.
        let a = default.schedule.func().to_string();
        let b = reversed.schedule.func().to_string();
        assert_ne!(a, b, "orders should change the staged layout");
    }
}
