//! Tensor intrinsic descriptions (§4.1).
//!
//! A [`TensorIntrin`] describes one hardware tensor instruction with the
//! *same* TensorIR vocabulary used for programs: an iteration domain with
//! spatial/reduce kinds, operand index signatures (which iterators index
//! which operand), operand data types, memory-scope constraints, and an
//! execution scope. Matching a workload against the description follows
//! the paper's characteristic-vector algorithm (§4.2), implemented in
//! [`crate::pattern`].
//!
//! The *implementation* side of an intrinsic in this reproduction is the
//! scalar body of the tensorized block itself, marked opaque and annotated
//! with the intrinsic name: the interpreter executes the scalar semantics
//! bit-exactly, while the hardware simulator prices the block at the
//! intrinsic's declared throughput. (Real-machine codegen is out of scope;
//! see DESIGN.md §1.)

use std::collections::HashMap;

use tir::{DataType, IterKind, MemScope};

/// One iterator of an intrinsic's iteration domain.
#[derive(Clone, Debug)]
pub struct IntrinIter {
    /// Display name (e.g. `"x"`).
    pub name: String,
    /// Domain extent.
    pub extent: i64,
    /// Spatial or reduction.
    pub kind: IterKind,
}

/// The computation pattern `f` of the intrinsic (Eq. 2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EinsumPattern {
    /// `O[v0] += I1[v1] * I2[v2]` — dot product / matrix multiply family.
    MulAdd,
}

/// A tensor intrinsic: semantics description plus backend constraints.
///
/// # Examples
///
/// ```
/// use tir_tensorize::intrin::{builtin_registry, TensorIntrin};
/// let reg = builtin_registry();
/// let wmma = reg.get("wmma_16x16x16_f16").unwrap();
/// assert_eq!(wmma.dims(), vec![16, 16, 16]);
/// ```
#[derive(Clone, Debug)]
pub struct TensorIntrin {
    /// Unique intrinsic name.
    pub name: String,
    /// The iteration domain `v` of Eq. 2, in canonical order.
    pub iters: Vec<IntrinIter>,
    /// Indices (into `iters`) of the output operand's iterator list `v0`.
    pub output_iters: Vec<usize>,
    /// Per input operand, indices of its iterator list `v1..vk`.
    pub input_iters: Vec<Vec<usize>>,
    /// The expression pattern `f`.
    pub pattern: EinsumPattern,
    /// Input operand data types.
    pub input_dtypes: Vec<DataType>,
    /// Output (accumulator) data type.
    pub output_dtype: DataType,
    /// Required memory scope per input operand (empty = unconstrained).
    pub input_scopes: Vec<Option<MemScope>>,
    /// Required memory scope of the output operand.
    pub output_scope: Option<MemScope>,
    /// Execution scope requirement (`"warp"` for Tensor Cores).
    pub exec_scope: Option<String>,
}

impl TensorIntrin {
    /// The iteration-domain extents in canonical order.
    pub fn dims(&self) -> Vec<i64> {
        self.iters.iter().map(|i| i.extent).collect()
    }

    /// Characteristic vector of intrinsic iterator `idx`: one bit per
    /// operand list (output first, then inputs), set when the iterator
    /// appears in that operand's index list.
    pub fn characteristic(&self, idx: usize) -> Vec<bool> {
        let mut chi = Vec::with_capacity(1 + self.input_iters.len());
        chi.push(self.output_iters.contains(&idx));
        for input in &self.input_iters {
            chi.push(input.contains(&idx));
        }
        chi
    }

    /// Number of multiply-accumulate operations one invocation performs.
    pub fn macs_per_invocation(&self) -> i64 {
        self.iters.iter().map(|i| i.extent).product()
    }
}

/// A named collection of tensor intrinsics for a hardware target.
#[derive(Clone, Default, Debug)]
pub struct IntrinRegistry {
    intrins: HashMap<String, TensorIntrin>,
}

impl IntrinRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an intrinsic, replacing any previous one of the same name.
    pub fn register(&mut self, intrin: TensorIntrin) {
        self.intrins.insert(intrin.name.clone(), intrin);
    }

    /// Looks up an intrinsic by name.
    pub fn get(&self, name: &str) -> Option<&TensorIntrin> {
        self.intrins.get(name)
    }

    /// All registered intrinsics (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &TensorIntrin> {
        self.intrins.values()
    }
}

/// Builds a matmul-shaped intrinsic `O[x, y] += A[x, k] * B[k, y]`.
pub fn matmul_intrin(
    name: &str,
    m: i64,
    n: i64,
    k: i64,
    in_dtype: DataType,
    out_dtype: DataType,
) -> TensorIntrin {
    TensorIntrin {
        name: name.to_string(),
        iters: vec![
            IntrinIter {
                name: "x".into(),
                extent: m,
                kind: IterKind::Spatial,
            },
            IntrinIter {
                name: "y".into(),
                extent: n,
                kind: IterKind::Spatial,
            },
            IntrinIter {
                name: "k".into(),
                extent: k,
                kind: IterKind::Reduce,
            },
        ],
        output_iters: vec![0, 1],
        input_iters: vec![vec![0, 2], vec![2, 1]],
        pattern: EinsumPattern::MulAdd,
        input_dtypes: vec![in_dtype, in_dtype],
        output_dtype: out_dtype,
        input_scopes: vec![None, None],
        output_scope: None,
        exec_scope: None,
    }
}

/// The registry of the built-in intrinsics used throughout the evaluation.
///
/// * `dot_4x4x4_f32` — the paper's synthetic example (Fig. 8): a 4x4x4
///   matmul implemented with a dot-product instruction, no scope
///   constraints.
/// * `wmma_16x16x16_f16` — NVIDIA Tensor Core `mma_sync`: f16 operands in
///   `wmma.matrix_a`/`wmma.matrix_b` fragments, f16 accumulator in
///   `wmma.accumulator`, warp execution scope.
/// * `sdot_4x4x4_i8` — the ARM `sdot`-based GEMM micro-kernel shape used
///   on Graviton2: int8 inputs, int32 accumulator, no special scopes.
pub fn builtin_registry() -> IntrinRegistry {
    let mut reg = IntrinRegistry::new();
    reg.register(matmul_intrin(
        "dot_4x4x4_f32",
        4,
        4,
        4,
        DataType::float32(),
        DataType::float32(),
    ));
    let mut wmma = matmul_intrin(
        "wmma_16x16x16_f16",
        16,
        16,
        16,
        DataType::float16(),
        DataType::float16(),
    );
    wmma.input_scopes = vec![Some(MemScope::WmmaMatrixA), Some(MemScope::WmmaMatrixB)];
    wmma.output_scope = Some(MemScope::WmmaAccumulator);
    wmma.exec_scope = Some("warp".to_string());
    reg.register(wmma);
    reg.register(matmul_intrin(
        "sdot_4x4x4_i8",
        4,
        4,
        4,
        DataType::int8(),
        DataType::int32(),
    ));
    // The ARMv8.6 `smmla` 2x2x8 int8 matrix-multiply instruction (as used
    // by newer micro-kernels): twice the MAC throughput of `sdot` where
    // available. Machines that lack it simply omit it from their tensor
    // units and the search ignores it.
    reg.register(matmul_intrin(
        "smmla_2x2x8_i8",
        2,
        2,
        8,
        DataType::int8(),
        DataType::int32(),
    ));
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_present() {
        let reg = builtin_registry();
        assert!(reg.get("dot_4x4x4_f32").is_some());
        assert!(reg.get("wmma_16x16x16_f16").is_some());
        assert!(reg.get("sdot_4x4x4_i8").is_some());
        assert!(reg.get("smmla_2x2x8_i8").is_some());
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.iter().count(), 4);
    }

    #[test]
    fn characteristic_vectors() {
        let reg = builtin_registry();
        let mm = reg.get("dot_4x4x4_f32").unwrap();
        // x: in O and A -> [1, 1, 0]
        assert_eq!(mm.characteristic(0), vec![true, true, false]);
        // y: in O and B -> [1, 0, 1]
        assert_eq!(mm.characteristic(1), vec![true, false, true]);
        // k: in A and B -> [0, 1, 1]
        assert_eq!(mm.characteristic(2), vec![false, true, true]);
    }

    #[test]
    fn wmma_constraints() {
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        assert_eq!(wmma.exec_scope.as_deref(), Some("warp"));
        assert_eq!(wmma.macs_per_invocation(), 16 * 16 * 16);
        assert_eq!(wmma.input_scopes[0], Some(MemScope::WmmaMatrixA));
        assert_eq!(wmma.output_scope, Some(MemScope::WmmaAccumulator));
    }
}
