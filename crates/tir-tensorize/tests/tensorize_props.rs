//! Property tests: auto-tensorization is bit-exact on random shapes
//! (divisible or not — padding must be transparent) and random einsum
//! structures.

use proptest::prelude::*;

use tir::{Buffer, DataType, Expr, PrimFunc};
use tir_exec::assert_same_semantics;
use tir_tensorize::{auto_tensorize, builtin_registry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Matmul of arbitrary small shape tensorizes bit-exactly with the
    /// 4x4x4 intrinsic; non-divisible shapes exercise the padding path.
    #[test]
    fn random_matmul_shapes_tensorize(m in 1i64..14, n in 1i64..14, k in 1i64..14) {
        let reg = builtin_registry();
        let intrin = reg.get("dot_4x4x4_f32").unwrap();
        let func = tir::builder::matmul_func("mm", m, n, k, DataType::float32());
        let t = auto_tensorize(&func, "C", intrin)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        // Padded extents are the next multiples of 4.
        let up = |v: i64| ((v + 3) / 4) * 4;
        prop_assert_eq!(t.padded_extents.clone(), vec![up(m), up(n), up(k)]);
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        tir_analysis::validate(t.schedule.func())
            .map_err(|e| TestCaseError::fail(format!("{}", e[0])))?;
    }

    /// 1-D convolutions of random geometry (stride, kernel, channels)
    /// tensorize bit-exactly through ReIndex + fusion + padding.
    #[test]
    fn random_conv1d_geometry_tensorizes(
        l in 6i64..14,
        ci in 1i64..6,
        co in 1i64..6,
        kernel in 1i64..4,
        stride in 1i64..3,
    ) {
        prop_assume!(l > kernel);
        let reg = builtin_registry();
        let intrin = reg.get("dot_4x4x4_f32").unwrap();
        let func = tir_workloads::c1d(1, l, ci, co, kernel, stride, DataType::float32());
        let t = auto_tensorize(&func, "C", intrin)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
    }

    /// Batched matmul with a random batch extent keeps the batch iterator
    /// outside the intrinsic and stays exact.
    #[test]
    fn random_batch_extents_tensorize(b in 1i64..5, s in 2i64..9) {
        let reg = builtin_registry();
        let intrin = reg.get("dot_4x4x4_f32").unwrap();
        let func = tir_workloads::batch_matmul(
            b, s, s, s,
            DataType::float32(),
            DataType::float32(),
        );
        let t = auto_tensorize(&func, "C", intrin)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
    }
}

/// An einsum with an elementwise *scaling* inside the term is not a plain
/// `A * B` product and must be rejected cleanly (not mis-tensorized).
#[test]
fn non_muladd_terms_rejected() {
    let a = Buffer::new("A", DataType::float32(), vec![8, 8]);
    let c = Buffer::new("C", DataType::float32(), vec![8, 8]);
    let body = tir::builder::reduce_compute("C", &c, &[8], Expr::f32(0.0), |sp, rd| {
        // term = A[i,k] + A[k,j]: a sum, not a product.
        a.load(vec![Expr::from(&sp[0]), Expr::from(&rd[0])])
            + a.load(vec![Expr::from(&rd[0]), Expr::from(&sp[1])])
    });
    let func = PrimFunc::new("weird", vec![a, c], body);
    let reg = builtin_registry();
    let intrin = reg.get("dot_4x4x4_f32").unwrap();
    assert!(auto_tensorize(&func, "C", intrin).is_err());
}
