//! Property tests: auto-tensorization is bit-exact on random shapes
//! (divisible or not — padding must be transparent) and random einsum
//! structures.
//!
//! Originally written with `proptest`; rewritten with a seeded in-repo RNG
//! over the same parameter ranges so the workspace builds with no external
//! dependencies.

use tir::{Buffer, DataType, Expr, PrimFunc};
use tir_exec::assert_same_semantics;
use tir_rand::{rngs::StdRng, RngExt, SeedableRng};
use tir_tensorize::{auto_tensorize, builtin_registry};

/// Matmul of arbitrary small shape tensorizes bit-exactly with the 4x4x4
/// intrinsic; non-divisible shapes exercise the padding path.
#[test]
fn random_matmul_shapes_tensorize() {
    let reg = builtin_registry();
    let intrin = reg.get("dot_4x4x4_f32").unwrap();
    let mut rng = StdRng::seed_from_u64(0x3a7);
    // Corner shapes plus a seeded sample of the (1..14)^3 space.
    let mut shapes = vec![(1i64, 1i64, 1i64), (4, 4, 4), (13, 13, 13), (4, 13, 7)];
    for _ in 0..10 {
        shapes.push((
            rng.random_range(1i64..14),
            rng.random_range(1i64..14),
            rng.random_range(1i64..14),
        ));
    }
    for (m, n, k) in shapes {
        let func = tir::builder::matmul_func("mm", m, n, k, DataType::float32());
        let t = auto_tensorize(&func, "C", intrin).unwrap_or_else(|e| panic!("{m}x{n}x{k}: {e}"));
        // Padded extents are the next multiples of 4.
        let up = |v: i64| ((v + 3) / 4) * 4;
        assert_eq!(t.padded_extents.clone(), vec![up(m), up(n), up(k)]);
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        tir_analysis::validate(t.schedule.func())
            .unwrap_or_else(|e| panic!("{m}x{n}x{k}: {}", e[0]));
    }
}

/// 1-D convolutions of random geometry (stride, kernel, channels)
/// tensorize bit-exactly through ReIndex + fusion + padding.
#[test]
fn random_conv1d_geometry_tensorizes() {
    let reg = builtin_registry();
    let intrin = reg.get("dot_4x4x4_f32").unwrap();
    let mut rng = StdRng::seed_from_u64(0xc1d);
    let mut cases = 0;
    while cases < 12 {
        let l = rng.random_range(6i64..14);
        let ci = rng.random_range(1i64..6);
        let co = rng.random_range(1i64..6);
        let kernel = rng.random_range(1i64..4);
        let stride = rng.random_range(1i64..3);
        if l <= kernel {
            continue;
        }
        cases += 1;
        let func = tir_workloads::c1d(1, l, ci, co, kernel, stride, DataType::float32());
        let t = auto_tensorize(&func, "C", intrin)
            .unwrap_or_else(|e| panic!("l={l} ci={ci} co={co} k={kernel} s={stride}: {e}"));
        assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
    }
}

/// Batched matmul with any batch extent in the original sampling range
/// keeps the batch iterator outside the intrinsic and stays exact.
#[test]
fn random_batch_extents_tensorize() {
    let reg = builtin_registry();
    let intrin = reg.get("dot_4x4x4_f32").unwrap();
    for b in 1i64..5 {
        for s in [2i64, 5, 8] {
            let func =
                tir_workloads::batch_matmul(b, s, s, s, DataType::float32(), DataType::float32());
            let t =
                auto_tensorize(&func, "C", intrin).unwrap_or_else(|e| panic!("b={b} s={s}: {e}"));
            assert_same_semantics(&func, t.schedule.func(), 1, 0.0);
        }
    }
}

/// An einsum with an elementwise *scaling* inside the term is not a plain
/// `A * B` product and must be rejected cleanly (not mis-tensorized).
#[test]
fn non_muladd_terms_rejected() {
    let a = Buffer::new("A", DataType::float32(), vec![8, 8]);
    let c = Buffer::new("C", DataType::float32(), vec![8, 8]);
    let body = tir::builder::reduce_compute("C", &c, &[8], Expr::f32(0.0), |sp, rd| {
        // term = A[i,k] + A[k,j]: a sum, not a product.
        a.load(vec![Expr::from(&sp[0]), Expr::from(&rd[0])])
            + a.load(vec![Expr::from(&rd[0]), Expr::from(&sp[1])])
    });
    let func = PrimFunc::new("weird", vec![a, c], body);
    let reg = builtin_registry();
    let intrin = reg.get("dot_4x4x4_f32").unwrap();
    assert!(auto_tensorize(&func, "C", intrin).is_err());
}
