//! Property tests for the arithmetic substrate: iterator-map detection
//! agrees with brute-force evaluation on exhaustively composed split/fuse
//! bindings, rejects dependent ones, and interval analysis is sound.
//!
//! Originally written with `proptest`; rewritten as exhaustive sweeps over
//! the same parameter ranges so the workspace builds with no external
//! dependencies (the ranges are small enough to enumerate completely,
//! which is strictly stronger than sampling).

use std::collections::HashMap;

use tir::simplify::{floor_div_i64, floor_mod_i64};
use tir::{BinOp, Expr, Var};
use tir_arith::bound::{bound_of, IntBound};
use tir_arith::iter_map::{detect_iter_map, eval_iter_sum};

/// Little-int expression evaluator for soundness checks.
fn eval(e: &Expr, env: &HashMap<Var, i64>) -> Option<i64> {
    Some(match e {
        Expr::Int(v, _) => *v,
        Expr::Var(v) => *env.get(v)?,
        Expr::Bin(op, a, b) => {
            let (x, y) = (eval(a, env)?, eval(b, env)?);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::FloorDiv => {
                    if y == 0 {
                        return None;
                    }
                    floor_div_i64(x, y)
                }
                BinOp::FloorMod => {
                    if y == 0 {
                        return None;
                    }
                    floor_mod_i64(x, y)
                }
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::And => ((x != 0) && (y != 0)) as i64,
                BinOp::Or => ((x != 0) || (y != 0)) as i64,
                BinOp::Div => {
                    if y == 0 {
                        return None;
                    }
                    x / y
                }
            }
        }
        Expr::Cmp(op, a, b) => op.apply(eval(a, env)?, eval(b, env)?) as i64,
        Expr::Not(v) => (eval(v, env)? == 0) as i64,
        Expr::Select { cond, then, other } => {
            if eval(cond, env)? != 0 {
                eval(then, env)?
            } else {
                eval(other, env)?
            }
        }
        _ => return None,
    })
}

/// Fuse-then-split at a radix-aligned cut is always detected, with extents
/// matching and normalized sums evaluating exactly like the source
/// expressions over the whole domain.
#[test]
fn fuse_split_detected_and_exact() {
    for e1 in 2i64..6 {
        for e2 in 2i64..6 {
            for e3 in 2i64..5 {
                let (i, j, k) = (Var::int("i"), Var::int("j"), Var::int("k"));
                let fused = (Expr::from(&i) * e2 + Expr::from(&j)) * e3 + Expr::from(&k);
                let total = e1 * e2 * e3;
                // Radix-aligned cuts: divisors of e3, then e3 * divisors
                // of e2, ...
                let mut cuts = vec![1i64];
                for d in 1..=e3 {
                    if e3 % d == 0 {
                        cuts.push(d);
                    }
                }
                for d in 1..=e2 {
                    if e2 % d == 0 {
                        cuts.push(e3 * d);
                    }
                }
                cuts.sort_unstable();
                cuts.dedup();
                for &c in &cuts {
                    let bindings = vec![fused.clone().floor_div(c), fused.clone().floor_mod(c)];
                    let dom = vec![(i.clone(), e1), (j.clone(), e2), (k.clone(), e3)];
                    let map =
                        detect_iter_map(&bindings, &dom).unwrap_or_else(|e| panic!("cut {c}: {e}"));
                    assert_eq!(map.extents[0] * map.extents[1], total);
                    for iv in 0..e1 {
                        for jv in 0..e2 {
                            for kv in 0..e3 {
                                let env: HashMap<Var, i64> =
                                    [(i.clone(), iv), (j.clone(), jv), (k.clone(), kv)]
                                        .into_iter()
                                        .collect();
                                let f = (iv * e2 + jv) * e3 + kv;
                                assert_eq!(eval_iter_sum(&map.sums[0], &env), f / c);
                                assert_eq!(eval_iter_sum(&map.sums[1], &env), f % c);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Reusing an iterator across bindings is always rejected.
#[test]
fn duplicated_iterators_rejected() {
    for e1 in 2i64..8 {
        for scale in 1i64..4 {
            let i = Var::int("i");
            let bindings = vec![Expr::from(&i), Expr::from(&i) * scale];
            assert!(detect_iter_map(&bindings, &[(i.clone(), e1)]).is_err());
        }
    }
}

/// Interval analysis is sound: the bound always contains the value at
/// every point of the domain.
#[test]
fn bound_of_is_sound() {
    for a in -4i64..8 {
        for b in 1i64..6 {
            for c in 1i64..9 {
                let (vx, vy) = (Var::int("x"), Var::int("y"));
                // Expression combining the tricky operators.
                let e = (Expr::from(&vx) * a + Expr::from(&vy))
                    .floor_div(b)
                    .floor_mod(c)
                    .max(Expr::from(&vy) - 3)
                    .min(Expr::from(&vx) + a);
                let bounds: HashMap<Var, IntBound> = [
                    (vx.clone(), IntBound::new(0, 15)),
                    (vy.clone(), IntBound::new(0, 7)),
                ]
                .into_iter()
                .collect();
                let bound = bound_of(&e, &bounds);
                for x in 0i64..16 {
                    for y in 0i64..8 {
                        let env: HashMap<Var, i64> =
                            [(vx.clone(), x), (vy.clone(), y)].into_iter().collect();
                        let v = eval(&e, &env).expect("no division by zero here");
                        assert!(
                            bound.min <= v && v <= bound.max,
                            "value {} outside [{}, {}] for {}",
                            v,
                            bound.min,
                            bound.max,
                            e
                        );
                    }
                }
            }
        }
    }
}

/// The simplifier never changes the value of an expression.
#[test]
fn simplify_preserves_value() {
    for c1 in -5i64..10 {
        for c2 in 1i64..7 {
            for c3 in 1i64..5 {
                let (vx, vy) = (Var::int("x"), Var::int("y"));
                let candidates = [
                    (Expr::from(&vx) * c2 + c1).floor_div(c2),
                    (Expr::from(&vx) * c2 + Expr::from(&vy)).floor_mod(c2),
                    (Expr::from(&vx) + c1) + c2,
                    (Expr::from(&vx) * c2) * c3,
                    ((Expr::from(&vx) + Expr::from(&vy)) - Expr::from(&vx)) * c3,
                    Expr::from(&vx).min(Expr::from(&vy)).max(c1),
                    Expr::select(
                        Expr::from(&vx).lt(c2),
                        Expr::from(&vy) + c1,
                        Expr::from(&vx) - c1,
                    ),
                ];
                for e in candidates {
                    let simplified = tir::simplify::simplify_expr(&e);
                    for x in (0i64..12).step_by(3) {
                        for y in (0i64..12).step_by(3) {
                            let env: HashMap<Var, i64> =
                                [(vx.clone(), x), (vy.clone(), y)].into_iter().collect();
                            let before = eval(&e, &env);
                            let after = eval(&simplified, &env);
                            assert_eq!(before, after, "{} vs {}", e, simplified);
                        }
                    }
                }
            }
        }
    }
}
