//! Constant interval analysis over integer expressions.

use std::collections::HashMap;

use tir::simplify::{floor_div_i64, floor_mod_i64};
use tir::{BinOp, CmpOp, Expr, Var};

/// An inclusive integer interval `[min, max]`.
///
/// # Examples
///
/// ```
/// use tir_arith::bound::IntBound;
/// let a = IntBound::new(0, 3);
/// let b = IntBound::new(2, 5);
/// assert_eq!(a + b, IntBound::new(2, 8));
/// assert_eq!(a * IntBound::single(4), IntBound::new(0, 12));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IntBound {
    /// Smallest possible value.
    pub min: i64,
    /// Largest possible value.
    pub max: i64,
}

impl IntBound {
    /// Creates an interval; `min` must not exceed `max`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: i64, max: i64) -> Self {
        assert!(min <= max, "invalid bound [{min}, {max}]");
        IntBound { min, max }
    }

    /// A single-point interval.
    pub fn single(v: i64) -> Self {
        Self::new(v, v)
    }

    /// The unbounded interval.
    pub fn everything() -> Self {
        Self::new(i64::MIN / 4, i64::MAX / 4)
    }

    /// Whether this interval is a single point.
    pub fn is_single(self) -> bool {
        self.min == self.max
    }

    /// Whether every value in this interval is non-negative.
    pub fn is_non_negative(self) -> bool {
        self.min >= 0
    }

    /// Number of integer points covered.
    pub fn count(self) -> i64 {
        self.max - self.min + 1
    }

    /// Union (convex hull) of two intervals.
    pub fn union(self, other: Self) -> Self {
        Self::new(self.min.min(other.min), self.max.max(other.max))
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(self, other: Self) -> bool {
        self.min <= other.min && other.max <= self.max
    }
}

impl std::ops::Add for IntBound {
    type Output = IntBound;
    fn add(self, rhs: Self) -> Self {
        IntBound::new(
            self.min.saturating_add(rhs.min),
            self.max.saturating_add(rhs.max),
        )
    }
}
impl std::ops::Sub for IntBound {
    type Output = IntBound;
    fn sub(self, rhs: Self) -> Self {
        IntBound::new(
            self.min.saturating_sub(rhs.max),
            self.max.saturating_sub(rhs.min),
        )
    }
}
impl std::ops::Mul for IntBound {
    type Output = IntBound;
    fn mul(self, rhs: Self) -> Self {
        let candidates = [
            self.min.saturating_mul(rhs.min),
            self.min.saturating_mul(rhs.max),
            self.max.saturating_mul(rhs.min),
            self.max.saturating_mul(rhs.max),
        ];
        IntBound::new(
            *candidates.iter().min().expect("nonempty"),
            *candidates.iter().max().expect("nonempty"),
        )
    }
}

fn bound_floordiv(a: IntBound, b: IntBound) -> IntBound {
    if b.min <= 0 && b.max >= 0 {
        return IntBound::everything();
    }
    let candidates = [
        floor_div_i64(a.min, b.min),
        floor_div_i64(a.min, b.max),
        floor_div_i64(a.max, b.min),
        floor_div_i64(a.max, b.max),
    ];
    IntBound::new(
        *candidates.iter().min().expect("nonempty"),
        *candidates.iter().max().expect("nonempty"),
    )
}

fn bound_floormod(a: IntBound, b: IntBound) -> IntBound {
    if b.is_single() && b.min > 0 {
        let c = b.min;
        // If the whole range falls inside one period, keep it tight.
        let qmin = floor_div_i64(a.min, c);
        let qmax = floor_div_i64(a.max, c);
        if qmin == qmax {
            return IntBound::new(floor_mod_i64(a.min, c), floor_mod_i64(a.max, c));
        }
        return IntBound::new(0, c - 1);
    }
    if b.min > 0 {
        return IntBound::new(0, b.max - 1);
    }
    IntBound::everything()
}

/// Computes a (possibly loose, always sound) interval for an integer
/// expression given intervals for its free variables.
///
/// Variables missing from `vars` are treated as unbounded. Boolean
/// subexpressions evaluate to `[0, 1]`.
pub fn bound_of(expr: &Expr, vars: &HashMap<Var, IntBound>) -> IntBound {
    match expr {
        Expr::Int(v, _) => IntBound::single(*v),
        Expr::Float(..) | Expr::Str(_) => IntBound::everything(),
        Expr::Var(v) => vars.get(v).copied().unwrap_or_else(IntBound::everything),
        Expr::Cast(_, v) => bound_of(v, vars),
        Expr::Bin(op, a, b) => {
            let (ba, bb) = (bound_of(a, vars), bound_of(b, vars));
            match op {
                BinOp::Add => ba + bb,
                BinOp::Sub => ba - bb,
                BinOp::Mul => ba * bb,
                BinOp::Div => IntBound::everything(),
                BinOp::FloorDiv => bound_floordiv(ba, bb),
                BinOp::FloorMod => bound_floormod(ba, bb),
                BinOp::Min => IntBound::new(ba.min.min(bb.min), ba.max.min(bb.max)),
                BinOp::Max => IntBound::new(ba.min.max(bb.min), ba.max.max(bb.max)),
                BinOp::And | BinOp::Or => IntBound::new(0, 1),
            }
        }
        Expr::Cmp(op, a, b) => {
            let (ba, bb) = (bound_of(a, vars), bound_of(b, vars));
            // Definitely-true / definitely-false cases tighten to a point.
            let (t, f) = match op {
                CmpOp::Lt => (ba.max < bb.min, ba.min >= bb.max),
                CmpOp::Le => (ba.max <= bb.min, ba.min > bb.max),
                CmpOp::Gt => (ba.min > bb.max, ba.max <= bb.min),
                CmpOp::Ge => (ba.min >= bb.max, ba.max < bb.min),
                CmpOp::Eq => (
                    ba.is_single() && bb.is_single() && ba.min == bb.min,
                    ba.max < bb.min || bb.max < ba.min,
                ),
                CmpOp::Ne => (
                    ba.max < bb.min || bb.max < ba.min,
                    ba.is_single() && bb.is_single() && ba.min == bb.min,
                ),
            };
            if t {
                IntBound::single(1)
            } else if f {
                IntBound::single(0)
            } else {
                IntBound::new(0, 1)
            }
        }
        Expr::Not(v) => {
            let b = bound_of(v, vars);
            if b == IntBound::single(0) {
                IntBound::single(1)
            } else if b.min >= 1 {
                IntBound::single(0)
            } else {
                IntBound::new(0, 1)
            }
        }
        Expr::Select { then, other, .. } => bound_of(then, vars).union(bound_of(other, vars)),
        Expr::Load { .. } | Expr::Call { .. } => IntBound::everything(),
    }
}

/// Attempts to prove a boolean expression always true under the variable
/// bounds. Returns `false` when the proof fails (which does not mean the
/// property is false).
pub fn can_prove(expr: &Expr, vars: &HashMap<Var, IntBound>) -> bool {
    let e = tir::simplify::simplify_expr(expr);
    bound_of(&e, vars) == IntBound::single(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&Var, (i64, i64))]) -> HashMap<Var, IntBound> {
        pairs
            .iter()
            .map(|(v, (lo, hi))| ((*v).clone(), IntBound::new(*lo, *hi)))
            .collect()
    }

    #[test]
    fn affine_bounds() {
        let i = Var::int("i");
        let vars = env(&[(&i, (0, 15))]);
        let e = Expr::from(&i) * 4 + 2;
        assert_eq!(bound_of(&e, &vars), IntBound::new(2, 62));
    }

    #[test]
    fn div_mod_bounds() {
        let i = Var::int("i");
        let vars = env(&[(&i, (0, 63))]);
        assert_eq!(
            bound_of(&Expr::from(&i).floor_div(16), &vars),
            IntBound::new(0, 3)
        );
        assert_eq!(
            bound_of(&Expr::from(&i).floor_mod(16), &vars),
            IntBound::new(0, 15)
        );
        // Range within one period stays tight.
        let j = Var::int("j");
        let vars = env(&[(&j, (17, 20))]);
        assert_eq!(
            bound_of(&Expr::from(&j).floor_mod(16), &vars),
            IntBound::new(1, 4)
        );
    }

    #[test]
    fn min_max_bounds() {
        let i = Var::int("i");
        let vars = env(&[(&i, (0, 10))]);
        let e = Expr::from(&i).min(Expr::int(4));
        assert_eq!(bound_of(&e, &vars), IntBound::new(0, 4));
        let e = Expr::from(&i).max(Expr::int(4));
        assert_eq!(bound_of(&e, &vars), IntBound::new(4, 10));
    }

    #[test]
    fn proves_in_range_predicates() {
        let i = Var::int("i");
        let vars = env(&[(&i, (0, 15))]);
        assert!(can_prove(&Expr::from(&i).lt(16), &vars));
        assert!(!can_prove(&Expr::from(&i).lt(15), &vars));
        assert!(can_prove(&(Expr::from(&i) * 4 + 3).lt(64), &vars));
    }

    #[test]
    fn negation_and_select() {
        let i = Var::int("i");
        let vars = env(&[(&i, (0, 3))]);
        let sel = Expr::select(Expr::from(&i).lt(2), Expr::int(10), Expr::int(20));
        assert_eq!(bound_of(&sel, &vars), IntBound::new(10, 20));
        assert!(can_prove(&Expr::Not(Box::new(Expr::from(&i).lt(0))), &vars));
    }

    #[test]
    fn interval_ops() {
        let a = IntBound::new(-2, 3);
        let b = IntBound::new(1, 4);
        assert_eq!(a - b, IntBound::new(-6, 2));
        assert_eq!(a * b, IntBound::new(-8, 12));
        assert!(IntBound::new(0, 10).contains(IntBound::new(2, 5)));
        assert!(!IntBound::new(0, 10).contains(IntBound::new(2, 15)));
        assert_eq!(
            IntBound::new(0, 1).union(IntBound::new(5, 6)),
            IntBound::new(0, 6)
        );
        assert_eq!(IntBound::new(3, 7).count(), 5);
    }

    #[test]
    fn division_by_mixed_sign_is_everything() {
        let i = Var::int("i");
        let j = Var::int("j");
        let vars = env(&[(&i, (0, 10)), (&j, (-1, 1))]);
        assert_eq!(
            bound_of(&Expr::from(&i).floor_div(Expr::from(&j)), &vars),
            IntBound::everything()
        );
    }
}
