//! Quasi-affine iterator-map detection.
//!
//! This is the pattern matcher of §3.3 of the paper: given block-iterator
//! binding expressions over a set of loop variables, detect whether each
//! binding is a *quasi-affine* combination of independent splits of the
//! loops (built from `+`, `-`, `* const`, `// const`, `% const`), and
//! whether the bindings are jointly **bijective** — every loop assignment
//! maps to a distinct binding tuple and the tuples exactly tile the block's
//! iteration domain.
//!
//! The representation follows TVM's `IterMapExpr` family: an [`IterSplit`]
//! denotes `((var / lower_factor) % extent) * scale` and an [`IterSum`] is
//! a sum of splits plus a constant base. Division and modulo distribute
//! over a *compact* sum (one whose scales form a mixed-radix positional
//! encoding), which is how fuse-then-split expressions like
//! `(i * 16 + j) // 4` are recognized.

use std::collections::HashMap;
use std::fmt;

use tir::{BinOp, Expr, Var};

/// One split piece of a loop variable:
/// `((var // lower_factor) % extent) * scale`.
#[derive(Clone, Debug)]
pub struct IterSplit {
    /// Source loop variable.
    pub var: Var,
    /// Full domain extent of the source variable.
    pub var_extent: i64,
    /// Divisor applied before the modulo.
    pub lower_factor: i64,
    /// Extent of this piece.
    pub extent: i64,
    /// Multiplier applied to the piece.
    pub scale: i64,
}

impl IterSplit {
    fn same_piece(&self, other: &IterSplit) -> bool {
        self.var == other.var
            && self.lower_factor == other.lower_factor
            && self.extent == other.extent
    }
}

/// A normalized quasi-affine expression: a sum of splits plus a base.
#[derive(Clone, Debug, Default)]
pub struct IterSum {
    /// Component splits.
    pub terms: Vec<IterSplit>,
    /// Constant offset.
    pub base: i64,
}

impl IterSum {
    fn constant(base: i64) -> Self {
        IterSum {
            terms: Vec::new(),
            base,
        }
    }

    /// Merges equal pieces and drops zero-scale or extent-1 terms.
    fn canonicalize(mut self) -> Self {
        let mut out: Vec<IterSplit> = Vec::with_capacity(self.terms.len());
        for t in self.terms.drain(..) {
            if let Some(existing) = out.iter_mut().find(|e| e.same_piece(&t)) {
                existing.scale += t.scale;
            } else {
                out.push(t);
            }
        }
        out.retain(|t| t.scale != 0 && t.extent != 1);
        self.terms = out;
        self
    }

    /// Sorts the terms into compact positional order (highest scale first)
    /// and verifies `scale[k] == scale[k+1] * extent[k+1]`. Returns `None`
    /// when the sum is not compact or a scale is non-positive.
    pub fn sorted_compact(&self) -> Option<Vec<IterSplit>> {
        if self.terms.iter().any(|t| t.scale <= 0) {
            return None;
        }
        let mut sorted = self.terms.clone();
        sorted.sort_by_key(|t| std::cmp::Reverse(t.scale));
        for w in sorted.windows(2) {
            if w[0].scale != w[1].scale * w[1].extent {
                return None;
            }
        }
        Some(sorted)
    }

    /// If the sum is compact with unit scale 1 and zero base, returns the
    /// number of distinct values: the sum then bijectively covers
    /// `[0, extent)`.
    pub fn strict_extent(&self) -> Option<i64> {
        if self.base != 0 {
            return None;
        }
        if self.terms.is_empty() {
            return Some(1);
        }
        let sorted = self.sorted_compact()?;
        let last = sorted.last().expect("nonempty");
        if last.scale != 1 {
            return None;
        }
        let first = sorted.first().expect("nonempty");
        Some(first.scale * first.extent)
    }
}

impl fmt::Display for IterSplit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(({} // {}) % {}) * {}",
            self.var.name(),
            self.lower_factor,
            self.extent,
            self.scale
        )
    }
}

impl fmt::Display for IterSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{t}")?;
        }
        if self.base != 0 || self.terms.is_empty() {
            if !self.terms.is_empty() {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.base)?;
        }
        Ok(())
    }
}

/// Why iterator-map detection failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IterMapError {
    /// The expression uses an operation outside the quasi-affine fragment.
    NonAffine(String),
    /// A variable without a known domain appears in a binding.
    UnknownVar(String),
    /// The bindings reuse an iterator piece (e.g. `v1 = i, v2 = i * 2`).
    NotIndependent(String),
    /// The splits of a loop do not tile its full domain.
    IncompleteCover(String),
    /// A binding is not a zero-based compact combination.
    NotStrict(String),
}

impl fmt::Display for IterMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IterMapError::NonAffine(s) => write!(f, "non-affine binding: {s}"),
            IterMapError::UnknownVar(s) => write!(f, "unknown variable in binding: {s}"),
            IterMapError::NotIndependent(s) => write!(f, "bindings are not independent: {s}"),
            IterMapError::IncompleteCover(s) => {
                write!(f, "loop domain not fully covered: {s}")
            }
            IterMapError::NotStrict(s) => write!(f, "binding is not surjective: {s}"),
        }
    }
}

impl std::error::Error for IterMapError {}

type Result<T> = std::result::Result<T, IterMapError>;

/// Distributes `sum // c` (when `div` is true) or `sum % c` over a compact
/// sum by walking its mixed-radix parts from the lowest scale upward.
///
/// Each part either falls entirely below the cut (`scale * extent <= c`,
/// goes to the modulo side), entirely above it (`scale % c == 0`, goes to
/// the quotient side with scale divided by `c`), or straddles the cut and
/// is split into two sub-pieces at `d = c / scale` (requiring
/// `d | extent`).
fn split_at(sum: IterSum, c: i64, div: bool) -> Result<IterSum> {
    if c <= 0 {
        return Err(IterMapError::NonAffine(format!(
            "division by non-positive constant {c}"
        )));
    }
    if sum.base % c != 0 {
        return Err(IterMapError::NonAffine(format!(
            "division base {} not divisible by {c}",
            sum.base
        )));
    }
    if sum.terms.is_empty() {
        return Ok(IterSum::constant(if div { sum.base / c } else { 0 }));
    }
    let sorted = sum
        .sorted_compact()
        .ok_or_else(|| IterMapError::NonAffine(format!("division of non-compact sum: {sum}")))?;
    let mut quot: Vec<IterSplit> = Vec::new();
    let mut rem: Vec<IterSplit> = Vec::new();
    for part in sorted {
        if part.scale % c == 0 {
            quot.push(IterSplit {
                scale: part.scale / c,
                ..part
            });
        } else if part.scale * part.extent <= c {
            // Compactness guarantees the joint value of all below-cut parts
            // stays under `c`, so the part contributes only to the modulo.
            rem.push(part);
        } else if c % part.scale == 0 {
            let d = c / part.scale;
            if part.extent % d != 0 {
                return Err(IterMapError::NonAffine(format!(
                    "cannot split extent {} at {d}",
                    part.extent
                )));
            }
            rem.push(IterSplit {
                extent: d,
                ..part.clone()
            });
            quot.push(IterSplit {
                lower_factor: part.lower_factor * d,
                extent: part.extent / d,
                scale: 1,
                ..part
            });
        } else {
            return Err(IterMapError::NonAffine(format!(
                "part {part} misaligned with divisor {c}"
            )));
        }
    }
    let result = IterSum {
        terms: if div { quot } else { rem },
        base: if div { sum.base / c } else { 0 },
    }
    .canonicalize();
    // The result must itself be compact, otherwise the decomposition above
    // is unsound (parts could carry into each other).
    if !result.terms.is_empty() && result.sorted_compact().is_none() {
        return Err(IterMapError::NonAffine(format!(
            "division result is non-compact: {result}"
        )));
    }
    Ok(result)
}

/// Normalizes an expression into an [`IterSum`] over the given loop domains.
pub fn normalize(expr: &Expr, dom: &HashMap<Var, i64>) -> Result<IterSum> {
    match expr {
        Expr::Int(v, _) => Ok(IterSum::constant(*v)),
        Expr::Var(v) => {
            let extent = *dom
                .get(v)
                .ok_or_else(|| IterMapError::UnknownVar(v.name().to_string()))?;
            Ok(IterSum {
                terms: vec![IterSplit {
                    var: v.clone(),
                    var_extent: extent,
                    lower_factor: 1,
                    extent,
                    scale: 1,
                }],
                base: 0,
            }
            .canonicalize())
        }
        Expr::Cast(_, v) => normalize(v, dom),
        Expr::Bin(op, a, b) => match op {
            BinOp::Add => {
                let (mut x, y) = (normalize(a, dom)?, normalize(b, dom)?);
                x.terms.extend(y.terms);
                x.base += y.base;
                Ok(x.canonicalize())
            }
            BinOp::Sub => {
                let (mut x, mut y) = (normalize(a, dom)?, normalize(b, dom)?);
                for t in &mut y.terms {
                    t.scale = -t.scale;
                }
                x.terms.extend(y.terms);
                x.base -= y.base;
                Ok(x.canonicalize())
            }
            BinOp::Mul => {
                let (x, y) = (normalize(a, dom)?, normalize(b, dom)?);
                let (mut sum, c) = if x.terms.is_empty() {
                    (y, x.base)
                } else if y.terms.is_empty() {
                    (x, y.base)
                } else {
                    return Err(IterMapError::NonAffine(format!(
                        "product of two iterators: {expr}"
                    )));
                };
                for t in &mut sum.terms {
                    t.scale *= c;
                }
                sum.base *= c;
                Ok(sum.canonicalize())
            }
            BinOp::FloorDiv | BinOp::FloorMod => {
                let rhs = normalize(b, dom)?;
                if !rhs.terms.is_empty() {
                    return Err(IterMapError::NonAffine(format!(
                        "division by non-constant: {expr}"
                    )));
                }
                split_at(normalize(a, dom)?, rhs.base, *op == BinOp::FloorDiv)
            }
            _ => Err(IterMapError::NonAffine(format!("{expr}"))),
        },
        other => Err(IterMapError::NonAffine(format!("{other}"))),
    }
}

/// A successfully detected iterator map.
#[derive(Debug)]
pub struct IterMap {
    /// Normalized form of each binding, in input order.
    pub sums: Vec<IterSum>,
    /// Extent of each binding: binding `i` surjectively covers
    /// `[0, extents[i])`.
    pub extents: Vec<i64>,
}

/// Detects a bijective quasi-affine iterator map.
///
/// `bindings` are the block-iterator binding expressions; `dom` gives each
/// loop variable with its extent (loops iterate over `[0, extent)`).
///
/// On success: every binding is quasi-affine and surjective onto
/// `[0, extent_i)`, the bindings are mutually independent, and every loop
/// with extent > 1 is fully consumed.
///
/// # Examples
///
/// ```
/// use tir::{Expr, Var};
/// use tir_arith::iter_map::detect_iter_map;
/// let i = Var::int("i");
/// // v0 = i // 4, v1 = i % 4 over i in [0, 16): a legal re-split.
/// let map = detect_iter_map(
///     &[Expr::from(&i).floor_div(4), Expr::from(&i).floor_mod(4)],
///     &[(i.clone(), 16)],
/// ).unwrap();
/// assert_eq!(map.extents, vec![4, 4]);
/// // v0 = i, v1 = i * 2 is rejected (the paper's example of dependence).
/// assert!(detect_iter_map(
///     &[Expr::from(&i), Expr::from(&i) * 2],
///     &[(i.clone(), 16)],
/// ).is_err());
/// ```
pub fn detect_iter_map(bindings: &[Expr], dom: &[(Var, i64)]) -> Result<IterMap> {
    detect_iter_map_with(bindings, dom, CoverMode::Full)
}

/// How strictly [`detect_iter_map_with`] checks loop-domain coverage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoverMode {
    /// Every loop with extent > 1 must be fully consumed (bijective map).
    Full,
    /// Pieces must not overlap, but gaps and unused loops are allowed —
    /// the map is injective on the covered digits; uncovered digits mean
    /// the block re-executes identically (sound for idempotent blocks).
    OverlapOnly,
}

/// [`detect_iter_map`] with a configurable coverage requirement.
///
/// # Errors
///
/// As [`detect_iter_map`]; with [`CoverMode::OverlapOnly`] the
/// `IncompleteCover` family of errors is suppressed.
pub fn detect_iter_map_with(
    bindings: &[Expr],
    dom: &[(Var, i64)],
    mode: CoverMode,
) -> Result<IterMap> {
    let env: HashMap<Var, i64> = dom.iter().cloned().collect();
    let mut sums = Vec::with_capacity(bindings.len());
    let mut extents = Vec::with_capacity(bindings.len());
    let mut pieces_by_var: HashMap<Var, Vec<(i64, i64)>> = HashMap::new();

    for b in bindings {
        let simplified = tir::simplify::simplify_expr(b);
        let sum = normalize(&simplified, &env)?;
        let extent = sum
            .strict_extent()
            .ok_or_else(|| IterMapError::NotStrict(format!("{simplified}")))?;
        for t in &sum.terms {
            pieces_by_var
                .entry(t.var.clone())
                .or_default()
                .push((t.lower_factor, t.extent));
        }
        sums.push(sum);
        extents.push(extent);
    }

    // Independence + coverage: the pieces of each loop variable must tile
    // its domain [1, extent) in digit space exactly once.
    for (v, extent) in dom {
        let mut pieces = pieces_by_var.remove(v).unwrap_or_default();
        if pieces.is_empty() {
            if *extent > 1 && mode == CoverMode::Full {
                return Err(IterMapError::IncompleteCover(format!(
                    "loop {} (extent {extent}) is unused",
                    v.name()
                )));
            }
            continue;
        }
        pieces.sort_unstable();
        let mut expected = 1i64;
        for (lf, ext) in &pieces {
            if *lf < expected {
                return Err(IterMapError::NotIndependent(format!(
                    "loop {} split at factor {lf} overlaps a previous split",
                    v.name()
                )));
            }
            if *lf > expected && mode == CoverMode::Full {
                return Err(IterMapError::IncompleteCover(format!(
                    "loop {} digits [{expected}, {lf}) are unused",
                    v.name()
                )));
            }
            expected = lf
                .checked_mul(*ext)
                .ok_or_else(|| IterMapError::NonAffine("extent overflow".into()))?;
        }
        if expected != *extent && mode == CoverMode::Full {
            return Err(IterMapError::IncompleteCover(format!(
                "loop {} covered up to {expected} of extent {extent}",
                v.name()
            )));
        }
    }

    Ok(IterMap { sums, extents })
}

/// Evaluates an [`IterSum`] on concrete loop values — the reference
/// semantics used by the property tests.
pub fn eval_iter_sum(sum: &IterSum, values: &HashMap<Var, i64>) -> i64 {
    let mut acc = sum.base;
    for t in &sum.terms {
        let v = values[&t.var];
        acc += ((v / t.lower_factor) % t.extent) * t.scale;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Var {
        Var::int(name)
    }

    #[test]
    fn identity_bindings() {
        let (i, j) = (v("i"), v("j"));
        let map = detect_iter_map(
            &[Expr::from(&i), Expr::from(&j)],
            &[(i.clone(), 8), (j.clone(), 16)],
        )
        .expect("identity map");
        assert_eq!(map.extents, vec![8, 16]);
    }

    #[test]
    fn split_bindings() {
        let i = v("i");
        let map = detect_iter_map(
            &[Expr::from(&i).floor_div(4), Expr::from(&i).floor_mod(4)],
            &[(i.clone(), 32)],
        )
        .expect("split map");
        assert_eq!(map.extents, vec![8, 4]);
    }

    #[test]
    fn fuse_binding() {
        let (i, j) = (v("i"), v("j"));
        let map = detect_iter_map(
            &[Expr::from(&i) * 16 + Expr::from(&j)],
            &[(i.clone(), 8), (j.clone(), 16)],
        )
        .expect("fuse map");
        assert_eq!(map.extents, vec![128]);
    }

    #[test]
    fn fuse_then_split() {
        let (i, j) = (v("i"), v("j"));
        // fused = i * 16 + j over [0, 128); bind v0 = fused // 4, v1 = fused % 4
        let fused = Expr::from(&i) * 16 + Expr::from(&j);
        let map = detect_iter_map(
            &[fused.clone().floor_div(4), fused.floor_mod(4)],
            &[(i.clone(), 8), (j.clone(), 16)],
        )
        .expect("fuse-split map");
        assert_eq!(map.extents, vec![32, 4]);
    }

    #[test]
    fn three_level_split() {
        let i = v("i");
        let e = Expr::from(&i);
        let map = detect_iter_map(
            &[
                e.clone().floor_div(16),
                e.clone().floor_mod(16).floor_div(4),
                e.clone().floor_mod(4),
            ],
            &[(i.clone(), 64)],
        )
        .expect("3-level split");
        assert_eq!(map.extents, vec![4, 4, 4]);
    }

    #[test]
    fn rejects_dependent_bindings() {
        let i = v("i");
        // The paper's example: v1 = i, v2 = i * 2 — not independent.
        let err =
            detect_iter_map(&[Expr::from(&i), Expr::from(&i) * 2], &[(i.clone(), 16)]).unwrap_err();
        assert!(
            matches!(
                err,
                IterMapError::NotIndependent(_) | IterMapError::NotStrict(_)
            ),
            "{err}"
        );
    }

    #[test]
    fn rejects_reused_split() {
        let i = v("i");
        let err =
            detect_iter_map(&[Expr::from(&i), Expr::from(&i)], &[(i.clone(), 16)]).unwrap_err();
        assert!(matches!(err, IterMapError::NotIndependent(_)), "{err}");
    }

    #[test]
    fn rejects_partial_cover() {
        let i = v("i");
        // Only the low 4 digits used; i // 4 discarded.
        let err = detect_iter_map(&[Expr::from(&i).floor_mod(4)], &[(i.clone(), 16)]).unwrap_err();
        assert!(matches!(err, IterMapError::IncompleteCover(_)), "{err}");
    }

    #[test]
    fn rejects_unused_loop() {
        let (i, j) = (v("i"), v("j"));
        let err =
            detect_iter_map(&[Expr::from(&i)], &[(i.clone(), 4), (j.clone(), 4)]).unwrap_err();
        assert!(matches!(err, IterMapError::IncompleteCover(_)), "{err}");
        // Extent-1 loops are exempt.
        detect_iter_map(&[Expr::from(&i)], &[(i.clone(), 4), (j.clone(), 1)])
            .expect("extent-1 loop unused is fine");
    }

    #[test]
    fn rejects_non_affine() {
        let (i, j) = (v("i"), v("j"));
        let err = detect_iter_map(
            &[Expr::from(&i) * Expr::from(&j)],
            &[(i.clone(), 4), (j.clone(), 4)],
        )
        .unwrap_err();
        assert!(matches!(err, IterMapError::NonAffine(_)), "{err}");
    }

    #[test]
    fn rejects_scaled_non_surjective() {
        let i = v("i");
        let err = detect_iter_map(&[Expr::from(&i) * 3], &[(i.clone(), 4)]).unwrap_err();
        assert!(matches!(err, IterMapError::NotStrict(_)), "{err}");
    }

    #[test]
    fn accepts_sum_with_mixed_radix() {
        // v = (i * 12) + (j * 4) + k over i:[0,2), j:[0,3), k:[0,4)
        let (i, j, k) = (v("i"), v("j"), v("k"));
        let e = Expr::from(&i) * 12 + Expr::from(&j) * 4 + Expr::from(&k);
        let map = detect_iter_map(&[e], &[(i.clone(), 2), (j.clone(), 3), (k.clone(), 4)])
            .expect("mixed radix fuse");
        assert_eq!(map.extents, vec![24]);
    }

    #[test]
    fn split_of_fused_respects_boundaries() {
        let (i, j) = (v("i"), v("j"));
        // fused = i*16 + j, i:[0,8) j:[0,16); three-way re-split at 8.
        let fused = Expr::from(&i) * 16 + Expr::from(&j);
        let bindings = [
            fused.clone().floor_div(16),
            fused.clone().floor_mod(16).floor_div(8),
            fused.floor_mod(8),
        ];
        let map = detect_iter_map(&bindings, &[(i.clone(), 8), (j.clone(), 16)]).expect("split");
        assert_eq!(map.extents, vec![8, 2, 8]);
    }

    #[test]
    fn fused_split_crossing_part_boundary() {
        let (i, j) = (v("i"), v("j"));
        // fused = i*4 + j with j:[0,4), i:[0,8); divide by 2 (inside part j).
        let fused = Expr::from(&i) * 4 + Expr::from(&j);
        let map = detect_iter_map(
            &[fused.clone().floor_div(2), fused.floor_mod(2)],
            &[(i.clone(), 8), (j.clone(), 4)],
        )
        .expect("cross-boundary split");
        assert_eq!(map.extents, vec![16, 2]);
    }

    #[test]
    fn constant_binding_for_unit_domain() {
        let i = v("i");
        let map = detect_iter_map(&[Expr::int(0), Expr::from(&i)], &[(i.clone(), 4)])
            .expect("constant + identity");
        assert_eq!(map.extents, vec![1, 4]);
    }

    #[test]
    fn eval_matches_expr_semantics() {
        let (i, j) = (v("i"), v("j"));
        let fused = Expr::from(&i) * 16 + Expr::from(&j);
        let dom = [(i.clone(), 8i64), (j.clone(), 16i64)];
        let map =
            detect_iter_map(&[fused.clone().floor_div(4), fused.floor_mod(4)], &dom).expect("map");
        for iv in 0..8 {
            for jv in 0..16 {
                let values: HashMap<Var, i64> =
                    [(i.clone(), iv), (j.clone(), jv)].into_iter().collect();
                let fused_v = iv * 16 + jv;
                assert_eq!(eval_iter_sum(&map.sums[0], &values), fused_v / 4);
                assert_eq!(eval_iter_sum(&map.sums[1], &values), fused_v % 4);
            }
        }
    }

    #[test]
    fn normalize_display() {
        let i = v("i");
        let dom: HashMap<Var, i64> = [(i.clone(), 16)].into_iter().collect();
        let s = normalize(&Expr::from(&i).floor_div(4), &dom).expect("normalize");
        assert!(s.to_string().contains("// 4"), "{s}");
    }
}
