//! # tir-arith — integer arithmetic analysis for TensorIR
//!
//! Two analyses power the paper's validation and scheduling machinery:
//!
//! * [`bound`] — sound constant-interval analysis over integer expressions,
//!   used for region arithmetic, predicate proving, and cover checks;
//! * [`iter_map`] — the quasi-affine iterator-map detector of §3.3, which
//!   recognizes split/fuse binding patterns and proves their independence
//!   and full domain coverage.
//!
//! # Examples
//!
//! ```
//! use tir::{Expr, Var};
//! use tir_arith::iter_map::detect_iter_map;
//!
//! // A legal re-split of a 64-iteration loop into 16 x 4.
//! let i = Var::int("i");
//! let map = detect_iter_map(
//!     &[Expr::from(&i).floor_div(4), Expr::from(&i).floor_mod(4)],
//!     &[(i.clone(), 64)],
//! ).unwrap();
//! assert_eq!(map.extents, vec![16, 4]);
//! ```

#![warn(missing_docs)]

pub mod bound;
pub mod iter_map;

pub use bound::{bound_of, can_prove, IntBound};
pub use iter_map::{detect_iter_map, IterMap, IterMapError};
