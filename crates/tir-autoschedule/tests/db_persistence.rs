//! Persistence contract of the on-disk tuning database: a save/load
//! round trip is bit-identical (counters, records, fingerprints, every
//! float), and damage to the file is a typed error — never a panic,
//! never a silently empty database.

use std::path::PathBuf;

use tir::DataType;
use tir_autoschedule::{DbError, Strategy, TuneOptions, TuningDatabase};
use tir_exec::Machine;
use tir_tensorize::builtin_registry;
use tir_workloads::ops;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tir-db-test-{name}-{}.db", std::process::id()))
}

/// A database with two tuned workloads (one GPU f16, one ARM int8) and
/// non-trivial hit/miss counters.
fn populated_db() -> TuningDatabase {
    let registry = builtin_registry();
    let mut db = TuningDatabase::new();
    let opts = TuneOptions {
        trials: 8,
        num_threads: 1,
        ..TuneOptions::default()
    };
    let gpu = Machine::sim_gpu();
    let gmm_gpu = ops::gmm(32, 32, 32, DataType::float16(), DataType::float32());
    db.tune_cached(&gmm_gpu, &gpu, &registry, Strategy::TensorIr, &opts);
    let arm = Machine::sim_arm();
    let gmm_arm = ops::gmm(32, 32, 32, DataType::int8(), DataType::int32());
    db.tune_cached(&gmm_arm, &arm, &registry, Strategy::TensorIr, &opts);
    // Two extra lookups so hits (2) and misses (2) are both non-zero
    // and unequal to the record count's default relationship.
    db.tune_cached(&gmm_gpu, &gpu, &registry, Strategy::TensorIr, &opts);
    db.tune_cached(&gmm_arm, &arm, &registry, Strategy::TensorIr, &opts);
    db
}

#[test]
fn save_load_round_trip_is_bit_identical() {
    let path = tmp_path("roundtrip");
    let db = populated_db();
    db.save(&path).expect("save");
    let loaded = TuningDatabase::load(&path).expect("load");

    // Counters survive.
    assert_eq!(loaded.hits(), db.hits());
    assert_eq!(loaded.misses(), db.misses());
    assert_eq!(loaded.len(), db.len());

    // Every record survives bit-for-bit: fingerprint keys, program
    // text, and the IEEE-754 bits of both floats.
    for (key, rec) in db.iter() {
        let got = loaded
            .peek(&key.0, Strategy::from_label(key.1).expect("label"), &key.2)
            .unwrap_or_else(|| panic!("record {key:?} lost in round trip"));
        assert_eq!(got.best.to_string(), rec.best.to_string());
        assert_eq!(got.best_time.to_bits(), rec.best_time.to_bits());
        assert_eq!(got.trials, rec.trials);
        assert_eq!(got.budget, rec.budget);
        assert_eq!(got.tuning_cost_s.to_bits(), rec.tuning_cost_s.to_bits());
    }

    // The canonical encodings agree byte-for-byte, which also pins the
    // fingerprints themselves.
    assert_eq!(loaded.encode(), db.encode());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_file_is_a_typed_error() {
    let path = tmp_path("truncated");
    let db = populated_db();
    db.save(&path).expect("save");
    let text = std::fs::read_to_string(&path).expect("read back");

    // Chop the file at several points, including mid-record and just
    // before the `end` sentinel: every truncation must be detected.
    for cut in [text.len() / 4, text.len() / 2, text.len() - 4] {
        let mut broken = text[..cut].to_string();
        // Keep the cut on a UTF-8 boundary (the format is ASCII except
        // for program text, so this only matters mid-payload).
        while !text.is_char_boundary(broken.len()) {
            broken.pop();
        }
        std::fs::write(&path, &broken).expect("write truncated");
        match TuningDatabase::load(&path) {
            Err(DbError::Corrupt { .. }) => {}
            Ok(db) => panic!("truncation at {cut} silently loaded {} records", db.len()),
            Err(e) => panic!("truncation at {cut} gave the wrong error kind: {e}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_fields_are_typed_errors_with_offsets() {
    let path = tmp_path("corrupt");
    let db = populated_db();
    db.save(&path).expect("save");
    let text = std::fs::read_to_string(&path).expect("read back");

    // A wrong header, a garbled counter, and a record count that
    // overstates the payload.
    let cases = [
        text.replacen("tir-tuning-database v1", "tir-tuning-database v9", 1),
        text.replacen("counters", "confetti", 1),
        text.replacen("records 2", "records 7", 1),
    ];
    for (i, broken) in cases.iter().enumerate() {
        std::fs::write(&path, broken).expect("write corrupted");
        match TuningDatabase::load(&path) {
            Err(DbError::Corrupt { reason, .. }) => {
                assert!(!reason.is_empty(), "case {i}: reason must be populated");
            }
            Ok(_) => panic!("case {i}: corruption loaded silently"),
            Err(e) => panic!("case {i}: wrong error kind: {e}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_file_load_vs_open() {
    let path = tmp_path("missing");
    let _ = std::fs::remove_file(&path);
    // `load` of a missing file is an I/O error...
    match TuningDatabase::load(&path) {
        Err(DbError::Io(_)) => {}
        Err(e) => panic!("load of a missing file gave the wrong error: {e}"),
        Ok(_) => panic!("load of a missing file succeeded"),
    }
    // ...while `open` starts empty (first daemon start), but still
    // refuses corrupt existing files.
    let db = TuningDatabase::open(&path).expect("open missing");
    assert!(db.is_empty());
    std::fs::write(&path, "not a database\n").expect("write garbage");
    match TuningDatabase::open(&path) {
        Err(DbError::Corrupt { .. }) => {}
        Err(e) => panic!("open of a corrupt file gave the wrong error: {e}"),
        Ok(_) => panic!("open of a corrupt file succeeded silently"),
    }
    let _ = std::fs::remove_file(&path);
}
