//! Smoke: a composed kernel with `Custom("fused")` intermediates tunes
//! end-to-end, stays bit-exact, and passes the static verifier.

use tir::DataType;
use tir_autoschedule::{tune_workload, Strategy, TuneOptions};
use tir_exec::machine::Machine;
use tir_exec::{estimate_breakdown, summarize};
use tir_tensorize::builtin_registry;
use tir_workloads::{fuse_epilogue, gmm, Epilogue};

#[test]
fn fused_scope_composition_tunes_end_to_end() {
    let dt = DataType::float16();
    let anchor = gmm(64, 64, 64, dt, dt);
    let fused = fuse_epilogue(
        &anchor,
        &[Epilogue::BiasAdd, Epilogue::Relu],
        "gmm_bias_relu",
    );
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let opts = TuneOptions {
        trials: 16,
        ..Default::default()
    };
    let r = tune_workload(&fused, &machine, &reg, Strategy::TensorIr, &opts);
    let best = r.best.expect("tensorized fused candidate");
    tir_analysis::verify_scheduled(&best).expect("fused best passes the static verifier");
    tir_exec::assert_same_semantics(&fused, &best, 1, 0.0);
    let bd = estimate_breakdown(&summarize(&best), &machine);
    println!("fused best {:?} total {}", bd, bd.total());
    // Compare against anchor alone:
    let ra = tune_workload(&anchor, &machine, &reg, Strategy::TensorIr, &opts);
    println!(
        "anchor best_time {} fused best_time {}",
        ra.best_time, r.best_time
    );
    assert!(
        r.best_time < ra.best_time + 4e-6,
        "fused must not pay a second launch"
    );
}
