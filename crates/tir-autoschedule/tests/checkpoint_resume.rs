//! Kill-and-resume tests: a tuning run checkpointed at a generation
//! boundary and resumed in a fresh process state must produce the
//! bit-identical result — best program, history, and all accounting,
//! including `tuning_cost_s` down to the last bit — as an uninterrupted
//! run. Fault injection composes with resume because fault draws are
//! keyed on `(seed, candidate, attempt)`, not on process lifetime.

use std::path::PathBuf;

use tir::DataType;
use tir_autoschedule::sketch_gpu::GpuTensorSketch;
use tir_autoschedule::{
    tune, tune_with, FaultInjector, FaultPlan, SimMeasurer, TuneOptions, TuneResult,
};
use tir_exec::machine::Machine;
use tir_tensorize::builtin_registry;

fn mm_sketch() -> GpuTensorSketch {
    let func = tir::builder::matmul_func("mm", 128, 128, 128, DataType::float16());
    let reg = builtin_registry();
    let wmma = reg.get("wmma_16x16x16_f16").unwrap();
    GpuTensorSketch::new(&func, "C", wmma, true).expect("sketch")
}

fn ckpt_path(name: &str) -> PathBuf {
    // CARGO_TARGET_TMPDIR lives under the workspace target directory and
    // is per-integration-test-binary, so parallel test binaries cannot
    // collide.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

fn assert_bit_identical(a: &TuneResult, b: &TuneResult, what: &str) {
    let (ab, bb) = (
        a.best.as_ref().map(|f| f.to_string()),
        b.best.as_ref().map(|f| f.to_string()),
    );
    assert_eq!(ab, bb, "{what}: best program");
    assert_eq!(
        a.best_time.to_bits(),
        b.best_time.to_bits(),
        "{what}: best_time"
    );
    assert_eq!(
        a.tuning_cost_s.to_bits(),
        b.tuning_cost_s.to_bits(),
        "{what}: tuning_cost_s"
    );
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (i, (x, y)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: history[{i}]");
    }
    assert_eq!(a.trials_measured, b.trials_measured, "{what}: trials");
    assert_eq!(a.invalid_filtered, b.invalid_filtered, "{what}: invalid");
    assert_eq!(
        a.wasted_measurements, b.wasted_measurements,
        "{what}: wasted"
    );
    assert_eq!(a.cache_hits, b.cache_hits, "{what}: cache hits");
    assert_eq!(
        a.failed_measurements, b.failed_measurements,
        "{what}: failed"
    );
    assert_eq!(a.retries, b.retries, "{what}: retries");
    assert_eq!(a.quarantined, b.quarantined, "{what}: quarantined");
}

/// Kill after generation k, resume, and compare bit-for-bit against the
/// uninterrupted run — for several k, including one past the budget.
#[test]
fn kill_and_resume_is_bit_identical_to_uninterrupted() {
    let s = mm_sketch();
    let machine = Machine::sim_gpu();
    let base = TuneOptions {
        trials: 32,
        num_threads: 2,
        ..Default::default()
    };
    let uninterrupted = tune(&s, &machine, &base);
    assert!(uninterrupted.best.is_some());
    for k in [1u64, 2, 3] {
        let path = ckpt_path(&format!("kill-after-{k}.ckpt"));
        let _ = std::fs::remove_file(&path);
        // Phase 1: run exactly k generations, then "die".
        let killed = tune(
            &s,
            &machine,
            &TuneOptions {
                checkpoint_path: Some(path.clone()),
                max_generations: Some(k),
                ..base.clone()
            },
        );
        assert!(
            killed.trials_measured < uninterrupted.trials_measured,
            "kill at generation {k} must interrupt mid-search"
        );
        // Phase 2: a fresh search picks the checkpoint up and finishes.
        let resumed = tune(
            &s,
            &machine,
            &TuneOptions {
                checkpoint_path: Some(path.clone()),
                ..base.clone()
            },
        );
        assert_eq!(resumed.resumed_from_generation, Some(k), "resume point");
        assert_bit_identical(&uninterrupted, &resumed, &format!("resume after gen {k}"));
        let _ = std::fs::remove_file(&path);
    }
}

/// Checkpoint/resume composes with transient fault injection: the resumed
/// faulty run matches the uninterrupted faulty run bit-for-bit (including
/// retry counts and tuning cost), and both find the fault-free best.
#[test]
fn resume_under_transient_faults_is_bit_identical() {
    let s = mm_sketch();
    let machine = Machine::sim_gpu();
    let inj = FaultInjector::sim(FaultPlan::transient(0.3));
    let base = TuneOptions {
        trials: 24,
        num_threads: 1,
        ..Default::default()
    };
    let fault_free = tune(&s, &machine, &base);
    let uninterrupted = tune_with(&s, &machine, &base, &inj);
    assert_eq!(
        uninterrupted.best.as_ref().map(|f| f.to_string()),
        fault_free.best.as_ref().map(|f| f.to_string()),
        "transient faults must not change the best program"
    );
    let path = ckpt_path("resume-under-faults.ckpt");
    let _ = std::fs::remove_file(&path);
    let _killed = tune_with(
        &s,
        &machine,
        &TuneOptions {
            checkpoint_path: Some(path.clone()),
            max_generations: Some(2),
            ..base.clone()
        },
        &inj,
    );
    let resumed = tune_with(
        &s,
        &machine,
        &TuneOptions {
            checkpoint_path: Some(path.clone()),
            ..base.clone()
        },
        &inj,
    );
    assert_eq!(resumed.resumed_from_generation, Some(2));
    assert_bit_identical(&uninterrupted, &resumed, "faulty resume");
    let _ = std::fs::remove_file(&path);
}

/// A corrupt checkpoint file is ignored: the run starts fresh (and then
/// overwrites the file with valid state) instead of resuming from
/// garbage or crashing.
#[test]
fn corrupt_checkpoint_starts_fresh_on_resume() {
    let s = mm_sketch();
    let machine = Machine::sim_gpu();
    let base = TuneOptions {
        trials: 16,
        num_threads: 1,
        ..Default::default()
    };
    let clean = tune(&s, &machine, &base);
    let path = ckpt_path("corrupt.ckpt");
    std::fs::write(&path, "tir-autoschedule-checkpoint v1\ncounts garbage\n").expect("write");
    let r = tune(
        &s,
        &machine,
        &TuneOptions {
            checkpoint_path: Some(path.clone()),
            ..base.clone()
        },
    );
    assert_eq!(r.resumed_from_generation, None, "garbage must not resume");
    assert_bit_identical(&clean, &r, "fresh run over corrupt checkpoint");
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint from a different seed (i.e. a different run) is refused;
/// the mismatched run starts fresh rather than splicing foreign state.
#[test]
fn mismatched_seed_checkpoint_is_not_resumed() {
    let s = mm_sketch();
    let machine = Machine::sim_gpu();
    let path = ckpt_path("mismatch.ckpt");
    let _ = std::fs::remove_file(&path);
    let _partial = tune(
        &s,
        &machine,
        &TuneOptions {
            trials: 24,
            seed: 42,
            checkpoint_path: Some(path.clone()),
            max_generations: Some(1),
            ..Default::default()
        },
    );
    assert!(path.exists(), "checkpoint must have been written");
    let other_seed = tune(
        &s,
        &machine,
        &TuneOptions {
            trials: 24,
            seed: 43,
            num_threads: 1,
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        },
    );
    assert_eq!(other_seed.resumed_from_generation, None);
    let reference = tune(
        &s,
        &machine,
        &TuneOptions {
            trials: 24,
            seed: 43,
            num_threads: 1,
            ..Default::default()
        },
    );
    assert_bit_identical(&reference, &other_seed, "seed-43 fresh run");
    let _ = std::fs::remove_file(&path);
}

/// Resuming with a backend is orthogonal to which measurer wrote the
/// checkpoint *state*: the SimMeasurer and a transient fault injector
/// walk the identical trajectory, so a run killed fault-free and resumed
/// under faults still converges to the same best program.
#[test]
fn resume_crossing_fault_regimes_converges_to_the_same_best() {
    let s = mm_sketch();
    let machine = Machine::sim_gpu();
    let base = TuneOptions {
        trials: 24,
        num_threads: 1,
        ..Default::default()
    };
    let fault_free = tune(&s, &machine, &base);
    let path = ckpt_path("cross-regime.ckpt");
    let _ = std::fs::remove_file(&path);
    let _killed = tune_with(
        &s,
        &machine,
        &TuneOptions {
            checkpoint_path: Some(path.clone()),
            max_generations: Some(2),
            ..base.clone()
        },
        &SimMeasurer,
    );
    let resumed = tune_with(
        &s,
        &machine,
        &TuneOptions {
            checkpoint_path: Some(path.clone()),
            ..base.clone()
        },
        &FaultInjector::sim(FaultPlan::transient(0.2)),
    );
    assert_eq!(resumed.resumed_from_generation, Some(2));
    assert_eq!(
        resumed.best.as_ref().map(|f| f.to_string()),
        fault_free.best.as_ref().map(|f| f.to_string()),
        "crossing fault regimes must still find the fault-free best"
    );
    assert_eq!(resumed.history.len(), fault_free.history.len());
    let _ = std::fs::remove_file(&path);
}
