//! End-to-end fault-tolerance tests for the tuning loop.
//!
//! The key invariant (module docs of `tir_autoschedule::measure`): under
//! any *transient* fault rate, the search converges to the bit-identical
//! best program and history as the fault-free run, at every thread count
//! — only `tuning_cost_s` and `retries` grow. Deterministic failures
//! (compile rejects) quarantine their candidate; an injected worker panic
//! fails one candidate, not the run; retry exhaustion consumes budget and
//! terminates.

use tir::{DataType, PrimFunc};
use tir_autoschedule::sketch_gpu::GpuTensorSketch;
use tir_autoschedule::{
    tune, tune_with, tune_workload, tune_workload_with, FaultInjector, FaultPlan, MeasureCtx,
    MeasureError, Measurer, RetryPolicy, SimMeasurer, Strategy, TuneOptions, TuneResult,
};
use tir_exec::machine::Machine;
use tir_tensorize::builtin_registry;
use tir_workloads::{bench_suite, OpKind};

fn mm_sketch() -> GpuTensorSketch {
    let func = tir::builder::matmul_func("mm", 128, 128, 128, DataType::float16());
    let reg = builtin_registry();
    let wmma = reg.get("wmma_16x16x16_f16").unwrap();
    GpuTensorSketch::new(&func, "C", wmma, true).expect("sketch")
}

fn suite_func(kind: OpKind) -> PrimFunc {
    bench_suite(DataType::float16())
        .into_iter()
        .find(|c| c.kind == kind)
        .expect("suite case")
        .func
}

fn best_str(r: &TuneResult) -> String {
    r.best.as_ref().map(|b| b.to_string()).unwrap_or_default()
}

/// Everything that must be bit-identical between a fault-free and a
/// transiently-faulty (or resumed) run.
fn assert_same_trajectory(a: &TuneResult, b: &TuneResult, what: &str) {
    assert_eq!(best_str(a), best_str(b), "{what}: best program");
    assert_eq!(
        a.best_time.to_bits(),
        b.best_time.to_bits(),
        "{what}: best_time"
    );
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (i, (x, y)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: history[{i}]");
    }
    assert_eq!(a.trials_measured, b.trials_measured, "{what}: trials");
    assert_eq!(a.invalid_filtered, b.invalid_filtered, "{what}: invalid");
    assert_eq!(a.cache_hits, b.cache_hits, "{what}: cache hits");
    assert_eq!(
        a.wasted_measurements, b.wasted_measurements,
        "{what}: wasted"
    );
}

/// Fault matrix {0%, 10%, 30%} x (gmm, c2d): identical best program and
/// history, monotonically non-decreasing tuning cost with the fault rate
/// (rigorous at one measurement worker, where the makespan is the plain
/// sum and every per-candidate cost only grows with faults).
#[test]
fn fault_matrix_preserves_the_search_result() {
    let machine = Machine::sim_gpu();
    let reg = builtin_registry();
    let opts = TuneOptions {
        trials: 24,
        num_threads: 1,
        ..Default::default()
    };
    for kind in [OpKind::GMM, OpKind::C2D] {
        let func = suite_func(kind);
        let fault_free = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts);
        assert!(fault_free.best.is_some(), "{kind:?}: no baseline best");
        assert_eq!(fault_free.retries, 0);
        assert_eq!(fault_free.failed_measurements, 0);
        let mut prev_cost = fault_free.tuning_cost_s;
        for rate in [0.1, 0.3] {
            let inj = FaultInjector::sim(FaultPlan::transient(rate));
            let faulty = tune_workload_with(&func, &machine, &reg, Strategy::TensorIr, &opts, &inj);
            assert_same_trajectory(&fault_free, &faulty, &format!("{kind:?} at {rate}"));
            assert!(
                faulty.retries > 0,
                "{kind:?} at {rate}: transient faults must force retries"
            );
            assert_eq!(
                faulty.failed_measurements, 0,
                "{kind:?} at {rate}: default retry budget must absorb transients"
            );
            assert!(
                faulty.tuning_cost_s >= prev_cost,
                "{kind:?} at {rate}: cost must not decrease ({} < {prev_cost})",
                faulty.tuning_cost_s
            );
            prev_cost = faulty.tuning_cost_s;
        }
    }
}

/// The invariant holds at every thread count: the faulty run finds the
/// identical result whether candidates are measured serially or across a
/// worker pool, and the retry count itself is deterministic (fault draws
/// key on the candidate, never on scheduling).
#[test]
fn fault_injection_is_thread_invariant() {
    let s = mm_sketch();
    let machine = Machine::sim_gpu();
    let inj = FaultInjector::sim(FaultPlan::transient(0.3));
    let base = TuneOptions {
        trials: 24,
        ..Default::default()
    };
    let serial = tune_with(
        &s,
        &machine,
        &TuneOptions {
            num_threads: 1,
            ..base.clone()
        },
        &inj,
    );
    let fault_free = tune(
        &s,
        &machine,
        &TuneOptions {
            num_threads: 1,
            ..base.clone()
        },
    );
    assert_same_trajectory(&fault_free, &serial, "serial faulty vs fault-free");
    for threads in [2usize, 4] {
        let parallel = tune_with(
            &s,
            &machine,
            &TuneOptions {
                num_threads: threads,
                ..base.clone()
            },
            &inj,
        );
        assert_same_trajectory(&serial, &parallel, &format!("{threads} threads"));
        assert_eq!(serial.retries, parallel.retries, "{threads} threads");
    }
}

/// Deterministic compile rejects quarantine their candidate: the first
/// failure consumes budget, structurally identical re-proposals are
/// skipped for free, and the search still finds a valid program.
#[test]
fn deterministic_faults_quarantine_candidates() {
    let s = mm_sketch();
    let machine = Machine::sim_gpu();
    let inj = FaultInjector::sim(FaultPlan {
        compile_reject_rate: 0.3,
        ..Default::default()
    });
    let r = tune_with(
        &s,
        &machine,
        &TuneOptions {
            trials: 24,
            num_threads: 1,
            // With the cache off, every failure is a real measurement
            // attempt, so the accounting below is exact.
            use_candidate_cache: false,
            ..Default::default()
        },
        &inj,
    );
    assert!(r.quarantined > 0, "30% reject rate must quarantine some");
    // Compile rejects are the only injected failure mode, and a
    // quarantined hash is never re-measured: each quarantined candidate
    // failed exactly once.
    assert_eq!(r.failed_measurements, r.quarantined);
    assert_eq!(r.retries, 0, "deterministic failures are never retried");
    assert!(r.best.is_some(), "search must still find a program");
    assert!(
        r.trials_measured + r.wasted_measurements + r.failed_measurements <= 24,
        "budget must be respected"
    );
}

/// A measurement backend that panics deterministically for a subset of
/// candidates — the hard-crash case `catch_unwind` isolation must
/// contain.
struct SelectivePanicMeasurer;

impl Measurer for SelectivePanicMeasurer {
    fn measure(
        &self,
        func: &PrimFunc,
        machine: &Machine,
        ctx: &MeasureCtx,
    ) -> Result<f64, MeasureError> {
        if ctx.candidate.is_multiple_of(3) {
            panic!("hard runner crash for candidate {:#x}", ctx.candidate);
        }
        SimMeasurer.measure(func, machine, ctx)
    }
}

/// An injected worker panic fails one candidate, not the run: candidates
/// whose measurer always panics become per-candidate failures while every
/// other candidate measures normally and the search completes.
#[test]
fn injected_panic_fault_fails_one_candidate_not_the_run() {
    let s = mm_sketch();
    let machine = Machine::sim_gpu();
    let r = tune_with(
        &s,
        &machine,
        &TuneOptions {
            trials: 24,
            num_threads: 4,
            // Keep exhaustion fast: these panics repeat on every attempt.
            retry: RetryPolicy {
                max_retries: 2,
                ..Default::default()
            },
            ..Default::default()
        },
        &SelectivePanicMeasurer,
    );
    assert!(
        r.failed_measurements > 0,
        "about a third of candidates must fail"
    );
    assert!(
        r.best.is_some(),
        "the run must survive panicking candidates and find a program"
    );
    assert!(r.best_time.is_finite());
    assert!(r.tuning_cost_s.is_finite());
}

/// Retry exhaustion under a 100% transient fault rate: every candidate
/// fails, the budget drains, and the run terminates cleanly with finite
/// accounting instead of spinning.
#[test]
fn total_fault_exhaustion_terminates_with_finite_accounting() {
    let s = mm_sketch();
    let machine = Machine::sim_gpu();
    let inj = FaultInjector::sim(FaultPlan {
        timeout_rate: 1.0,
        ..Default::default()
    });
    let r = tune_with(
        &s,
        &machine,
        &TuneOptions {
            trials: 8,
            measure_per_generation: 4,
            num_threads: 1,
            retry: RetryPolicy {
                max_retries: 2,
                ..Default::default()
            },
            ..Default::default()
        },
        &inj,
    );
    assert!(r.best.is_none(), "nothing can be measured");
    assert_eq!(r.failed_measurements, 8, "failures must consume budget");
    assert_eq!(r.trials_measured, 0);
    // Timeouts are transient: nothing is quarantined, everything retried.
    assert_eq!(r.quarantined, 0);
    assert_eq!(r.retries, 8 * 2);
    assert!(r.tuning_cost_s.is_finite() && r.tuning_cost_s > 0.0);
}
