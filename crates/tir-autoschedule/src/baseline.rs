//! Compilation strategies: TensorIR and the paper's comparison systems.
//!
//! * [`Strategy::TensorIr`] — the full system: auto-tensorization with
//!   first-class data movement, searched jointly with the scalar sketch.
//! * [`Strategy::Ansor`] — the "TVM" baseline: the same search over scalar
//!   sketches only (no tensor intrinsics), which is what Ansor/TVM
//!   auto-scheduling is.
//! * [`Strategy::Amos`] — tensor intrinsics via direct mapping but with
//!   data movement *not* first-class: no shared staging, layout-rewrite
//!   stages materialized in global memory.
//!
//! Vendor libraries (CUTLASS / TensorRT / ArmComputeLib / PyTorch backends)
//! are modeled as roofline oracles in the benchmark harness: a dedicated
//! engineering team's kernel reaches a fixed, high fraction of machine
//! peak on the operators the library supports.

use tir::PrimFunc;
use tir_exec::machine::{Machine, MachineKind};
use tir_tensorize::{find_tensorizable_block, IntrinRegistry};

use crate::measure::Measurer;
use crate::search::{tune_multi_with, TuneOptions, TuneResult};
use crate::sketch::SketchRule;
use crate::sketch_cpu::{CpuScalarSketch, CpuTensorSketch};
use crate::sketch_gpu::{GpuScalarSketch, GpuTensorSketch};

/// A compilation strategy under evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// This paper's system.
    TensorIr,
    /// Ansor-like scalar auto-scheduling (the "TVM" bars).
    Ansor,
    /// AMOS-like tensorization without first-class data movement.
    Amos,
}

impl Strategy {
    /// Display label used by the benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::TensorIr => "TensorIR",
            Strategy::Ansor => "TVM(Ansor)",
            Strategy::Amos => "AMOS",
        }
    }

    /// Inverse of [`Strategy::label`]: resolves a stored or wire-level
    /// label back to the strategy. `None` for unknown labels — the
    /// database loader turns that into a typed corruption error, the
    /// server into a protocol rejection.
    pub fn from_label(label: &str) -> Option<Strategy> {
        match label {
            "TensorIR" => Some(Strategy::TensorIr),
            "TVM(Ansor)" => Some(Strategy::Ansor),
            "AMOS" => Some(Strategy::Amos),
            _ => None,
        }
    }
}

/// Builds the sketches a strategy searches over for one workload.
pub fn build_sketches(
    func: &PrimFunc,
    machine: &Machine,
    intrins: &IntrinRegistry,
    strategy: Strategy,
) -> Vec<Box<dyn SketchRule>> {
    let mut sketches: Vec<Box<dyn SketchRule>> = Vec::new();
    let tensorized_allowed = matches!(strategy, Strategy::TensorIr | Strategy::Amos);
    if tensorized_allowed {
        for intrin in intrins.iter() {
            if !machine.tensor_units.contains_key(&intrin.name) {
                continue;
            }
            let Some(block) = find_tensorizable_block(func, intrin) else {
                continue;
            };
            match machine.kind {
                MachineKind::Gpu => {
                    let staged = strategy == Strategy::TensorIr;
                    if let Ok(s) = GpuTensorSketch::new(func, &block, intrin, staged) {
                        sketches.push(Box::new(s));
                    }
                }
                MachineKind::Cpu => {
                    if let Ok(s) = CpuTensorSketch::new(func, &block, intrin) {
                        sketches.push(Box::new(s));
                    }
                }
            }
        }
    }
    // TensorIR and Ansor also search the scalar space; AMOS commits to the
    // tensorized mapping.
    let scalar_allowed = match strategy {
        Strategy::TensorIr | Strategy::Ansor => true,
        Strategy::Amos => sketches.is_empty(),
    };
    if scalar_allowed {
        match machine.kind {
            MachineKind::Gpu => sketches.push(Box::new(GpuScalarSketch::new(func))),
            MachineKind::Cpu => sketches.push(Box::new(CpuScalarSketch::new(func))),
        }
    }
    sketches
}

/// Tunes one workload under a strategy on the default fault-free
/// simulator backend.
pub fn tune_workload(
    func: &PrimFunc,
    machine: &Machine,
    intrins: &IntrinRegistry,
    strategy: Strategy,
    opts: &TuneOptions,
) -> TuneResult {
    tune_workload_with(func, machine, intrins, strategy, opts, &crate::SimMeasurer)
}

/// Tunes one workload under a strategy against an arbitrary [`Measurer`]
/// backend — how the fault-tolerance benches drive a whole-workload
/// search through a [`crate::FaultInjector`].
pub fn tune_workload_with(
    func: &PrimFunc,
    machine: &Machine,
    intrins: &IntrinRegistry,
    strategy: Strategy,
    opts: &TuneOptions,
    measurer: &dyn Measurer,
) -> TuneResult {
    let sketches = build_sketches(func, machine, intrins, strategy);
    let refs: Vec<&dyn SketchRule> = sketches.iter().map(|s| s.as_ref()).collect();
    tune_multi_with(&refs, machine, opts, measurer)
}

/// Roofline oracle for a vendor library kernel: the kernel reaches
/// `efficiency` of the machine's best compute peak for the data type while
/// moving at least the compulsory bytes.
pub fn oracle_time(
    macs: f64,
    min_bytes: f64,
    peak_macs_per_s: f64,
    efficiency: f64,
    machine: &Machine,
) -> f64 {
    let compute = macs / (peak_macs_per_s * efficiency);
    let memory = min_bytes / (machine.global_bw_gbps * 1e9);
    compute.max(memory) + machine.launch_overhead_us * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::DataType;
    use tir_tensorize::builtin_registry;

    #[test]
    fn strategies_build_expected_sketches() {
        let func = tir::builder::matmul_func("mm", 64, 64, 64, DataType::float16());
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let tir_s = build_sketches(&func, &machine, &reg, Strategy::TensorIr);
        // Tensorized (wmma) + scalar.
        assert!(tir_s.len() >= 2, "{}", tir_s.len());
        let ansor = build_sketches(&func, &machine, &reg, Strategy::Ansor);
        assert_eq!(ansor.len(), 1);
        assert!(ansor[0].name().contains("scalar"));
        let amos = build_sketches(&func, &machine, &reg, Strategy::Amos);
        assert!(amos.iter().any(|s| s.name().contains("nostage")));
    }

    #[test]
    fn f32_matmul_has_no_wmma_sketch() {
        // wmma is f16-only: TensorIR falls back to the synthetic dot
        // intrinsic or scalar.
        let func = tir::builder::matmul_func("mm", 64, 64, 64, DataType::float32());
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let sketches = build_sketches(&func, &machine, &reg, Strategy::TensorIr);
        assert!(sketches.iter().all(|s| !s.name().contains("wmma")));
    }

    #[test]
    fn tune_workload_ranks_strategies() {
        let func = tir::builder::matmul_func("mm", 128, 128, 128, DataType::float16());
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 24,
            ..Default::default()
        };
        let tir_r = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts);
        let ansor_r = tune_workload(&func, &machine, &reg, Strategy::Ansor, &opts);
        assert!(
            tir_r.best_time < ansor_r.best_time,
            "TensorIR must win on f16 matmul"
        );
    }

    #[test]
    fn oracle_is_roofline_bounded() {
        let machine = Machine::sim_gpu();
        let peak = machine.tensor_peak("wmma_16x16x16_f16").unwrap();
        let t_fast = oracle_time(1e9, 1e6, peak, 0.9, &machine);
        let t_slow = oracle_time(1e9, 1e6, peak, 0.45, &machine);
        assert!(t_slow > t_fast);
        // Memory-bound case.
        let t_mem = oracle_time(1e3, 1e9, peak, 0.9, &machine);
        assert!(t_mem > 1e9 / (machine.global_bw_gbps * 1e9));
    }
}

#[cfg(test)]
mod intrin_selection_tests {
    use super::*;
    use tir::DataType;
    use tir_tensorize::builtin_registry;

    /// With two applicable intrinsics (`sdot` and the 2x faster `smmla`),
    /// the search over both sketches picks the faster unit; on plain
    /// Graviton2 (no `smmla`), the `smmla` sketch is never built.
    #[test]
    fn search_selects_the_fastest_available_intrinsic() {
        let func = tir_workloads::gmm(256, 256, 256, DataType::int8(), DataType::int32());
        let reg = builtin_registry();
        let opts = crate::TuneOptions {
            trials: 24,
            ..Default::default()
        };
        let plain = Machine::sim_arm();
        let v86 = Machine::sim_arm_v86();
        let sketches_plain = build_sketches(&func, &plain, &reg, Strategy::TensorIr);
        assert!(
            !sketches_plain.iter().any(|s| s.name().contains("smmla")),
            "plain ARM must not build smmla sketches"
        );
        let sketches_v86 = build_sketches(&func, &v86, &reg, Strategy::TensorIr);
        assert!(
            sketches_v86.iter().any(|s| s.name().contains("smmla")),
            "v8.6 must build smmla sketches"
        );
        let r_plain = tune_workload(&func, &plain, &reg, Strategy::TensorIr, &opts);
        let r_v86 = tune_workload(&func, &v86, &reg, Strategy::TensorIr, &opts);
        assert!(
            r_v86.best_time < r_plain.best_time,
            "smmla machine should win: {} vs {}",
            r_v86.best_time,
            r_plain.best_time
        );
    }
}

#[cfg(test)]
mod fused_epilogue_tests {
    use super::*;
    use tir::builder::{compute, matmul_func};
    use tir::{Buffer, DataType, Expr, PrimFunc, Stmt};
    use tir_tensorize::builtin_registry;

    /// Matmul followed by a ReLU epilogue in one function: the tensorized
    /// sketch covers the matmul and flat-binds the epilogue; the best
    /// program is bit-exact and beats the scalar-only search.
    #[test]
    fn fused_epilogue_function_is_tuned_end_to_end() {
        let base = matmul_func("mm", 64, 64, 64, DataType::float16());
        let c = base.params[2].clone();
        let d = Buffer::new("D", DataType::float16(), vec![64, 64]);
        let relu = compute("D", &d, |iv| {
            c.load(iv.iter().map(Expr::from).collect())
                .max(Expr::Float(0.0, DataType::float16()))
        });
        let (a, b) = (base.params[0].clone(), base.params[1].clone());
        let root_body = match &base.body {
            Stmt::BlockRealize(br) => (*br.block.body).clone(),
            _ => unreachable!("root convention"),
        };
        let mut func = PrimFunc::new(
            "matmul_relu",
            vec![a, b, d],
            Stmt::seq(vec![root_body, relu]),
        );
        func.root_block_mut().unwrap().alloc_buffers.push(c);

        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 16,
            ..Default::default()
        };
        let tir_r = tune_workload(&func, &machine, &reg, Strategy::TensorIr, &opts);
        let best = tir_r.best.expect("a tensorized candidate");
        tir_exec::assert_same_semantics(&func, &best, 1, 0.0);
        let ansor_r = tune_workload(&func, &machine, &reg, Strategy::Ansor, &opts);
        assert!(
            tir_r.best_time < ansor_r.best_time,
            "tensorized {} vs scalar {}",
            tir_r.best_time,
            ansor_r.best_time
        );
    }
}
