//! A gradient-boosted regression-tree cost model (§4.4).
//!
//! The paper uses an XGBoost ensemble trained online from hardware
//! measurements to rank candidates inside evolutionary search. This is a
//! from-scratch implementation of the same model family: least-squares
//! gradient boosting over depth-limited regression trees with exact greedy
//! splits.

/// One node of a regression tree (stored as an implicit array).
#[derive(Clone, Debug)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A regression tree trained by exact greedy least-squares splitting.
#[derive(Clone, Debug)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    fn fit(data: &[(&[f64], f64)], max_depth: usize, min_leaf: usize) -> Self {
        let mut tree = RegressionTree { nodes: Vec::new() };
        let idx: Vec<usize> = (0..data.len()).collect();
        tree.build(data, &idx, max_depth, min_leaf);
        tree
    }

    fn build(
        &mut self,
        data: &[(&[f64], f64)],
        idx: &[usize],
        depth: usize,
        min_leaf: usize,
    ) -> usize {
        let mean = idx.iter().map(|&i| data[i].1).sum::<f64>() / idx.len().max(1) as f64;
        if depth == 0 || idx.len() < 2 * min_leaf {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        }
        let num_features = data[idx[0]].0.len();
        let total_sum: f64 = idx.iter().map(|&i| data[i].1).sum();
        let n = idx.len() as f64;
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for f in 0..num_features {
            let mut sorted: Vec<usize> = idx.to_vec();
            sorted.sort_by(|&a, &b| {
                data[a].0[f]
                    .partial_cmp(&data[b].0[f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_sum = 0.0;
            for (pos, &i) in sorted.iter().enumerate() {
                left_sum += data[i].1;
                let nl = (pos + 1) as f64;
                let nr = n - nl;
                if (pos + 1) < min_leaf || (idx.len() - pos - 1) < min_leaf {
                    continue;
                }
                let next = sorted.get(pos + 1);
                let (Some(&ni), true) = (next, pos + 1 < sorted.len()) else {
                    continue;
                };
                if data[i].0[f] == data[ni].0[f] {
                    continue; // can't split between equal values
                }
                // Variance-reduction gain (up to constants).
                let gain = left_sum * left_sum / nl + (total_sum - left_sum).powi(2) / nr
                    - total_sum * total_sum / n;
                let threshold = 0.5 * (data[i].0[f] + data[ni].0[f]);
                if best.map(|(g, _, _)| gain > g).unwrap_or(gain > 1e-12) {
                    best = Some((gain, f, threshold));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| data[i].0[feature] <= threshold);
        let node_pos = self.nodes.len();
        self.nodes.push(Node::Leaf(0.0)); // placeholder
        let left = self.build(data, &left_idx, depth - 1, min_leaf);
        let right = self.build(data, &right_idx, depth - 1, min_leaf);
        self.nodes[node_pos] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_pos
    }

    /// Predicts the value for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        // The root is the first node pushed by the outer build call: for a
        // split it is at its placeholder position; a pure-leaf tree has the
        // leaf first. Either way the root is node 0.
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if features.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A gradient-boosted ensemble of regression trees.
///
/// Trained on `(features, target)` pairs where the target is
/// `-log(measured_time)` — higher predictions mean faster programs, which
/// is the ranking the evolutionary search consumes.
#[derive(Clone, Debug)]
pub struct CostModel {
    trees: Vec<RegressionTree>,
    base: f64,
    learning_rate: f64,
    max_depth: usize,
    num_rounds: usize,
    data: Vec<(Vec<f64>, f64)>,
}

impl CostModel {
    /// Creates an untrained model with default hyperparameters (64 rounds
    /// of depth-3 trees, learning rate 0.3).
    pub fn new() -> Self {
        CostModel {
            trees: Vec::new(),
            base: 0.0,
            learning_rate: 0.3,
            max_depth: 3,
            num_rounds: 64,
            data: Vec::new(),
        }
    }

    /// Number of training samples accumulated.
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    /// The accumulated training set, in insertion order (checkpointing
    /// reads this; the order matters because [`CostModel::set_samples`]
    /// restores the exact ensemble only for the exact sample sequence).
    pub fn samples(&self) -> &[(Vec<f64>, f64)] {
        &self.data
    }

    /// Replaces the training set and refits — the checkpoint-restore
    /// path. The fit is a deterministic function of the sample sequence,
    /// so restoring the samples restores the bit-identical ensemble.
    pub fn set_samples(&mut self, samples: Vec<(Vec<f64>, f64)>) {
        self.data = samples;
        self.fit();
    }

    /// Adds measured samples and refits the ensemble.
    pub fn update(&mut self, samples: impl IntoIterator<Item = (Vec<f64>, f64)>) {
        self.data.extend(samples);
        self.fit();
    }

    fn fit(&mut self) {
        self.trees.clear();
        if self.data.is_empty() {
            self.base = 0.0;
            return;
        }
        self.base = self.data.iter().map(|(_, y)| *y).sum::<f64>() / self.data.len() as f64;
        let mut residuals: Vec<f64> = self.data.iter().map(|(_, y)| y - self.base).collect();
        for _ in 0..self.num_rounds {
            let pairs: Vec<(&[f64], f64)> = self
                .data
                .iter()
                .zip(&residuals)
                .map(|((x, _), r)| (x.as_slice(), *r))
                .collect();
            let tree = RegressionTree::fit(&pairs, self.max_depth, 2);
            let mut improved = false;
            for (i, (x, _)) in self.data.iter().enumerate() {
                let p = tree.predict(x) * self.learning_rate;
                if p != 0.0 {
                    improved = true;
                }
                residuals[i] -= p;
            }
            self.trees.push(tree);
            if !improved {
                break;
            }
        }
    }

    /// Predicts the score of a feature vector (higher = faster).
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.base
            + self
                .trees
                .iter()
                .map(|t| t.predict(features) * self.learning_rate)
                .sum::<f64>()
    }

    /// Mean squared error on the training set (for tests/diagnostics).
    pub fn training_mse(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data
            .iter()
            .map(|(x, y)| (self.predict(x) - y).powi(2))
            .sum::<f64>()
            / self.data.len() as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize) -> Vec<(Vec<f64>, f64)> {
        // y = 3*x0 - 2*x1 + step(x2 > 0.5)
        (0..n)
            .map(|i| {
                let x0 = (i % 7) as f64 / 7.0;
                let x1 = (i % 5) as f64 / 5.0;
                let x2 = (i % 3) as f64 / 3.0;
                let y = 3.0 * x0 - 2.0 * x1 + if x2 > 0.5 { 1.0 } else { 0.0 };
                (vec![x0, x1, x2], y)
            })
            .collect()
    }

    #[test]
    fn fits_synthetic_function() {
        let mut m = CostModel::new();
        m.update(synthetic(100));
        assert!(
            m.training_mse() < 0.05,
            "mse too high: {}",
            m.training_mse()
        );
    }

    #[test]
    fn ranking_is_learned() {
        let mut m = CostModel::new();
        m.update(synthetic(100));
        // Higher x0 (all else equal) must rank higher.
        let lo = m.predict(&[0.1, 0.5, 0.0]);
        let hi = m.predict(&[0.9, 0.5, 0.0]);
        assert!(hi > lo);
    }

    #[test]
    fn empty_model_predicts_base() {
        let m = CostModel::new();
        assert_eq!(m.predict(&[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn incremental_updates_accumulate() {
        let mut m = CostModel::new();
        m.update(synthetic(30));
        let before = m.num_samples();
        m.update(synthetic(10));
        assert_eq!(m.num_samples(), before + 10);
    }

    #[test]
    fn single_tree_predicts_leaf_means() {
        let data = [
            (vec![0.0], 1.0),
            (vec![0.1], 1.0),
            (vec![0.9], 5.0),
            (vec![1.0], 5.0),
        ];
        let pairs: Vec<(&[f64], f64)> = data.iter().map(|(x, y)| (x.as_slice(), *y)).collect();
        let t = RegressionTree::fit(&pairs, 2, 1);
        assert!((t.predict(&[0.05]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[0.95]) - 5.0).abs() < 1e-9);
    }
}
