//! Sketch infrastructure (§4.3): decision spaces, sampling, mutation, and
//! the `SketchRule` interface the evolutionary search drives.
//!
//! A sketch fixes the program structure and leaves *decisions* (tile
//! sizes, staging choices, vector widths) free; the search samples and
//! mutates decision vectors and asks the sketch to materialize a concrete
//! program for each.

use tir_rand::rngs::StdRng;
use tir_rand::RngExt;

use tir::PrimFunc;
use tir_schedule::ScheduleError;

/// One sampled decision value: a small integer vector (tile factors) or a
/// single choice index wrapped in a vector.
pub type Decision = Vec<i64>;

/// The kind of one decision point.
#[derive(Clone, Debug)]
pub enum DecisionKind {
    /// A factorization of `extent` into `parts` positive factors whose
    /// product equals the extent ("sample_perfect_tile").
    PerfectTile {
        /// Extent to factor.
        extent: i64,
        /// Number of factors.
        parts: usize,
    },
    /// A choice among explicit integer options.
    Choice {
        /// Candidate values.
        options: Vec<i64>,
    },
}

impl DecisionKind {
    /// Samples a random decision of this kind.
    pub fn sample(&self, rng: &mut StdRng) -> Decision {
        match self {
            DecisionKind::PerfectTile { extent, parts } => {
                sample_perfect_tile(*extent, *parts, rng)
            }
            DecisionKind::Choice { options } => {
                vec![options[rng.random_range(0..options.len())]]
            }
        }
    }

    /// Mutates a decision in place-compatible fashion (returns the new
    /// decision).
    pub fn mutate(&self, current: &Decision, rng: &mut StdRng) -> Decision {
        match self {
            DecisionKind::PerfectTile { .. } => {
                // Move a prime factor between two positions.
                let mut d = current.clone();
                if d.len() < 2 {
                    return d;
                }
                for _ in 0..8 {
                    let from = rng.random_range(0..d.len());
                    let to = rng.random_range(0..d.len());
                    if from == to || d[from] == 1 {
                        continue;
                    }
                    let p = smallest_prime_factor(d[from]);
                    d[from] /= p;
                    d[to] *= p;
                    return d;
                }
                d
            }
            DecisionKind::Choice { options } => {
                vec![options[rng.random_range(0..options.len())]]
            }
        }
    }
}

fn smallest_prime_factor(v: i64) -> i64 {
    let mut p = 2;
    while p * p <= v {
        if v % p == 0 {
            return p;
        }
        p += 1;
    }
    v
}

/// Samples `parts` positive factors of `extent` with product `extent`.
pub fn sample_perfect_tile(extent: i64, parts: usize, rng: &mut StdRng) -> Decision {
    let mut factors = vec![1i64; parts];
    let mut rest = extent.max(1);
    // Distribute prime factors uniformly at random.
    let mut p = 2i64;
    while p * p <= rest {
        while rest % p == 0 {
            factors[rng.random_range(0..parts)] *= p;
            rest /= p;
        }
        p += 1;
    }
    if rest > 1 {
        factors[rng.random_range(0..parts)] *= rest;
    }
    factors
}

/// A parameterized schedule generator.
///
/// `Send + Sync` so the evolutionary search can share one sketch across
/// its candidate-evaluation worker threads (see [`crate::parallel`]);
/// implementations hold immutable structure, so this is free in practice.
pub trait SketchRule: Send + Sync {
    /// Human-readable sketch name.
    fn name(&self) -> &str;

    /// The decision points of this sketch, in apply order.
    fn space(&self) -> Vec<DecisionKind>;

    /// Materializes a concrete program from a decision vector.
    ///
    /// # Errors
    ///
    /// Returns an error when the decisions produce an invalid program — the
    /// search treats this as a filtered candidate.
    fn apply(&self, decisions: &[Decision]) -> Result<PrimFunc, ScheduleError>;

    /// Samples a full random decision vector.
    fn sample(&self, rng: &mut StdRng) -> Vec<Decision> {
        self.space().iter().map(|k| k.sample(rng)).collect()
    }

    /// Mutates one random decision point.
    fn mutate(&self, decisions: &[Decision], rng: &mut StdRng) -> Vec<Decision> {
        let space = self.space();
        if space.is_empty() {
            return decisions.to_vec();
        }
        let at = rng.random_range(0..space.len());
        let mut out = decisions.to_vec();
        out[at] = space[at].mutate(&decisions[at], rng);
        out
    }

    /// One-point crossover of two decision vectors.
    fn crossover(&self, a: &[Decision], b: &[Decision], rng: &mut StdRng) -> Vec<Decision> {
        if a.is_empty() {
            return b.to_vec();
        }
        let cut = rng.random_range(0..a.len());
        a[..cut].iter().chain(b[cut..].iter()).cloned().collect()
    }
}

/// Validates decisions against the space (used by search sanity checks).
pub fn decisions_well_formed(space: &[DecisionKind], decisions: &[Decision]) -> bool {
    if space.len() != decisions.len() {
        return false;
    }
    space.iter().zip(decisions).all(|(k, d)| match k {
        DecisionKind::PerfectTile { extent, parts } => {
            d.len() == *parts && d.iter().product::<i64>() == *extent && d.iter().all(|&f| f > 0)
        }
        DecisionKind::Choice { options } => d.len() == 1 && options.contains(&d[0]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_rand::SeedableRng;

    #[test]
    fn perfect_tile_products() {
        let mut rng = StdRng::seed_from_u64(7);
        for extent in [1i64, 4, 12, 60, 128, 97] {
            for parts in [2usize, 3, 4] {
                let t = sample_perfect_tile(extent, parts, &mut rng);
                assert_eq!(t.len(), parts);
                assert_eq!(t.iter().product::<i64>(), extent.max(1), "{t:?}");
                assert!(t.iter().all(|&f| f > 0));
            }
        }
    }

    #[test]
    fn mutation_preserves_product() {
        let mut rng = StdRng::seed_from_u64(9);
        let kind = DecisionKind::PerfectTile {
            extent: 64,
            parts: 3,
        };
        let mut d = kind.sample(&mut rng);
        for _ in 0..20 {
            d = kind.mutate(&d, &mut rng);
            assert_eq!(d.iter().product::<i64>(), 64);
        }
    }

    #[test]
    fn choice_sampling_in_options() {
        let mut rng = StdRng::seed_from_u64(3);
        let kind = DecisionKind::Choice {
            options: vec![1, 2, 4, 8],
        };
        for _ in 0..20 {
            let d = kind.sample(&mut rng);
            assert!(matches!(d[0], 1 | 2 | 4 | 8));
        }
    }

    #[test]
    fn well_formedness() {
        let space = vec![
            DecisionKind::PerfectTile {
                extent: 16,
                parts: 2,
            },
            DecisionKind::Choice {
                options: vec![1, 2],
            },
        ];
        assert!(decisions_well_formed(&space, &[vec![4, 4], vec![2]]));
        assert!(!decisions_well_formed(&space, &[vec![4, 3], vec![2]]));
        assert!(!decisions_well_formed(&space, &[vec![4, 4], vec![3]]));
        assert!(!decisions_well_formed(&space, &[vec![4, 4]]));
    }
}
