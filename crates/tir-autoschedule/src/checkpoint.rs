//! Generation-granularity checkpoint/resume for tuning runs.
//!
//! Long tuning runs get killed — out-of-memory, preemption, operator
//! Ctrl-C — and restarting from scratch wastes the whole measurement
//! budget spent so far. [`crate::search::tune_with`] can persist its
//! complete coordinator state after every generation and resume from it:
//! a killed-and-resumed run produces the **bit-identical** best program,
//! history, and accounting as an uninterrupted one, because everything
//! the search trajectory depends on is either in the checkpoint or
//! derived deterministically from `(seed, generation, slot)`.
//!
//! # Format
//!
//! A hand-rolled, line-oriented text format (no serde dependency). Every
//! `f64` is stored as the hex of its IEEE-754 bits so round-trips are
//! bit-exact (including infinities). Decision vectors serialize as
//! `a,b|c` (groups joined by `|`, values by `,`; `-` for an empty
//! vector). The file starts with a magic+version line, carries a context
//! line (`seed`, machine, sketch) that must match the resuming run, and
//! ends with an `end` sentinel so truncated files are detected. Files
//! are written atomically (temp file + rename), and any malformed or
//! mismatched checkpoint is ignored — the run starts fresh rather than
//! resuming from garbage.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;

use crate::sketch::Decision;

/// Magic + version header; bump the version on any format change.
const HEADER: &str = "tir-autoschedule-checkpoint v1";

/// Complete coordinator state of a tuning run at a generation boundary.
///
/// Everything [`crate::search::tune_with`] needs to continue as if it had
/// never stopped. The best program itself is not stored: its *decision
/// vector* is, and the sketch deterministically re-materializes the
/// bit-identical program on resume.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneCheckpoint {
    /// Search seed — must match the resuming run's `TuneOptions::seed`.
    pub seed: u64,
    /// Machine name the run was tuning for.
    pub machine: String,
    /// Sketch name the run was tuning.
    pub sketch: String,
    /// Next generation to execute.
    pub generation: u64,
    /// `TuneResult::trials_measured` so far.
    pub trials_measured: usize,
    /// `TuneResult::invalid_filtered` so far.
    pub invalid_filtered: usize,
    /// `TuneResult::wasted_measurements` so far.
    pub wasted_measurements: usize,
    /// `TuneResult::failed_measurements` so far.
    pub failed_measurements: usize,
    /// `TuneResult::retries` so far.
    pub retries: u64,
    /// `TuneResult::cache_hits` so far.
    pub cache_hits: usize,
    /// `TuneResult::quarantined` so far.
    pub quarantined: usize,
    /// Best measured time (bit-exact; `inf` before any success).
    pub best_time: f64,
    /// Accumulated simulated tuning cost (bit-exact).
    pub tuning_cost_s: f64,
    /// Best-so-far after each measurement.
    pub history: Vec<f64>,
    /// Decision vector of the best program, if any.
    pub best_decisions: Option<Vec<Decision>>,
    /// Elite pool in coordinator order: `(decisions, measured time)`.
    pub elites: Vec<(Vec<Decision>, f64)>,
    /// Every decision vector ever proposed (dedup set).
    pub seen: Vec<Vec<Decision>>,
    /// Measurement cache: `(structural hash, features, time)`.
    pub cache: Vec<(u64, Vec<f64>, f64)>,
    /// Structural hashes of quarantined candidates.
    pub quarantine: Vec<u64>,
    /// Cost-model training set in insertion order: `(features, target)`.
    /// Order matters — the GBDT refit is only deterministic if the
    /// samples come back exactly as they were accumulated.
    pub model_samples: Vec<(Vec<f64>, f64)>,
}

fn push_f64(out: &mut String, v: f64) {
    out.push_str(&format!("{:016x}", v.to_bits()));
}

fn push_decisions(out: &mut String, d: &[Decision]) {
    if d.is_empty() {
        out.push('-');
        return;
    }
    for (i, group) in d.iter().enumerate() {
        if i > 0 {
            out.push('|');
        }
        if group.is_empty() {
            out.push('_');
            continue;
        }
        for (j, v) in group.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
    }
}

/// Encodes a checkpoint to its textual form.
pub fn encode(ck: &TuneCheckpoint) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    // Context line: identifies the run this state belongs to. Machine
    // and sketch names are whitespace-escaped by their length prefix.
    out.push_str(&format!(
        "context {} {} {} {} {}\n",
        ck.seed,
        ck.machine.len(),
        ck.machine,
        ck.sketch.len(),
        ck.sketch
    ));
    out.push_str(&format!(
        "counts {} {} {} {} {} {} {} {}\n",
        ck.generation,
        ck.trials_measured,
        ck.invalid_filtered,
        ck.wasted_measurements,
        ck.failed_measurements,
        ck.retries,
        ck.cache_hits,
        ck.quarantined
    ));
    out.push_str("best_time ");
    push_f64(&mut out, ck.best_time);
    out.push_str("\ntuning_cost_s ");
    push_f64(&mut out, ck.tuning_cost_s);
    out.push_str(&format!("\nhistory {}", ck.history.len()));
    for h in &ck.history {
        out.push(' ');
        push_f64(&mut out, *h);
    }
    out.push_str("\nbest ");
    match &ck.best_decisions {
        None => out.push('0'),
        Some(d) => {
            out.push_str("1 ");
            push_decisions(&mut out, d);
        }
    }
    out.push_str(&format!("\nelites {}\n", ck.elites.len()));
    for (d, t) in &ck.elites {
        out.push_str("e ");
        push_f64(&mut out, *t);
        out.push(' ');
        push_decisions(&mut out, d);
        out.push('\n');
    }
    out.push_str(&format!("seen {}\n", ck.seen.len()));
    for d in &ck.seen {
        out.push_str("s ");
        push_decisions(&mut out, d);
        out.push('\n');
    }
    out.push_str(&format!("cache {}\n", ck.cache.len()));
    for (hash, features, t) in &ck.cache {
        out.push_str(&format!("c {hash} "));
        push_f64(&mut out, *t);
        out.push_str(&format!(" {}", features.len()));
        for f in features {
            out.push(' ');
            push_f64(&mut out, *f);
        }
        out.push('\n');
    }
    out.push_str(&format!("quarantine {}", ck.quarantine.len()));
    for q in &ck.quarantine {
        out.push_str(&format!(" {q}"));
    }
    out.push_str(&format!("\nmodel {}\n", ck.model_samples.len()));
    for (features, target) in &ck.model_samples {
        out.push_str("m ");
        push_f64(&mut out, *target);
        out.push_str(&format!(" {}", features.len()));
        for f in features {
            out.push(' ');
            push_f64(&mut out, *f);
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Token stream over the encoded form; every reader returns `None` on
/// any malformation so `decode` degrades to "no checkpoint".
struct Tokens<'a> {
    toks: VecDeque<&'a str>,
}

impl<'a> Tokens<'a> {
    fn new(text: &'a str) -> Self {
        Tokens {
            toks: text.split_whitespace().collect(),
        }
    }

    fn next(&mut self) -> Option<&'a str> {
        self.toks.pop_front()
    }

    fn expect(&mut self, word: &str) -> Option<()> {
        (self.next()? == word).then_some(())
    }

    fn u64(&mut self) -> Option<u64> {
        self.next()?.parse().ok()
    }

    fn usize(&mut self) -> Option<usize> {
        self.next()?.parse().ok()
    }

    fn f64(&mut self) -> Option<f64> {
        let bits = u64::from_str_radix(self.next()?, 16).ok()?;
        Some(f64::from_bits(bits))
    }

    fn sized_str(&mut self) -> Option<String> {
        // Length-prefixed: tokens are consumed and rejoined with single
        // spaces until the prefix is satisfied, so names with interior
        // spaces (e.g. "SimGPU (RTX-3080-class)") round-trip. Runs of
        // whitespace collapse to one space — fine for the machine/sketch
        // names we store, which never contain them. An empty name emits
        // no token at all (invisible to whitespace splitting), so
        // consume nothing.
        let len = self.usize()?;
        let mut s = String::new();
        while s.len() < len {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(self.next()?);
        }
        (s.len() == len).then_some(s)
    }

    fn decisions(&mut self) -> Option<Vec<Decision>> {
        let tok = self.next()?;
        if tok == "-" {
            return Some(Vec::new());
        }
        let mut out = Vec::new();
        for group in tok.split('|') {
            if group == "_" {
                out.push(Vec::new());
                continue;
            }
            let mut g = Vec::new();
            for v in group.split(',') {
                g.push(v.parse().ok()?);
            }
            out.push(g);
        }
        Some(out)
    }

    fn f64_vec(&mut self) -> Option<Vec<f64>> {
        let n = self.usize()?;
        (0..n).map(|_| self.f64()).collect()
    }
}

/// Decodes a checkpoint from its textual form. Returns `None` on any
/// malformation (wrong header, truncation, parse failure).
pub fn decode(text: &str) -> Option<TuneCheckpoint> {
    let mut ck = TuneCheckpoint::default();
    let body = text.strip_prefix(HEADER)?;
    let mut t = Tokens::new(body);
    t.expect("context")?;
    ck.seed = t.u64()?;
    ck.machine = t.sized_str()?;
    ck.sketch = t.sized_str()?;
    t.expect("counts")?;
    ck.generation = t.u64()?;
    ck.trials_measured = t.usize()?;
    ck.invalid_filtered = t.usize()?;
    ck.wasted_measurements = t.usize()?;
    ck.failed_measurements = t.usize()?;
    ck.retries = t.u64()?;
    ck.cache_hits = t.usize()?;
    ck.quarantined = t.usize()?;
    t.expect("best_time")?;
    ck.best_time = t.f64()?;
    t.expect("tuning_cost_s")?;
    ck.tuning_cost_s = t.f64()?;
    t.expect("history")?;
    ck.history = t.f64_vec()?;
    t.expect("best")?;
    ck.best_decisions = match t.next()? {
        "0" => None,
        "1" => Some(t.decisions()?),
        _ => return None,
    };
    t.expect("elites")?;
    let n = t.usize()?;
    for _ in 0..n {
        t.expect("e")?;
        let time = t.f64()?;
        let d = t.decisions()?;
        ck.elites.push((d, time));
    }
    t.expect("seen")?;
    let n = t.usize()?;
    for _ in 0..n {
        t.expect("s")?;
        ck.seen.push(t.decisions()?);
    }
    t.expect("cache")?;
    let n = t.usize()?;
    for _ in 0..n {
        t.expect("c")?;
        let hash = t.u64()?;
        let time = t.f64()?;
        let features = t.f64_vec()?;
        ck.cache.push((hash, features, time));
    }
    t.expect("quarantine")?;
    let n = t.usize()?;
    for _ in 0..n {
        ck.quarantine.push(t.u64()?);
    }
    t.expect("model")?;
    let n = t.usize()?;
    for _ in 0..n {
        t.expect("m")?;
        let target = t.f64()?;
        let features = t.f64_vec()?;
        ck.model_samples.push((features, target));
    }
    // The sentinel detects truncation; trailing garbage is rejected too.
    t.expect("end")?;
    t.next().is_none().then_some(ck)
}

/// Writes `text` to `path` atomically: the bytes land in a sibling
/// temp file first (`<path>.<ext>.tmp`), are fsync'd, and only then
/// renamed over the destination. On POSIX filesystems the rename is
/// atomic, so readers — and a process killed at any instant — see
/// either the complete old file or the complete new file, never a
/// truncated mix. This is the shared persistence discipline of the
/// checkpoint store and the on-disk [`crate::database::TuningDatabase`].
///
/// # Errors
///
/// Propagates filesystem errors (temp-file creation, write, fsync, or
/// rename). The temp file may be left behind on failure; the
/// destination is never touched until the rename.
pub fn atomic_write(path: &Path, text: &str) -> std::io::Result<()> {
    let mut ext = path
        .extension()
        .map(|e| e.to_os_string())
        .unwrap_or_default();
    ext.push(".tmp");
    let tmp = path.with_extension(ext);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Writes a checkpoint atomically (temp file + rename via
/// [`atomic_write`]), so a crash mid-write can never leave a truncated
/// checkpoint behind.
///
/// # Errors
///
/// Propagates filesystem errors; the search treats a failed save as
/// "resumability lost", never as a tuning failure.
pub fn save(path: &Path, ck: &TuneCheckpoint) -> std::io::Result<()> {
    atomic_write(path, &encode(ck))
}

/// Loads a checkpoint if `path` holds a valid one matching the resuming
/// run (`seed`, machine, sketch). Any mismatch, parse failure, or
/// missing file yields `None` — the run starts fresh.
pub fn load(path: &Path, seed: u64, machine: &str, sketch: &str) -> Option<TuneCheckpoint> {
    let text = std::fs::read_to_string(path).ok()?;
    let ck = decode(&text)?;
    (ck.seed == seed && ck.machine == machine && ck.sketch == sketch).then_some(ck)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneCheckpoint {
        TuneCheckpoint {
            seed: 42,
            machine: "SimGPU".into(),
            sketch: "gpu-tensor[wmma_16x16x16_f16]".into(),
            generation: 3,
            trials_measured: 17,
            invalid_filtered: 4,
            wasted_measurements: 1,
            failed_measurements: 2,
            retries: 9,
            cache_hits: 5,
            quarantined: 2,
            best_time: 1.25e-4,
            tuning_cost_s: 12.0625,
            history: vec![f64::INFINITY, 3.0e-4, 1.25e-4],
            best_decisions: Some(vec![vec![4, 2, 16], vec![2]]),
            elites: vec![
                (vec![vec![4, 2, 16], vec![2]], 1.25e-4),
                (vec![vec![8, 1, 16], vec![4]], 3.0e-4),
            ],
            seen: vec![vec![vec![4, 2, 16], vec![2]], vec![], vec![vec![-1]]],
            cache: vec![(0xDEAD, vec![1.0, 0.5, -2.25], 1.25e-4)],
            quarantine: vec![0xBEEF, 7],
            model_samples: vec![(vec![1.0, 0.5], 8.99), (vec![0.0], -1.5)],
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ck = sample();
        let decoded = decode(&encode(&ck)).expect("decodes");
        assert_eq!(decoded, ck);
        // Bit-exactness of the floats specifically (PartialEq on f64
        // would also pass for -0.0 vs 0.0).
        assert_eq!(decoded.best_time.to_bits(), ck.best_time.to_bits());
        assert_eq!(
            decoded.history[0].to_bits(),
            f64::INFINITY.to_bits(),
            "infinity must survive"
        );
    }

    #[test]
    fn names_with_spaces_roundtrip() {
        // The real SimGPU machine name contains spaces; the length
        // prefix must span all of its tokens.
        let ck = TuneCheckpoint {
            machine: "SimGPU (RTX-3080-class)".into(),
            sketch: "gpu-tensor[wmma_16x16x16_f16]".into(),
            best_time: f64::INFINITY,
            ..Default::default()
        };
        assert_eq!(decode(&encode(&ck)), Some(ck));
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let ck = TuneCheckpoint {
            best_time: f64::INFINITY,
            ..Default::default()
        };
        assert_eq!(decode(&encode(&ck)), Some(ck));
    }

    #[test]
    fn truncated_or_corrupt_text_is_rejected() {
        let full = encode(&sample());
        // Drop the sentinel.
        let truncated = &full[..full.len() - 4];
        assert_eq!(decode(truncated), None);
        // Chop mid-structure.
        assert_eq!(decode(&full[..full.len() / 2]), None);
        // Wrong header.
        assert_eq!(decode("not a checkpoint"), None);
        // Trailing garbage.
        assert_eq!(decode(&format!("{full}\nextra")), None);
        // Bit-flip a count into a non-number.
        let corrupt = full.replacen("counts 3", "counts x", 1);
        assert_eq!(decode(&corrupt), None);
    }

    #[test]
    fn context_mismatch_refuses_to_resume() {
        let dir = std::env::temp_dir().join(format!("tir-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.ckpt");
        let ck = sample();
        save(&path, &ck).expect("save");
        assert_eq!(
            load(&path, 42, "SimGPU", "gpu-tensor[wmma_16x16x16_f16]"),
            Some(ck)
        );
        assert_eq!(
            load(&path, 43, "SimGPU", "gpu-tensor[wmma_16x16x16_f16]"),
            None
        );
        assert_eq!(
            load(&path, 42, "SimARM", "gpu-tensor[wmma_16x16x16_f16]"),
            None
        );
        assert_eq!(load(&path, 42, "SimGPU", "other-sketch"), None);
        assert_eq!(load(&dir.join("missing.ckpt"), 42, "SimGPU", "x"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
