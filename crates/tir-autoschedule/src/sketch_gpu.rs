//! GPU sketch generation rules (§4.3).
//!
//! Two structural templates:
//!
//! * [`GpuTensorSketch`] — the paper's tensorized sketch: auto-tensorize,
//!   multi-level tile the outer loops, bind grid/warp axes, stage operands
//!   through shared memory and tensor-core fragments via AutoCopy blocks,
//!   and inline the ReIndex stages into the copies. With `staged = false`
//!   it degrades into the AMOS-like baseline (tensor cores without
//!   first-class data movement: no shared staging, ReIndex stages remain
//!   materialized in global memory, copies are not cooperative).
//! * [`GpuScalarSketch`] — the Ansor/TVM-like scalar sketch: fuse spatial
//!   loops and bind them flat to the grid, leaving reductions serial; no
//!   tensor intrinsics.

use tir::{AnnValue, MemScope, PrimFunc, ThreadTag};
use tir_schedule::{BlockRef, LoopRef, Schedule, ScheduleError};
use tir_tensorize::{auto_tensorize, TensorIntrin};

use crate::sketch::{Decision, DecisionKind, SketchRule};

/// Largest *radix-aligned* cut of a fused loop that is `<= cap`.
///
/// Splitting a loop fused from extents `e_0 x .. x e_n` at factor `t`
/// keeps the re-derived bindings quasi-affine only when `t = r_k * d`
/// where `r_k` is a suffix product of the extents and `d` divides the next
/// extent (the digit boundary condition of the iterator-map algebra).
pub(crate) fn aligned_cut(extents: &[i64], cap: i64) -> i64 {
    aligned_cuts(extents, cap).into_iter().max().unwrap_or(1)
}

/// All radix-aligned cuts of a fused loop up to `cap`.
pub(crate) fn aligned_cuts(extents: &[i64], cap: i64) -> Vec<i64> {
    let mut cuts = vec![1i64];
    let mut radix = 1i64;
    for &e in extents.iter().rev() {
        let mut d = 1;
        while d <= e {
            if e % d == 0 {
                let cut = radix * d;
                if cut <= cap && !cuts.contains(&cut) {
                    cuts.push(cut);
                }
            }
            d += 1;
        }
        radix *= e;
        if radix > cap {
            break;
        }
    }
    cuts
}

/// Binds a standalone (data-movement or epilogue) block's loops flat to
/// `blockIdx.x`/`threadIdx.x` with the given thread count.
pub(crate) fn gpu_flat_bind(
    sch: &mut Schedule,
    block: &BlockRef,
    threads: i64,
) -> Result<(), ScheduleError> {
    let loops = sch.get_loops(block)?;
    if loops.is_empty() {
        return Ok(());
    }
    let extents: Vec<i64> = loops
        .iter()
        .map(|l| sch.loop_extent(l))
        .collect::<Result<_, _>>()?;
    let fused = if loops.len() > 1 {
        sch.fuse(&loops)?
    } else {
        loops[0].clone()
    };
    let t = aligned_cut(&extents, threads);
    let parts = sch.split(&fused, &[-1, t])?;
    sch.bind(&parts[0], ThreadTag::BlockIdxX)?;
    sch.bind(&parts[1], ThreadTag::ThreadIdxX)?;
    Ok(())
}

/// The tensorized GPU sketch.
pub struct GpuTensorSketch {
    name: String,
    base: Schedule,
    outer_block: BlockRef,
    inner_block: BlockRef,
    dm_blocks: Vec<String>,
    input_staging: Vec<String>,
    /// Other leaf blocks of the function (e.g. fused epilogues, padding
    /// stages of T2D) that the tensorized part does not cover.
    other_blocks: Vec<String>,
    has_batch: bool,
    tile_extents: Vec<i64>,
    /// Stage operands through shared memory (TensorIR) or not (AMOS-like).
    staged: bool,
}

impl GpuTensorSketch {
    /// Builds the sketch by auto-tensorizing `func`'s block `block_name`
    /// with `intrin`.
    ///
    /// # Errors
    ///
    /// Fails when auto-tensorization fails.
    pub fn new(
        func: &PrimFunc,
        block_name: &str,
        intrin: &TensorIntrin,
        staged: bool,
    ) -> Result<Self, ScheduleError> {
        let t = auto_tensorize(func, block_name, intrin)?;
        let loops = t.schedule.get_loops(&t.outer_block)?;
        let tile_extents: Vec<i64> = loops
            .iter()
            .map(|l| t.schedule.loop_extent(l))
            .collect::<Result<_, _>>()?;
        let has_batch = tile_extents.len() == intrin.iters.len() + 1;
        let mut known: Vec<String> = t.data_movement_blocks.clone();
        known.push(t.outer_block.name().to_string());
        known.push(t.inner_block.name().to_string());
        known.push("root".to_string());
        let other_blocks: Vec<String> = tir::visit::block_names(&t.schedule.func().body)
            .into_iter()
            .filter(|n| !known.contains(n))
            .collect();
        Ok(GpuTensorSketch {
            name: if staged {
                format!("gpu-tensor[{}]", intrin.name)
            } else {
                format!("gpu-tensor-nostage[{}]", intrin.name)
            },
            base: t.schedule,
            outer_block: t.outer_block,
            inner_block: t.inner_block,
            dm_blocks: t.data_movement_blocks,
            input_staging: t.input_staging,
            other_blocks,
            has_batch,
            tile_extents,
            staged,
        })
    }
}

impl SketchRule for GpuTensorSketch {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> Vec<DecisionKind> {
        let skip = usize::from(self.has_batch);
        // x and y tiles in 3 parts (grid / warps / serial), k in 2 parts.
        vec![
            DecisionKind::PerfectTile {
                extent: self.tile_extents[skip],
                parts: 3,
            },
            DecisionKind::PerfectTile {
                extent: self.tile_extents[skip + 1],
                parts: 3,
            },
            DecisionKind::PerfectTile {
                extent: self.tile_extents[skip + 2],
                parts: 2,
            },
        ]
    }

    fn apply(&self, decisions: &[Decision]) -> Result<PrimFunc, ScheduleError> {
        let mut sch = self.base.clone();
        let loops = sch.get_loops(&self.outer_block)?;
        let skip = usize::from(self.has_batch);
        let (xd, yd, kd) = (&decisions[0], &decisions[1], &decisions[2]);
        // Warp count must stay within launch limits.
        let warps = xd[1] * yd[1];
        if warps > 32 {
            return Err(ScheduleError::Precondition(format!(
                "{warps} warps exceed the launch budget"
            )));
        }
        let xs = sch.split(&loops[skip], xd)?;
        let ys = sch.split(&loops[skip + 1], yd)?;
        let ks = sch.split(&loops[skip + 2], kd)?;
        // Order: [b?] x0 y0 | x1 y1 | k0 k1 | x2 y2.
        let mut order: Vec<LoopRef> = Vec::new();
        order.extend(loops[..skip].iter().cloned());
        order.extend([xs[0].clone(), ys[0].clone()]);
        order.extend([xs[1].clone(), ys[1].clone()]);
        order.extend([ks[0].clone(), ks[1].clone()]);
        order.extend([xs[2].clone(), ys[2].clone()]);
        sch.reorder(&order)?;
        // Grid binding: fuse [b?, x0, y0] -> blockIdx.x.
        let mut grid_loops: Vec<LoopRef> = loops[..skip].to_vec();
        grid_loops.extend([xs[0].clone(), ys[0].clone()]);
        let bid = if grid_loops.len() > 1 {
            sch.fuse(&grid_loops)?
        } else {
            grid_loops[0].clone()
        };
        sch.bind(&bid, ThreadTag::BlockIdxX)?;
        // Warp binding: fuse [x1, y1] -> threadIdx.y.
        let wid = sch.fuse(&[xs[1].clone(), ys[1].clone()])?;
        sch.bind(&wid, ThreadTag::ThreadIdxY)?;

        // Accumulator fragment, written back after the k loops.
        let wb = sch.cache_write(&self.inner_block, MemScope::WmmaAccumulator, Some(&wid))?;
        sch.annotate_block(&wb, "auto_copy", AnnValue::Int(1))?;
        sch.annotate_block(&wb, "tir.cooperative", AnnValue::Int(32))?;

        // Operand staging.
        for (pos, input) in self.input_staging.iter().enumerate() {
            let buf = sch.find_buffer(input).ok_or_else(|| {
                ScheduleError::Precondition(format!("staging buffer {input} missing"))
            })?;
            let frag_scope = if pos == 0 {
                MemScope::WmmaMatrixA
            } else {
                MemScope::WmmaMatrixB
            };
            if self.staged {
                let sh = sch.cache_read(&self.inner_block, &buf, MemScope::Shared, Some(&ks[0]))?;
                sch.annotate_block(&sh, "auto_copy", AnnValue::Int(1))?;
                sch.annotate_block(&sh, "tir.cooperative", AnnValue::Int(warps * 32))?;
                let sh_buf = sch.find_buffer(&format!("{input}_shared")).ok_or_else(|| {
                    ScheduleError::Precondition("shared staging buffer missing".into())
                })?;
                let frag = sch.cache_read(&self.inner_block, &sh_buf, frag_scope, Some(&ks[1]))?;
                sch.annotate_block(&frag, "auto_copy", AnnValue::Int(1))?;
                sch.annotate_block(&frag, "tir.cooperative", AnnValue::Int(32))?;
            } else {
                let frag = sch.cache_read(&self.inner_block, &buf, frag_scope, Some(&ks[1]))?;
                sch.annotate_block(&frag, "tir.cooperative", AnnValue::Int(32))?;
            }
        }

        // Data-movement blocks at function scope: ReIndex stages and the
        // write-back. TensorIR inlines the input ReIndex stages into their
        // consumers (§4.2: "they will be inlined into consumers"); the
        // AMOS-like variant keeps them as separate global passes.
        for name in &self.dm_blocks {
            if name.ends_with("_reindex") {
                let block = sch.get_block(name)?;
                if self.staged {
                    sch.compute_inline(&block)?;
                } else {
                    gpu_flat_bind(&mut sch, &block, 128)?;
                }
            } else {
                // The write-back of the valid output region.
                let block = sch.get_block(name)?;
                gpu_flat_bind(&mut sch, &block, 128)?;
            }
        }

        // Flat-bind any remaining leaf blocks (fused epilogues, padding
        // stages) so no part of the function runs serially on the host.
        for name in &self.other_blocks {
            if let Ok(block) = sch.get_block(name) {
                let _ = gpu_flat_bind(&mut sch, &block, 128);
            }
        }
        tir_analysis::validate(sch.func())
            .map_err(|e| ScheduleError::Invalid(format!("{}", e[0])))?;
        Ok(sch.into_func())
    }
}

/// The scalar (Ansor/TVM-like) GPU sketch.
pub struct GpuScalarSketch {
    name: String,
    base: Schedule,
    /// Leaf blocks to schedule: (name, spatial loops, reduce loops).
    blocks: Vec<(String, usize, usize)>,
}

impl GpuScalarSketch {
    /// Builds the sketch for every leaf block of `func`.
    pub fn new(func: &PrimFunc) -> Self {
        let mut blocks = Vec::new();
        tir::visit::for_each_block_realize(&func.body, &mut |br| {
            if br.block.name == "root" {
                return;
            }
            let spatial = br
                .block
                .iter_vars
                .iter()
                .filter(|iv| iv.kind == tir::IterKind::Spatial)
                .count();
            let reduce = br.block.iter_vars.len() - spatial;
            blocks.push((br.block.name.clone(), spatial, reduce));
        });
        GpuScalarSketch {
            name: "gpu-scalar".to_string(),
            base: Schedule::new(func.clone()),
            blocks,
        }
    }
}

impl SketchRule for GpuScalarSketch {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> Vec<DecisionKind> {
        // Per block: thread count, serial step, and reduction split — the
        // flat scalar space is much larger than the tensorized one, which
        // is exactly the paper's divide-and-conquer argument (§5.2).
        self.blocks
            .iter()
            .flat_map(|_| {
                [
                    DecisionKind::Choice {
                        options: vec![32, 64, 128, 256],
                    },
                    DecisionKind::Choice {
                        options: vec![1, 2, 4, 8],
                    },
                    DecisionKind::Choice {
                        options: vec![1, 2, 4, 8],
                    },
                ]
            })
            .collect()
    }

    fn apply(&self, decisions: &[Decision]) -> Result<PrimFunc, ScheduleError> {
        let mut sch = self.base.clone();
        let per_block: Vec<&[Decision]> = decisions.chunks(3).collect();
        for ((name, n_spatial, n_reduce), d) in self.blocks.iter().zip(per_block) {
            let block = sch.get_block(name)?;
            let loops = sch.get_loops(&block)?;
            let spatial: Vec<LoopRef> = loops[..(*n_spatial).min(loops.len())].to_vec();
            if spatial.is_empty() {
                continue;
            }
            let reduce_loops: Vec<LoopRef> = loops
                .get(*n_spatial..(*n_spatial + *n_reduce).min(loops.len()))
                .map(<[LoopRef]>::to_vec)
                .unwrap_or_default();
            let extents: Vec<i64> = spatial
                .iter()
                .map(|l| sch.loop_extent(l))
                .collect::<Result<_, _>>()?;
            let fused = if spatial.len() > 1 {
                sch.fuse(&spatial)?
            } else {
                spatial[0].clone()
            };
            // Serial register-tiling step below the thread loop: both cut
            // points of the three-way split must be radix-aligned.
            let step = aligned_cut(&extents, d[1][0]);
            let outer_cut = aligned_cuts(&extents, step * d[0][0])
                .into_iter()
                .filter(|c| c % step == 0)
                .max()
                .unwrap_or(step);
            let threads = (outer_cut / step).max(1);
            let parts = if step > 1 {
                let p = sch.split(&fused, &[-1, threads, step])?;
                vec![p[0].clone(), p[1].clone()]
            } else {
                sch.split(&fused, &[-1, threads])?
            };
            sch.bind(&parts[0], ThreadTag::BlockIdxX)?;
            sch.bind(&parts[1], ThreadTag::ThreadIdxX)?;
            // Ansor-style register accumulation and cooperative shared
            // staging of the inputs around the reduction loops.
            if !reduce_loops.is_empty() {
                let read_bufs: Vec<tir::Buffer> = {
                    let br = tir::visit::find_block(&sch.func().body, name)
                        .ok_or_else(|| ScheduleError::BlockNotFound(name.clone()))?;
                    br.block.reads.iter().map(|r| r.buffer.clone()).collect()
                };
                // Each staging step is speculative: accesses with negative
                // index coefficients (e.g. T2D's flipped kernel) cannot be
                // staged soundly, so keep a step only if the program still
                // validates.
                let attempt = |sch: &mut Schedule, f: &dyn Fn(&mut Schedule) -> bool| {
                    let backup = sch.clone();
                    if !f(sch) || tir_analysis::validate(sch.func()).is_err() {
                        *sch = backup;
                    }
                };
                attempt(&mut sch, &|s| {
                    s.cache_write(&block, MemScope::Local, Some(&parts[1]))
                        .is_ok()
                });
                for buf in read_bufs {
                    attempt(&mut sch, &|s| match s.cache_read(
                        &block,
                        &buf,
                        MemScope::Shared,
                        Some(&reduce_loops[0]),
                    ) {
                        Ok(copy) => {
                            let _ = s.annotate_block(&copy, "auto_copy", AnnValue::Int(1));
                            let _ =
                                s.annotate_block(&copy, "tir.cooperative", AnnValue::Int(threads));
                            true
                        }
                        Err(_) => false,
                    });
                }
                // Optional serial two-level reduction split (after staging
                // so the staging loop reference stays valid).
                let k_factor = d[2][0];
                let extent = sch.loop_extent(&reduce_loops[0])?;
                if k_factor > 1 && extent % k_factor == 0 && extent > k_factor {
                    let _ = sch.split(&reduce_loops[0], &[-1, k_factor]);
                }
            }
        }
        tir_analysis::validate(sch.func())
            .map_err(|e| ScheduleError::Invalid(format!("{}", e[0])))?;
        Ok(sch.into_func())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::decisions_well_formed;
    use tir::DataType;
    use tir_exec::{assert_same_semantics, simulate, Machine};
    use tir_rand::rngs::StdRng;
    use tir_rand::SeedableRng;
    use tir_tensorize::builtin_registry;

    fn mm16(n: i64) -> PrimFunc {
        tir::builder::matmul_func("mm", n, n, n, DataType::float16())
    }

    #[test]
    fn tensor_sketch_produces_valid_fast_programs() {
        let func = mm16(64);
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        let sketch = GpuTensorSketch::new(&func, "C", wmma, true).expect("sketch");
        let mut rng = StdRng::seed_from_u64(1);
        let machine = Machine::sim_gpu();
        let mut ok = 0;
        for _ in 0..10 {
            let d = sketch.sample(&mut rng);
            assert!(decisions_well_formed(&sketch.space(), &d));
            match sketch.apply(&d) {
                Ok(f) => {
                    ok += 1;
                    assert_same_semantics(&func, &f, 1, 0.0);
                    let t = simulate(&f, &machine);
                    assert!(t.is_finite() && t > 0.0);
                }
                Err(ScheduleError::Precondition(_)) | Err(ScheduleError::Invalid(_)) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(ok >= 3, "too few valid candidates: {ok}/10");
    }

    #[test]
    fn tensor_sketch_beats_scalar_sketch_on_matmul() {
        let func = mm16(128);
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        let tensor = GpuTensorSketch::new(&func, "C", wmma, true).expect("sketch");
        let scalar = GpuScalarSketch::new(&func);
        let mut rng = StdRng::seed_from_u64(2);
        let machine = Machine::sim_gpu();
        let best = |sketch: &dyn SketchRule, rng: &mut StdRng| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..20 {
                let d = sketch.sample(rng);
                if let Ok(f) = sketch.apply(&d) {
                    best = best.min(simulate(&f, &machine));
                }
            }
            best
        };
        let t_tensor = best(&tensor, &mut rng);
        let t_scalar = best(&scalar, &mut rng);
        assert!(
            t_tensor < t_scalar,
            "tensorized {t_tensor} should beat scalar {t_scalar}"
        );
    }

    #[test]
    fn unstaged_amos_like_is_slower_than_staged() {
        // A conv workload: its im2col ReIndex stage is a real data-movement
        // pass, so the AMOS-like variant (no shared staging, materialized
        // layout rewrite) pays measurably more than the staged pipeline.
        let func = tir_workloads::c2d(8, 58, 58, 128, 128, 3, 3, 1, DataType::float16());
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        let staged = GpuTensorSketch::new(&func, "C", wmma, true).expect("staged");
        let unstaged = GpuTensorSketch::new(&func, "C", wmma, false).expect("unstaged");
        let machine = Machine::sim_gpu();
        let mut rng = StdRng::seed_from_u64(3);
        let best = |sketch: &GpuTensorSketch, rng: &mut StdRng| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..20 {
                let d = sketch.sample(rng);
                if let Ok(f) = sketch.apply(&d) {
                    best = best.min(simulate(&f, &machine));
                }
            }
            best
        };
        let t_staged = best(&staged, &mut rng);
        let t_unstaged = best(&unstaged, &mut rng);
        assert!(
            t_staged < t_unstaged,
            "staged {t_staged} should beat unstaged {t_unstaged}"
        );
    }

    #[test]
    fn scalar_sketch_handles_multi_block_funcs() {
        let func = tir_workloads::t2d(1, 4, 4, 2, 4, 3, 3, 2, DataType::float16());
        let sketch = GpuScalarSketch::new(&func);
        let mut rng = StdRng::seed_from_u64(4);
        let d = sketch.sample(&mut rng);
        let f = sketch.apply(&d).expect("apply");
        assert_same_semantics(&func, &f, 1, 0.0);
    }
}
