//! Evolutionary search with a learned cost model, validation filtering
//! (§4.4), and a parallel candidate-evaluation pipeline.
//!
//! The search samples random decision vectors for a sketch, evolves them by
//! mutation and crossover, ranks unmeasured candidates with the GBDT cost
//! model, "measures" the most promising ones on the hardware simulator, and
//! feeds the measurements back into the model. Invalid candidates (failed
//! primitives or §3.3 validation) are filtered *before* measurement; the
//! `validate_before_measure` flag exists so the ablation benchmark can show
//! what happens without the filter (wasted measurement budget).
//!
//! # Parallel pipeline
//!
//! Candidate evaluation dominates tuning wall-clock, so every
//! per-candidate stage fans out across a thread pool
//! ([`crate::parallel`]): decision sampling/mutation/crossover, sketch
//! instantiation + §3.3 validation, cost summarization, feature
//! extraction, batched cost-model ranking, and simulated measurement. The
//! coordinator keeps only the sequential steps: deduplication, batch
//! selection, accounting, elite maintenance, and cost-model updates.
//!
//! Parallel runs are bit-for-bit deterministic: each population slot of
//! each generation draws from its own generator seeded by
//! `derive_seed(opts.seed, [generation, slot])`, and all fan-out results
//! are consumed in slot order, so the search trajectory is a pure function
//! of `TuneOptions` — any thread count, including 1, replays it exactly.
//!
//! `num_threads` also sets the width of the *simulated* measurement farm:
//! each generation's batch of compile+profile jobs is spread over that
//! many build+measure workers (as real tuners do with builder/runner
//! pools), and `tuning_cost_s` accumulates the batch makespans. With one
//! worker this reduces to the serial sum that Table 1 reports.
//!
//! # Candidate cache
//!
//! Different decision vectors frequently materialize *structurally
//! identical* programs (e.g. permuted tile factors of 1). A cache keyed by
//! [`tir::structural::structural_hash`] recognizes them: on a hit,
//! summarization, feature extraction, and the simulated hardware
//! measurement are all skipped and the recorded measurement is reused.
//! Because the simulator is deterministic, the reused value equals what
//! re-measurement would produce, so the cache changes *only* the cost of
//! tuning (wall-clock and simulated `tuning_cost_s`), never the result.
//!
//! # Fault tolerance
//!
//! Measurements go through the [`crate::measure`] harness: any
//! [`Measurer`] backend (by default the analytic simulator, optionally
//! wrapped in a [`crate::measure::FaultInjector`]) with capped
//! exponential retry/backoff for transient failures, repeat-until-
//! agreement outlier rejection for corrupt readings, and `catch_unwind`
//! isolation so a panicking candidate fails alone. Candidates that fail
//! *deterministically* (compile rejects) are quarantined by structural
//! hash and never re-measured. All retry/backoff delay is charged to
//! `tuning_cost_s`, preserving the key invariant: under any transient
//! fault rate the search trajectory — `best`, `history`, every counter
//! except `tuning_cost_s`/`retries`/`failed_measurements` — is
//! bit-identical to the fault-free run.
//!
//! # Checkpoint/resume
//!
//! With `TuneOptions::checkpoint_path` set, the complete coordinator
//! state is persisted after every generation ([`crate::checkpoint`]), and
//! a later run with the same options resumes from it: a killed-and-
//! resumed run returns the bit-identical result as an uninterrupted one,
//! because fault draws and per-slot RNGs are pure functions of
//! `(seed, candidate, attempt)` / `(seed, generation, slot)` — never of
//! how many times the process restarted.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

use tir_rand::rngs::StdRng;
use tir_rand::{derive_seed, SeedableRng};

use tir::structural::structural_hash;
use tir::PrimFunc;
use tir_exec::cost::{estimate_breakdown, summarize, RooflineBound};
use tir_exec::machine::Machine;
use tir_trace::{Collector, Key};

use crate::checkpoint::{self, TuneCheckpoint};
use crate::cost_model::CostModel;
use crate::feature::features_of_summary;
use crate::measure::{
    measure_with_retries, measure_with_retries_traced, MeasureError, MeasureOutcome, MeasureTrace,
    Measurer, RetryPolicy, SimMeasurer, COMPILE_OVERHEAD_S,
};
use crate::parallel::{effective_threads, parallel_map, try_parallel_map};
use crate::sketch::{Decision, SketchRule};

/// Search configuration.
///
/// All knobs default to the values the paper-reproduction benches use;
/// construct with struct-update syntax (`TuneOptions { trials: 64,
/// ..Default::default() }`) so new knobs never break call sites.
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Measurement (hardware-profile) budget: the search stops once this
    /// many candidates have been measured (§4.4's trial budget; Table 1
    /// reports tuning cost as a function of it).
    pub trials: usize,
    /// Candidates generated per generation of the evolutionary loop.
    pub population: usize,
    /// Measurements per generation, taken from the top of the cost-model
    /// ranking (§4.4: the most promising candidates go to hardware).
    pub measure_per_generation: usize,
    /// RNG seed. The whole search — serial or parallel — is a pure
    /// function of this seed and the other options.
    pub seed: u64,
    /// Rank candidates with the learned cost model (vs. measuring in
    /// sample order). Ablation 3 of `benches/ablations.rs` turns this off.
    pub use_cost_model: bool,
    /// Filter invalid candidates before measurement (§3.3 validation);
    /// when false, invalid candidates consume measurement budget (the
    /// ablation case).
    pub validate_before_measure: bool,
    /// Worker threads for the candidate-evaluation pipeline, and the
    /// width of the simulated build+measure farm in the `tuning_cost_s`
    /// accounting. `0` (the default) uses all available cores; `1` forces
    /// the serial path. Any value finds the bit-identical best program
    /// (see the module docs); only the accounted tuning cost shrinks with
    /// more workers.
    pub num_threads: usize,
    /// Reuse measurements of structurally identical candidates via the
    /// structural-hash cache. Never changes the search result (the
    /// simulator is deterministic); only reduces tuning cost. Disable to
    /// model a tuner that re-profiles duplicates.
    pub use_candidate_cache: bool,
    /// Retry/backoff policy for transient measurement failures (see
    /// [`crate::measure`]). The defaults make transient-fault exhaustion
    /// astronomically unlikely, preserving the fault-rate invariant.
    pub retry: RetryPolicy,
    /// When set, the complete coordinator state is checkpointed to this
    /// file after every generation, and a run starting with a valid
    /// matching checkpoint (same seed/machine/sketch) resumes from it
    /// bit-identically. Save failures are ignored (resumability is lost,
    /// the run is not).
    pub checkpoint_path: Option<PathBuf>,
    /// Stop after this many generations even if trial budget remains —
    /// the hook the kill-and-resume tests use to interrupt a run at a
    /// generation boundary. `None` (the default) runs to budget.
    pub max_generations: Option<u64>,
    /// Warm start from a previously tuned record: the search begins with
    /// this program as the incumbent best instead of nothing, so a
    /// re-tune with a larger budget can only improve on the stored
    /// result. The warm start never changes the search *trajectory* —
    /// proposals, measurements, and the cost model are untouched; it only
    /// floors `best`/`best_time` (and therefore `history`). This is how
    /// the tuning database and the serve daemon implement budget-upgrade
    /// re-tuning without ever regressing a stored record.
    pub warm_start: Option<WarmStart>,
    /// Bytecode backend for any VM execution the tuning stack performs
    /// on tuned programs — the post-tune instruction-mix profile of
    /// `tune-profile`, and every search the serve daemon runs inherits
    /// it from `ServeConfig`. The default optimized VM
    /// ([`tir_exec::ExecBackend::Vm`]) is bit-identical to
    /// [`tir_exec::ExecBackend::VmUnopt`]; switching backends is the
    /// production escape hatch for bisecting a suspected bytecode-
    /// optimizer regression without a rebuild (`--no-opt` on the
    /// binaries). Never changes search results — candidates are
    /// measured on the roofline simulator, not the VM.
    pub exec_backend: tir_exec::ExecBackend,
    /// Observability sink ([`tir_trace::Collector`]). `None` (the
    /// default) records nothing and pays nothing beyond one branch per
    /// generation. When set and enabled, the search emits per-generation
    /// phase spans (`search.*`), per-attempt measurement events
    /// (`measure.*`), counters, and roofline attribution. Tracing never
    /// perturbs the search: `best`/`best_time`/`history` are bit-identical
    /// with tracing on or off, at every thread count, and the merged
    /// report itself is byte-identical at every thread count (all span
    /// times are simulated seconds keyed by deterministic positions).
    pub trace: Option<Arc<Collector>>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            trials: 64,
            population: 32,
            measure_per_generation: 8,
            seed: 42,
            use_cost_model: true,
            validate_before_measure: true,
            num_threads: 0,
            use_candidate_cache: true,
            retry: RetryPolicy::default(),
            checkpoint_path: None,
            max_generations: None,
            warm_start: None,
            exec_backend: tir_exec::ExecBackend::default(),
            trace: None,
        }
    }
}

/// A previously tuned result used to seed a re-tune (see
/// [`TuneOptions::warm_start`]).
#[derive(Clone, Debug)]
pub struct WarmStart {
    /// The stored best program.
    pub best: PrimFunc,
    /// Its measured time — the incumbent the re-tune must beat.
    pub best_time: f64,
}

/// Outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The fastest program found (if any candidate was valid).
    pub best: Option<PrimFunc>,
    /// Simulated execution time of the best program, seconds.
    pub best_time: f64,
    /// Measurements actually performed (cache hits included: a hit still
    /// consumes one unit of trial budget, it just costs nothing).
    pub trials_measured: usize,
    /// Candidates rejected by construction/validation before measuring.
    pub invalid_filtered: usize,
    /// Measurement budget wasted on invalid candidates (only when
    /// `validate_before_measure` is off).
    pub wasted_measurements: usize,
    /// Simulated wall-clock cost of tuning: profiling time plus per-trial
    /// compilation overhead (the quantity Table 1 reports). Each batch is
    /// distributed over `num_threads` build+measure workers, so this is
    /// the sum of per-generation makespans; at one thread it is the plain
    /// serial sum. Cache hits contribute nothing — the measurement is
    /// reused, not repeated.
    pub tuning_cost_s: f64,
    /// Best-so-far after each measurement.
    pub history: Vec<f64>,
    /// Measurements served from the structural-hash candidate cache.
    pub cache_hits: usize,
    /// Candidates whose measurement failed even after retries (transient
    /// exhaustion) or deterministically (compile reject). Each consumes
    /// one unit of trial budget — a farm pays for failures too.
    pub failed_measurements: usize,
    /// Extra measurement attempts beyond the minimum: transient-failure
    /// retries plus repeat readings taken for outlier rejection.
    pub retries: u64,
    /// Candidates quarantined after a deterministic failure; structurally
    /// identical re-proposals are skipped without consuming budget.
    pub quarantined: usize,
    /// The generation this run resumed from, when it started from a valid
    /// checkpoint; `None` for an uninterrupted run.
    pub resumed_from_generation: Option<u64>,
}

impl Default for TuneResult {
    fn default() -> Self {
        TuneResult {
            best: None,
            best_time: f64::INFINITY,
            trials_measured: 0,
            invalid_filtered: 0,
            wasted_measurements: 0,
            tuning_cost_s: 0.0,
            history: Vec::new(),
            cache_hits: 0,
            failed_measurements: 0,
            retries: 0,
            quarantined: 0,
            resumed_from_generation: None,
        }
    }
}

/// Simulated wall-clock of a measurement batch distributed over `workers`
/// parallel build+measure slots: greedy assignment of each candidate (in
/// slot order) to the least-loaded worker, returning the longest worker's
/// load. One worker degenerates to the serial sum. Deterministic — ties
/// pick the lowest worker index.
///
/// Hardened against bad inputs: a non-finite or negative cost (e.g. a
/// `NaN` measurement of an unvalidated candidate) charges only the
/// compile overhead, so `NaN` can never poison `tuning_cost_s`.
fn batch_makespan(costs: &[f64], workers: usize) -> f64 {
    let mut load = vec![0.0f64; workers.clamp(1, costs.len().max(1))];
    for &c in costs {
        let c = if c.is_finite() && c >= 0.0 {
            c
        } else {
            COMPILE_OVERHEAD_S
        };
        let min = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        load[min] += c;
    }
    load.into_iter().fold(0.0, f64::max)
}

/// How one population slot derives its decision vector (fixed by the
/// coordinator before the generation fans out).
enum Plan {
    /// Crossover of two elite decision vectors, then one mutation.
    Cross(usize, usize),
    /// One mutation of an elite decision vector.
    Mutate(usize),
    /// A fresh random sample.
    Sample,
}

/// A measurement recorded in the structural-hash candidate cache.
struct CachedMeasurement {
    features: Vec<f64>,
    time: f64,
}

/// Per-candidate result of the parallel evaluation pipeline.
struct CandidateEval {
    decisions: Vec<Decision>,
    /// Materialized program; `None` when construction/validation failed.
    func: Option<PrimFunc>,
    /// Structural hash of the program (0 when invalid).
    hash: u64,
    /// Feature vector (empty when invalid).
    features: Vec<f64>,
    /// Cached measurement time; `NaN` unless `cached` (measurement of
    /// uncached candidates happens after batch selection, through the
    /// fault-tolerant harness).
    time: f64,
    /// Whether features/time were served from the candidate cache.
    cached: bool,
}

/// The complete mutable coordinator state of a tuning run — everything a
/// checkpoint must capture for a resumed run to be bit-identical.
struct SearchState {
    result: TuneResult,
    model: CostModel,
    /// Every decision vector ever proposed (dedup set).
    seen: HashSet<Vec<Decision>>,
    /// Elite pool of (decisions, measured time), in coordinator order.
    elites: Vec<(Vec<Decision>, f64)>,
    /// Structural-hash cache of completed measurements. Owned by the
    /// coordinator; each generation reads a frozen snapshot in parallel
    /// and new measurements are folded in afterwards.
    cache: HashMap<u64, CachedMeasurement>,
    /// Structural hashes of deterministically failing candidates.
    quarantine: HashSet<u64>,
    /// Decision vector of the current best (for checkpointing: the best
    /// program itself is re-materialized from this on resume).
    best_decisions: Option<Vec<Decision>>,
    /// Next generation to execute.
    generation: u64,
}

impl SearchState {
    fn fresh() -> Self {
        SearchState {
            result: TuneResult::default(),
            model: CostModel::new(),
            seen: HashSet::new(),
            elites: Vec::new(),
            cache: HashMap::new(),
            quarantine: HashSet::new(),
            best_decisions: None,
            generation: 0,
        }
    }

    /// Trial budget consumed so far: successful, wasted, and failed
    /// measurements all count (a farm pays for failures too).
    fn budget_used(&self) -> usize {
        self.result.trials_measured
            + self.result.wasted_measurements
            + self.result.failed_measurements
    }

    /// Rebuilds the run state recorded in a checkpoint. Returns `None` if
    /// the checkpoint is internally inconsistent (its best decision
    /// vector no longer materializes) — the run then starts fresh.
    fn from_checkpoint(ck: TuneCheckpoint, sketch: &dyn SketchRule) -> Option<Self> {
        let (best, best_decisions) = match ck.best_decisions {
            None => (None, None),
            Some(d) => (Some(sketch.apply(&d).ok()?), Some(d)),
        };
        let mut model = CostModel::new();
        // The GBDT refit is a deterministic function of the sample
        // sequence, so restoring the samples restores the exact ensemble.
        model.set_samples(ck.model_samples);
        Some(SearchState {
            result: TuneResult {
                best,
                best_time: ck.best_time,
                trials_measured: ck.trials_measured,
                invalid_filtered: ck.invalid_filtered,
                wasted_measurements: ck.wasted_measurements,
                tuning_cost_s: ck.tuning_cost_s,
                history: ck.history,
                cache_hits: ck.cache_hits,
                failed_measurements: ck.failed_measurements,
                retries: ck.retries,
                quarantined: ck.quarantined,
                resumed_from_generation: Some(ck.generation),
            },
            model,
            seen: ck.seen.into_iter().collect(),
            elites: ck.elites,
            cache: ck
                .cache
                .into_iter()
                .map(|(h, features, time)| (h, CachedMeasurement { features, time }))
                .collect(),
            quarantine: ck.quarantine.into_iter().collect(),
            best_decisions,
            generation: ck.generation,
        })
    }

    fn to_checkpoint(&self, seed: u64, machine: &str, sketch: &str) -> TuneCheckpoint {
        TuneCheckpoint {
            seed,
            machine: machine.to_string(),
            sketch: sketch.to_string(),
            generation: self.generation,
            trials_measured: self.result.trials_measured,
            invalid_filtered: self.result.invalid_filtered,
            wasted_measurements: self.result.wasted_measurements,
            failed_measurements: self.result.failed_measurements,
            retries: self.result.retries,
            cache_hits: self.result.cache_hits,
            quarantined: self.result.quarantined,
            best_time: self.result.best_time,
            tuning_cost_s: self.result.tuning_cost_s,
            history: self.result.history.clone(),
            best_decisions: self.best_decisions.clone(),
            elites: self.elites.clone(),
            seen: self.seen.iter().cloned().collect(),
            cache: self
                .cache
                .iter()
                .map(|(h, m)| (*h, m.features.clone(), m.time))
                .collect(),
            quarantine: self.quarantine.iter().copied().collect(),
            model_samples: self.model.samples().to_vec(),
        }
    }
}

/// Runs evolutionary search over one sketch on the default (fault-free,
/// noise-free) simulator backend.
///
/// Deterministic for a given `opts` (including across `num_threads`
/// values); see the module docs for how the parallel pipeline and the
/// candidate cache preserve that.
pub fn tune(sketch: &dyn SketchRule, machine: &Machine, opts: &TuneOptions) -> TuneResult {
    tune_with(sketch, machine, opts, &SimMeasurer)
}

/// Runs evolutionary search over one sketch against an arbitrary
/// [`Measurer`] backend — the entry point the fault-tolerance tests and
/// benches drive with a [`crate::measure::FaultInjector`].
///
/// Measurement failures are retried (transient), quarantined
/// (deterministic), or counted as failed after exhaustion; all simulated
/// delay lands in `tuning_cost_s`. Under a purely transient fault plan
/// the returned `best`/`history` are bit-identical to the fault-free run.
pub fn tune_with(
    sketch: &dyn SketchRule,
    machine: &Machine,
    opts: &TuneOptions,
    measurer: &dyn Measurer,
) -> TuneResult {
    // Degenerate budgets: nothing to search. Guarded explicitly — a zero
    // `measure_per_generation` would otherwise loop forever without ever
    // consuming budget, and a zero `population` would spin proposing
    // nothing.
    if opts.trials == 0 || opts.population == 0 || opts.measure_per_generation == 0 {
        return TuneResult::default();
    }
    let threads = effective_threads(opts.num_threads);
    // One trace stream per tune_with call, allocated by the coordinator so
    // stream ids are deterministic regardless of thread count.
    let trace: Option<&Collector> = opts.trace.as_deref().filter(|c| c.is_enabled());
    let stream = trace.map_or(0, |c| c.stream(sketch.name()));
    let mut state = opts
        .checkpoint_path
        .as_ref()
        .and_then(|p| checkpoint::load(p, opts.seed, &machine.name, sketch.name()))
        .and_then(|ck| SearchState::from_checkpoint(ck, sketch))
        .unwrap_or_else(SearchState::fresh);

    // Seed the incumbent from a warm start (stored tuning record) when it
    // beats whatever the state holds. The trajectory below is untouched:
    // the incumbent only gates the `t < best_time` replacement test.
    if let Some(w) = &opts.warm_start {
        if w.best_time < state.result.best_time {
            state.result.best = Some(w.best.clone());
            state.result.best_time = w.best_time;
        }
    }

    while state.budget_used() < opts.trials
        && opts.max_generations.is_none_or(|g| state.generation < g)
    {
        let generation = state.generation;
        let SearchState {
            result,
            model,
            seen,
            elites,
            cache,
            quarantine,
            best_decisions,
            ..
        } = &mut state;
        // Coordinator: fix each slot's derivation plan (half evolved from
        // elites, half random).
        let plans: Vec<Plan> = (0..opts.population)
            .map(|i| {
                if elites.len() >= 2 && i % 2 == 0 {
                    Plan::Cross(i % elites.len(), (i + 1) % elites.len())
                } else if !elites.is_empty() && i % 4 == 1 {
                    Plan::Mutate(i % elites.len())
                } else {
                    Plan::Sample
                }
            })
            .collect();

        // Fan-out 1: sampling / mutation / crossover. Each slot owns a
        // generator derived from (seed, generation, slot), so the outcome
        // is independent of thread interleaving.
        let elites_ref: &Vec<(Vec<Decision>, f64)> = elites;
        let proposals: Vec<Vec<Decision>> = parallel_map(&plans, threads, |slot, plan| {
            let mut rng = StdRng::seed_from_u64(derive_seed(opts.seed, &[generation, slot as u64]));
            match *plan {
                Plan::Cross(a, b) => {
                    let crossed = sketch.crossover(&elites_ref[a].0, &elites_ref[b].0, &mut rng);
                    sketch.mutate(&crossed, &mut rng)
                }
                Plan::Mutate(e) => sketch.mutate(&elites_ref[e].0, &mut rng),
                Plan::Sample => sketch.sample(&mut rng),
            }
        });

        // Coordinator: deduplicate in slot order against everything ever
        // proposed (decision-vector level).
        let population: Vec<Vec<Decision>> = proposals
            .into_iter()
            .filter(|d| seen.insert(d.clone()))
            .collect();
        if population.is_empty() {
            // Search space exhausted.
            break;
        }

        // Fan-out 2: materialize + validate + summarize + extract features,
        // with cache lookups against the frozen snapshot. A panic while
        // materializing a candidate marks that candidate invalid instead
        // of aborting the run.
        let cache_ref: &HashMap<u64, CachedMeasurement> = cache;
        let invalid = |d: &Vec<Decision>| CandidateEval {
            decisions: d.clone(),
            func: None,
            hash: 0,
            features: Vec::new(),
            time: f64::NAN,
            cached: false,
        };
        let evals: Vec<CandidateEval> =
            try_parallel_map(&population, threads, |_, d| match sketch.apply(d) {
                Err(_) => invalid(d),
                Ok(f) => {
                    let hash = structural_hash(&f);
                    let (features, time, cached) = match cache_ref.get(&hash) {
                        Some(m) if opts.use_candidate_cache => (m.features.clone(), m.time, true),
                        _ => {
                            let s = summarize(&f);
                            // The actual measurement happens after batch
                            // selection, through the fault-tolerant
                            // harness; until then the time is unknown.
                            (features_of_summary(&f, &s), f64::NAN, false)
                        }
                    };
                    CandidateEval {
                        decisions: d.clone(),
                        func: Some(f),
                        hash,
                        features,
                        time,
                        cached,
                    }
                }
            })
            .into_iter()
            .zip(&population)
            .map(|(r, d)| r.unwrap_or_else(|_| invalid(d)))
            .collect();

        // Coordinator: validation-filter accounting, in slot order.
        let mut candidates: Vec<CandidateEval> = Vec::new();
        let mut features_extracted: u64 = 0;
        for eval in evals {
            if eval.func.is_some() && !eval.cached {
                features_extracted += 1;
            }
            if eval.func.is_none() {
                result.invalid_filtered += 1;
                if opts.validate_before_measure {
                    continue;
                }
                // Without the filter this candidate would have been sent
                // to the hardware and failed there.
            }
            candidates.push(eval);
        }

        // Fan-out 3: batched cost-model ranking over the whole generation.
        // A panicking scorer ranks its candidate neutrally (score 0)
        // rather than aborting the run.
        let model_ready = opts.use_cost_model && model.num_samples() >= 4;
        let model_ref: &CostModel = model;
        let mut scored: Vec<(f64, usize)> = try_parallel_map(&candidates, threads, |_, eval| {
            match &eval.func {
                Some(_) if model_ready => model_ref.predict(&eval.features),
                // Without the validation filter, an invalid candidate is
                // indistinguishable from a promising one until it fails
                // on the device: rank it like any unscored candidate.
                None => f64::MAX / 2.0,
                _ => 0.0,
            }
        })
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r.unwrap_or(0.0), i))
        .collect();
        // Stable sort: equal scores keep slot order, preserving
        // determinism.
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        // Coordinator: select the top-ranked batch. Quarantined
        // candidates (deterministic failures, keyed by structural hash)
        // are skipped without consuming any budget.
        let budget_left = opts.trials
            - (result.trials_measured + result.wasted_measurements + result.failed_measurements);
        let batch: Vec<usize> = scored
            .into_iter()
            .map(|(_, i)| i)
            .filter(|&i| {
                let e = &candidates[i];
                e.hash == 0 || !quarantine.contains(&e.hash)
            })
            .take(opts.measure_per_generation.min(budget_left))
            .collect();

        // Fan-out 4: measure the uncached members of the batch through
        // the fault-tolerant harness. The harness already converts panics
        // into per-candidate RunnerCrash errors; `try_parallel_map` is
        // the backstop for panics outside it.
        let jobs: Vec<usize> = batch
            .iter()
            .copied()
            .filter(|&i| candidates[i].func.is_some() && !candidates[i].cached)
            .collect();
        let candidates_ref = &candidates;
        let outcomes = try_parallel_map(&jobs, threads, |rank, &i| {
            let eval = &candidates_ref[i];
            match &eval.func {
                // The trace key is the job's rank in the batch — a pure
                // function of the (deterministic) batch order, so the
                // merged report is byte-identical at any thread count.
                Some(f) => match trace {
                    Some(c) => {
                        let mut buf = c.buffer();
                        let mut mt = MeasureTrace {
                            buf: &mut buf,
                            stream,
                            generation,
                            slot: rank as u64,
                        };
                        measure_with_retries_traced(
                            measurer,
                            f,
                            machine,
                            eval.hash,
                            &opts.retry,
                            Some(&mut mt),
                        )
                    }
                    None => measure_with_retries(measurer, f, machine, eval.hash, &opts.retry),
                },
                // Unreachable: `jobs` only holds valid candidates (the
                // filter above); degrade to a crash, never panic.
                None => MeasureOutcome {
                    reading: Err(MeasureError::RunnerCrash("candidate vanished".to_string())),
                    cost_s: COMPILE_OVERHEAD_S,
                    retries: 0,
                },
            }
        });
        let mut outcome_of: HashMap<usize, MeasureOutcome> = jobs
            .into_iter()
            .zip(outcomes.into_iter().map(|r| {
                r.unwrap_or_else(|msg| MeasureOutcome {
                    reading: Err(MeasureError::RunnerCrash(format!(
                        "measurement worker panicked: {msg}"
                    ))),
                    cost_s: COMPILE_OVERHEAD_S,
                    retries: 0,
                })
            }))
            .collect();

        // Coordinator: accounting over the batch, in rank order.
        let counters_before = (
            result.cache_hits,
            result.quarantined,
            result.retries,
            result.failed_measurements,
        );
        let mut verify_rejections: u64 = 0;
        let mut new_samples = Vec::new();
        let mut new_records: Vec<(u64, CachedMeasurement)> = Vec::new();
        let mut batch_costs: Vec<f64> = Vec::new();
        for i in batch {
            let eval = &candidates[i];
            let Some(f) = &eval.func else {
                // Sent to the farm unvalidated; failed at build time.
                result.wasted_measurements += 1;
                batch_costs.push(COMPILE_OVERHEAD_S);
                result.history.push(result.best_time);
                continue;
            };
            let (t, outcome) = if eval.cached {
                // Reused measurement: no profile repeats, no
                // recompilation, and by construction a trusted reading.
                result.cache_hits += 1;
                (eval.time, None)
            } else {
                let outcome = outcome_of.remove(&i).unwrap_or_else(|| MeasureOutcome {
                    // Unreachable by construction (every uncached valid
                    // batch member was submitted as a job); degrade to a
                    // failed measurement rather than panic.
                    reading: Err(MeasureError::RunnerCrash("missing outcome".to_string())),
                    cost_s: COMPILE_OVERHEAD_S,
                    retries: 0,
                });
                result.retries += outcome.retries;
                batch_costs.push(outcome.cost_s);
                match outcome.reading {
                    Ok(t) => (t, Some(())),
                    Err(e) => {
                        if matches!(e, MeasureError::CompileReject(_)) {
                            verify_rejections += 1;
                        }
                        result.failed_measurements += 1;
                        if !e.is_transient() && eval.hash != 0 && quarantine.insert(eval.hash) {
                            result.quarantined += 1;
                        }
                        result.history.push(result.best_time);
                        continue;
                    }
                }
            };
            if outcome.is_some() {
                new_records.push((
                    eval.hash,
                    CachedMeasurement {
                        features: eval.features.clone(),
                        time: t,
                    },
                ));
            }
            if let Some(c) = trace {
                // Roofline attribution of every measured candidate:
                // compute-bound vs bandwidth-bound on this machine. Only
                // evaluated while tracing — the breakdown re-runs the
                // summarizer, which the disabled path must not pay for.
                match estimate_breakdown(&summarize(f), machine).bound() {
                    RooflineBound::Compute => c.count("roofline.compute_bound", 1),
                    RooflineBound::Memory => c.count("roofline.memory_bound", 1),
                }
                c.observe("search.candidate_time_s", t);
            }
            result.trials_measured += 1;
            new_samples.push((eval.features.clone(), -(t.max(1e-12)).ln()));
            if t < result.best_time {
                result.best_time = t;
                result.best = Some(f.clone());
                *best_decisions = Some(eval.decisions.clone());
            }
            result.history.push(result.best_time);
            elites.push((eval.decisions.clone(), t));
        }
        result.tuning_cost_s += batch_makespan(&batch_costs, threads);
        if let Some(c) = trace {
            // One span per pipeline phase, keyed by (stream, generation,
            // COORD, phase index). Only `search.measure` carries simulated
            // seconds — the *serial* sum of batch costs, which is
            // thread-invariant (the thread-dependent makespan stays in
            // `tuning_cost_s`; at one worker the two coincide). CPU-side
            // phases carry item counts instead of wall-clock, which would
            // break byte-identical reports across machines and runs.
            let g = generation;
            c.span(
                "search.evolve",
                Key::coord(stream, g, 0),
                0.0,
                plans.len() as u64,
            );
            c.span(
                "search.sketch_instantiate",
                Key::coord(stream, g, 1),
                0.0,
                population.len() as u64,
            );
            c.span(
                "search.feature_extract",
                Key::coord(stream, g, 2),
                0.0,
                features_extracted,
            );
            c.span(
                "search.model_rank",
                Key::coord(stream, g, 3),
                0.0,
                candidates.len() as u64,
            );
            c.span(
                "search.measure",
                Key::coord(stream, g, 4),
                batch_makespan(&batch_costs, 1),
                batch_costs.len() as u64,
            );
            c.span(
                "search.refit",
                Key::coord(stream, g, 5),
                0.0,
                new_samples.len() as u64,
            );
            let (hits0, quar0, retr0, fail0) = counters_before;
            c.count("search.cache_hits", (result.cache_hits - hits0) as u64);
            c.count("search.quarantined", (result.quarantined - quar0) as u64);
            c.count("search.retries", result.retries - retr0);
            c.count(
                "search.failed_measurements",
                (result.failed_measurements - fail0) as u64,
            );
            c.count("search.verify_rejections", verify_rejections);
        }
        for (hash, record) in new_records {
            cache.insert(hash, record);
        }
        if opts.use_cost_model && !new_samples.is_empty() {
            model.update(new_samples);
        }
        elites.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        elites.truncate(8);
        state.generation += 1;
        if let Some(path) = &opts.checkpoint_path {
            // A failed save only loses resumability, never the run.
            let _ = checkpoint::save(
                path,
                &state.to_checkpoint(opts.seed, &machine.name, sketch.name()),
            );
        }
    }
    state.result
}

/// Tunes several alternative sketches and returns the best result, merging
/// the accounting (the paper's TensorIR searches tensorized and
/// non-tensorized structures jointly).
pub fn tune_multi(
    sketches: &[&dyn SketchRule],
    machine: &Machine,
    opts: &TuneOptions,
) -> TuneResult {
    tune_multi_with(sketches, machine, opts, &SimMeasurer)
}

/// [`tune_multi`] against an arbitrary [`Measurer`] backend.
///
/// When `opts.checkpoint_path` is set, each sketch checkpoints to its own
/// derived file (`<name>.sketch<i>`), so a killed multi-sketch run
/// resumes every sub-search from wherever it got to.
pub fn tune_multi_with(
    sketches: &[&dyn SketchRule],
    machine: &Machine,
    opts: &TuneOptions,
    measurer: &dyn Measurer,
) -> TuneResult {
    let mut merged: Option<TuneResult> = None;
    // Budget split across sketches. Each sketch gets at least one trial so
    // small budgets still cover every structure, but a zero budget stays
    // zero: `trials: 0` must not search at all.
    let per_sketch = TuneOptions {
        trials: (opts.trials / sketches.len().max(1)).max(opts.trials.min(1)),
        ..opts.clone()
    };
    for (i, sketch) in sketches.iter().enumerate() {
        let o = TuneOptions {
            seed: opts.seed.wrapping_add(i as u64 * 101),
            checkpoint_path: opts.checkpoint_path.as_ref().map(|p| {
                let mut name = p.file_name().unwrap_or_default().to_os_string();
                name.push(format!(".sketch{i}"));
                p.with_file_name(name)
            }),
            ..per_sketch.clone()
        };
        let r = tune_with(*sketch, machine, &o, measurer);
        merged = Some(match merged.take() {
            None => r,
            Some(mut m) => {
                if r.best_time < m.best_time {
                    m.best = r.best;
                    m.best_time = r.best_time;
                }
                m.trials_measured += r.trials_measured;
                m.invalid_filtered += r.invalid_filtered;
                m.wasted_measurements += r.wasted_measurements;
                m.tuning_cost_s += r.tuning_cost_s;
                m.history.extend(r.history);
                m.cache_hits += r.cache_hits;
                m.failed_measurements += r.failed_measurements;
                m.retries += r.retries;
                m.quarantined += r.quarantined;
                m.resumed_from_generation = m.resumed_from_generation.or(r.resumed_from_generation);
                m
            }
        });
    }
    merged.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch_gpu::GpuTensorSketch;
    use tir::DataType;
    use tir_tensorize::builtin_registry;

    fn sketch() -> GpuTensorSketch {
        let func = tir::builder::matmul_func("mm", 128, 128, 128, DataType::float16());
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        GpuTensorSketch::new(&func, "C", wmma, true).expect("sketch")
    }

    #[test]
    fn batch_makespan_accounting() {
        // One worker = serial sum; perfect split at equal costs; a long
        // job bounds the makespan; empty batches cost nothing.
        assert_eq!(batch_makespan(&[1.0, 2.0, 3.0], 1), 6.0);
        assert_eq!(batch_makespan(&[1.0, 1.0, 1.0, 1.0], 4), 1.0);
        assert_eq!(batch_makespan(&[3.0, 1.0, 1.0, 1.0], 2), 3.0);
        assert_eq!(batch_makespan(&[], 4), 0.0);
    }

    #[test]
    fn batch_makespan_rejects_nan_and_negative_costs() {
        // Regression: a NaN candidate time (reachable when
        // `validate_before_measure` is off and a degenerate machine
        // yields non-finite estimates) must charge only the compile
        // overhead, never poison the accounting.
        let m = batch_makespan(&[f64::NAN, 1.0], 1);
        assert!(m.is_finite());
        assert_eq!(m, 1.0 + COMPILE_OVERHEAD_S);
        assert_eq!(
            batch_makespan(&[f64::INFINITY, -2.0], 1),
            2.0 * COMPILE_OVERHEAD_S
        );
        // All-NaN batches still schedule deterministically.
        assert_eq!(batch_makespan(&[f64::NAN, f64::NAN], 2), COMPILE_OVERHEAD_S);
    }

    #[test]
    fn zero_population_means_no_search() {
        let s = sketch();
        let machine = Machine::sim_gpu();
        let r = tune(
            &s,
            &machine,
            &TuneOptions {
                population: 0,
                ..Default::default()
            },
        );
        assert!(r.best.is_none());
        assert_eq!(r.trials_measured, 0);
        assert_eq!(r.tuning_cost_s, 0.0);
        assert!(r.history.is_empty());
    }

    #[test]
    fn zero_measure_per_generation_means_no_search() {
        // Regression: without the degenerate-options guard this spun
        // forever — generations proposed candidates but never consumed
        // any trial budget.
        let s = sketch();
        let machine = Machine::sim_gpu();
        let r = tune(
            &s,
            &machine,
            &TuneOptions {
                measure_per_generation: 0,
                ..Default::default()
            },
        );
        assert!(r.best.is_none());
        assert_eq!(r.trials_measured, 0);
        assert_eq!(r.tuning_cost_s, 0.0);
        assert!(r.history.is_empty());
    }

    #[test]
    fn zero_trials_means_no_search() {
        // `trials: 0` must not measure anything, even through the
        // per-sketch budget split (which otherwise guarantees each sketch
        // at least one trial).
        let s = sketch();
        let machine = Machine::sim_gpu();
        let opts = TuneOptions {
            trials: 0,
            ..Default::default()
        };
        let r = tune_multi(&[&s, &s], &machine, &opts);
        assert!(r.best.is_none());
        assert_eq!(r.trials_measured, 0);
        assert_eq!(r.tuning_cost_s, 0.0);
    }

    #[test]
    fn search_finds_valid_program_and_improves() {
        let s = sketch();
        let machine = Machine::sim_gpu();
        let opts = TuneOptions {
            trials: 24,
            population: 16,
            measure_per_generation: 6,
            ..Default::default()
        };
        let r = tune(&s, &machine, &opts);
        assert!(r.best.is_some(), "no valid candidate found");
        assert!(r.best_time.is_finite());
        assert!(r.trials_measured > 0 && r.trials_measured <= 24);
        // Best-so-far is monotone non-increasing.
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
        // Searching longer cannot be worse.
        let r_long = tune(&s, &machine, &TuneOptions { trials: 48, ..opts });
        assert!(r_long.best_time <= r.best_time * 1.0001);
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let s = sketch();
        let machine = Machine::sim_gpu();
        let opts = TuneOptions {
            trials: 16,
            ..Default::default()
        };
        let a = tune(&s, &machine, &opts);
        let b = tune(&s, &machine, &opts);
        assert_eq!(a.best_time, b.best_time);
        assert_eq!(a.trials_measured, b.trials_measured);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        // The headline determinism guarantee of the parallel pipeline: a
        // fixed seed replays the identical search at any thread count,
        // down to the bytes of the best program.
        let s = sketch();
        let machine = Machine::sim_gpu();
        let serial = tune(
            &s,
            &machine,
            &TuneOptions {
                trials: 24,
                num_threads: 1,
                ..Default::default()
            },
        );
        for threads in [2usize, 4, 8] {
            let parallel = tune(
                &s,
                &machine,
                &TuneOptions {
                    trials: 24,
                    num_threads: threads,
                    ..Default::default()
                },
            );
            assert_eq!(serial.best_time, parallel.best_time, "{threads} threads");
            assert_eq!(serial.trials_measured, parallel.trials_measured);
            assert_eq!(serial.history, parallel.history);
            assert_eq!(serial.cache_hits, parallel.cache_hits);
            let a = serial.best.as_ref().expect("serial best").to_string();
            let b = parallel.best.as_ref().expect("parallel best").to_string();
            assert_eq!(a, b, "best programs must match byte-for-byte");
            // The simulated measurement farm gets wider with more
            // workers: tuning cost must drop roughly linearly.
            assert!(
                parallel.tuning_cost_s <= serial.tuning_cost_s / (threads as f64) * 1.5,
                "{threads} threads: {} vs serial {}",
                parallel.tuning_cost_s,
                serial.tuning_cost_s
            );
        }
    }

    #[test]
    fn candidate_cache_never_changes_the_result() {
        // The cache reuses deterministic measurements, so the search
        // trajectory — and in particular the best program — is identical
        // with and without it; only the accounted tuning cost may shrink.
        let s = sketch();
        let machine = Machine::sim_gpu();
        let base = TuneOptions {
            trials: 32,
            ..Default::default()
        };
        let with_cache = tune(
            &s,
            &machine,
            &TuneOptions {
                use_candidate_cache: true,
                ..base.clone()
            },
        );
        let without_cache = tune(
            &s,
            &machine,
            &TuneOptions {
                use_candidate_cache: false,
                ..base
            },
        );
        assert_eq!(without_cache.cache_hits, 0);
        assert_eq!(with_cache.best_time, without_cache.best_time);
        assert_eq!(with_cache.history, without_cache.history);
        assert_eq!(with_cache.trials_measured, without_cache.trials_measured);
        let a = with_cache.best.as_ref().expect("best").to_string();
        let b = without_cache.best.as_ref().expect("best").to_string();
        assert_eq!(a, b, "cache must not change the best program");
        assert!(with_cache.tuning_cost_s <= without_cache.tuning_cost_s);
    }

    #[test]
    fn validation_filter_saves_measurements() {
        // A larger tile space so warp-budget violations are common.
        let func = tir::builder::matmul_func("mm", 512, 512, 512, DataType::float16());
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        let s = GpuTensorSketch::new(&func, "C", wmma, true).expect("sketch");
        let machine = Machine::sim_gpu();
        let with_filter = tune(
            &s,
            &machine,
            &TuneOptions {
                trials: 24,
                validate_before_measure: true,
                ..Default::default()
            },
        );
        let without_filter = tune(
            &s,
            &machine,
            &TuneOptions {
                trials: 24,
                validate_before_measure: false,
                ..Default::default()
            },
        );
        assert_eq!(with_filter.wasted_measurements, 0);
        // Invalid candidates exist in this space (warp-budget violations);
        // the filter catches them before measurement.
        assert!(
            with_filter.invalid_filtered > 0,
            "expected some invalid candidates to be generated"
        );
        // Without the filter the search can never do better, and the trial
        // accounting includes any wasted measurements.
        assert!(without_filter.best_time >= with_filter.best_time * 0.999);
        assert!(without_filter.trials_measured + without_filter.wasted_measurements <= 24);
    }
}
