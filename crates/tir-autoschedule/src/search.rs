//! Evolutionary search with a learned cost model and validation filtering
//! (§4.4).
//!
//! The search samples random decision vectors for a sketch, evolves them by
//! mutation and crossover, ranks unmeasured candidates with the GBDT cost
//! model, "measures" the most promising ones on the hardware simulator, and
//! feeds the measurements back into the model. Invalid candidates (failed
//! primitives or §3.3 validation) are filtered *before* measurement; the
//! `validate_before_measure` flag exists so the ablation benchmark can show
//! what happens without the filter (wasted measurement budget).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use tir::PrimFunc;
use tir_exec::cost::{estimate_time, summarize};
use tir_exec::machine::Machine;

use crate::cost_model::CostModel;
use crate::feature::features_of_summary;
use crate::sketch::{Decision, SketchRule};

/// Search configuration.
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Measurement (hardware-profile) budget.
    pub trials: usize,
    /// Candidates generated per generation.
    pub population: usize,
    /// Measurements per generation (top-ranked by the cost model).
    pub measure_per_generation: usize,
    /// RNG seed.
    pub seed: u64,
    /// Rank candidates with the learned cost model (vs. measuring in
    /// sample order).
    pub use_cost_model: bool,
    /// Filter invalid candidates before measurement; when false, invalid
    /// candidates consume measurement budget (the ablation case).
    pub validate_before_measure: bool,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            trials: 64,
            population: 32,
            measure_per_generation: 8,
            seed: 42,
            use_cost_model: true,
            validate_before_measure: true,
        }
    }
}

/// Outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The fastest program found (if any candidate was valid).
    pub best: Option<PrimFunc>,
    /// Simulated execution time of the best program, seconds.
    pub best_time: f64,
    /// Measurements actually performed.
    pub trials_measured: usize,
    /// Candidates rejected by construction/validation before measuring.
    pub invalid_filtered: usize,
    /// Measurement budget wasted on invalid candidates (only when
    /// `validate_before_measure` is off).
    pub wasted_measurements: usize,
    /// Simulated wall-clock cost of tuning: profiling time plus per-trial
    /// compilation overhead (the quantity Table 1 reports).
    pub tuning_cost_s: f64,
    /// Best-so-far after each measurement.
    pub history: Vec<f64>,
}

/// Simulated repetitions per hardware measurement (profilers average).
const PROFILE_REPEATS: f64 = 300.0;
/// Simulated per-candidate compile + launch overhead, seconds.
const COMPILE_OVERHEAD_S: f64 = 0.1;

/// Runs evolutionary search over one sketch.
pub fn tune(sketch: &dyn SketchRule, machine: &Machine, opts: &TuneOptions) -> TuneResult {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut model = CostModel::new();
    let mut result = TuneResult {
        best: None,
        best_time: f64::INFINITY,
        trials_measured: 0,
        invalid_filtered: 0,
        wasted_measurements: 0,
        tuning_cost_s: 0.0,
        history: Vec::new(),
    };
    let mut seen: HashSet<Vec<Decision>> = HashSet::new();
    // Elite pool of (decisions, measured time).
    let mut elites: Vec<(Vec<Decision>, f64)> = Vec::new();

    while result.trials_measured + result.wasted_measurements < opts.trials {
        // Generate a population: half evolved from elites, half random.
        let mut population: Vec<Vec<Decision>> = Vec::new();
        for i in 0..opts.population {
            let d = if elites.len() >= 2 && i % 2 == 0 {
                let a = &elites[i % elites.len()].0;
                let b = &elites[(i + 1) % elites.len()].0;
                let crossed = sketch.crossover(a, b, &mut rng);
                sketch.mutate(&crossed, &mut rng)
            } else if !elites.is_empty() && i % 4 == 1 {
                sketch.mutate(&elites[i % elites.len()].0, &mut rng)
            } else {
                sketch.sample(&mut rng)
            };
            if seen.insert(d.clone()) {
                population.push(d);
            }
        }
        if population.is_empty() {
            // Search space exhausted.
            break;
        }

        // Materialize programs; validation filter.
        let mut candidates: Vec<(Vec<Decision>, Option<PrimFunc>)> = Vec::new();
        for d in population {
            match sketch.apply(&d) {
                Ok(f) => candidates.push((d, Some(f))),
                Err(_) => {
                    result.invalid_filtered += 1;
                    if !opts.validate_before_measure {
                        // Without the filter this candidate would have been
                        // sent to the hardware and failed there.
                        candidates.push((d, None));
                    }
                }
            }
        }

        // Rank with the cost model and pick the measurement batch.
        let mut scored: Vec<(f64, usize)> = candidates
            .iter()
            .enumerate()
            .map(|(i, (_, f))| {
                let score = match f {
                    Some(f) if opts.use_cost_model && model.num_samples() >= 4 => {
                        let s = summarize(f);
                        model.predict(&features_of_summary(f, &s))
                    }
                    // Without the validation filter, an invalid candidate is
                    // indistinguishable from a promising one until it fails
                    // on the device: rank it like any unscored candidate.
                    None => f64::MAX / 2.0,
                    _ => 0.0,
                };
                (score, i)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let budget_left = opts.trials - result.trials_measured - result.wasted_measurements;
        let batch = scored
            .into_iter()
            .take(opts.measure_per_generation.min(budget_left));
        let mut new_samples = Vec::new();
        for (_, i) in batch {
            let (d, f) = &candidates[i];
            match f {
                Some(f) => {
                    let s = summarize(f);
                    let t = estimate_time(&s, machine);
                    result.trials_measured += 1;
                    result.tuning_cost_s += t * PROFILE_REPEATS + COMPILE_OVERHEAD_S;
                    new_samples.push((features_of_summary(f, &s), -(t.max(1e-12)).ln()));
                    if t < result.best_time {
                        result.best_time = t;
                        result.best = Some(f.clone());
                    }
                    result.history.push(result.best_time);
                    elites.push((d.clone(), t));
                }
                None => {
                    result.wasted_measurements += 1;
                    result.tuning_cost_s += COMPILE_OVERHEAD_S;
                    result.history.push(result.best_time);
                }
            }
        }
        if opts.use_cost_model && !new_samples.is_empty() {
            model.update(new_samples);
        }
        elites.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        elites.truncate(8);
    }
    result
}

/// Tunes several alternative sketches and returns the best result, merging
/// the accounting (the paper's TensorIR searches tensorized and
/// non-tensorized structures jointly).
pub fn tune_multi(
    sketches: &[&dyn SketchRule],
    machine: &Machine,
    opts: &TuneOptions,
) -> TuneResult {
    let mut merged: Option<TuneResult> = None;
    // Budget split across sketches.
    let per_sketch = TuneOptions {
        trials: (opts.trials / sketches.len().max(1)).max(1),
        ..opts.clone()
    };
    for (i, sketch) in sketches.iter().enumerate() {
        let o = TuneOptions {
            seed: opts.seed.wrapping_add(i as u64 * 101),
            ..per_sketch.clone()
        };
        let r = tune(*sketch, machine, &o);
        merged = Some(match merged.take() {
            None => r,
            Some(mut m) => {
                if r.best_time < m.best_time {
                    m.best = r.best;
                    m.best_time = r.best_time;
                }
                m.trials_measured += r.trials_measured;
                m.invalid_filtered += r.invalid_filtered;
                m.wasted_measurements += r.wasted_measurements;
                m.tuning_cost_s += r.tuning_cost_s;
                m.history.extend(r.history);
                m
            }
        });
    }
    merged.unwrap_or(TuneResult {
        best: None,
        best_time: f64::INFINITY,
        trials_measured: 0,
        invalid_filtered: 0,
        wasted_measurements: 0,
        tuning_cost_s: 0.0,
        history: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch_gpu::GpuTensorSketch;
    use tir::DataType;
    use tir_tensorize::builtin_registry;

    fn sketch() -> GpuTensorSketch {
        let func = tir::builder::matmul_func("mm", 128, 128, 128, DataType::float16());
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        GpuTensorSketch::new(&func, "C", wmma, true).expect("sketch")
    }

    #[test]
    fn search_finds_valid_program_and_improves() {
        let s = sketch();
        let machine = Machine::sim_gpu();
        let opts = TuneOptions {
            trials: 24,
            population: 16,
            measure_per_generation: 6,
            ..Default::default()
        };
        let r = tune(&s, &machine, &opts);
        assert!(r.best.is_some(), "no valid candidate found");
        assert!(r.best_time.is_finite());
        assert!(r.trials_measured > 0 && r.trials_measured <= 24);
        // Best-so-far is monotone non-increasing.
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
        // Searching longer cannot be worse.
        let r_long = tune(
            &s,
            &machine,
            &TuneOptions {
                trials: 48,
                ..opts
            },
        );
        assert!(r_long.best_time <= r.best_time * 1.0001);
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let s = sketch();
        let machine = Machine::sim_gpu();
        let opts = TuneOptions {
            trials: 16,
            ..Default::default()
        };
        let a = tune(&s, &machine, &opts);
        let b = tune(&s, &machine, &opts);
        assert_eq!(a.best_time, b.best_time);
        assert_eq!(a.trials_measured, b.trials_measured);
    }

    #[test]
    fn validation_filter_saves_measurements() {
        // A larger tile space so warp-budget violations are common.
        let func = tir::builder::matmul_func("mm", 512, 512, 512, DataType::float16());
        let reg = builtin_registry();
        let wmma = reg.get("wmma_16x16x16_f16").unwrap();
        let s = GpuTensorSketch::new(&func, "C", wmma, true).expect("sketch");
        let machine = Machine::sim_gpu();
        let with_filter = tune(
            &s,
            &machine,
            &TuneOptions {
                trials: 24,
                validate_before_measure: true,
                ..Default::default()
            },
        );
        let without_filter = tune(
            &s,
            &machine,
            &TuneOptions {
                trials: 24,
                validate_before_measure: false,
                ..Default::default()
            },
        );
        assert_eq!(with_filter.wasted_measurements, 0);
        // Invalid candidates exist in this space (warp-budget violations);
        // the filter catches them before measurement.
        assert!(
            with_filter.invalid_filtered > 0,
            "expected some invalid candidates to be generated"
        );
        // Without the filter the search can never do better, and the trial
        // accounting includes any wasted measurements.
        assert!(without_filter.best_time >= with_filter.best_time * 0.999);
        assert!(
            without_filter.trials_measured + without_filter.wasted_measurements <= 24
        );
    }
}
