//! The measurement abstraction: fallible hardware measurements with
//! first-class failures, deterministic fault injection, and the
//! retry/backoff/outlier-rejection harness the search runs on.
//!
//! The paper's §4.4 search loop assumes every measurement succeeds; real
//! tuning farms (the builder/runner pools of TVM and Ansor) lose a large
//! fraction of trials to compile rejects, runner timeouts, crashes, and
//! noisy readings. This module makes those failure modes explicit:
//!
//! * [`Measurer`] — the farm interface: one candidate in, one reading (or
//!   one [`MeasureError`]) out;
//! * [`SimMeasurer`] — today's analytic-simulator path behind that
//!   interface (via `tir_exec::try_simulate`, so a degenerate `NaN`
//!   roofline becomes a [`MeasureError::CompileReject`] instead of
//!   corrupting downstream accounting);
//! * [`FaultInjector`] — a deterministic, seeded wrapper that injects
//!   timeouts, crashes, worker panics, corrupt readings, and per-candidate
//!   compile rejects at configured rates ([`FaultPlan`]), so failure
//!   handling is testable end-to-end;
//! * [`measure_with_retries`] — the harness: capped exponential
//!   retry/backoff for transient errors, repeat-until-agreement outlier
//!   rejection for corrupt readings, and `catch_unwind` isolation so a
//!   panicking measurement fails one candidate, not the run.
//!
//! # Determinism
//!
//! Injected faults are a pure function of `(FaultPlan::seed,
//! candidate_hash, attempt)` — independent of thread scheduling,
//! generation number, and wall clock. Combined with the deterministic
//! simulator this gives the key invariant the search tests assert: under
//! any *transient* fault rate, tuning converges to the bit-identical best
//! program and history as the fault-free run — only `tuning_cost_s` and
//! `retries` grow. Deterministic faults (compile rejects) instead
//! quarantine their candidate forever, exactly like a kernel the real
//! toolchain cannot build.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tir::PrimFunc;
use tir_exec::machine::Machine;
use tir_exec::try_simulate;
use tir_rand::rngs::StdRng;
use tir_rand::{derive_seed, RngExt, SeedableRng};

/// Simulated repetitions per hardware measurement (profilers average).
pub(crate) const PROFILE_REPEATS: f64 = 300.0;
/// Simulated per-candidate compile + launch overhead, seconds.
pub(crate) const COMPILE_OVERHEAD_S: f64 = 0.1;

/// Why one measurement attempt failed.
///
/// The taxonomy mirrors a real builder/runner farm. [`is_transient`]
/// splits it into errors worth retrying (the runner pool hiccuped) and
/// deterministic rejections (this candidate will never build), which the
/// search quarantines.
///
/// [`is_transient`]: MeasureError::is_transient
#[derive(Clone, Debug, PartialEq)]
pub enum MeasureError {
    /// The toolchain deterministically refused to build this candidate.
    /// Retrying is pointless; the search quarantines the candidate.
    CompileReject(String),
    /// The runner gave up after burning its whole time budget.
    Timeout {
        /// The runner's time limit — the simulated seconds wasted.
        limit_s: f64,
    },
    /// The runner process died mid-measurement (transient).
    RunnerCrash(String),
    /// Repeated readings never agreed: every reading looked corrupt.
    CorruptReading {
        /// How many readings were taken before giving up.
        readings: usize,
    },
}

impl MeasureError {
    /// Whether retrying the measurement can possibly succeed.
    pub fn is_transient(&self) -> bool {
        match self {
            MeasureError::CompileReject(_) => false,
            MeasureError::Timeout { .. }
            | MeasureError::RunnerCrash(_)
            | MeasureError::CorruptReading { .. } => true,
        }
    }

    /// Simulated farm seconds one failed attempt burned (charged to
    /// `tuning_cost_s`). Corrupt readings charge nothing here — their
    /// profiling cost was already charged when the reading was taken.
    pub fn attempt_cost_s(&self) -> f64 {
        match self {
            // The reject happens during the (simulated) build step.
            MeasureError::CompileReject(_) => COMPILE_OVERHEAD_S,
            // A timeout burns the compile plus the full runner budget.
            MeasureError::Timeout { limit_s } => COMPILE_OVERHEAD_S + limit_s.max(0.0),
            // A crash dies early: compile plus a negligible run prefix.
            MeasureError::RunnerCrash(_) => COMPILE_OVERHEAD_S,
            MeasureError::CorruptReading { .. } => 0.0,
        }
    }
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::CompileReject(why) => write!(f, "compile reject: {why}"),
            MeasureError::Timeout { limit_s } => write!(f, "runner timeout after {limit_s}s"),
            MeasureError::RunnerCrash(why) => write!(f, "runner crash: {why}"),
            MeasureError::CorruptReading { readings } => {
                write!(f, "no agreeing reading in {readings} repeats")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

/// Identity of one measurement attempt, used by fault injection to stay
/// deterministic: faults are a pure function of `(seed, candidate,
/// attempt)`, never of thread scheduling or wall clock.
#[derive(Clone, Copy, Debug)]
pub struct MeasureCtx {
    /// Structural hash of the candidate program.
    pub candidate: u64,
    /// Zero-based attempt counter for this candidate (retries and repeat
    /// readings both advance it).
    pub attempt: u64,
}

/// A measurement backend: the interface between the search and the
/// (simulated) hardware farm.
///
/// `Send + Sync` so the search can fan measurements out across its worker
/// pool; implementations must be deterministic functions of
/// `(func, machine, ctx)` for tuning runs to stay reproducible.
pub trait Measurer: Send + Sync {
    /// Measures one candidate once, returning its execution time in
    /// seconds.
    ///
    /// # Errors
    ///
    /// Returns a [`MeasureError`] describing which farm failure mode the
    /// attempt hit. Implementations may also panic (a hard runner crash);
    /// the harness converts that into [`MeasureError::RunnerCrash`].
    fn measure(
        &self,
        func: &PrimFunc,
        machine: &Machine,
        ctx: &MeasureCtx,
    ) -> Result<f64, MeasureError>;

    /// How many bit-identical readings the harness must collect before
    /// trusting one (outlier rejection). The default of 1 means readings
    /// are trusted as-is — right for a noise-free backend.
    fn min_agreeing_readings(&self) -> usize {
        1
    }
}

/// The analytic-simulator measurement backend: `summarize` +
/// `estimate_time`, behind the fallible [`Measurer`] interface.
///
/// Deterministic and noise-free, so a single reading suffices and the
/// fault-free search behaves bit-identically to the pre-abstraction code.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimMeasurer;

impl Measurer for SimMeasurer {
    fn measure(
        &self,
        func: &PrimFunc,
        machine: &Machine,
        _ctx: &MeasureCtx,
    ) -> Result<f64, MeasureError> {
        try_simulate(func, machine)
            .map_err(|e| MeasureError::CompileReject(format!("simulator rejected candidate: {e}")))
    }
}

/// Static-analysis gate in front of any [`Measurer`]: candidates that
/// fail the whole-program analyzer (structural validation, bounds,
/// data-race and memory-scope checks — [`tir_analysis::analyze`]) are
/// rejected with [`MeasureError::CompileReject`] before the inner backend
/// ever sees them, exactly like a kernel the real toolchain refuses to
/// build. The reject is deterministic, so the search quarantines the
/// candidate by structural hash: an illegal sketch family costs one build
/// attempt, never a simulated measurement.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyingMeasurer<M> {
    inner: M,
}

impl<M: Measurer> VerifyingMeasurer<M> {
    /// Gates `inner` behind the static analyzer.
    pub fn new(inner: M) -> Self {
        VerifyingMeasurer { inner }
    }

    /// The wrapped measurement backend.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl VerifyingMeasurer<SimMeasurer> {
    /// The analyzer gate over the analytic simulator — the default
    /// verified tuning backend.
    pub fn sim() -> Self {
        VerifyingMeasurer::new(SimMeasurer)
    }
}

impl<M: Measurer> Measurer for VerifyingMeasurer<M> {
    fn measure(
        &self,
        func: &PrimFunc,
        machine: &Machine,
        ctx: &MeasureCtx,
    ) -> Result<f64, MeasureError> {
        let errors = tir_analysis::analyze(func);
        if !errors.is_empty() {
            let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
            return Err(MeasureError::CompileReject(format!(
                "static analyzer rejected candidate: {}",
                msgs.join("; ")
            )));
        }
        self.inner.measure(func, machine, ctx)
    }

    fn min_agreeing_readings(&self) -> usize {
        self.inner.min_agreeing_readings()
    }
}

/// Failure rates for the deterministic [`FaultInjector`].
///
/// All rates are probabilities in `[0, 1]` drawn independently per
/// attempt (per candidate for `compile_reject_rate`, which models a
/// *deterministic* toolchain rejection).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability an attempt burns the runner's full time budget.
    pub timeout_rate: f64,
    /// Probability the runner process dies mid-measurement.
    pub crash_rate: f64,
    /// Probability a reading comes back corrupted (silently wrong).
    pub corrupt_rate: f64,
    /// Probability the measuring worker *panics* (exercises the
    /// `catch_unwind` isolation path; converted to a runner crash).
    pub panic_rate: f64,
    /// Probability a candidate deterministically fails to compile —
    /// keyed on the candidate alone, so every attempt fails and the
    /// search quarantines it.
    pub compile_reject_rate: f64,
    /// The simulated runner time budget burned by each timeout, seconds.
    pub timeout_limit_s: f64,
    /// Seed of the fault stream (independent of the search seed).
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            timeout_rate: 0.0,
            crash_rate: 0.0,
            corrupt_rate: 0.0,
            panic_rate: 0.0,
            compile_reject_rate: 0.0,
            timeout_limit_s: 1.0,
            seed: 0x5EED_FA11,
        }
    }
}

impl FaultPlan {
    /// A plan losing `rate` of all attempts to transient faults, split
    /// evenly across timeouts, crashes, and corrupt readings. The fault
    /// matrix tests drive this at 0% / 10% / 30%.
    pub fn transient(rate: f64) -> Self {
        FaultPlan {
            timeout_rate: rate / 3.0,
            crash_rate: rate / 3.0,
            corrupt_rate: rate / 3.0,
            ..Default::default()
        }
    }

    /// Total probability that one attempt fails transiently (before the
    /// corrupt-reading draw).
    fn transient_attempt_rate(&self) -> f64 {
        self.panic_rate + self.timeout_rate + self.crash_rate
    }
}

/// Deterministic seeded fault injection around any [`Measurer`].
///
/// Fault draws depend only on `(plan.seed, ctx.candidate, ctx.attempt)`,
/// so a tuning run with faults is as reproducible as one without: any
/// thread count, and a checkpoint/resume split at any generation, replay
/// the identical fault history.
#[derive(Clone, Debug)]
pub struct FaultInjector<M> {
    inner: M,
    plan: FaultPlan,
}

impl<M: Measurer> FaultInjector<M> {
    /// Wraps `inner` with the failure modes of `plan`.
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        FaultInjector { inner, plan }
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultInjector<SimMeasurer> {
    /// Fault injection over the analytic simulator — the configuration
    /// every fault-tolerance test and bench uses.
    pub fn sim(plan: FaultPlan) -> Self {
        FaultInjector::new(SimMeasurer, plan)
    }
}

/// Domain tags keeping the per-candidate and per-attempt fault streams
/// disjoint under `derive_seed`.
const STREAM_COMPILE: u64 = 0xC0;
const STREAM_ATTEMPT: u64 = 0xA7;

impl<M: Measurer> Measurer for FaultInjector<M> {
    fn measure(
        &self,
        func: &PrimFunc,
        machine: &Machine,
        ctx: &MeasureCtx,
    ) -> Result<f64, MeasureError> {
        // Deterministic per-candidate faults: a rejected candidate is
        // rejected on every attempt, like a kernel the toolchain cannot
        // build. Drawn from a stream keyed on the candidate alone.
        let mut det = StdRng::seed_from_u64(derive_seed(
            self.plan.seed,
            &[STREAM_COMPILE, ctx.candidate],
        ));
        if det.random_f64() < self.plan.compile_reject_rate {
            return Err(MeasureError::CompileReject(
                "injected deterministic compile reject".to_string(),
            ));
        }
        // Transient faults: independent draw per (candidate, attempt).
        let mut rng = StdRng::seed_from_u64(derive_seed(
            self.plan.seed,
            &[STREAM_ATTEMPT, ctx.candidate, ctx.attempt],
        ));
        let roll = rng.random_f64();
        if roll < self.plan.panic_rate {
            panic!("injected runner panic (fault injection)");
        }
        if roll < self.plan.panic_rate + self.plan.timeout_rate {
            return Err(MeasureError::Timeout {
                limit_s: self.plan.timeout_limit_s,
            });
        }
        if roll < self.plan.transient_attempt_rate() {
            return Err(MeasureError::RunnerCrash(
                "injected runner crash".to_string(),
            ));
        }
        let t = self.inner.measure(func, machine, ctx)?;
        if rng.random_f64() < self.plan.corrupt_rate {
            // A silently wrong reading: multiplicative garbage in
            // [0.25, 4). Finite and positive, so it is indistinguishable
            // from a plausible measurement without repeats.
            let factor = 0.25 + rng.random_f64() * 3.75;
            return Ok(t * factor);
        }
        Ok(t)
    }

    fn min_agreeing_readings(&self) -> usize {
        if self.plan.corrupt_rate > 0.0 {
            // With silent corruption in play, a reading is only trusted
            // once it repeats bit-identically.
            self.inner.min_agreeing_readings().max(2)
        } else {
            self.inner.min_agreeing_readings()
        }
    }
}

/// Retry/backoff policy of the measurement harness.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum transient-failure retries per candidate before it counts
    /// as a failed measurement.
    pub max_retries: u32,
    /// Simulated delay before the first retry; doubles per retry
    /// (capped exponential backoff). Charged to `tuning_cost_s`.
    pub backoff_base_s: f64,
    /// Cap on a single backoff delay.
    pub backoff_cap_s: f64,
    /// Cap on successful readings collected while hunting for agreement
    /// (outlier rejection); exceeding it fails the candidate with
    /// [`MeasureError::CorruptReading`].
    pub max_readings: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 16,
            backoff_base_s: 0.05,
            backoff_cap_s: 2.0,
            max_readings: 12,
        }
    }
}

impl RetryPolicy {
    /// Simulated delay before retry number `retry` (1-based).
    pub fn backoff_s(&self, retry: u32) -> f64 {
        let exp = retry.saturating_sub(1).min(52);
        (self.backoff_base_s * (1u64 << exp) as f64).min(self.backoff_cap_s)
    }
}

/// The outcome of measuring one candidate through the fault-tolerant
/// harness.
#[derive(Clone, Debug)]
pub struct MeasureOutcome {
    /// The trusted reading, or the error that exhausted the harness.
    pub reading: Result<f64, MeasureError>,
    /// Total simulated farm seconds spent: profiling repeats, compile
    /// overhead, failed-attempt costs, and backoff delays.
    pub cost_s: f64,
    /// Attempts beyond the minimum (retries after transient failures
    /// plus extra readings taken for outlier rejection).
    pub retries: u64,
}

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Where one measurement job writes its per-attempt trace events.
///
/// The harness emits spans keyed by `(stream, generation, slot, attempt)`
/// into a thread-local [`tir_trace::TraceBuffer`], so the merged report is
/// deterministic at any thread count: the key is a pure function of the
/// job's position in the batch, never of scheduling. All span times are
/// *simulated* farm seconds (the quantities charged to `tuning_cost_s`),
/// so traces are bit-identical across thread counts too.
pub struct MeasureTrace<'a, 'c> {
    /// The per-worker buffer events land in.
    pub buf: &'a mut tir_trace::TraceBuffer<'c>,
    /// Trace stream of the owning search (one per `tune_with` call).
    pub stream: u64,
    /// Generation the measured batch belongs to.
    pub generation: u64,
    /// Rank of this job within the batch (slot-ordered, deterministic).
    pub slot: u64,
}

impl MeasureTrace<'_, '_> {
    fn span(&mut self, name: &str, attempt: u64, sim_s: f64) {
        self.buf.span(
            name,
            tir_trace::Key {
                stream: self.stream,
                generation: self.generation,
                slot: self.slot,
                seq: attempt,
            },
            sim_s,
            1,
        );
    }
}

/// Trace-event name for one failure mode.
fn fault_span_name(e: &MeasureError) -> &'static str {
    match e {
        MeasureError::CompileReject(_) => "measure.fault.reject",
        MeasureError::Timeout { .. } => "measure.fault.timeout",
        MeasureError::RunnerCrash(_) => "measure.fault.crash",
        MeasureError::CorruptReading { .. } => "measure.fault.corrupt",
    }
}

/// The first reading seen at least `need` times (bit-exact agreement),
/// if any. With a deterministic backend the true value is the only one
/// that can repeat, so agreement identifies it even when most readings
/// are corrupt — a mode-based variant of median-of-repeats that is exact
/// rather than approximate.
fn agreed_reading(readings: &[f64], need: usize) -> Option<f64> {
    readings.iter().find_map(|&r| {
        let n = readings
            .iter()
            .filter(|x| x.to_bits() == r.to_bits())
            .count();
        (n >= need).then_some(r)
    })
}

/// Measures one candidate with transient-failure retry/backoff and
/// repeat-until-agreement outlier rejection, isolating panics.
///
/// Cost accounting (all simulated seconds, returned in
/// [`MeasureOutcome::cost_s`]):
///
/// * each successful reading charges `time * PROFILE_REPEATS`, plus one
///   `COMPILE_OVERHEAD_S` for the first build;
/// * each failed attempt charges [`MeasureError::attempt_cost_s`];
/// * each retry after a transient failure additionally charges the
///   capped exponential [`RetryPolicy::backoff_s`] delay.
///
/// With a noise-free backend ([`Measurer::min_agreeing_readings`] of 1)
/// and no faults this reduces to exactly one reading at
/// `time * PROFILE_REPEATS + COMPILE_OVERHEAD_S` — bit-identical to the
/// pre-abstraction accounting.
pub fn measure_with_retries(
    measurer: &dyn Measurer,
    func: &PrimFunc,
    machine: &Machine,
    candidate: u64,
    retry: &RetryPolicy,
) -> MeasureOutcome {
    measure_with_retries_traced(measurer, func, machine, candidate, retry, None)
}

/// [`measure_with_retries`] with per-attempt trace events: every
/// successful profile, compile, failure, and backoff delay lands in the
/// supplied [`MeasureTrace`] as a `measure.*` span carrying its simulated
/// farm seconds. With `trace: None` this is exactly
/// [`measure_with_retries`] — the accounting and the returned outcome are
/// unaffected by tracing.
pub fn measure_with_retries_traced(
    measurer: &dyn Measurer,
    func: &PrimFunc,
    machine: &Machine,
    candidate: u64,
    retry: &RetryPolicy,
    mut trace: Option<&mut MeasureTrace<'_, '_>>,
) -> MeasureOutcome {
    let need = measurer.min_agreeing_readings().max(1);
    let mut cost_s = 0.0f64;
    let mut attempt = 0u64;
    let mut transient_retries = 0u32;
    let mut compiled = false;
    let mut readings: Vec<f64> = Vec::new();
    loop {
        let ctx = MeasureCtx { candidate, attempt };
        attempt += 1;
        // A panicking measurement must fail this candidate, not abort
        // the whole generation fan-out: convert the unwind into a
        // retryable runner crash.
        let outcome = catch_unwind(AssertUnwindSafe(|| measurer.measure(func, machine, &ctx)))
            .unwrap_or_else(|p| Err(MeasureError::RunnerCrash(panic_message(p))));
        match outcome {
            Ok(t) if t.is_finite() && t >= 0.0 => {
                cost_s += t * PROFILE_REPEATS;
                if let Some(tr) = trace.as_deref_mut() {
                    tr.span("measure.profile", ctx.attempt, t * PROFILE_REPEATS);
                }
                if !compiled {
                    cost_s += COMPILE_OVERHEAD_S;
                    compiled = true;
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.span("measure.compile", ctx.attempt, COMPILE_OVERHEAD_S);
                    }
                }
                readings.push(t);
                if let Some(agreed) = agreed_reading(&readings, need) {
                    return MeasureOutcome {
                        reading: Ok(agreed),
                        cost_s,
                        retries: attempt - need as u64,
                    };
                }
                if readings.len() >= retry.max_readings {
                    return MeasureOutcome {
                        reading: Err(MeasureError::CorruptReading {
                            readings: readings.len(),
                        }),
                        cost_s,
                        retries: attempt - 1,
                    };
                }
            }
            // A non-finite reading from a custom backend is treated as a
            // transiently corrupt attempt; it never reaches the readings
            // pool, so NaN cannot propagate into any accounting.
            not_ok => {
                let err = match not_ok {
                    Err(e) => e,
                    Ok(_) => MeasureError::CorruptReading { readings: 1 },
                };
                cost_s += err.attempt_cost_s();
                if let Some(tr) = trace.as_deref_mut() {
                    tr.span(fault_span_name(&err), ctx.attempt, err.attempt_cost_s());
                }
                if !err.is_transient() || transient_retries >= retry.max_retries {
                    return MeasureOutcome {
                        reading: Err(err),
                        cost_s,
                        retries: attempt - 1,
                    };
                }
                transient_retries += 1;
                cost_s += retry.backoff_s(transient_retries);
                if let Some(tr) = trace.as_deref_mut() {
                    tr.span(
                        "measure.backoff",
                        ctx.attempt,
                        retry.backoff_s(transient_retries),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::DataType;
    use tir_exec::simulate;

    fn mm() -> PrimFunc {
        tir::builder::matmul_func("mm", 32, 32, 32, DataType::float16())
    }

    fn ctx(candidate: u64, attempt: u64) -> MeasureCtx {
        MeasureCtx { candidate, attempt }
    }

    #[test]
    fn sim_measurer_matches_simulate() {
        let f = mm();
        let m = Machine::sim_gpu();
        let t = SimMeasurer.measure(&f, &m, &ctx(1, 0)).expect("clean");
        assert_eq!(t, simulate(&f, &m));
    }

    #[test]
    fn fault_free_harness_matches_legacy_accounting() {
        // No faults, noise-free backend: exactly one reading at the
        // pre-abstraction cost formula, zero retries.
        let f = mm();
        let m = Machine::sim_gpu();
        let out = measure_with_retries(&SimMeasurer, &f, &m, 7, &RetryPolicy::default());
        let t = simulate(&f, &m);
        assert_eq!(out.reading, Ok(t));
        assert_eq!(out.cost_s, t * PROFILE_REPEATS + COMPILE_OVERHEAD_S);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn fault_draws_are_deterministic() {
        let f = mm();
        let m = Machine::sim_gpu();
        let inj = FaultInjector::sim(FaultPlan {
            timeout_rate: 0.5,
            ..Default::default()
        });
        for a in 0..16 {
            let r1 = inj.measure(&f, &m, &ctx(3, a));
            let r2 = inj.measure(&f, &m, &ctx(3, a));
            assert_eq!(r1, r2, "attempt {a} must be reproducible");
        }
        // Different attempts must not all agree (otherwise the fault is
        // effectively deterministic and retries could never help).
        let outcomes: Vec<bool> = (0..32)
            .map(|a| inj.measure(&f, &m, &ctx(3, a)).is_ok())
            .collect();
        assert!(outcomes.iter().any(|ok| *ok));
        assert!(outcomes.iter().any(|ok| !*ok));
    }

    #[test]
    fn transient_faults_retry_to_the_true_reading() {
        let f = mm();
        let m = Machine::sim_gpu();
        let truth = simulate(&f, &m);
        for rate in [0.1, 0.3, 0.5] {
            let inj = FaultInjector::sim(FaultPlan::transient(rate));
            for candidate in 0..24u64 {
                let out = measure_with_retries(&inj, &f, &m, candidate, &RetryPolicy::default());
                assert_eq!(
                    out.reading,
                    Ok(truth),
                    "candidate {candidate} at rate {rate}"
                );
                assert!(out.cost_s >= truth * PROFILE_REPEATS + COMPILE_OVERHEAD_S);
            }
        }
    }

    #[test]
    fn corrupt_readings_are_rejected_by_agreement() {
        // Even with half of all readings silently corrupted, the
        // repeat-until-agreement harness recovers the exact true value.
        let f = mm();
        let m = Machine::sim_gpu();
        let truth = simulate(&f, &m);
        let inj = FaultInjector::sim(FaultPlan {
            corrupt_rate: 0.5,
            ..Default::default()
        });
        assert_eq!(inj.min_agreeing_readings(), 2);
        let mut saw_extra_reading = false;
        for candidate in 0..24u64 {
            let out = measure_with_retries(&inj, &f, &m, candidate, &RetryPolicy::default());
            assert_eq!(out.reading, Ok(truth), "candidate {candidate}");
            saw_extra_reading |= out.retries > 0;
        }
        assert!(saw_extra_reading, "corruption at 50% must force re-reads");
    }

    #[test]
    fn compile_rejects_are_deterministic_per_candidate() {
        let f = mm();
        let m = Machine::sim_gpu();
        let inj = FaultInjector::sim(FaultPlan {
            compile_reject_rate: 0.4,
            ..Default::default()
        });
        let mut rejected = 0;
        for candidate in 0..32u64 {
            let first = inj.measure(&f, &m, &ctx(candidate, 0));
            // Every later attempt agrees with the first: the fault is a
            // property of the candidate, not of the attempt.
            for attempt in 1..6 {
                assert_eq!(
                    first.is_err(),
                    inj.measure(&f, &m, &ctx(candidate, attempt)).is_err()
                );
            }
            if let Err(e) = first {
                assert!(!e.is_transient());
                rejected += 1;
            }
        }
        assert!(rejected > 0, "40% reject rate must hit some of 32");
        assert!(rejected < 32);
    }

    #[test]
    fn injected_panic_becomes_a_runner_crash_and_retries() {
        let f = mm();
        let m = Machine::sim_gpu();
        let truth = simulate(&f, &m);
        let inj = FaultInjector::sim(FaultPlan {
            panic_rate: 0.4,
            ..Default::default()
        });
        for candidate in 0..12u64 {
            let out = measure_with_retries(&inj, &f, &m, candidate, &RetryPolicy::default());
            assert_eq!(out.reading, Ok(truth), "candidate {candidate}");
        }
    }

    #[test]
    fn exhausted_retries_fail_with_the_last_transient_error() {
        let f = mm();
        let m = Machine::sim_gpu();
        let inj = FaultInjector::sim(FaultPlan {
            timeout_rate: 1.0,
            ..Default::default()
        });
        let retry = RetryPolicy {
            max_retries: 3,
            ..Default::default()
        };
        let out = measure_with_retries(&inj, &f, &m, 1, &retry);
        assert!(matches!(out.reading, Err(MeasureError::Timeout { .. })));
        assert_eq!(out.retries, 3);
        // 4 attempts x (compile + timeout budget) + 3 backoff delays.
        let expected = 4.0 * (COMPILE_OVERHEAD_S + 1.0)
            + retry.backoff_s(1)
            + retry.backoff_s(2)
            + retry.backoff_s(3);
        assert!((out.cost_s - expected).abs() < 1e-12, "{}", out.cost_s);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy {
            max_retries: 8,
            backoff_base_s: 0.05,
            backoff_cap_s: 0.3,
            max_readings: 4,
        };
        assert_eq!(r.backoff_s(1), 0.05);
        assert_eq!(r.backoff_s(2), 0.1);
        assert_eq!(r.backoff_s(3), 0.2);
        assert_eq!(r.backoff_s(4), 0.3, "capped");
        assert_eq!(r.backoff_s(10), 0.3, "still capped");
    }

    #[test]
    fn nonfinite_backend_reading_never_propagates() {
        /// A backend that always reads NaN.
        struct NanMeasurer;
        impl Measurer for NanMeasurer {
            fn measure(
                &self,
                _f: &PrimFunc,
                _m: &Machine,
                _c: &MeasureCtx,
            ) -> Result<f64, MeasureError> {
                Ok(f64::NAN)
            }
        }
        let f = mm();
        let m = Machine::sim_gpu();
        let retry = RetryPolicy {
            max_retries: 2,
            ..Default::default()
        };
        let out = measure_with_retries(&NanMeasurer, &f, &m, 1, &retry);
        assert!(matches!(
            out.reading,
            Err(MeasureError::CorruptReading { .. })
        ));
        assert!(out.cost_s.is_finite());
    }

    #[test]
    fn verifying_measurer_passes_legal_candidates() {
        let f = mm();
        let m = Machine::sim_gpu();
        let t = VerifyingMeasurer::sim()
            .measure(&f, &m, &ctx(1, 0))
            .expect("legal candidate must reach the simulator");
        assert_eq!(t, simulate(&f, &m));
    }

    #[test]
    fn verifying_measurer_rejects_race_without_measuring() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use tir::{Buffer, Expr, ForKind, Stmt, Var};

        /// Counts how often the farm is actually hit.
        struct Counting(AtomicUsize);
        impl Measurer for Counting {
            fn measure(
                &self,
                _f: &PrimFunc,
                _m: &Machine,
                _c: &MeasureCtx,
            ) -> Result<f64, MeasureError> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(1.0)
            }
        }

        // All iterations of a parallel loop write O[0]: a race the static
        // analyzer must catch at "build" time.
        let o = Buffer::new("O", tir::DataType::float32(), vec![1]);
        let i = Var::int("i");
        let store = Stmt::store(o.clone(), vec![Expr::int(0)], Expr::from(&i));
        let body = Stmt::For(Box::new(tir::For::with_kind(
            i,
            Expr::int(8),
            ForKind::Parallel,
            store,
        )));
        let racy = PrimFunc::new("racy", vec![o], body);

        let inner = Counting(AtomicUsize::new(0));
        let gate = VerifyingMeasurer::new(inner);
        let err = gate
            .measure(&racy, &Machine::sim_gpu(), &ctx(1, 0))
            .unwrap_err();
        assert!(matches!(err, MeasureError::CompileReject(_)), "{err:?}");
        assert!(!err.is_transient(), "rejects must quarantine");
        assert_eq!(
            gate.inner().0.load(Ordering::SeqCst),
            0,
            "the farm must never see a rejected candidate"
        );
    }

    #[test]
    fn error_classification() {
        assert!(!MeasureError::CompileReject("x".into()).is_transient());
        assert!(MeasureError::Timeout { limit_s: 1.0 }.is_transient());
        assert!(MeasureError::RunnerCrash("x".into()).is_transient());
        assert!(MeasureError::CorruptReading { readings: 3 }.is_transient());
    }
}
