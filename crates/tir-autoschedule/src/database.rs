//! Tuning database: persistent cached search records keyed by workload
//! fingerprint.
//!
//! §5.2 of the paper: "TensorIR can eliminate search time further by
//! caching historical cost models and search records. So no search is
//! needed to build a model for an operator already tuned." A database
//! lookup replaces the whole evolutionary search when an identical
//! workload (same computation, shapes, and dtypes — names and variable
//! identities ignored) has been tuned before.
//!
//! The database lives in memory and can be persisted to disk in a
//! hand-rolled, line-oriented text format that reuses the discipline of
//! [`crate::checkpoint`]: every `f64` is stored as the hex of its
//! IEEE-754 bits (round-trips are bit-exact, including infinities),
//! variable-length payloads (machine names, workload fingerprints,
//! program text) are byte-length-prefixed, the file ends with an `end`
//! sentinel so truncation is detected, and writes go through
//! [`crate::checkpoint::atomic_write`] (temp file + rename) so a crash
//! mid-save can never leave a torn file behind. Any corruption is
//! reported as a typed [`DbError`] — never a panic, never a silently
//! empty database.
//!
//! # Wire-level guarantees
//!
//! * `decode(encode(db))` reproduces records, counters, and fingerprints
//!   bit-identically ([`TuningDatabase::encode`] sorts records, so the
//!   encoded form itself is canonical: equal databases encode to equal
//!   bytes).
//! * Programs are stored as their printed text and re-parsed on load;
//!   the printer/parser round-trip is byte-exact for every program the
//!   tuner can produce (property-tested in `crates/tir`).
//!
//! ```
//! use tir_autoschedule::database::TuningDatabase;
//!
//! let db = TuningDatabase::new();
//! let encoded = db.encode();
//! let decoded = TuningDatabase::decode(&encoded).expect("well-formed");
//! assert_eq!(decoded.encode(), encoded);
//! assert!(decoded.is_empty());
//! ```

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use tir::parser::parse_func;
use tir::PrimFunc;
use tir_exec::machine::Machine;
use tir_tensorize::IntrinRegistry;

use crate::baseline::{tune_workload, Strategy};
use crate::checkpoint::atomic_write;
use crate::search::{TuneOptions, TuneResult, WarmStart};

/// Magic + version header of the on-disk format; bump on any change.
const HEADER: &str = "tir-tuning-database v1";

/// Computes a structural fingerprint of a workload: the printed program
/// with variable/buffer *names* replaced by first-occurrence indices, so
/// alpha-equivalent workloads share a key. Numeric literals are kept
/// verbatim — shapes, strides, and constants distinguish workloads.
///
/// ```
/// use tir::DataType;
/// use tir_autoschedule::workload_key;
///
/// // Alpha-equivalent workloads (different names, same computation)
/// // share a fingerprint; a different shape must not.
/// let a = tir::builder::matmul_func("mm", 64, 64, 64, DataType::float16());
/// let b = tir::builder::matmul_func("renamed", 64, 64, 64, DataType::float16());
/// let c = tir::builder::matmul_func("mm", 64, 64, 32, DataType::float16());
/// assert_eq!(workload_key(&a), workload_key(&b));
/// assert_ne!(workload_key(&a), workload_key(&c));
/// ```
pub fn workload_key(func: &PrimFunc) -> String {
    let text = func.to_string();
    // Tokenize identifiers and renumber them in order of first occurrence.
    let mut map: HashMap<String, String> = HashMap::new();
    let mut out = String::with_capacity(text.len());
    let mut ident = String::new();
    let flush = |ident: &mut String, out: &mut String, map: &mut HashMap<String, String>| {
        if ident.is_empty() {
            return;
        }
        // Keep dialect keywords stable; rename everything else.
        const KEYWORDS: &[&str] = &[
            "def", "for", "in", "if", "else", "with", "range", "pass", "and", "or", "not",
            "thread", "true", "false", "True", "False",
        ];
        // Numeric literals (shapes, strides, constants) are semantic:
        // renaming them would let `gmm(128,…)` and `gmm(256,…)` collide on
        // one fingerprint. Anything starting with an ASCII digit is a
        // literal — identifiers can't start with a digit.
        let is_literal = ident.chars().next().is_some_and(|c| c.is_ascii_digit());
        let is_dialect = ident.starts_with("T.") || KEYWORDS.contains(&ident.as_str());
        if is_dialect || is_literal {
            out.push_str(ident);
        } else {
            let n = map.len();
            let id = map.entry(ident.clone()).or_insert_with(|| format!("x{n}"));
            out.push_str(id);
        }
        ident.clear();
    };
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
            ident.push(c);
        } else {
            flush(&mut ident, &mut out, &mut map);
            out.push(c);
        }
    }
    flush(&mut ident, &mut out, &mut map);
    out
}

/// One cached tuning outcome.
#[derive(Clone, Debug)]
pub struct TuningRecord {
    /// The best program found.
    pub best: PrimFunc,
    /// Its simulated time.
    pub best_time: f64,
    /// Trials actually measured when it was tuned.
    pub trials: usize,
    /// The trial *budget* (`TuneOptions::trials`) the record was tuned
    /// with. A later request with a larger budget than this triggers a
    /// re-tune (warm-started from `best`, so it can only improve).
    pub budget: usize,
    /// Tuning cost paid when it was first tuned (seconds).
    pub tuning_cost_s: f64,
}

/// Why a database file could not be loaded.
///
/// Corruption is always reported, never masked: a truncated or
/// bit-flipped file yields [`DbError::Corrupt`] (with the byte offset
/// and a reason), not a panic and not a silently empty database.
#[derive(Debug)]
pub enum DbError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file exists but does not hold a valid database: truncated,
    /// bit-flipped, trailing garbage, an unknown strategy label, or a
    /// stored program that no longer parses.
    Corrupt {
        /// Byte offset at which decoding failed.
        offset: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "database io error: {e}"),
            DbError::Corrupt { offset, reason } => {
                write!(f, "corrupt database at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            DbError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> DbError {
        DbError::Io(e)
    }
}

/// Byte-offset cursor over the encoded text; every failure carries the
/// offset it happened at. Shared with the journal decoder in
/// [`crate::journal`], which rebases the offsets into the journal file.
pub(crate) struct Cursor<'a> {
    pub(crate) text: &'a str,
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn corrupt(&self, reason: impl Into<String>) -> DbError {
        DbError::Corrupt {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    /// Consumes up to (and including) the next newline, returning the
    /// line without it.
    pub(crate) fn line(&mut self) -> Result<&'a str, DbError> {
        let rest = &self.text[self.pos..];
        match rest.find('\n') {
            Some(n) => {
                let line = &rest[..n];
                self.pos += n + 1;
                Ok(line)
            }
            None => Err(self.corrupt("unexpected end of file (missing newline)")),
        }
    }

    /// Consumes exactly `n` bytes followed by a newline.
    pub(crate) fn blob(&mut self, n: usize) -> Result<&'a str, DbError> {
        let end = self.pos.checked_add(n).filter(|&e| e < self.text.len());
        let Some(end) = end else {
            return Err(self.corrupt(format!("truncated: {n}-byte payload runs past end of file")));
        };
        let Some(blob) = self.text.get(self.pos..end) else {
            return Err(self.corrupt("payload length splits a UTF-8 character"));
        };
        if self.text.as_bytes()[end] != b'\n' {
            return Err(self.corrupt("payload not terminated by newline (bad length prefix?)"));
        }
        self.pos = end + 1;
        Ok(blob)
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.text.len()
    }
}

/// Encodes one record in the canonical `record …` block form: a header
/// line with length prefixes and hex-bit floats, followed by four
/// byte-length-prefixed blobs. Used verbatim by both the snapshot
/// ([`TuningDatabase::encode`]) and the write-ahead journal
/// ([`crate::journal`]) — one codec, two containers.
pub(crate) fn encode_record(
    machine: &str,
    strategy: &str,
    key: &str,
    rec: &TuningRecord,
) -> String {
    let best = rec.best.to_string();
    let mut out = format!(
        "record {} {} {} {} {} {} {} {}\n",
        machine.len(),
        strategy.len(),
        key.len(),
        best.len(),
        hex_f64(rec.best_time),
        rec.trials,
        rec.budget,
        hex_f64(rec.tuning_cost_s),
    );
    for blob in [machine, strategy, key, best.as_str()] {
        out.push_str(blob);
        out.push('\n');
    }
    out
}

/// Decodes one `record …` block at the cursor (inverse of
/// [`encode_record`]). Failures carry the cursor's byte offset.
pub(crate) fn decode_record(
    c: &mut Cursor,
) -> Result<(String, Strategy, String, TuningRecord), DbError> {
    let header = c.line()?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() != 9 || toks[0] != "record" {
        return Err(c.corrupt("malformed `record` header line"));
    }
    let len_of = |i: usize, name: &str| -> Result<usize, DbError> {
        toks[i]
            .parse()
            .map_err(|_| c.corrupt(format!("bad record field `{name}`")))
    };
    let machine_len = len_of(1, "machine_len")?;
    let strategy_len = len_of(2, "strategy_len")?;
    let key_len = len_of(3, "key_len")?;
    let best_len = len_of(4, "best_len")?;
    let best_time = parse_hex_f64(toks[5]).ok_or_else(|| c.corrupt("bad best_time bits"))?;
    let trials = len_of(6, "trials")?;
    let budget = len_of(7, "budget")?;
    let tuning_cost_s =
        parse_hex_f64(toks[8]).ok_or_else(|| c.corrupt("bad tuning_cost_s bits"))?;
    let machine = c.blob(machine_len)?.to_string();
    let strategy_label = c.blob(strategy_len)?;
    let strategy = Strategy::from_label(strategy_label)
        .ok_or_else(|| c.corrupt(format!("unknown strategy label `{strategy_label}`")))?;
    let key = c.blob(key_len)?.to_string();
    let best_text = c.blob(best_len)?;
    let best = parse_func(best_text)
        .map_err(|e| c.corrupt(format!("stored program does not parse: {e}")))?;
    Ok((
        machine,
        strategy,
        key,
        TuningRecord {
            best,
            best_time,
            trials,
            budget,
            tuning_cost_s,
        },
    ))
}

fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(tok: &str) -> Option<f64> {
    u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
}

/// A database of tuning records keyed by
/// `(machine, strategy, workload fingerprint)`, with optional on-disk
/// persistence (see the module docs for the format guarantees).
#[derive(Default, Debug)]
pub struct TuningDatabase {
    records: HashMap<(String, &'static str, String), TuningRecord>,
    hits: usize,
    misses: usize,
}

impl TuningDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cache hits served so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of lookups that found nothing (each normally followed by a
    /// tune + [`TuningDatabase::insert`]).
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a record without touching the hit/miss counters — the
    /// read-only probe the server's `query` request uses.
    pub fn peek(&self, machine: &str, strategy: Strategy, key: &str) -> Option<&TuningRecord> {
        self.records
            .get(&(machine.to_string(), strategy.label(), key.to_string()))
    }

    /// Looks up a record, counting a hit or a miss.
    pub fn lookup(
        &mut self,
        machine: &str,
        strategy: Strategy,
        key: &str,
    ) -> Option<&TuningRecord> {
        let k = (machine.to_string(), strategy.label(), key.to_string());
        if self.records.contains_key(&k) {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.records.get(&k)
    }

    /// Inserts (or replaces) a record.
    pub fn insert(&mut self, machine: &str, strategy: Strategy, key: String, record: TuningRecord) {
        self.records
            .insert((machine.to_string(), strategy.label(), key), record);
    }

    /// Iterates over all records as
    /// `((machine, strategy label, fingerprint), record)`, in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, &'static str, String), &TuningRecord)> {
        self.records.iter()
    }

    /// Tunes `func` unless an alpha-equivalent workload was tuned before,
    /// in which case the cached record is returned with zero tuning cost
    /// (the paper's "no search is needed for an operator already tuned").
    ///
    /// A hit whose stored trial *budget* is smaller than `opts.trials`
    /// is a **budget upgrade**: the workload is re-tuned with the larger
    /// budget, warm-started from the stored best (so the record can only
    /// improve), and the record is replaced. Upgrades count as misses —
    /// a search ran.
    pub fn tune_cached(
        &mut self,
        func: &PrimFunc,
        machine: &Machine,
        intrins: &IntrinRegistry,
        strategy: Strategy,
        opts: &TuneOptions,
    ) -> TuneResult {
        let key = workload_key(func);
        let hit = self
            .lookup(&machine.name, strategy, &key)
            .map(|rec| (rec.budget, rec.best.clone(), rec.best_time));
        let warm = match hit {
            Some((budget, best, best_time)) if opts.trials <= budget => {
                return TuneResult {
                    best: Some(best),
                    best_time,
                    history: vec![best_time],
                    ..Default::default()
                };
            }
            Some((_, best, best_time)) => {
                // Budget upgrade: re-tune from the stored best. The
                // lookup above counted a hit; re-balance to a miss,
                // because a search is about to run.
                self.hits -= 1;
                self.misses += 1;
                Some(WarmStart { best, best_time })
            }
            None => None,
        };
        let opts = TuneOptions {
            warm_start: warm,
            ..opts.clone()
        };
        let result = tune_workload(func, machine, intrins, strategy, &opts);
        if let Some(best) = &result.best {
            self.insert(
                &machine.name,
                strategy,
                key,
                TuningRecord {
                    best: best.clone(),
                    best_time: result.best_time,
                    trials: result.trials_measured,
                    budget: opts.trials,
                    tuning_cost_s: result.tuning_cost_s,
                },
            );
        }
        result
    }

    /// Encodes the database to its canonical textual form: records
    /// sorted by key, so equal databases encode to equal bytes.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("counters {} {}\n", self.hits, self.misses));
        let mut keys: Vec<&(String, &'static str, String)> = self.records.keys().collect();
        keys.sort();
        out.push_str(&format!("records {}\n", keys.len()));
        for k in keys {
            let (machine, strategy, key) = k;
            out.push_str(&encode_record(machine, strategy, key, &self.records[k]));
        }
        out.push_str("end\n");
        out
    }

    /// Decodes a database from its textual form.
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] on any malformation: wrong header,
    /// truncation, bad counts, an unknown strategy label, trailing
    /// garbage, or a stored program that fails to parse.
    pub fn decode(text: &str) -> Result<Self, DbError> {
        let mut c = Cursor { text, pos: 0 };
        if c.line()? != HEADER {
            return Err(DbError::Corrupt {
                offset: 0,
                reason: format!("bad header (expected `{HEADER}`)"),
            });
        }
        let mut db = TuningDatabase::new();
        let counters = c.line()?;
        let mut toks = counters.split_whitespace();
        if toks.next() != Some("counters") {
            return Err(c.corrupt("expected `counters` line"));
        }
        db.hits = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| c.corrupt("bad hits counter"))?;
        db.misses = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| c.corrupt("bad misses counter"))?;
        let records = c.line()?;
        let mut toks = records.split_whitespace();
        if toks.next() != Some("records") {
            return Err(c.corrupt("expected `records` line"));
        }
        let n: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| c.corrupt("bad record count"))?;
        for _ in 0..n {
            let (machine, strategy, key, record) = decode_record(&mut c)?;
            db.insert(&machine, strategy, key, record);
        }
        if c.line()? != "end" {
            return Err(c.corrupt("missing `end` sentinel (truncated file?)"));
        }
        if !c.at_end() {
            return Err(c.corrupt("trailing garbage after `end` sentinel"));
        }
        Ok(db)
    }

    /// Persists the database atomically (temp file + rename, fsync'd):
    /// a crash mid-save leaves either the complete previous file or the
    /// complete new one, never a torn mix.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem failure.
    ///
    /// ```
    /// use tir_autoschedule::database::TuningDatabase;
    ///
    /// let dir = std::env::temp_dir().join(format!("tir-db-doc-{}", std::process::id()));
    /// std::fs::create_dir_all(&dir).unwrap();
    /// let path = dir.join("tuning.db");
    ///
    /// let db = TuningDatabase::new();
    /// db.save(&path).expect("save");
    /// let reloaded = TuningDatabase::open(&path).expect("open");
    /// assert_eq!(reloaded.encode(), db.encode());
    /// # std::fs::remove_dir_all(&dir).ok();
    /// ```
    pub fn save(&self, path: &Path) -> Result<(), DbError> {
        atomic_write(path, &self.encode())?;
        Ok(())
    }

    /// Loads a database from `path`.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] if the file cannot be read (including when it
    /// does not exist — use [`TuningDatabase::open`] to treat a missing
    /// file as empty), [`DbError::Corrupt`] if it is malformed.
    pub fn load(path: &Path) -> Result<Self, DbError> {
        let text = std::fs::read_to_string(path)?;
        Self::decode(&text)
    }

    /// Opens a database: loads `path` if it exists, returns an empty
    /// database if it does not. A file that exists but is corrupt is
    /// still an error — silent data loss is never acceptable.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on read failure other than not-found,
    /// [`DbError::Corrupt`] on malformation.
    pub fn open(path: &Path) -> Result<Self, DbError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::decode(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(DbError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::DataType;
    use tir_tensorize::builtin_registry;

    #[test]
    fn alpha_equivalent_workloads_share_a_key() {
        // Two independently constructed matmuls (different Var/Buffer
        // identities) must collide; a different shape must not.
        let a = tir::builder::matmul_func("mm", 64, 64, 64, DataType::float16());
        let b = tir::builder::matmul_func("other_name", 64, 64, 64, DataType::float16());
        let c = tir::builder::matmul_func("mm", 64, 64, 32, DataType::float16());
        let d = tir::builder::matmul_func("mm", 64, 64, 64, DataType::float32());
        assert_eq!(workload_key(&a), workload_key(&b));
        assert_ne!(workload_key(&a), workload_key(&c));
        assert_ne!(workload_key(&a), workload_key(&d));
    }

    #[test]
    fn uniformly_scaled_shapes_get_distinct_keys() {
        // Regression: literals used to alpha-rename like identifiers, so a
        // uniform scaling (every 128 -> 256) produced the identical
        // fingerprint and the database served the wrong cached kernel.
        let dt = DataType::float16();
        let acc = DataType::float32();
        let small = tir_workloads::gmm(128, 128, 128, dt, acc);
        let big = tir_workloads::gmm(256, 256, 256, dt, acc);
        assert_ne!(workload_key(&small), workload_key(&big));
        // Alpha-equivalence still holds for genuinely identical workloads.
        let again = tir_workloads::gmm(128, 128, 128, dt, acc);
        assert_eq!(workload_key(&small), workload_key(&again));
    }

    #[test]
    fn float_literals_are_semantic() {
        use tir::{Buffer, Expr, Stmt, Var};
        let scale = |name: &str, buf: &str, c: f32| {
            let b = Buffer::new(buf, DataType::float32(), vec![8]);
            let i = Var::int("i");
            let body = Stmt::store(
                b.clone(),
                vec![Expr::from(&i)],
                b.load(vec![Expr::from(&i)]) * Expr::f32(c),
            )
            .in_loop(i, 8);
            tir::PrimFunc::new(name, vec![b], body)
        };
        // Same constant under different names: one key. Different
        // constant: a different key.
        assert_eq!(
            workload_key(&scale("f", "B", 2.5)),
            workload_key(&scale("g", "C", 2.5))
        );
        assert_ne!(
            workload_key(&scale("f", "B", 2.5)),
            workload_key(&scale("f", "B", 0.5))
        );
    }

    #[test]
    fn shape_distinct_workloads_do_not_share_records() {
        // End-to-end regression for the fingerprint collision: two
        // alpha-equivalent but shape-distinct funcs must be tuned
        // separately, not served from one record.
        let mut db = TuningDatabase::new();
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 8,
            ..Default::default()
        };
        let dt = DataType::float16();
        let acc = DataType::float32();
        let small = tir_workloads::gmm(32, 32, 32, dt, acc);
        let big = tir_workloads::gmm(64, 64, 64, dt, acc);
        let r_small = db.tune_cached(&small, &machine, &reg, Strategy::TensorIr, &opts);
        let r_big = db.tune_cached(&big, &machine, &reg, Strategy::TensorIr, &opts);
        assert_eq!(db.misses(), 2, "each shape must be tuned");
        assert_eq!(db.hits(), 0);
        assert_eq!(db.len(), 2);
        assert!(r_small.tuning_cost_s > 0.0 && r_big.tuning_cost_s > 0.0);
        assert_ne!(
            r_small.best_time, r_big.best_time,
            "a 64^3 gmm cannot be as fast as a 32^3 gmm"
        );
    }

    #[test]
    fn miss_then_tune_counts_exactly_one_miss() {
        let mut db = TuningDatabase::new();
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 8,
            ..Default::default()
        };
        assert_eq!((db.hits(), db.misses()), (0, 0));
        let f = tir::builder::matmul_func("mm", 32, 32, 32, DataType::float16());
        db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &opts);
        // The miss-then-tune-then-insert path must count one miss, not one
        // per lookup plus one on insert.
        assert_eq!((db.hits(), db.misses()), (0, 1));
        assert_eq!(db.len(), 1);
        db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &opts);
        assert_eq!((db.hits(), db.misses()), (1, 1));
        db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &opts);
        assert_eq!((db.hits(), db.misses()), (2, 1));
        assert_eq!(db.len(), 1, "hits never insert duplicate records");
    }

    #[test]
    fn second_tuning_is_free() {
        let mut db = TuningDatabase::new();
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 12,
            ..Default::default()
        };
        let f1 = tir::builder::matmul_func("mm", 128, 128, 128, DataType::float16());
        let first = db.tune_cached(&f1, &machine, &reg, Strategy::TensorIr, &opts);
        assert!(first.tuning_cost_s > 0.0);
        assert_eq!(db.misses(), 1);

        // A fresh, alpha-equivalent function: cache hit, zero cost, same
        // result.
        let f2 = tir::builder::matmul_func("mm2", 128, 128, 128, DataType::float16());
        let second = db.tune_cached(&f2, &machine, &reg, Strategy::TensorIr, &opts);
        assert_eq!(db.hits(), 1);
        assert_eq!(second.tuning_cost_s, 0.0);
        assert_eq!(second.trials_measured, 0);
        assert_eq!(second.best_time, first.best_time);
    }

    #[test]
    fn different_machines_do_not_share_records() {
        let mut db = TuningDatabase::new();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 8,
            ..Default::default()
        };
        let f = tir_workloads::gmm(64, 64, 64, DataType::int8(), DataType::int32());
        db.tune_cached(&f, &Machine::sim_arm(), &reg, Strategy::TensorIr, &opts);
        db.tune_cached(&f, &Machine::sim_gpu(), &reg, Strategy::TensorIr, &opts);
        assert_eq!(db.misses(), 2);
        assert_eq!(db.hits(), 0);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn budget_upgrade_retunes_and_never_regresses() {
        let mut db = TuningDatabase::new();
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let small = TuneOptions {
            trials: 8,
            ..Default::default()
        };
        let f = tir::builder::matmul_func("mm", 128, 128, 128, DataType::float16());
        let first = db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &small);
        assert_eq!((db.hits(), db.misses()), (0, 1));

        // Same budget: free hit.
        db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &small);
        assert_eq!((db.hits(), db.misses()), (1, 1));

        // Larger budget: a re-tune runs (counted as a miss), warm-started
        // from the stored best, so the result can only improve.
        let big = TuneOptions {
            trials: 24,
            ..Default::default()
        };
        let upgraded = db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &big);
        assert_eq!((db.hits(), db.misses()), (1, 2));
        assert!(upgraded.tuning_cost_s > 0.0, "upgrade must actually search");
        assert!(
            upgraded.best_time <= first.best_time,
            "warm start floors the result"
        );
        let key = workload_key(&f);
        let rec = db.peek(&machine.name, Strategy::TensorIr, &key).unwrap();
        assert_eq!(rec.budget, 24, "stored budget tracks the largest request");

        // The larger budget is now stored: the same request is a free hit.
        let again = db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &big);
        assert_eq!((db.hits(), db.misses()), (2, 2));
        assert_eq!(again.tuning_cost_s, 0.0);
        assert_eq!(again.best_time, upgraded.best_time);
    }
}
