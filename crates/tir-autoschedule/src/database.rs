//! Tuning database: cached search records keyed by workload fingerprint.
//!
//! §5.2 of the paper: "TensorIR can eliminate search time further by
//! caching historical cost models and search records. So no search is
//! needed to build a model for an operator already tuned." A database
//! lookup replaces the whole evolutionary search when an identical
//! workload (same computation, shapes, and dtypes — names and variable
//! identities ignored) has been tuned before.

use std::collections::HashMap;

use tir::PrimFunc;
use tir_exec::machine::Machine;
use tir_tensorize::IntrinRegistry;

use crate::baseline::{tune_workload, Strategy};
use crate::search::{TuneOptions, TuneResult};

/// Computes a structural fingerprint of a workload: the printed program
/// with variable/buffer *names* replaced by first-occurrence indices, so
/// alpha-equivalent workloads share a key. Numeric literals are kept
/// verbatim — shapes, strides, and constants distinguish workloads.
pub fn workload_key(func: &PrimFunc) -> String {
    let text = func.to_string();
    // Tokenize identifiers and renumber them in order of first occurrence.
    let mut map: HashMap<String, String> = HashMap::new();
    let mut out = String::with_capacity(text.len());
    let mut ident = String::new();
    let flush = |ident: &mut String, out: &mut String, map: &mut HashMap<String, String>| {
        if ident.is_empty() {
            return;
        }
        // Keep dialect keywords stable; rename everything else.
        const KEYWORDS: &[&str] = &[
            "def", "for", "in", "if", "else", "with", "range", "pass", "and", "or", "not",
            "thread", "true", "false", "True", "False",
        ];
        // Numeric literals (shapes, strides, constants) are semantic:
        // renaming them would let `gmm(128,…)` and `gmm(256,…)` collide on
        // one fingerprint. Anything starting with an ASCII digit is a
        // literal — identifiers can't start with a digit.
        let is_literal = ident.chars().next().is_some_and(|c| c.is_ascii_digit());
        let is_dialect = ident.starts_with("T.") || KEYWORDS.contains(&ident.as_str());
        if is_dialect || is_literal {
            out.push_str(ident);
        } else {
            let n = map.len();
            let id = map.entry(ident.clone()).or_insert_with(|| format!("x{n}"));
            out.push_str(id);
        }
        ident.clear();
    };
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
            ident.push(c);
        } else {
            flush(&mut ident, &mut out, &mut map);
            out.push(c);
        }
    }
    flush(&mut ident, &mut out, &mut map);
    out
}

/// One cached tuning outcome.
#[derive(Clone, Debug)]
pub struct TuningRecord {
    /// The best program found.
    pub best: PrimFunc,
    /// Its simulated time.
    pub best_time: f64,
    /// Trials spent when it was first tuned.
    pub trials: usize,
    /// Tuning cost paid when it was first tuned (seconds).
    pub tuning_cost_s: f64,
}

/// An in-memory database of tuning records, keyed by
/// `(machine, strategy, workload fingerprint)`.
#[derive(Default, Debug)]
pub struct TuningDatabase {
    records: HashMap<(String, &'static str, String), TuningRecord>,
    hits: usize,
    misses: usize,
}

impl TuningDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cache hits served so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of workloads actually tuned.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Tunes `func` unless an alpha-equivalent workload was tuned before,
    /// in which case the cached record is returned with zero tuning cost
    /// (the paper's "no search is needed for an operator already tuned").
    pub fn tune_cached(
        &mut self,
        func: &PrimFunc,
        machine: &Machine,
        intrins: &IntrinRegistry,
        strategy: Strategy,
        opts: &TuneOptions,
    ) -> TuneResult {
        let key = (machine.name.clone(), strategy.label(), workload_key(func));
        if let Some(rec) = self.records.get(&key) {
            self.hits += 1;
            return TuneResult {
                best: Some(rec.best.clone()),
                best_time: rec.best_time,
                history: vec![rec.best_time],
                ..Default::default()
            };
        }
        self.misses += 1;
        let result = tune_workload(func, machine, intrins, strategy, opts);
        if let Some(best) = &result.best {
            self.records.insert(
                key,
                TuningRecord {
                    best: best.clone(),
                    best_time: result.best_time,
                    trials: result.trials_measured,
                    tuning_cost_s: result.tuning_cost_s,
                },
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::DataType;
    use tir_tensorize::builtin_registry;

    #[test]
    fn alpha_equivalent_workloads_share_a_key() {
        // Two independently constructed matmuls (different Var/Buffer
        // identities) must collide; a different shape must not.
        let a = tir::builder::matmul_func("mm", 64, 64, 64, DataType::float16());
        let b = tir::builder::matmul_func("other_name", 64, 64, 64, DataType::float16());
        let c = tir::builder::matmul_func("mm", 64, 64, 32, DataType::float16());
        let d = tir::builder::matmul_func("mm", 64, 64, 64, DataType::float32());
        assert_eq!(workload_key(&a), workload_key(&b));
        assert_ne!(workload_key(&a), workload_key(&c));
        assert_ne!(workload_key(&a), workload_key(&d));
    }

    #[test]
    fn uniformly_scaled_shapes_get_distinct_keys() {
        // Regression: literals used to alpha-rename like identifiers, so a
        // uniform scaling (every 128 -> 256) produced the identical
        // fingerprint and the database served the wrong cached kernel.
        let dt = DataType::float16();
        let acc = DataType::float32();
        let small = tir_workloads::gmm(128, 128, 128, dt, acc);
        let big = tir_workloads::gmm(256, 256, 256, dt, acc);
        assert_ne!(workload_key(&small), workload_key(&big));
        // Alpha-equivalence still holds for genuinely identical workloads.
        let again = tir_workloads::gmm(128, 128, 128, dt, acc);
        assert_eq!(workload_key(&small), workload_key(&again));
    }

    #[test]
    fn float_literals_are_semantic() {
        use tir::{Buffer, Expr, Stmt, Var};
        let scale = |name: &str, buf: &str, c: f32| {
            let b = Buffer::new(buf, DataType::float32(), vec![8]);
            let i = Var::int("i");
            let body = Stmt::store(
                b.clone(),
                vec![Expr::from(&i)],
                b.load(vec![Expr::from(&i)]) * Expr::f32(c),
            )
            .in_loop(i, 8);
            tir::PrimFunc::new(name, vec![b], body)
        };
        // Same constant under different names: one key. Different
        // constant: a different key.
        assert_eq!(
            workload_key(&scale("f", "B", 2.5)),
            workload_key(&scale("g", "C", 2.5))
        );
        assert_ne!(
            workload_key(&scale("f", "B", 2.5)),
            workload_key(&scale("f", "B", 0.5))
        );
    }

    #[test]
    fn shape_distinct_workloads_do_not_share_records() {
        // End-to-end regression for the fingerprint collision: two
        // alpha-equivalent but shape-distinct funcs must be tuned
        // separately, not served from one record.
        let mut db = TuningDatabase::new();
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 8,
            ..Default::default()
        };
        let dt = DataType::float16();
        let acc = DataType::float32();
        let small = tir_workloads::gmm(32, 32, 32, dt, acc);
        let big = tir_workloads::gmm(64, 64, 64, dt, acc);
        let r_small = db.tune_cached(&small, &machine, &reg, Strategy::TensorIr, &opts);
        let r_big = db.tune_cached(&big, &machine, &reg, Strategy::TensorIr, &opts);
        assert_eq!(db.misses(), 2, "each shape must be tuned");
        assert_eq!(db.hits(), 0);
        assert_eq!(db.len(), 2);
        assert!(r_small.tuning_cost_s > 0.0 && r_big.tuning_cost_s > 0.0);
        assert_ne!(
            r_small.best_time, r_big.best_time,
            "a 64^3 gmm cannot be as fast as a 32^3 gmm"
        );
    }

    #[test]
    fn miss_then_tune_counts_exactly_one_miss() {
        let mut db = TuningDatabase::new();
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 8,
            ..Default::default()
        };
        assert_eq!((db.hits(), db.misses()), (0, 0));
        let f = tir::builder::matmul_func("mm", 32, 32, 32, DataType::float16());
        db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &opts);
        // The miss-then-tune-then-insert path must count one miss, not one
        // per lookup plus one on insert.
        assert_eq!((db.hits(), db.misses()), (0, 1));
        assert_eq!(db.len(), 1);
        db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &opts);
        assert_eq!((db.hits(), db.misses()), (1, 1));
        db.tune_cached(&f, &machine, &reg, Strategy::TensorIr, &opts);
        assert_eq!((db.hits(), db.misses()), (2, 1));
        assert_eq!(db.len(), 1, "hits never insert duplicate records");
    }

    #[test]
    fn second_tuning_is_free() {
        let mut db = TuningDatabase::new();
        let machine = Machine::sim_gpu();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 12,
            ..Default::default()
        };
        let f1 = tir::builder::matmul_func("mm", 128, 128, 128, DataType::float16());
        let first = db.tune_cached(&f1, &machine, &reg, Strategy::TensorIr, &opts);
        assert!(first.tuning_cost_s > 0.0);
        assert_eq!(db.misses(), 1);

        // A fresh, alpha-equivalent function: cache hit, zero cost, same
        // result.
        let f2 = tir::builder::matmul_func("mm2", 128, 128, 128, DataType::float16());
        let second = db.tune_cached(&f2, &machine, &reg, Strategy::TensorIr, &opts);
        assert_eq!(db.hits(), 1);
        assert_eq!(second.tuning_cost_s, 0.0);
        assert_eq!(second.trials_measured, 0);
        assert_eq!(second.best_time, first.best_time);
    }

    #[test]
    fn different_machines_do_not_share_records() {
        let mut db = TuningDatabase::new();
        let reg = builtin_registry();
        let opts = TuneOptions {
            trials: 8,
            ..Default::default()
        };
        let f = tir_workloads::gmm(64, 64, 64, DataType::int8(), DataType::int32());
        db.tune_cached(&f, &Machine::sim_arm(), &reg, Strategy::TensorIr, &opts);
        db.tune_cached(&f, &Machine::sim_gpu(), &reg, Strategy::TensorIr, &opts);
        assert_eq!(db.misses(), 2);
        assert_eq!(db.hits(), 0);
        assert_eq!(db.len(), 2);
    }
}
