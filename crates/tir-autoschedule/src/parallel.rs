//! Deterministic fork-join parallelism for the candidate-evaluation
//! pipeline.
//!
//! The evolutionary search (§4.4) spends nearly all of its wall-clock time
//! in per-candidate work — sketch instantiation, §3.3 validation, cost
//! summarization, feature extraction, and simulated measurement — all of
//! which are pure functions of one candidate. [`parallel_map`] fans that
//! work out across a pool of scoped worker threads while keeping results
//! indexed by input position, so the coordinator observes *exactly* the
//! same values in the same order regardless of thread count or scheduling.
//! Combined with per-slot RNGs derived from `TuneOptions::seed` (see
//! [`crate::search`]), this makes parallel tuning runs bit-for-bit
//! reproducible.
//!
//! Implemented on `std::thread::scope` with an atomic work queue instead
//! of an external thread-pool dependency: workers pull the next input
//! index, so uneven per-candidate costs (e.g. early construction failures
//! vs. full schedule materialization) still balance across the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::measure::panic_message;

/// Resolves a thread-count request: `0` means "all available cores".
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Applies `f` to every item, fanning out across `num_threads` workers,
/// and returns the results in input order.
///
/// Deterministic by construction: `f` receives `(index, &item)` and its
/// result is stored at `index`, so the output is independent of how work
/// interleaves across threads. Falls back to a serial loop when
/// `num_threads <= 1` or there is at most one item — the serial and
/// parallel paths produce identical results.
pub fn parallel_map<T, R, F>(items: &[T], num_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_parallel_map(items, num_threads, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(msg) => panic!("parallel_map worker panicked: {msg}"),
        })
        .collect()
}

/// Panic-isolating variant of [`parallel_map`]: each per-item invocation
/// of `f` runs under [`catch_unwind`], so a panicking item yields
/// `Err(panic message)` at its index instead of poisoning the pool and
/// aborting the whole run. All non-panicking items still complete.
///
/// The serial (`num_threads <= 1`) and parallel paths are behaviorally
/// identical, including which items are `Err` — panics are a property of
/// `(index, item)`, not of scheduling.
pub fn try_parallel_map<T, R, F>(items: &[T], num_threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let guarded =
        |i: usize, item: &T| catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(panic_message);
    let workers = num_threads.min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| guarded(i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<R, String>>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let guarded = &guarded;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, guarded(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            // Workers cannot themselves panic — every call into user code
            // is wrapped — so a join failure is a harness bug.
            for (i, r) in h.join().expect("queue worker is panic-free") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        // Infallible: the atomic queue hands out every index in
        // [0, items.len()) exactly once, and each worker records a result
        // for every index it takes.
        .map(|r| r.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(&items, threads, |i, &v| {
                assert_eq!(i, v);
                v * 3
            });
            assert_eq!(out, (0..100).map(|v| v * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let f = |_: usize, &v: &u64| v.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let serial = parallel_map(&items, 1, f);
        let parallel = parallel_map(&items, 6, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, 4, |_, v| *v).is_empty());
        assert_eq!(parallel_map(&[7], 4, |_, v| *v + 1), vec![8]);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn panicking_item_fails_alone() {
        let items: Vec<usize> = (0..20).collect();
        for threads in [1, 4] {
            let out = try_parallel_map(&items, threads, |_, &v| {
                if v == 7 {
                    panic!("candidate {v} exploded");
                }
                v * 2
            });
            assert_eq!(out.len(), 20);
            for (i, r) in out.iter().enumerate() {
                if i == 7 {
                    let msg = r.as_ref().expect_err("index 7 panicked");
                    assert!(msg.contains("candidate 7 exploded"), "got: {msg}");
                } else {
                    assert_eq!(r.as_ref().expect("survives"), &(i * 2));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "parallel_map worker panicked")]
    fn parallel_map_still_propagates_panics() {
        parallel_map(&[1, 2, 3], 1, |_, &v: &i32| {
            if v == 2 {
                panic!("boom");
            }
            v
        });
    }
}
