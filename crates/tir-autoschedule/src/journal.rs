//! Crash-consistent write-ahead journal for the tuning database.
//!
//! The tuning database is the fleet's durable asset: once an operator is
//! tuned, every later request is answered warm from disk. Persisting it
//! by rewriting the whole file per publish is O(db) *and* fragile — any
//! damage used to be a fatal [`DbError::Corrupt`]. This module replaces
//! rewrite-per-publish with the classic write-ahead-journal shape:
//!
//! * the **snapshot** (`tir-tuning-database v1`, the existing format)
//!   holds the database as of the last compaction, written atomically;
//! * the **journal** (`<db path>.journal`, format
//!   `tir-tuning-db-journal v1`) is append-only: each published record
//!   becomes one length-prefixed, checksummed entry reusing the
//!   snapshot's hex-bit `record` encoding — an O(1) append + fsync per
//!   publish, regardless of database size;
//! * **recovery** loads the snapshot, then replays the journal's valid
//!   prefix. Tail-only damage (a torn final entry — the signature of a
//!   crash mid-append) is *salvaged*: the torn tail is truncated and
//!   every complete entry is kept. Damage in the middle of the journal
//!   — which no crash of ours can produce — stays a typed
//!   [`DbError::Corrupt`] with the byte offset;
//! * **compaction** folds journal + memory state into a fresh snapshot
//!   (atomic replace) and resets the journal — on shutdown, and inline
//!   once the journal grows past [`JournaledDb::compact_threshold`].
//!   Replay is idempotent (entries are keyed inserts), so a crash
//!   between the snapshot write and the journal reset merely replays
//!   records the snapshot already has.
//!
//! # The durability invariant
//!
//! [`JournaledDb::publish`] returns `Ok` only after the entry is
//! appended **and fsynced**; the daemon acknowledges a tune to its
//! client only after `publish` returns. Therefore *acknowledged ⇒
//! durable*: a crash at any instant loses at most records that were
//! never acknowledged. The chaos harness (`tir-serve`'s
//! `serve_chaos.rs`) enumerates every named crash point and asserts
//! exactly this, bit-identically.
//!
//! All storage goes through [`crate::fault_io::JournalIo`], so the same
//! code path runs in production (against [`crate::fault_io::DiskIo`])
//! and under deterministic chaos (against
//! [`crate::fault_io::FaultIo`]).
//!
//! # Journal entry framing
//!
//! ```text
//! tir-tuning-db-journal v1\n
//! entry <payload-bytes> <fnv1a64-hex>\n
//! record <machine_len> <strategy_len> <key_len> <best_len> <best_time> <trials> <budget> <cost>\n
//! <machine>\n<strategy>\n<key>\n<best program>\n
//! entry …
//! ```
//!
//! The FNV-1a checksum covers the payload bytes, so a bit flip anywhere
//! in an entry is detected, and the length prefix makes the valid
//! prefix of a torn journal decidable without trusting damaged bytes.

use std::io;
use std::path::{Path, PathBuf};

use crate::baseline::Strategy;
use crate::database::{
    decode_record, encode_record, Cursor, DbError, TuningDatabase, TuningRecord,
};
use crate::fault_io::JournalIo;

/// Magic + version header of the journal file; bump on any change.
pub const JOURNAL_HEADER: &str = "tir-tuning-db-journal v1";

/// Named crash points in the publish path, in order. The chaos harness
/// enumerates these; [`crate::fault_io::FaultIo`] can crash at any of
/// them (plus *inside* the append itself, via
/// [`crate::fault_io::FaultSpec::crash_in_append`]).
pub const PUBLISH_CRASH_POINTS: &[&str] =
    &["publish.begin", "publish.pre_fsync", "publish.post_fsync"];

/// Named crash points in the compaction path, in order.
pub const COMPACT_CRASH_POINTS: &[&str] = &["compact.begin", "compact.pre_truncate", "compact.end"];

/// FNV-1a 64-bit: dependency-free, stable, good enough to detect any
/// single- or few-bit corruption in an entry payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Derives the journal path that rides alongside a snapshot path:
/// `tuning.db` → `tuning.db.journal`.
pub fn journal_path_for(db_path: &Path) -> PathBuf {
    let mut os = db_path.as_os_str().to_os_string();
    os.push(".journal");
    PathBuf::from(os)
}

/// What recovery found and did. Returned by [`JournaledDb::open`] so
/// the daemon can log (and its stats can expose) exactly how the store
/// came back.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records loaded from the snapshot.
    pub snapshot_records: usize,
    /// Journal entries replayed on top of the snapshot.
    pub journal_replayed: usize,
    /// Bytes of torn journal tail truncated (0 on a clean boot).
    pub salvaged_bytes: usize,
    /// Valid journal bytes retained after recovery.
    pub journal_bytes: usize,
}

impl RecoveryReport {
    /// Whether recovery had to salvage a torn tail.
    pub fn salvaged(&self) -> bool {
        self.salvaged_bytes > 0
    }
}

/// Outcome of one [`JournaledDb::publish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishOutcome {
    /// Bytes appended to the journal for this record.
    pub appended_bytes: usize,
    /// Whether this publish tripped the size threshold and compacted.
    pub compacted: bool,
}

/// How one parse attempt of a journal entry failed, before tail/mid
/// classification.
enum EntryDamage {
    /// The entry's frame cannot be trusted (malformed header, payload
    /// running past EOF): its extent is unknown.
    Unframed(String),
    /// The entry is fully framed but its bytes are damaged (checksum
    /// mismatch, invalid UTF-8): `end` is its exclusive end offset.
    Framed(usize, String),
}

/// The persistent tuning database: an in-memory [`TuningDatabase`]
/// backed by a snapshot file plus a write-ahead journal, all I/O
/// indirected through a [`JournalIo`] so crash consistency is testable.
pub struct JournaledDb {
    db: TuningDatabase,
    io: Box<dyn JournalIo>,
    snapshot_path: PathBuf,
    journal_path: PathBuf,
    /// Current journal length in bytes (0 when absent/reset).
    journal_bytes: usize,
    /// Entries appended since the last compaction.
    journal_entries: usize,
    /// Journal size past which a publish folds into the snapshot.
    pub compact_threshold: usize,
    /// Compactions performed over this store's lifetime.
    compactions: usize,
    /// Threshold compactions that failed transiently (the journal keeps
    /// growing; durability is unaffected).
    compact_failures: usize,
    /// Records whose journal append failed and that therefore live only
    /// in memory — the degraded state. Cleared by a successful compact.
    unjournaled: usize,
}

impl JournaledDb {
    /// Default [`JournaledDb::compact_threshold`]: 256 KiB of journal.
    pub const DEFAULT_COMPACT_THRESHOLD: usize = 256 * 1024;

    /// Opens (or creates) the store at `db_path`, running crash
    /// recovery: load the snapshot, replay the journal's valid prefix,
    /// salvage a torn tail.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on storage failure; [`DbError::Corrupt`] when
    /// the snapshot is damaged anywhere, or the journal is damaged
    /// *before* its final entry (tail-only damage is salvaged, not an
    /// error).
    pub fn open(
        mut io: Box<dyn JournalIo>,
        db_path: &Path,
    ) -> Result<(JournaledDb, RecoveryReport), DbError> {
        let snapshot_path = db_path.to_path_buf();
        let journal_path = journal_path_for(db_path);
        // The snapshot is written atomically, so damage there is real
        // external corruption: strict, never salvaged.
        let db = match io.read(&snapshot_path)? {
            None => TuningDatabase::new(),
            Some(bytes) => match String::from_utf8(bytes) {
                Ok(text) => TuningDatabase::decode(&text)?,
                Err(e) => {
                    return Err(DbError::Corrupt {
                        offset: e.utf8_error().valid_up_to(),
                        reason: "snapshot is not valid UTF-8".to_string(),
                    })
                }
            },
        };
        let mut store = JournaledDb {
            db,
            io,
            snapshot_path,
            journal_path,
            journal_bytes: 0,
            journal_entries: 0,
            compact_threshold: Self::DEFAULT_COMPACT_THRESHOLD,
            compactions: 0,
            compact_failures: 0,
            unjournaled: 0,
        };
        let mut report = RecoveryReport {
            snapshot_records: store.db.len(),
            ..Default::default()
        };
        if let Some(bytes) = store.io.read(&store.journal_path)? {
            let (replayed, valid_len) = replay(&mut store.db, &bytes)?;
            report.journal_replayed = replayed;
            report.salvaged_bytes = bytes.len() - valid_len;
            report.journal_bytes = valid_len;
            if report.salvaged_bytes > 0 {
                // Drop the torn tail so the next append starts at a
                // record boundary.
                store.io.truncate(&store.journal_path, valid_len as u64)?;
            }
            store.journal_bytes = valid_len;
            store.journal_entries = replayed;
        }
        Ok((store, report))
    }

    /// The in-memory database (lookups, counters, iteration).
    pub fn db(&self) -> &TuningDatabase {
        &self.db
    }

    /// Mutable access to the in-memory database. Inserts made here are
    /// **not** journaled — use [`JournaledDb::publish`] for durable
    /// writes; this is the degraded keep-it-in-memory path and the
    /// counter-bumping lookup path.
    pub fn db_mut(&mut self) -> &mut TuningDatabase {
        &mut self.db
    }

    /// The snapshot file path.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// The journal file path (`<snapshot>.journal`).
    pub fn journal_path(&self) -> &Path {
        &self.journal_path
    }

    /// Current journal size in bytes.
    pub fn journal_bytes(&self) -> usize {
        self.journal_bytes
    }

    /// Journal entries appended since the last compaction.
    pub fn journal_entries(&self) -> usize {
        self.journal_entries
    }

    /// Compactions performed by this store instance.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Threshold compactions that failed transiently.
    pub fn compact_failures(&self) -> usize {
        self.compact_failures
    }

    /// Records held only in memory because their journal append failed
    /// — the degraded state operators alarm on. Cleared to zero by the
    /// first successful [`JournaledDb::compact`].
    pub fn unjournaled(&self) -> usize {
        self.unjournaled
    }

    /// Publishes one record durably: inserts it in memory, appends one
    /// journal entry, and fsyncs — O(1) in the database size. On `Ok`,
    /// the record survives any crash. The append tripping
    /// [`JournaledDb::compact_threshold`] also folds the journal into
    /// the snapshot (a transient compaction failure is *not* a publish
    /// failure — the record is already durable; it is counted in
    /// [`JournaledDb::compact_failures`]).
    ///
    /// On `Err`, the record is still present in memory but **not
    /// durable**: the caller owns the retry policy (publish is
    /// idempotent — a duplicate entry replays as a keyed re-insert) and
    /// the store counts it in [`JournaledDb::unjournaled`] until a
    /// compaction succeeds.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] when the append or fsync failed; the journal is
    /// best-effort repaired (truncated back to the last good boundary)
    /// so a *later* publish cannot leave damage mid-file.
    pub fn publish(
        &mut self,
        machine: &str,
        strategy: Strategy,
        key: String,
        record: TuningRecord,
    ) -> Result<PublishOutcome, DbError> {
        let entry = {
            let payload = encode_record(machine, strategy.label(), &key, &record);
            format!(
                "entry {} {:016x}\n{payload}",
                payload.len(),
                fnv1a(payload.as_bytes())
            )
        };
        self.db.insert(machine, strategy, key, record);
        match self.append_durably(&entry) {
            Ok(appended_bytes) => {
                // A previously degraded record becomes durable with the
                // rest of the memory state once a compaction folds it
                // into the snapshot; force one on the next opportunity.
                let over_threshold = self.journal_bytes > self.compact_threshold;
                let mut compacted = false;
                if over_threshold || self.unjournaled > 0 {
                    match self.compact() {
                        Ok(()) => compacted = true,
                        Err(_) if self.unjournaled == 0 => self.compact_failures += 1,
                        Err(e) => return Err(e),
                    }
                }
                Ok(PublishOutcome {
                    appended_bytes,
                    compacted,
                })
            }
            Err(e) => {
                self.unjournaled += 1;
                Err(e)
            }
        }
    }

    /// Appends `entry` (with the journal header first when the journal
    /// is empty) and fsyncs; returns bytes appended. On failure the
    /// journal is repaired back to `journal_bytes` best-effort.
    fn append_durably(&mut self, entry: &str) -> Result<usize, DbError> {
        let io = &mut self.io;
        let mut run = || -> io::Result<usize> {
            io.crash_point("publish.begin")?;
            let mut bytes = Vec::with_capacity(entry.len() + 32);
            if self.journal_bytes == 0 {
                bytes.extend_from_slice(JOURNAL_HEADER.as_bytes());
                bytes.push(b'\n');
            }
            bytes.extend_from_slice(entry.as_bytes());
            io.append(&self.journal_path, &bytes)?;
            io.crash_point("publish.pre_fsync")?;
            io.fsync(&self.journal_path)?;
            io.crash_point("publish.post_fsync")?;
            Ok(bytes.len())
        };
        match run() {
            Ok(n) => {
                self.journal_bytes += n;
                self.journal_entries += 1;
                Ok(n)
            }
            Err(e) => {
                // A failed append may have left a partial entry behind;
                // cutting back to the last good boundary keeps any
                // damage tail-only (and recovery salvages tails).
                let _ = self
                    .io
                    .truncate(&self.journal_path, self.journal_bytes as u64);
                Err(DbError::Io(e))
            }
        }
    }

    /// Folds the journal into the snapshot: writes the full database
    /// atomically, then resets the journal to empty. Also persists the
    /// hit/miss counters (journal entries do not carry them). Clears
    /// the degraded [`JournaledDb::unjournaled`] state — after a
    /// successful compact, everything in memory is on disk.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on storage failure. The order (snapshot first,
    /// journal reset second, replay idempotent) means a crash anywhere
    /// inside loses nothing.
    pub fn compact(&mut self) -> Result<(), DbError> {
        self.io.crash_point("compact.begin")?;
        let snapshot = self.db.encode();
        self.io.replace(&self.snapshot_path, snapshot.as_bytes())?;
        self.io.crash_point("compact.pre_truncate")?;
        if self.journal_bytes > 0 {
            self.io.truncate(&self.journal_path, 0)?;
        }
        self.journal_bytes = 0;
        self.journal_entries = 0;
        self.compactions += 1;
        self.unjournaled = 0;
        self.io.crash_point("compact.end")?;
        Ok(())
    }
}

/// Replays journal `bytes` into `db`. Returns `(entries replayed,
/// valid prefix length)`; a torn tail shortens the valid prefix, while
/// mid-file damage is a [`DbError::Corrupt`] at its byte offset.
fn replay(db: &mut TuningDatabase, bytes: &[u8]) -> Result<(usize, usize), DbError> {
    if bytes.is_empty() {
        return Ok((0, 0));
    }
    let header_line = format!("{JOURNAL_HEADER}\n");
    if !bytes.starts_with(header_line.as_bytes()) {
        // A journal torn inside its very first write is a strict prefix
        // of the header line: salvage to empty. Anything else is not a
        // journal of ours.
        if header_line.as_bytes().starts_with(bytes) {
            return Ok((0, 0));
        }
        return Err(DbError::Corrupt {
            offset: 0,
            reason: format!("journal: bad header (expected `{JOURNAL_HEADER}`)"),
        });
    }
    let mut pos = header_line.len();
    let mut replayed = 0usize;
    while pos < bytes.len() {
        match parse_entry(db, bytes, pos) {
            Ok(end) => {
                replayed += 1;
                pos = end;
            }
            Err(EntryDamage::Framed(end, reason)) if end == bytes.len() => {
                // The damaged entry is the journal's last: the torn-tail
                // signature of a crash mid-append. Salvage.
                let _ = reason;
                return Ok((replayed, pos));
            }
            Err(EntryDamage::Framed(_, reason)) => {
                return Err(DbError::Corrupt {
                    offset: pos,
                    reason: format!("journal: {reason}"),
                })
            }
            Err(EntryDamage::Unframed(reason)) => {
                // The entry's extent is unknowable. If a later entry
                // marker survives, records after the damage would be
                // silently dropped by salvage — refuse instead. Only
                // when nothing entry-like follows is this a torn tail.
                let has_later_marker = bytes[pos..].windows(7).skip(1).any(|w| w == b"\nentry ");
                if has_later_marker {
                    return Err(DbError::Corrupt {
                        offset: pos,
                        reason: format!("journal: {reason} (valid entries follow the damage)"),
                    });
                }
                return Ok((replayed, pos));
            }
        }
    }
    Ok((replayed, pos))
}

/// Parses one journal entry at `pos`, inserting its record into `db`.
/// Returns the entry's exclusive end offset.
fn parse_entry(db: &mut TuningDatabase, bytes: &[u8], pos: usize) -> Result<usize, EntryDamage> {
    let rest = &bytes[pos..];
    let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
        return Err(EntryDamage::Unframed(
            "entry header truncated at end of file".to_string(),
        ));
    };
    let header = &rest[..nl];
    let fields: Vec<&[u8]> = header.split(|&b| b == b' ').collect();
    let (payload_len, want_sum) = match fields.as_slice() {
        [b"entry", len, sum] => {
            let len = std::str::from_utf8(len)
                .ok()
                .and_then(|s| s.parse::<usize>().ok());
            let sum = std::str::from_utf8(sum)
                .ok()
                .and_then(|s| u64::from_str_radix(s, 16).ok());
            match (len, sum) {
                (Some(l), Some(s)) => (l, s),
                _ => {
                    return Err(EntryDamage::Unframed(
                        "malformed entry header fields".to_string(),
                    ))
                }
            }
        }
        _ => {
            return Err(EntryDamage::Unframed(
                "expected `entry <len> <checksum>` header".to_string(),
            ))
        }
    };
    let payload_start = nl + 1;
    let Some(end) = payload_start.checked_add(payload_len) else {
        return Err(EntryDamage::Unframed("entry length overflows".to_string()));
    };
    if end > rest.len() {
        return Err(EntryDamage::Unframed(format!(
            "{payload_len}-byte entry payload runs past end of file"
        )));
    }
    let payload = &rest[payload_start..end];
    let got_sum = fnv1a(payload);
    if got_sum != want_sum {
        return Err(EntryDamage::Framed(
            pos + end,
            format!("entry checksum mismatch (want {want_sum:016x}, got {got_sum:016x})"),
        ));
    }
    // The checksum matched, so these are the encoder's exact bytes:
    // any failure past this point is an encoder bug, reported as
    // mid-file corruption regardless of position.
    let text = std::str::from_utf8(payload).map_err(|_| {
        EntryDamage::Framed(pos + end, "entry payload is not valid UTF-8".to_string())
    })?;
    let mut cursor = Cursor { text, pos: 0 };
    let (machine, strategy, key, record) = decode_record(&mut cursor)
        .map_err(|e| EntryDamage::Framed(pos + end, format!("entry payload: {e}")))?;
    if !cursor.at_end() {
        return Err(EntryDamage::Framed(
            pos + end,
            "trailing bytes inside entry payload".to_string(),
        ));
    }
    db.insert(&machine, strategy, key, record);
    Ok(pos + end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::workload_key;
    use crate::fault_io::{DiskIo, FaultIo, FaultSpec};
    use tir::DataType;

    fn tmpdb(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tir-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("tuning.db")
    }

    fn record(n: usize) -> (String, TuningRecord) {
        let func = tir::builder::matmul_func("mm", 16 << (n % 3), 16, 16, DataType::float32());
        let key = format!("{}#{n}", workload_key(&func));
        (
            key,
            TuningRecord {
                best: func,
                best_time: 1e-5 * (n as f64 + 1.0),
                trials: n,
                budget: n + 4,
                tuning_cost_s: 0.25 * n as f64,
            },
        )
    }

    fn publish_n(store: &mut JournaledDb, n: usize) {
        for i in 0..n {
            let (key, rec) = record(i);
            store
                .publish("SimGPU", Strategy::TensorIr, key, rec)
                .unwrap();
        }
    }

    #[test]
    fn publish_then_reopen_replays_bit_identically() {
        let path = tmpdb("roundtrip");
        let (mut store, rep) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        assert_eq!(rep, RecoveryReport::default());
        publish_n(&mut store, 5);
        let want = store.db().encode();
        assert!(store.journal_bytes() > 0, "publishes journal, not snapshot");
        assert!(!path.exists(), "no compaction ran: no snapshot yet");
        drop(store); // no clean shutdown — the journal alone must carry it
        let (reopened, rep) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        assert_eq!(rep.journal_replayed, 5);
        assert_eq!(rep.salvaged_bytes, 0);
        assert_eq!(reopened.db().encode(), want);
    }

    #[test]
    fn compaction_folds_journal_into_snapshot() {
        let path = tmpdb("compact");
        let (mut store, _) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        publish_n(&mut store, 4);
        let want = store.db().encode();
        store.compact().unwrap();
        assert_eq!(store.journal_bytes(), 0);
        assert_eq!(store.compactions(), 1);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), want);
        // Journal resets; the next publish starts a fresh one.
        let (key, rec) = record(9);
        store
            .publish("SimGPU", Strategy::TensorIr, key, rec)
            .unwrap();
        assert!(store.journal_bytes() > 0);
        let want = store.db().encode();
        drop(store);
        let (reopened, rep) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        assert_eq!(rep.snapshot_records, 4);
        assert_eq!(rep.journal_replayed, 1);
        assert_eq!(reopened.db().encode(), want);
    }

    #[test]
    fn threshold_compaction_fires_inline() {
        let path = tmpdb("threshold");
        let (mut store, _) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        store.compact_threshold = 1; // every publish beyond the first folds
        publish_n(&mut store, 3);
        assert!(store.compactions() >= 2);
        assert!(path.exists());
    }

    #[test]
    fn torn_tail_is_salvaged_not_fatal() {
        let path = tmpdb("torn-tail");
        let (mut store, _) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        publish_n(&mut store, 3);
        let jpath = store.journal_path().to_path_buf();
        let intact = store.journal_bytes();
        let (key, rec) = record(7);
        store
            .publish("SimGPU", Strategy::TensorIr, key, rec)
            .unwrap();
        drop(store);
        // Tear the final entry at every possible cut length.
        let full = std::fs::read(&jpath).unwrap();
        for cut in intact + 1..full.len() {
            std::fs::write(&jpath, &full[..cut]).unwrap();
            let (reopened, rep) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
            assert_eq!(rep.journal_replayed, 3, "cut at {cut}");
            assert_eq!(rep.salvaged_bytes, cut - intact, "cut at {cut}");
            assert_eq!(reopened.db().len(), 3);
            // Salvage truncated the tail: a second open is clean.
            drop(reopened);
            let (_, rep2) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
            assert_eq!(rep2.salvaged_bytes, 0, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_in_final_entry_is_salvaged() {
        let path = tmpdb("flip-tail");
        let (mut store, _) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        publish_n(&mut store, 2);
        let jpath = store.journal_path().to_path_buf();
        let boundary = {
            // Reconstruct where entry 2 starts: publish once more and
            // note the growth.
            store.journal_bytes()
        };
        let (key, rec) = record(5);
        store
            .publish("SimGPU", Strategy::TensorIr, key, rec)
            .unwrap();
        drop(store);
        let mut bytes = std::fs::read(&jpath).unwrap();
        // Flip a bit inside the final entry's payload.
        let at = boundary + (bytes.len() - boundary) / 2;
        bytes[at] ^= 0x10;
        std::fs::write(&jpath, &bytes).unwrap();
        let (reopened, rep) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        assert_eq!(rep.journal_replayed, 2);
        assert!(
            rep.salvaged(),
            "checksum failure on the last entry salvages"
        );
        assert_eq!(reopened.db().len(), 2);
    }

    #[test]
    fn mid_file_damage_stays_a_typed_corrupt_with_offset() {
        let path = tmpdb("mid-file");
        let (mut store, _) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        let first_end = {
            let (key, rec) = record(0);
            store
                .publish("SimGPU", Strategy::TensorIr, key, rec)
                .unwrap();
            store.journal_bytes()
        };
        publish_n(&mut store, 3);
        let jpath = store.journal_path().to_path_buf();
        drop(store);
        let mut bytes = std::fs::read(&jpath).unwrap();
        let header_len = JOURNAL_HEADER.len() + 1;
        // Flip a bit inside the FIRST entry: later entries are intact,
        // so salvage would silently lose them — must be Corrupt.
        bytes[header_len + (first_end - header_len) / 2] ^= 0x04;
        std::fs::write(&jpath, &bytes).unwrap();
        match JournaledDb::open(Box::new(DiskIo::new()), &path) {
            Err(DbError::Corrupt { offset, reason }) => {
                assert_eq!(offset, header_len, "offset points at the damaged entry");
                assert!(
                    reason.contains("journal"),
                    "reason names the journal: {reason}"
                );
            }
            Ok(_) => panic!("mid-file damage must not salvage"),
            Err(e) => panic!("wrong error: {e}"),
        }
    }

    #[test]
    fn journal_torn_inside_its_header_salvages_to_empty() {
        let path = tmpdb("torn-header");
        let jpath = journal_path_for(&path);
        std::fs::write(&jpath, &JOURNAL_HEADER.as_bytes()[..7]).unwrap();
        let (store, rep) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        assert_eq!(store.db().len(), 0);
        assert_eq!(rep.salvaged_bytes, 7);
    }

    #[test]
    fn alien_journal_file_is_corrupt() {
        let path = tmpdb("alien");
        let jpath = journal_path_for(&path);
        std::fs::write(&jpath, "not a journal at all\n").unwrap();
        assert!(matches!(
            JournaledDb::open(Box::new(DiskIo::new()), &path),
            Err(DbError::Corrupt { offset: 0, .. })
        ));
    }

    #[test]
    fn crash_at_every_publish_crash_point_loses_nothing_acknowledged() {
        for point in PUBLISH_CRASH_POINTS {
            for occurrence in 0..3usize {
                let path = tmpdb(&format!("pub-{}-{occurrence}", point.replace('.', "-")));
                let spec = FaultSpec::crash_at(point, occurrence, 0xC4A5);
                let (mut store, _) =
                    JournaledDb::open(Box::new(FaultIo::new(spec)), &path).unwrap();
                let mut acked: Vec<String> = Vec::new();
                let mut crashed = false;
                for i in 0..4 {
                    let (key, rec) = record(i);
                    match store.publish("SimGPU", Strategy::TensorIr, key.clone(), rec) {
                        Ok(_) => acked.push(key),
                        Err(_) => {
                            crashed = true;
                            break;
                        }
                    }
                }
                assert!(crashed, "{point}#{occurrence}: the crash must fire");
                drop(store);
                let (reopened, rep) = JournaledDb::open(Box::new(DiskIo::new()), &path)
                    .unwrap_or_else(|e| panic!("{point}#{occurrence}: recovery failed: {e}"));
                for key in &acked {
                    assert!(
                        reopened
                            .db()
                            .peek("SimGPU", Strategy::TensorIr, key)
                            .is_some(),
                        "{point}#{occurrence}: acknowledged record lost"
                    );
                }
                // Recovery already truncated any torn tail: reopening is
                // clean and replays the same state.
                let want = reopened.db().encode();
                drop(reopened);
                let (again, rep2) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
                assert_eq!(rep2.salvaged_bytes, 0, "{point}#{occurrence}");
                assert_eq!(again.db().encode(), want, "{point}#{occurrence}");
                let _ = rep;
            }
        }
    }

    #[test]
    fn crash_inside_every_append_salvages_the_acknowledged_prefix() {
        // Crash inside each of the first four appends, over several
        // damage seeds: whatever fragment (short write, bit flip) the
        // crash leaves, recovery must keep exactly the acknowledged
        // records. Appends land on even op indices — each publish is
        // one append (even) then one fsync (odd) on FaultIo's op clock.
        for op in [0u64, 2, 4, 6] {
            for seed in [1u64, 2, 3, 4, 5] {
                let path = tmpdb(&format!("append-{op}-{seed}"));
                let spec = FaultSpec {
                    seed,
                    crash_in_append: Some(op),
                    ..Default::default()
                };
                let (mut store, _) =
                    JournaledDb::open(Box::new(FaultIo::new(spec)), &path).unwrap();
                let mut acked: Vec<String> = Vec::new();
                for i in 0..6 {
                    let (key, rec) = record(i);
                    match store.publish("SimGPU", Strategy::TensorIr, key.clone(), rec) {
                        Ok(_) => acked.push(key),
                        Err(_) => break,
                    }
                }
                assert!(acked.len() < 6, "append {op} seed {seed}: crash must fire");
                drop(store);
                let (reopened, _) = JournaledDb::open(Box::new(DiskIo::new()), &path)
                    .unwrap_or_else(|e| panic!("append {op} seed {seed}: recovery failed: {e}"));
                assert_eq!(
                    reopened.db().len(),
                    acked.len(),
                    "append {op} seed {seed}: exactly the acknowledged records survive"
                );
            }
        }
    }

    #[test]
    fn crash_at_every_compaction_crash_point_loses_nothing() {
        for point in COMPACT_CRASH_POINTS {
            let path = tmpdb(&format!("compact-{}", point.replace('.', "-")));
            let spec = FaultSpec::crash_at(point, 0, 0xF01D);
            let (mut store, _) = JournaledDb::open(Box::new(FaultIo::new(spec)), &path).unwrap();
            publish_n(&mut store, 4);
            let want = store.db().encode();
            let err = store.compact().expect_err("crash must fire");
            assert!(matches!(err, DbError::Io(_)));
            drop(store);
            let (reopened, _) = JournaledDb::open(Box::new(DiskIo::new()), &path)
                .unwrap_or_else(|e| panic!("{point}: recovery failed: {e}"));
            assert_eq!(
                reopened.db().encode(),
                want,
                "{point}: records must survive"
            );
        }
    }

    #[test]
    fn transient_append_failure_degrades_then_compaction_recovers() {
        let path = tmpdb("degraded");
        let spec = FaultSpec {
            fail_first_ops: 2, // first append AND its repair-truncate fail
            ..Default::default()
        };
        let (mut store, _) = JournaledDb::open(Box::new(FaultIo::new(spec)), &path).unwrap();
        let (key, rec) = record(0);
        let err = store
            .publish("SimGPU", Strategy::TensorIr, key.clone(), rec)
            .expect_err("injected failure");
        assert!(matches!(err, DbError::Io(_)));
        assert_eq!(store.unjournaled(), 1, "record is memory-only: degraded");
        assert!(store
            .db()
            .peek("SimGPU", Strategy::TensorIr, &key)
            .is_some());
        // The next successful publish forces a compaction, which folds
        // the degraded record into the snapshot and clears the state.
        let (key2, rec2) = record(1);
        let outcome = store
            .publish("SimGPU", Strategy::TensorIr, key2, rec2)
            .unwrap();
        assert!(outcome.compacted, "degraded state forces a compaction");
        assert_eq!(store.unjournaled(), 0);
        let want = store.db().encode();
        drop(store);
        let (reopened, _) = JournaledDb::open(Box::new(DiskIo::new()), &path).unwrap();
        assert_eq!(reopened.db().encode(), want, "both records durable");
    }
}
