//! # tir-autoschedule — the tensorization-aware auto-scheduler
//!
//! Implements §4.3–4.4 of the paper:
//!
//! * [`sketch`] / [`sketch_gpu`] / [`sketch_cpu`] — sketch generation rules
//!   that fix program structure (auto-tensorization, multi-level tiling,
//!   thread binding, AutoCopy data-movement blocks) while leaving decisions
//!   (tile sizes, widths) to the search;
//! * [`search`] — evolutionary search with validation filtering, a
//!   deterministic parallel candidate-evaluation pipeline, and a
//!   structural-hash measurement cache;
//! * [`parallel`] — the fork-join primitive backing that pipeline;
//! * [`measure`] — the fallible measurement abstraction: the [`Measurer`]
//!   backend trait, deterministic fault injection, and the
//!   retry/backoff/outlier-rejection harness;
//! * [`checkpoint`] — generation-granularity checkpoint/resume of tuning
//!   runs, bit-identical to uninterrupted runs;
//! * [`journal`] / [`fault_io`] — the crash-consistent write-ahead journal
//!   behind the tuning database, and the fault-injectable I/O layer that
//!   lets a deterministic chaos harness prove its recovery guarantees;
//! * [`cost_model`] — a from-scratch gradient-boosted-tree cost model
//!   trained online from simulator measurements;
//! * [`feature`] — program feature extraction;
//! * [`baseline`] — the comparison strategies: Ansor-like scalar search
//!   ("TVM"), AMOS-like tensorization without first-class data movement,
//!   and roofline oracles for vendor libraries.

#![warn(missing_docs)]

pub mod baseline;
pub mod checkpoint;
pub mod cost_model;
pub mod database;
pub mod fault_io;
pub mod feature;
pub mod journal;
pub mod measure;
pub mod parallel;
pub mod search;
pub mod sketch;
pub mod sketch_cpu;
pub mod sketch_gpu;

pub use baseline::{build_sketches, oracle_time, tune_workload, tune_workload_with, Strategy};
pub use checkpoint::{atomic_write, TuneCheckpoint};
pub use cost_model::CostModel;
pub use database::{workload_key, DbError, TuningDatabase, TuningRecord};
pub use fault_io::{DiskIo, FaultIo, FaultSpec, IoProfile, JournalIo};
pub use journal::{journal_path_for, JournaledDb, PublishOutcome, RecoveryReport};
pub use measure::{
    measure_with_retries, measure_with_retries_traced, FaultInjector, FaultPlan, MeasureCtx,
    MeasureError, MeasureOutcome, MeasureTrace, Measurer, RetryPolicy, SimMeasurer,
    VerifyingMeasurer,
};
pub use parallel::{effective_threads, parallel_map, try_parallel_map};
pub use search::{
    tune, tune_multi, tune_multi_with, tune_with, TuneOptions, TuneResult, WarmStart,
};
pub use sketch::{Decision, DecisionKind, SketchRule};
