//! Fault-injectable storage I/O for the journaled tuning database.
//!
//! The write-ahead journal in [`crate::journal`] must stay consistent
//! across crashes — a property that cannot be tested by waiting for real
//! power failures. This module abstracts the handful of storage
//! operations the journal performs behind the [`JournalIo`] trait, with
//! two implementations:
//!
//! * [`DiskIo`] — the production implementation: plain `std::fs`
//!   appends, `fsync`, atomic replace (write-temp + fsync + rename), and
//!   no-op crash points.
//! * [`FaultIo`] — a deterministic chaos implementation mirroring the
//!   measurement harness's `FaultInjector` (PR 3): every fault draw is a
//!   **pure function of `(seed, op index)`**, so a failing chaos run
//!   replays bit-identically from its seed. It injects short writes,
//!   torn records (a bit flip in the surviving tail), lost fsyncs
//!   (appended-but-unsynced bytes vanish at the crash), transient I/O
//!   errors, and **named crash points** — designated instants in the
//!   publish/compaction path at which a simulated crash can be
//!   scheduled.
//!
//! # The crash model
//!
//! [`FaultIo`] models the kernel page cache explicitly: every tracked
//! file has *content* (what reads observe) and a *durable length* (what
//! survives a crash). `append` grows content; `fsync` advances the
//! durable length to the end; a simulated crash rewrites the real file
//! on disk to exactly the durable prefix — plus, when the crash happened
//! *inside* an append, a seeded partial fragment of that append
//! (optionally bit-flipped). After the crash every operation fails with
//! [`FaultIo::is_crash_error`]-recognizable errors, so the "process" can
//! do no further I/O, and a freshly started daemon reading the same
//! paths through [`DiskIo`] sees precisely what a real post-crash boot
//! would see.
//!
//! Atomic replace is modeled as atomic *and* durable (its contract is
//! write-temp + fsync + rename); directory-entry loss is deliberately
//! out of scope. Truncation is likewise modeled as immediately durable —
//! the journal's recovery replay is idempotent, so compaction
//! correctness never depends on truncate ordering.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use tir_rand::rngs::StdRng;
use tir_rand::{derive_seed, RngExt, SeedableRng};

/// The storage operations the journaled database performs, in the order
/// durability reasoning cares about. Every mutating call advances the
/// implementation's *op index*, the coordinate fault draws are keyed on.
pub trait JournalIo: Send {
    /// Reads the full contents of `path`; `Ok(None)` when it does not
    /// exist.
    fn read(&mut self, path: &Path) -> io::Result<Option<Vec<u8>>>;

    /// Appends `bytes` to `path`, creating the file if missing. The
    /// bytes are *not* durable until [`JournalIo::fsync`] succeeds.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Durably flushes all previous appends to `path`.
    fn fsync(&mut self, path: &Path) -> io::Result<()>;

    /// Atomically replaces `path` with `bytes` (write-temp + fsync +
    /// rename): afterwards the file holds either its old contents or
    /// exactly `bytes`, never a mix.
    fn replace(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Truncates `path` to its first `len` bytes (tail salvage and
    /// journal reset after compaction).
    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()>;

    /// A named crash point. [`DiskIo`] ignores it; [`FaultIo`] crashes
    /// here when its spec schedules this `(name, occurrence)`.
    fn crash_point(&mut self, name: &str) -> io::Result<()>;
}

/// The production storage backend: plain filesystem operations, no-op
/// crash points.
#[derive(Debug, Default)]
pub struct DiskIo;

impl DiskIo {
    /// A fresh disk backend.
    pub fn new() -> DiskIo {
        DiskIo
    }
}

impl JournalIo for DiskIo {
    fn read(&mut self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn fsync(&mut self, path: &Path) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .append(true)
            .open(path)?
            .sync_all()
    }

    fn replace(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut ext = path
            .extension()
            .map(|e| e.to_os_string())
            .unwrap_or_default();
        ext.push(".tmp");
        let tmp = path.with_extension(ext);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn crash_point(&mut self, _name: &str) -> io::Result<()> {
        Ok(())
    }
}

/// What [`FaultIo`] should break, and when. All draws are pure functions
/// of `(seed, op index)` — mirroring `FaultPlan` in [`crate::measure`] —
/// so any chaos outcome replays bit-identically from its spec.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault stream.
    pub seed: u64,
    /// Crash at the `n`-th hit (0-based) of the named crash point.
    pub crash_at_point: Option<(String, usize)>,
    /// Crash *inside* the append with this op index: a seeded prefix of
    /// the appended bytes survives (short write), optionally with one
    /// bit flipped (torn record).
    pub crash_in_append: Option<u64>,
    /// Probability that a mutating op fails with a transient I/O error
    /// (no crash; the file is untouched). Drawn per op index.
    pub fail_rate: f64,
    /// Mutating ops with index below this always fail transiently —
    /// a deterministic "storage down, then back" episode.
    pub fail_first_ops: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0x10_FA_17,
            crash_at_point: None,
            crash_in_append: None,
            fail_rate: 0.0,
            fail_first_ops: 0,
        }
    }
}

impl FaultSpec {
    /// A spec that crashes at occurrence `occurrence` of crash point
    /// `name`, with damage draws seeded by `seed`.
    pub fn crash_at(name: &str, occurrence: usize, seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            crash_at_point: Some((name.to_string(), occurrence)),
            ..Default::default()
        }
    }
}

/// Which concrete backend a daemon should build — [`ServeConfig`] and
/// tests pick declaratively so configurations stay `Clone`.
///
/// [`ServeConfig`]: https://docs.rs/tir-serve
#[derive(Clone, Debug, Default, PartialEq)]
pub enum IoProfile {
    /// Production: [`DiskIo`].
    #[default]
    Disk,
    /// Chaos: [`FaultIo`] with the given spec.
    Fault(FaultSpec),
}

impl IoProfile {
    /// Builds the backend this profile describes.
    pub fn build(&self) -> Box<dyn JournalIo> {
        match self {
            IoProfile::Disk => Box::new(DiskIo::new()),
            IoProfile::Fault(spec) => Box::new(FaultIo::new(spec.clone())),
        }
    }
}

/// Shadow state of one file: `content` is what reads observe (the page
/// cache view); only the first `durable_len` bytes survive a crash.
#[derive(Debug, Default, Clone)]
struct FileState {
    content: Vec<u8>,
    durable_len: usize,
}

/// Deterministic fault-injecting storage. See the module docs for the
/// crash model; see [`FaultSpec`] for the dials.
///
/// Writes pass through to the real filesystem (so a clean run leaves
/// the same files [`DiskIo`] would), but a simulated crash rewrites
/// each tracked file to its durable prefix — what a real machine would
/// find after power loss — and makes every later operation fail.
#[derive(Debug)]
pub struct FaultIo {
    spec: FaultSpec,
    op: u64,
    crashed: bool,
    point_hits: HashMap<String, usize>,
    files: HashMap<PathBuf, FileState>,
}

/// Marker prefix of every error a simulated crash produces.
const CRASH_MSG: &str = "simulated crash";

impl FaultIo {
    /// A fault backend driven by `spec`.
    pub fn new(spec: FaultSpec) -> FaultIo {
        FaultIo {
            spec,
            op: 0,
            crashed: false,
            point_hits: HashMap::new(),
            files: HashMap::new(),
        }
    }

    /// Whether the simulated crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Mutating ops performed so far (the op-index clock).
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Whether `e` is the error a simulated crash produces (as opposed
    /// to an injected *transient* failure, which is retryable).
    pub fn is_crash_error(e: &io::Error) -> bool {
        e.to_string().starts_with(CRASH_MSG)
    }

    fn crash_error() -> io::Error {
        io::Error::other(CRASH_MSG.to_string())
    }

    /// Pure per-op fault stream: `(seed, op)` and nothing else.
    fn rng_for(&self, op: u64) -> StdRng {
        StdRng::seed_from_u64(derive_seed(self.spec.seed, &[0x10, op]))
    }

    fn next_op(&mut self) -> u64 {
        let op = self.op;
        self.op += 1;
        op
    }

    /// Injected transient failure for this op index?
    fn transient_failure(&self, op: u64) -> bool {
        if op < self.spec.fail_first_ops {
            return true;
        }
        self.spec.fail_rate > 0.0 && self.rng_for(op).random_f64() < self.spec.fail_rate
    }

    /// Loads the shadow state of `path`, reading the real file on first
    /// touch (its current bytes are considered durable: they were there
    /// before this process "booted").
    fn state(&mut self, path: &Path) -> io::Result<&mut FileState> {
        if !self.files.contains_key(path) {
            let content = match std::fs::read(path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e),
            };
            let durable_len = content.len();
            self.files.insert(
                path.to_path_buf(),
                FileState {
                    content,
                    durable_len,
                },
            );
        }
        Ok(self.files.get_mut(path).expect("inserted above"))
    }

    /// Fires the simulated crash: every tracked file on the real
    /// filesystem is rewritten to its durable prefix (the appending file
    /// may carry `fragment` — the short-written, possibly bit-flipped
    /// tail of the in-flight append).
    fn crash(&mut self, appending: Option<(&Path, Vec<u8>)>) -> io::Error {
        self.crashed = true;
        for (path, st) in &self.files {
            let mut surviving = st.content[..st.durable_len].to_vec();
            if let Some((ap, fragment)) = &appending {
                if *ap == *path {
                    surviving.extend_from_slice(fragment);
                }
            }
            if surviving.is_empty() && !path.exists() {
                continue;
            }
            // Failing to materialize the crash state would invalidate
            // the harness, not the system under test.
            std::fs::write(path, &surviving).expect("chaos harness: materialize crash state");
        }
        Self::crash_error()
    }
}

impl JournalIo for FaultIo {
    fn read(&mut self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        if let Some(st) = self.files.get(path) {
            return Ok(Some(st.content.clone()));
        }
        match std::fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        let op = self.next_op();
        if self.transient_failure(op) {
            return Err(io::Error::other(format!(
                "injected transient append failure (op {op})"
            )));
        }
        if self.spec.crash_in_append == Some(op) {
            // Short write: a seeded prefix of the append survives, and
            // with probability 1/2 one bit of that prefix is flipped (a
            // torn record). Pure in (seed, op).
            let mut rng = self.rng_for(op);
            let surviving = rng.random_range(0..bytes.len() + 1);
            let mut fragment = bytes[..surviving].to_vec();
            if !fragment.is_empty() && rng.random_f64() < 0.5 {
                let at = rng.random_range(0..fragment.len());
                let bit = rng.random_range(0u64..8) as u8;
                fragment[at] ^= 1 << bit;
            }
            self.state(path)?; // track the file before materializing
            return Err(self.crash(Some((path, fragment))));
        }
        let st = self.state(path)?;
        st.content.extend_from_slice(bytes);
        let content = st.content.clone();
        std::fs::write(path, content)?;
        Ok(())
    }

    fn fsync(&mut self, path: &Path) -> io::Result<()> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        let op = self.next_op();
        if self.transient_failure(op) {
            return Err(io::Error::other(format!(
                "injected transient fsync failure (op {op})"
            )));
        }
        let st = self.state(path)?;
        st.durable_len = st.content.len();
        Ok(())
    }

    fn replace(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        let op = self.next_op();
        if self.transient_failure(op) {
            return Err(io::Error::other(format!(
                "injected transient replace failure (op {op})"
            )));
        }
        let st = self.state(path)?;
        st.content = bytes.to_vec();
        st.durable_len = bytes.len();
        std::fs::write(path, bytes)?;
        Ok(())
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        let op = self.next_op();
        if self.transient_failure(op) {
            return Err(io::Error::other(format!(
                "injected transient truncate failure (op {op})"
            )));
        }
        let st = self.state(path)?;
        st.content.truncate(len as usize);
        st.durable_len = st.durable_len.min(len as usize);
        let content = st.content.clone();
        std::fs::write(path, content)?;
        Ok(())
    }

    fn crash_point(&mut self, name: &str) -> io::Result<()> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        let hits = self.point_hits.entry(name.to_string()).or_insert(0);
        let hit = *hits;
        *hits += 1;
        if let Some((want, occurrence)) = &self.spec.crash_at_point {
            if want == name && *occurrence == hit {
                return Err(self.crash(None));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tir-fault-io-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("f")
    }

    #[test]
    fn disk_io_append_fsync_read_roundtrip() {
        let path = tmpfile("disk");
        let _ = std::fs::remove_file(&path);
        let mut io = DiskIo::new();
        assert!(io.read(&path).unwrap().is_none());
        io.append(&path, b"hello ").unwrap();
        io.append(&path, b"world").unwrap();
        io.fsync(&path).unwrap();
        assert_eq!(io.read(&path).unwrap().unwrap(), b"hello world");
        io.truncate(&path, 5).unwrap();
        assert_eq!(io.read(&path).unwrap().unwrap(), b"hello");
        io.replace(&path, b"bye").unwrap();
        assert_eq!(io.read(&path).unwrap().unwrap(), b"bye");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unsynced_appends_are_lost_at_crash() {
        let path = tmpfile("lost-fsync");
        let _ = std::fs::remove_file(&path);
        let mut io = FaultIo::new(FaultSpec::crash_at("p", 0, 7));
        io.append(&path, b"durable|").unwrap();
        io.fsync(&path).unwrap();
        io.append(&path, b"volatile").unwrap(); // never fsynced
        assert_eq!(io.read(&path).unwrap().unwrap(), b"durable|volatile");
        let err = io.crash_point("p").unwrap_err();
        assert!(FaultIo::is_crash_error(&err));
        assert!(io.crashed());
        // The real file holds exactly the durable prefix.
        assert_eq!(std::fs::read(&path).unwrap(), b"durable|");
        // The "process" can do no further I/O.
        assert!(io.append(&path, b"x").is_err());
        assert!(io.read(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_in_append_leaves_a_seeded_fragment_deterministically() {
        for seed in 0..16u64 {
            let path = tmpfile("short-write");
            let _ = std::fs::remove_file(&path);
            let run = |path: &Path| {
                let mut io = FaultIo::new(FaultSpec {
                    seed,
                    crash_in_append: Some(2),
                    ..Default::default()
                });
                io.append(path, b"AAAA").unwrap();
                io.fsync(path).unwrap();
                let err = io.append(path, b"BBBBBBBB").unwrap_err();
                assert!(FaultIo::is_crash_error(&err));
                std::fs::read(path).unwrap()
            };
            let first = run(&path);
            let _ = std::fs::remove_file(&path);
            let second = run(&path);
            assert_eq!(first, second, "seed {seed}: crash damage must replay");
            assert!(first.starts_with(b"AAAA"), "durable prefix survives");
            assert!(first.len() <= b"AAAA".len() + b"BBBBBBBB".len());
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn crash_points_fire_on_the_scheduled_occurrence_only() {
        let path = tmpfile("points");
        let _ = std::fs::remove_file(&path);
        let mut io = FaultIo::new(FaultSpec::crash_at("publish.post_fsync", 2, 1));
        io.crash_point("publish.post_fsync").unwrap(); // hit 0
        io.crash_point("other.point").unwrap();
        io.crash_point("publish.post_fsync").unwrap(); // hit 1
        let err = io.crash_point("publish.post_fsync").unwrap_err(); // hit 2
        assert!(FaultIo::is_crash_error(&err));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transient_failures_do_not_crash_and_are_retryable() {
        let path = tmpfile("transient");
        let _ = std::fs::remove_file(&path);
        let mut io = FaultIo::new(FaultSpec {
            fail_first_ops: 2,
            ..Default::default()
        });
        let e1 = io.append(&path, b"x").unwrap_err();
        assert!(!FaultIo::is_crash_error(&e1));
        assert!(!io.crashed());
        let e2 = io.append(&path, b"x").unwrap_err();
        assert!(!FaultIo::is_crash_error(&e2));
        // Third attempt (op 2) succeeds; nothing was written by the
        // failed ones.
        io.append(&path, b"x").unwrap();
        io.fsync(&path).unwrap();
        assert_eq!(io.read(&path).unwrap().unwrap(), b"x");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fail_rate_draws_are_pure_in_seed_and_op() {
        let a = FaultIo::new(FaultSpec {
            seed: 9,
            fail_rate: 0.5,
            ..Default::default()
        });
        let b = FaultIo::new(FaultSpec {
            seed: 9,
            fail_rate: 0.5,
            ..Default::default()
        });
        for op in 0..64 {
            assert_eq!(a.transient_failure(op), b.transient_failure(op));
        }
    }
}
