//! CPU (ARM) sketch generation rules.
//!
//! * [`CpuTensorSketch`] — auto-tensorize with `sdot`, parallelize the
//!   outer tile loop across cores, and schedule the data-movement blocks.
//! * [`CpuScalarSketch`] — the TVM-without-sdot baseline: parallel outer
//!   spatial loop plus SIMD vectorization of an inner spatial loop.

use tir::{MemScope, PrimFunc};
use tir_schedule::{BlockRef, LoopRef, Schedule, ScheduleError};
use tir_tensorize::{auto_tensorize, TensorIntrin};

use crate::sketch::{Decision, DecisionKind, SketchRule};

/// Parallelizes a standalone block's outermost loop and vectorizes its
/// innermost loop when the extent allows.
pub(crate) fn cpu_flat_schedule(
    sch: &mut Schedule,
    block: &BlockRef,
    vector_width: i64,
) -> Result<(), ScheduleError> {
    let loops = sch.get_loops(block)?;
    if loops.is_empty() {
        return Ok(());
    }
    sch.parallel(&loops[0])?;
    if let [_, .., last] = loops.as_slice() {
        let extent = sch.loop_extent(last)?;
        if extent % vector_width == 0 && extent > vector_width {
            let parts = sch.split(last, &[-1, vector_width])?;
            sch.vectorize(&parts[1])?;
        } else if extent <= vector_width {
            sch.vectorize(last)?;
        }
    }
    Ok(())
}

/// The tensorized CPU sketch (`sdot` on ARM).
pub struct CpuTensorSketch {
    name: String,
    base: Schedule,
    outer_block: BlockRef,
    inner_name: String,
    dm_blocks: Vec<String>,
    input_staging: Vec<String>,
    other_blocks: Vec<String>,
    has_batch: bool,
    x_tiles: i64,
}

impl CpuTensorSketch {
    /// Builds the sketch by auto-tensorizing `block_name` with `intrin`.
    ///
    /// # Errors
    ///
    /// Fails when auto-tensorization fails.
    pub fn new(
        func: &PrimFunc,
        block_name: &str,
        intrin: &TensorIntrin,
    ) -> Result<Self, ScheduleError> {
        let t = auto_tensorize(func, block_name, intrin)?;
        let loops = t.schedule.get_loops(&t.outer_block)?;
        let has_batch = loops.len() == intrin.iters.len() + 1;
        let skip = usize::from(has_batch);
        let x_tiles = t.schedule.loop_extent(&loops[skip])?;
        let mut known: Vec<String> = t.data_movement_blocks.clone();
        known.push(t.outer_block.name().to_string());
        known.push(t.inner_block.name().to_string());
        known.push("root".to_string());
        let other_blocks: Vec<String> = tir::visit::block_names(&t.schedule.func().body)
            .into_iter()
            .filter(|n| !known.contains(n))
            .collect();
        Ok(CpuTensorSketch {
            name: format!("cpu-tensor[{}]", intrin.name),
            base: t.schedule,
            outer_block: t.outer_block,
            inner_name: t.inner_block.name().to_string(),
            dm_blocks: t.data_movement_blocks,
            input_staging: t.input_staging,
            other_blocks,
            has_batch,
            x_tiles,
        })
    }
}

impl SketchRule for CpuTensorSketch {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> Vec<DecisionKind> {
        vec![
            DecisionKind::PerfectTile {
                extent: self.x_tiles,
                parts: 2,
            },
            DecisionKind::Choice {
                options: vec![4, 8, 16],
            },
        ]
    }

    fn apply(&self, decisions: &[Decision]) -> Result<PrimFunc, ScheduleError> {
        let mut sch = self.base.clone();
        let loops = sch.get_loops(&self.outer_block)?;
        let skip = usize::from(self.has_batch);
        let xs = sch.split(&loops[skip], &decisions[0])?;
        let y_loop = loops[skip + 1].clone();
        // Parallelize [b?, x0] across cores.
        let mut outer: Vec<LoopRef> = loops[..skip].to_vec();
        outer.push(xs[0].clone());
        let par = if outer.len() > 1 {
            sch.fuse(&outer)?
        } else {
            outer[0].clone()
        };
        sch.parallel(&par)?;
        // BLIS-style structure: accumulate the output tile in registers
        // across the k loop, and pack both operand panels so the compute
        // touches DRAM only for compulsory traffic.
        let inner = sch.get_block(self.inner_name.as_str())?;
        let wb = sch.cache_write(&inner, MemScope::Local, Some(&y_loop))?;
        sch.annotate_block(&wb, "auto_copy", tir::AnnValue::Int(1))?;
        let a_name = self.input_staging.first().cloned().unwrap_or_default();
        let b_name = self.input_staging.get(1).cloned().unwrap_or_default();
        let a_t = sch.find_buffer(&a_name).ok_or_else(|| {
            ScheduleError::Precondition(format!("{a_name} staging buffer missing"))
        })?;
        let b_t = sch.find_buffer(&b_name).ok_or_else(|| {
            ScheduleError::Precondition(format!("{b_name} staging buffer missing"))
        })?;
        let a_pack = sch.cache_read(&inner, &a_t, MemScope::Local, Some(&xs[1]))?;
        sch.annotate_block(&a_pack, "auto_copy", tir::AnnValue::Int(1))?;
        let b_pack = sch.cache_read(&inner, &b_t, MemScope::Local, None)?;
        sch.annotate_block(&b_pack, "auto_copy", tir::AnnValue::Int(1))?;
        // Inline the ReIndex stages into the packing copies (§4.2: they are
        // inlined into consumers and do not affect performance).
        for name in &self.dm_blocks {
            if name.ends_with("_reindex") {
                let block = sch.get_block(name)?;
                sch.compute_inline(&block)?;
            }
        }
        // Schedule the remaining data-movement blocks.
        let vw = decisions[1][0];
        for name in self
            .dm_blocks
            .iter()
            .filter(|n| !n.ends_with("_reindex"))
            .cloned()
            .collect::<Vec<_>>()
        {
            let block = sch.get_block(&name)?;
            cpu_flat_schedule(&mut sch, &block, vw)?;
        }
        cpu_flat_schedule(&mut sch, &b_pack, vw)?;
        // Schedule any remaining leaf blocks (padding stages, epilogues).
        for name in &self.other_blocks {
            if let Ok(block) = sch.get_block(name) {
                let _ = cpu_flat_schedule(&mut sch, &block, vw);
            }
        }
        tir_analysis::validate(sch.func())
            .map_err(|e| ScheduleError::Invalid(format!("{}", e[0])))?;
        Ok(sch.into_func())
    }
}

/// The scalar CPU sketch (TVM-like, no `sdot`).
pub struct CpuScalarSketch {
    name: String,
    base: Schedule,
    /// Leaf blocks: (name, spatial loop count, reduce loop count).
    blocks: Vec<(String, usize, usize)>,
}

impl CpuScalarSketch {
    /// Builds the sketch for every leaf block of `func`.
    pub fn new(func: &PrimFunc) -> Self {
        let mut blocks = Vec::new();
        tir::visit::for_each_block_realize(&func.body, &mut |br| {
            if br.block.name == "root" {
                return;
            }
            let spatial = br
                .block
                .iter_vars
                .iter()
                .filter(|iv| iv.kind == tir::IterKind::Spatial)
                .count();
            let reduce = br.block.iter_vars.len() - spatial;
            blocks.push((br.block.name.clone(), spatial, reduce));
        });
        CpuScalarSketch {
            name: "cpu-scalar".to_string(),
            base: Schedule::new(func.clone()),
            blocks,
        }
    }
}

impl SketchRule for CpuScalarSketch {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> Vec<DecisionKind> {
        self.blocks
            .iter()
            .map(|_| DecisionKind::Choice {
                options: vec![4, 8, 16],
            })
            .collect()
    }

    fn apply(&self, decisions: &[Decision]) -> Result<PrimFunc, ScheduleError> {
        let mut sch = self.base.clone();
        for ((name, n_spatial, n_reduce), d) in self.blocks.iter().zip(decisions) {
            let block = sch.get_block(name)?;
            let loops = sch.get_loops(&block)?;
            if loops.is_empty() {
                continue;
            }
            // Parallelize the fused spatial prefix (all spatial loops except
            // the one reserved for vectorization) across cores.
            let prefix_len = if *n_spatial >= 2 {
                n_spatial - 1
            } else {
                1.min(loops.len())
            };
            let par = if prefix_len > 1 {
                sch.fuse(&loops[..prefix_len])?
            } else {
                loops[0].clone()
            };
            sch.parallel(&par)?;
            // Register accumulator + weight hoisting (what Ansor-style
            // scalar schedules do): the second operand (weights) is staged
            // once; the first operand is streamed from DRAM — no explicit
            // packing, which is the baseline's key inefficiency vs the
            // tensorized pipeline.
            if *n_reduce >= 1 {
                let weight = {
                    let br = tir::visit::find_block(&sch.func().body, name)
                        .ok_or_else(|| ScheduleError::BlockNotFound(name.clone()))?;
                    br.block.reads.get(1).map(|r| r.buffer.clone())
                };
                let _ = sch.cache_write(&block, MemScope::Local, Some(&par));
                if let Some(w) = weight {
                    let _ = sch.cache_read(&block, &w, MemScope::Local, None);
                }
            }
            // Move the last spatial loop innermost (past the reductions)
            // and vectorize it.
            if *n_spatial >= 2 && *n_reduce >= 1 && loops.len() >= n_spatial + n_reduce {
                let last_spatial = loops[n_spatial - 1].clone();
                let mut order: Vec<LoopRef> = loops[*n_spatial..(*n_spatial + *n_reduce)].to_vec();
                order.push(last_spatial.clone());
                sch.reorder(&order)?;
                let extent = sch.loop_extent(&last_spatial)?;
                let vw = d[0];
                if extent % vw == 0 && extent > vw {
                    let parts = sch.split(&last_spatial, &[-1, vw])?;
                    sch.vectorize(&parts[1])?;
                } else if extent <= vw {
                    sch.vectorize(&last_spatial)?;
                }
            }
        }
        tir_analysis::validate(sch.func())
            .map_err(|e| ScheduleError::Invalid(format!("{}", e[0])))?;
        Ok(sch.into_func())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::DataType;
    use tir_exec::{assert_same_semantics, simulate, Machine};
    use tir_rand::rngs::StdRng;
    use tir_rand::SeedableRng;
    use tir_tensorize::builtin_registry;

    fn qmm(n: i64) -> PrimFunc {
        tir_workloads::gmm(n, n, n, DataType::int8(), DataType::int32())
    }

    #[test]
    fn cpu_tensor_sketch_valid_and_fast() {
        let func = qmm(32);
        let reg = builtin_registry();
        let sdot = reg.get("sdot_4x4x4_i8").unwrap();
        let sketch = CpuTensorSketch::new(&func, "C", sdot).expect("sketch");
        let mut rng = StdRng::seed_from_u64(1);
        let machine = Machine::sim_arm();
        let d = sketch.sample(&mut rng);
        let f = sketch.apply(&d).expect("apply");
        assert_same_semantics(&func, &f, 1, 0.0);
        assert!(simulate(&f, &machine) > 0.0);
    }

    #[test]
    fn cpu_tensor_beats_scalar() {
        let func = qmm(64);
        let reg = builtin_registry();
        let sdot = reg.get("sdot_4x4x4_i8").unwrap();
        let tensor = CpuTensorSketch::new(&func, "C", sdot).expect("sketch");
        let scalar = CpuScalarSketch::new(&func);
        let machine = Machine::sim_arm();
        let mut rng = StdRng::seed_from_u64(2);
        let best = |sketch: &dyn SketchRule, rng: &mut StdRng| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..10 {
                let d = sketch.sample(rng);
                if let Ok(f) = sketch.apply(&d) {
                    best = best.min(simulate(&f, &machine));
                }
            }
            best
        };
        let tt = best(&tensor, &mut rng);
        let ts = best(&scalar, &mut rng);
        assert!(tt < ts, "sdot {tt} should beat scalar {ts}");
    }

    #[test]
    fn scalar_sketch_is_semantics_preserving() {
        let func = tir_workloads::c2d(1, 8, 8, 4, 8, 3, 3, 1, DataType::float32());
        let sketch = CpuScalarSketch::new(&func);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let d = sketch.sample(&mut rng);
            let f = sketch.apply(&d).expect("apply");
            assert_same_semantics(&func, &f, 1, 0.0);
        }
    }

    #[test]
    fn vectorized_loops_appear() {
        let func = qmm(64);
        let sketch = CpuScalarSketch::new(&func);
        let mut rng = StdRng::seed_from_u64(4);
        let d = sketch.sample(&mut rng);
        let f = sketch.apply(&d).expect("apply");
        let mut has_vec = false;
        let mut has_par = false;
        fn walk(s: &tir::Stmt, v: &mut bool, p: &mut bool) {
            if let tir::Stmt::For(fr) = s {
                *v |= fr.kind == tir::ForKind::Vectorized;
                *p |= fr.kind == tir::ForKind::Parallel;
            }
            match s {
                tir::Stmt::For(fr) => walk(&fr.body, v, p),
                tir::Stmt::Seq(ss) => ss.iter().for_each(|st| walk(st, v, p)),
                tir::Stmt::BlockRealize(br) => walk(&br.block.body, v, p),
                _ => {}
            }
        }
        walk(&f.body, &mut has_vec, &mut has_par);
        assert!(has_par, "parallel loop expected");
        assert!(has_vec, "vectorized loop expected:\n{f}");
    }
}
