//! Program feature extraction for the learned cost model (§4.4).
//!
//! Features are drawn from the static cost summary plus block-signature
//! structure, "extracted from both block signatures in an isolated way as
//! well as the body of the block (e.g., to mark the use of Tensor Core)".

use tir::{AnnValue, MemScope, PrimFunc};
use tir_exec::cost::{summarize, CostSummary};

/// Number of features in a feature vector.
pub const NUM_FEATURES: usize = 16;

fn log1p(v: f64) -> f64 {
    (1.0 + v.max(0.0)).ln()
}

/// Extracts the feature vector of a program.
pub fn extract_features(func: &PrimFunc) -> Vec<f64> {
    let s: CostSummary = summarize(func);
    features_of_summary(func, &s)
}

/// Extracts features given a precomputed summary (avoids re-walking).
pub fn features_of_summary(func: &PrimFunc, s: &CostSummary) -> Vec<f64> {
    let global = s.traffic.get(&MemScope::Global).copied().unwrap_or(0.0);
    let shared = s.traffic.get(&MemScope::Shared).copied().unwrap_or(0.0);
    let local: f64 = s
        .traffic
        .iter()
        .filter(|(k, _)| !matches!(k, MemScope::Global | MemScope::Shared))
        .map(|(_, v)| v)
        .sum();
    let tensor_macs: f64 = s.tensor_macs.values().sum();
    let total_ops = s.scalar_ops + s.vector_ops + 2.0 * tensor_macs;
    let mut num_blocks = 0.0;
    let mut num_tensorized = 0.0;
    let mut num_cooperative = 0.0;
    tir::visit::for_each_block_realize(&func.body, &mut |br| {
        num_blocks += 1.0;
        if br.block.annotations.contains_key("tir.tensor_intrin") {
            num_tensorized += 1.0;
        }
        if matches!(
            br.block.annotations.get("tir.cooperative"),
            Some(AnnValue::Int(_))
        ) {
            num_cooperative += 1.0;
        }
    });
    vec![
        log1p(s.scalar_ops),
        log1p(s.vector_ops),
        log1p(tensor_macs),
        log1p(global),
        log1p(shared),
        log1p(local),
        log1p(s.grid_size),
        log1p(s.block_threads),
        log1p(s.cpu_parallelism),
        // Arithmetic intensity: ops per global byte.
        log1p(total_ops / global.max(1.0)),
        // Tensorization fraction.
        if total_ops > 0.0 {
            2.0 * tensor_macs / total_ops
        } else {
            0.0
        },
        // Vectorization fraction.
        if s.scalar_ops + s.vector_ops > 0.0 {
            s.vector_ops / (s.scalar_ops + s.vector_ops)
        } else {
            0.0
        },
        num_blocks,
        num_tensorized,
        num_cooperative,
        // Shared-staging ratio: shared traffic relative to global.
        log1p(shared / global.max(1.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::builder::matmul_func;
    use tir::DataType;

    #[test]
    fn feature_vector_shape() {
        let f = matmul_func("mm", 32, 32, 32, DataType::float32());
        let feats = extract_features(&f);
        assert_eq!(feats.len(), NUM_FEATURES);
        assert!(feats.iter().all(|v| v.is_finite()));
        // Scalar ops feature must be large for a scalar matmul.
        assert!(feats[0] > 5.0);
        // No tensor MACs.
        assert_eq!(feats[2], 0.0);
    }

    #[test]
    fn features_distinguish_sizes() {
        let a = extract_features(&matmul_func("a", 16, 16, 16, DataType::float32()));
        let b = extract_features(&matmul_func("b", 64, 64, 64, DataType::float32()));
        assert!(b[0] > a[0]);
        assert!(b[3] > a[3]);
    }
}
