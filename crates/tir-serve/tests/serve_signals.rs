//! Signal-driven shutdown of the real `tir-serve` binary: SIGTERM and
//! SIGINT must both take the graceful drain-and-persist path, so the
//! next daemon lifetime answers warm and bit-identical.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tir::DataType;
use tir_serve::client::Client;
use tir_serve::protocol::Source;
use tir_workloads::ops;

/// POSIX signal numbers and `kill(2)` from the platform C library —
/// the test tree, like the daemon, carries no `libc` crate.
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

fn tmp_paths(name: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let sock = dir.join(format!("tir-signals-{name}-{pid}.sock"));
    let db = dir.join(format!("tir-signals-{name}-{pid}.db"));
    for p in [&sock, &db] {
        let _ = std::fs::remove_file(p);
    }
    (sock, db)
}

// Every returned Child is reaped by `signal_and_reap`; the lint cannot
// see across the function boundary.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(sock: &PathBuf, db: &PathBuf) -> Child {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tir-serve"))
        .arg("--socket")
        .arg(sock)
        .arg("--db")
        .arg(db)
        .arg("--workers")
        .arg("1")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tir-serve");
    // The daemon is up once the socket exists and answers a ping.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if sock.exists() {
            if let Ok(mut c) = Client::connect(sock) {
                if c.ping().is_ok() {
                    return child;
                }
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("daemon did not come up within 30s");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn signal_and_reap(mut child: Child, sig: i32) {
    let rc = unsafe { kill(child.id() as i32, sig) };
    assert_eq!(rc, 0, "kill(2) failed");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(
                    status.success(),
                    "daemon must exit cleanly on signal {sig}, got {status}"
                );
                return;
            }
            None => {
                assert!(
                    Instant::now() < deadline,
                    "daemon did not exit within 30s of signal {sig}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn sigterm_and_sigint_drain_persist_and_restart_warm() {
    let (sock, db) = tmp_paths("term");
    let text = ops::gmm(32, 32, 32, DataType::float16(), DataType::float32()).to_string();

    // Lifetime 1: tune, then SIGTERM (what systemd/Kubernetes send).
    let child = spawn_daemon(&sock, &db);
    let mut c = Client::connect(&sock).expect("connect");
    let cold = c.tune("gpu", "tensorir", 4, 5, &text).expect("tune");
    assert_eq!(cold.source, Source::Tuned);
    drop(c);
    signal_and_reap(child, SIGTERM);
    assert!(
        !sock.exists(),
        "graceful signal exit must remove the socket"
    );
    assert!(db.exists(), "graceful signal exit must persist the db");

    // Lifetime 2: the record survived; stop this one with SIGINT
    // (ctrl-C at a terminal) — same graceful path.
    let child = spawn_daemon(&sock, &db);
    let mut c = Client::connect(&sock).expect("reconnect");
    let warm = c
        .query("gpu", "tensorir", &text)
        .expect("query")
        .expect("record persisted across SIGTERM");
    assert_eq!(warm.source, Source::Warm);
    assert_eq!(warm.func_text, cold.func_text);
    assert_eq!(warm.best_time.to_bits(), cold.best_time.to_bits());
    drop(c);
    signal_and_reap(child, SIGINT);
    assert!(!sock.exists());

    let _ = std::fs::remove_file(&db);
    let journal = {
        let mut p = db.clone().into_os_string();
        p.push(".journal");
        PathBuf::from(p)
    };
    let _ = std::fs::remove_file(&journal);
}
