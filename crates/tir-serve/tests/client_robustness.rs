//! Client-side robustness: per-request deadlines against a stalled
//! server, and transparent reconnection across a daemon restart.

use std::io::Read;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use tir::DataType;
use tir_serve::client::{Client, ClientError, ReconnectPolicy};
use tir_serve::protocol::Source;
use tir_serve::server::{ServeConfig, Server};
use tir_workloads::ops;

fn tmp_paths(name: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let sock = dir.join(format!("tir-client-{name}-{pid}.sock"));
    let db = dir.join(format!("tir-client-{name}-{pid}.db"));
    for p in [&sock, &db] {
        let _ = std::fs::remove_file(p);
    }
    (sock, db)
}

fn gmm_text() -> String {
    ops::gmm(32, 32, 32, DataType::float16(), DataType::float32()).to_string()
}

#[test]
fn deadline_against_a_stalled_server_is_a_typed_timeout() {
    let (sock, _db) = tmp_paths("stall");
    // A deliberately stalled "server": accepts, reads the request, and
    // never answers.
    let listener = UnixListener::bind(&sock).expect("bind");
    let stall = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let mut sink = [0u8; 4096];
        // Keep the connection open (reading whatever arrives) until the
        // client gives up and drops it.
        while matches!(conn.read(&mut sink), Ok(n) if n > 0) {}
    });

    let mut c = Client::connect(&sock).expect("connect");
    c.set_deadline(Some(Duration::from_millis(150)));
    let t = Instant::now();
    match c.ping() {
        Err(ClientError::Timeout { after }) => {
            assert_eq!(after, Duration::from_millis(150));
        }
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    let waited = t.elapsed();
    assert!(
        waited >= Duration::from_millis(150),
        "gave up before the deadline ({waited:?})"
    );
    assert!(
        waited < Duration::from_secs(5),
        "timeout did not bound the wait ({waited:?})"
    );
    drop(c);
    stall.join().expect("stall thread");
    let _ = std::fs::remove_file(&sock);
}

#[test]
fn client_reconnects_across_a_daemon_restart() {
    let (sock, db) = tmp_paths("reconnect");
    let text = gmm_text();

    // First daemon lifetime: the client tunes, then the daemon goes
    // away entirely.
    let server = Server::start(ServeConfig::new(&sock, &db)).expect("start");
    let mut c = Client::connect_with(
        &sock,
        ReconnectPolicy {
            max_retries: 20, // ride out the restart gap below
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(100),
        },
    )
    .expect("connect");
    let cold = c.tune("gpu", "tensorir", 4, 5, &text).expect("tune");
    assert_eq!(cold.source, Source::Tuned);
    server.request_shutdown();
    server.join();

    // Restart the daemon concurrently with the client's next request:
    // the client's old connection is dead, so it must redial (with
    // backoff) and replay — and the replay lands warm.
    let restarter = {
        let (sock, db) = (sock.clone(), db.clone());
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            Server::start(ServeConfig::new(&sock, &db)).expect("restart")
        })
    };
    let warm = c
        .query("gpu", "tensorir", &text)
        .expect("query must survive the restart via reconnect")
        .expect("record persisted");
    assert_eq!(warm.source, Source::Warm);
    assert_eq!(warm.func_text, cold.func_text);
    assert_eq!(warm.best_time.to_bits(), cold.best_time.to_bits());

    let server = restarter.join().expect("restarter");
    let mut c = Client::connect(&sock).expect("connect");
    c.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn no_reconnect_policy_fails_fast() {
    let (sock, _db) = tmp_paths("norc");
    // Nothing is listening: the initial dial fails immediately for both
    // policies (reconnection governs established clients, not dialing).
    assert!(matches!(
        Client::connect_with(&sock, ReconnectPolicy::none()),
        Err(ClientError::Io(_))
    ));
    assert!(matches!(Client::connect(&sock), Err(ClientError::Io(_))));
}
