//! Seeded protocol fuzzing: a dependency-free corpus generator drives
//! truncated, oversized, bit-flipped, and interleaved frames through
//! the wire decoders and a live daemon connection.
//!
//! The contract under test: **zero panics**, and every input is either
//! answered with a typed reject (`err <code> …`) or handled by the
//! documented connection close (undecodable headers, mid-message EOF).
//! Everything is a pure function of the fuzz seed, so a failure
//! reproduces exactly.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use tir_rand::rngs::StdRng;
use tir_rand::{RngExt, SeedableRng};
use tir_serve::client::Client;
use tir_serve::protocol::{Request, Response, DEFAULT_MAX_PAYLOAD};
use tir_serve::server::{ServeConfig, Server};

const FUZZ_SEED: u64 = 0xF022_2026;
const DECODE_CASES: usize = 512;
const LIVE_CASES: usize = 48;

/// Well-formed frames the mutations start from. Machine/strategy names
/// are deliberately unknown so even a mutation that survives parsing is
/// semantically rejected — the fuzzer must never trigger a real search.
fn request_bases() -> Vec<Vec<u8>> {
    let mut bases = Vec::new();
    for req in [
        Request::Ping,
        Request::Stats,
        Request::Tune {
            machine: "zzz".into(),
            strategy: "fuzz".into(),
            trials: 8,
            priority: 5,
            func_text: "def f():\n    pass\n".into(),
        },
        Request::Query {
            machine: "zzz".into(),
            strategy: "fuzz".into(),
            func_text: "payload with\nnewlines and spaces".into(),
        },
    ] {
        let mut wire = Vec::new();
        req.write(&mut wire).expect("encode");
        bases.push(wire);
    }
    bases
}

fn response_bases() -> Vec<Vec<u8>> {
    use tir_serve::protocol::{RejectCode, Source};
    let mut bases = Vec::new();
    for resp in [
        Response::Pong,
        Response::Miss,
        Response::Bye,
        Response::Stats {
            json: "{\"records\": 3}".into(),
        },
        Response::Rejected {
            code: RejectCode::QueueFull,
            message: "full".into(),
        },
        Response::Result {
            source: Source::Warm,
            best_time: 1.25e-4,
            trials: 0,
            tuning_cost_s: 0.0,
            func_text: "def f():\n    pass\n".into(),
        },
    ] {
        let mut wire = Vec::new();
        resp.write(&mut wire).expect("encode");
        bases.push(wire);
    }
    bases
}

/// One seeded mutation of one base frame.
fn mutate(rng: &mut StdRng, bases: &[Vec<u8>]) -> Vec<u8> {
    let base = bases[rng.random_range(0..bases.len())].clone();
    match rng.random_range(0u64..6) {
        // Truncation: any prefix, including empty.
        0 => {
            let cut = rng.random_range(0..base.len() + 1);
            base[..cut].to_vec()
        }
        // Bit flips: 1–4 random bits anywhere in the frame.
        1 => {
            let mut out = base;
            for _ in 0..rng.random_range(1u64..5) {
                let at = rng.random_range(0..out.len());
                let bit = rng.random_range(0u64..8) as u8;
                out[at] ^= 1 << bit;
            }
            out
        }
        // Oversized: replace the final header token (the length) with a
        // number far past any payload cap.
        2 => {
            let header_end = base
                .iter()
                .position(|&b| b == b'\n')
                .unwrap_or(base.len() - 1);
            let header = String::from_utf8_lossy(&base[..header_end]).to_string();
            let mut toks: Vec<String> = header.split(' ').map(str::to_string).collect();
            if let Some(last) = toks.last_mut() {
                *last = format!("{}", (1u64 << 40) + rng.random_range(0u64..1 << 20));
            }
            let mut out = toks.join(" ").into_bytes();
            out.push(b'\n');
            out.extend_from_slice(&base[header_end + 1..]);
            out
        }
        // Interleaved: a prefix of one frame spliced into another.
        3 => {
            let other = &bases[rng.random_range(0..bases.len())];
            let cut = rng.random_range(0..other.len() + 1);
            let mut out = other[..cut].to_vec();
            out.extend_from_slice(&base);
            out
        }
        // Trailing garbage after a valid frame.
        4 => {
            let mut out = base;
            for _ in 0..rng.random_range(1u64..32) {
                out.push(rng.random_range(0u64..256) as u8);
            }
            out
        }
        // Pure noise.
        _ => (0..rng.random_range(0u64..64))
            .map(|_| rng.random_range(0u64..256) as u8)
            .collect(),
    }
}

#[test]
fn request_decode_survives_the_corpus() {
    let bases = request_bases();
    let mut rng = StdRng::seed_from_u64(FUZZ_SEED);
    let (mut ok, mut rejected, mut closed) = (0u32, 0u32, 0u32);
    for _ in 0..DECODE_CASES {
        let input = mutate(&mut rng, &bases);
        // Both the configured cap and a tiny cap: the tiny one forces
        // the oversized-rejection path even for small mutants.
        for cap in [DEFAULT_MAX_PAYLOAD, 16] {
            match Request::read(&mut input.as_slice(), cap) {
                Ok(Some(Ok(_))) => ok += 1,
                Ok(Some(Err(_))) => rejected += 1, // typed reject
                Ok(None) | Err(_) => closed += 1,  // documented close
            }
        }
    }
    // The corpus must actually exercise all three outcomes.
    assert!(ok > 0, "corpus produced no well-formed request");
    assert!(rejected > 0, "corpus produced no typed rejection");
    assert!(closed > 0, "corpus produced no connection-close path");
}

#[test]
fn response_decode_survives_the_corpus() {
    let bases = response_bases();
    let mut rng = StdRng::seed_from_u64(FUZZ_SEED ^ 1);
    let (mut ok, mut malformed, mut closed) = (0u32, 0u32, 0u32);
    for _ in 0..DECODE_CASES {
        let input = mutate(&mut rng, &bases);
        match Response::read(&mut input.as_slice()) {
            Ok(Some(Ok(_))) => ok += 1,
            Ok(Some(Err(_))) => malformed += 1,
            Ok(None) | Err(_) => closed += 1,
        }
    }
    assert!(ok > 0 && malformed > 0 && closed > 0);
}

#[test]
fn live_daemon_survives_the_corpus() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let sock: PathBuf = dir.join(format!("tir-fuzz-{pid}.sock"));
    let db: PathBuf = dir.join(format!("tir-fuzz-{pid}.db"));
    for p in [&sock, &db] {
        let _ = std::fs::remove_file(p);
    }
    let server = Server::start(ServeConfig::new(&sock, &db)).expect("start");

    let bases = request_bases();
    let mut rng = StdRng::seed_from_u64(FUZZ_SEED ^ 2);
    let mut answered = 0u32;
    for case in 0..LIVE_CASES {
        let input = mutate(&mut rng, &bases);
        let mut s = UnixStream::connect(&sock).expect("connect raw");
        s.write_all(&input).expect("write fuzz input");
        let _ = s.shutdown(std::net::Shutdown::Write);
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut got = Vec::new();
        let _ = s.read_to_end(&mut got);
        if !got.is_empty() {
            answered += 1;
        }
        drop(s);
        // The daemon is alive and responsive after every input.
        let mut probe = Client::connect(&sock)
            .unwrap_or_else(|e| panic!("case {case}: daemon unreachable after fuzz input: {e}"));
        probe
            .ping()
            .unwrap_or_else(|e| panic!("case {case}: daemon wedged by fuzz input: {e}"));
    }
    assert!(answered > 0, "no fuzz input got any answer at all");

    let mut c = Client::connect(&sock).expect("connect");
    c.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_file(&db);
}
