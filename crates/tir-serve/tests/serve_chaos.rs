//! Deterministic chaos harness for the daemon.
//!
//! Two failure domains, both driven by seeded injection so every run
//! replays bit-identically:
//!
//! * **Storage crashes** — the daemon runs against
//!   [`IoProfile::Fault`], which simulates a power loss at every named
//!   crash point in the publish/compaction path (and *inside* journal
//!   appends, leaving short-written, bit-flipped fragments). A fresh
//!   daemon is then started on the same files through the real
//!   [`IoProfile::Disk`] backend, and the harness asserts the
//!   durability invariant: every tune that was **acknowledged** before
//!   the crash is served warm and bit-identical after restart, no
//!   partial record survives, and torn journal tails salvage instead of
//!   failing startup.
//! * **Socket chaos** — clients that die mid-request, trickle one byte
//!   at a time, or never finish their payload. One bad connection must
//!   never wedge the daemon or starve well-behaved clients.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use tir::DataType;
use tir_autoschedule::journal::{COMPACT_CRASH_POINTS, PUBLISH_CRASH_POINTS};
use tir_autoschedule::{FaultSpec, IoProfile};
use tir_serve::client::{Client, TuneReply};
use tir_serve::protocol::Source;
use tir_serve::server::{ServeConfig, Server};
use tir_workloads::ops;

fn tmp_paths(name: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let sock = dir.join(format!("tir-chaos-{name}-{pid}.sock"));
    let db = dir.join(format!("tir-chaos-{name}-{pid}.db"));
    for p in [&sock, &db] {
        let _ = std::fs::remove_file(p);
    }
    let mut journal = db.clone().into_os_string();
    journal.push(".journal");
    let _ = std::fs::remove_file(PathBuf::from(journal));
    (sock, db)
}

/// Distinct small workloads so each tune publishes a distinct record.
fn workloads() -> Vec<String> {
    [(32, 32, 32), (32, 32, 48), (32, 48, 32), (48, 32, 32)]
        .into_iter()
        .map(|(m, n, k)| ops::gmm(m, n, k, DataType::float16(), DataType::float32()).to_string())
        .collect()
}

const TRIALS: usize = 3;

/// Runs a faulted daemon, tuning workloads until the injected crash
/// surfaces (as a failed request or a dead daemon). Returns the tunes
/// that were **acknowledged** — the client saw `Ok` — before the crash.
fn run_until_crash(cfg: ServeConfig, texts: &[String]) -> Vec<(String, TuneReply)> {
    let server = Server::start(cfg).expect("faulted daemon must still boot");
    let sock = server.socket_path().to_path_buf();
    let mut acked = Vec::new();
    for text in texts {
        // No redial: after the simulated crash the daemon is shutting
        // down, and retry loops would only slow the harness.
        let reply = Client::connect_with(&sock, tir_serve::ReconnectPolicy::none())
            .ok()
            .and_then(|mut c| c.tune("gpu", "tensorir", TRIALS, 5, text).ok());
        match reply {
            Some(r) => {
                assert_eq!(r.source, Source::Tuned);
                acked.push((text.clone(), r));
            }
            None => break,
        }
    }
    server.request_shutdown();
    server.join(); // final compaction fails against crashed storage; fine
    acked
}

/// Restarts on the real disk backend and asserts the durability
/// invariant for `acked`.
fn assert_recovered(scenario: &str, sock: &PathBuf, db: &PathBuf, acked: &[(String, TuneReply)]) {
    let server = Server::start(ServeConfig::new(sock, db))
        .unwrap_or_else(|e| panic!("{scenario}: post-crash restart failed: {e}"));
    let mut c = Client::connect(sock).expect("connect after restart");

    // Every acknowledged tune is served warm, bit-identically.
    for (text, before) in acked {
        let after = c
            .query("gpu", "tensorir", text)
            .unwrap_or_else(|e| panic!("{scenario}: query failed: {e}"))
            .unwrap_or_else(|| panic!("{scenario}: acknowledged record lost in the crash"));
        assert_eq!(after.source, Source::Warm, "{scenario}");
        assert_eq!(
            after.func_text, before.func_text,
            "{scenario}: program drifted"
        );
        assert_eq!(
            after.best_time.to_bits(),
            before.best_time.to_bits(),
            "{scenario}: best_time not bit-identical"
        );
    }

    // No partial record: the only records on disk are the acked ones,
    // plus at most one durable-but-unacknowledged tune (fsync completed
    // but the crash hit before the client heard back — a real power
    // loss produces exactly the same window).
    let stats = c.stats().expect("stats");
    let records = json_field(&stats, "records");
    assert!(
        records == acked.len() as u64 || records == acked.len() as u64 + 1,
        "{scenario}: expected {} (+0/+1) records after recovery, found {records} in {stats}",
        acked.len()
    );
    assert_eq!(
        json_field(&stats, "db_degraded"),
        0,
        "{scenario}: recovered daemon must not be degraded"
    );

    let mut c = Client::connect(sock).expect("connect");
    c.shutdown().expect("shutdown");
    server.join();
}

/// Pulls an integer field out of the daemon's flat stats JSON.
fn json_field(json: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\": ");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric stats field")
}

fn chaos_cfg(sock: &PathBuf, db: &PathBuf, spec: FaultSpec) -> ServeConfig {
    let mut cfg = ServeConfig::new(sock, db);
    cfg.workers = 1; // serialize publishes so crash-op schedules are exact
    cfg.io_profile = IoProfile::Fault(spec);
    cfg
}

#[test]
fn crash_at_every_publish_point_preserves_acknowledged_tunes() {
    let texts = workloads();
    for point in PUBLISH_CRASH_POINTS {
        for occurrence in [0usize, 1] {
            let scenario = format!("{point}#{occurrence}");
            let (sock, db) = tmp_paths(&format!("pub-{}-{occurrence}", point.replace('.', "-")));
            let spec = FaultSpec::crash_at(point, occurrence, 0xC805 + occurrence as u64);
            let acked = run_until_crash(chaos_cfg(&sock, &db, spec), &texts);
            assert!(
                acked.len() < texts.len(),
                "{scenario}: the injected crash must fire"
            );
            assert_recovered(&scenario, &sock, &db, &acked);
            let _ = std::fs::remove_file(&db);
        }
    }
}

#[test]
fn crash_inside_journal_appends_salvages_torn_tails() {
    let texts = workloads();
    // Appends land on even op indices (each publish is append, fsync).
    for (append_op, seed) in [(0u64, 11u64), (2, 12), (4, 13), (4, 14)] {
        let scenario = format!("append-op{append_op}-seed{seed}");
        let (sock, db) = tmp_paths(&format!("tear-{append_op}-{seed}"));
        let spec = FaultSpec {
            seed,
            crash_in_append: Some(append_op),
            ..FaultSpec::default()
        };
        let acked = run_until_crash(chaos_cfg(&sock, &db, spec), &texts);
        assert_eq!(
            acked.len() as u64,
            append_op / 2,
            "{scenario}: every publish before the torn append was acknowledged"
        );
        // The torn tail (short write, possibly bit-flipped) must
        // salvage on restart — never DbError::Corrupt.
        assert_recovered(&scenario, &sock, &db, &acked);
        let _ = std::fs::remove_file(&db);
    }
}

#[test]
fn crash_at_every_compaction_point_preserves_acknowledged_tunes() {
    let texts = workloads();
    for point in COMPACT_CRASH_POINTS {
        let scenario = format!("{point}#0");
        let (sock, db) = tmp_paths(&format!("compact-{}", point.replace('.', "-")));
        let mut cfg = chaos_cfg(&sock, &db, FaultSpec::crash_at(point, 0, 0xF01D));
        cfg.journal_compact_bytes = 1; // first publish triggers compaction
        let acked = run_until_crash(cfg, &texts);
        // The record that triggered the compaction was journaled and
        // fsynced before the compaction began, so it is acknowledged
        // even though the compaction crashed — and it must survive.
        assert!(!acked.is_empty(), "{scenario}: first publish is pre-crash");
        assert_recovered(&scenario, &sock, &db, &acked);
        let _ = std::fs::remove_file(&db);
    }
}

#[test]
fn transient_save_failures_degrade_visibly_then_recover() {
    let texts = workloads();
    let (sock, db) = tmp_paths("degraded");
    // Storage is down for exactly the first 6 mutating ops: all three
    // publish attempts of the first tune (each one append + one
    // repair-truncate) fail, then storage comes back.
    let mut cfg = chaos_cfg(
        &sock,
        &db,
        FaultSpec {
            fail_first_ops: 6,
            ..FaultSpec::default()
        },
    );
    cfg.save_retries = 3;
    let server = Server::start(cfg).expect("start");
    let mut c = Client::connect(&sock).expect("connect");

    // The tune itself still succeeds — the result is valid, only its
    // durability is degraded — and the degradation is *visible*.
    let first = c
        .tune("gpu", "tensorir", TRIALS, 5, &texts[0])
        .expect("tune");
    assert_eq!(first.source, Source::Tuned);
    let stats = c.stats().expect("stats");
    assert_eq!(
        json_field(&stats, "db_degraded"),
        1,
        "degradation must be visible: {stats}"
    );
    assert_eq!(
        json_field(&stats, "db_save_failures"),
        3,
        "every failed attempt counted"
    );

    // Storage is back: the next publish forces a compaction that folds
    // the memory-only record to disk and clears the degraded state.
    let second = c
        .tune("gpu", "tensorir", TRIALS, 5, &texts[1])
        .expect("tune");
    assert_eq!(second.source, Source::Tuned);
    let stats = c.stats().expect("stats");
    assert_eq!(
        json_field(&stats, "db_degraded"),
        0,
        "compaction clears degradation: {stats}"
    );

    c.shutdown().expect("shutdown");
    server.join();

    // Both records — including the one that was memory-only for a
    // while — survive a restart on the real backend.
    assert_recovered(
        "degraded-recovery",
        &sock,
        &db,
        &[(texts[0].clone(), first), (texts[1].clone(), second)],
    );
    let _ = std::fs::remove_file(&db);
}

// ---------------------------------------------------------------------
// Socket-level chaos.
// ---------------------------------------------------------------------

/// Reads until EOF or timeout; returns what arrived.
fn drain(stream: &mut UnixStream) -> Vec<u8> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    buf
}

#[test]
fn socket_chaos_never_wedges_the_daemon() {
    let (sock, db) = tmp_paths("socket");
    let mut cfg = ServeConfig::new(&sock, &db);
    cfg.workers = 1;
    let server = Server::start(cfg).expect("start");

    // 1. Client killed mid-request: header promises 1000 payload bytes,
    //    connection dies after 10. The daemon must drop the connection
    //    (bounded stall), not wait forever.
    {
        let mut s = UnixStream::connect(&sock).expect("connect raw");
        s.write_all(b"tune gpu tensorir 8 5 1000\ndef f(")
            .expect("partial write");
        drop(s); // killed
    }

    // 2. One-byte slow-loris that never completes its payload, held
    //    open while well-behaved clients are served.
    let loris_sock = sock.clone();
    let loris = std::thread::spawn(move || {
        let mut s = UnixStream::connect(&loris_sock).expect("connect loris");
        for b in b"tune gpu tensorir 8 5 400\nx" {
            if s.write_all(&[*b]).is_err() {
                break; // daemon dropped us: acceptable, documented
            }
            std::thread::sleep(Duration::from_millis(30));
        }
        // Stall forever (until the daemon's bounded mid-message timeout
        // drops the connection).
        let _ = drain(&mut s);
    });

    // Well-behaved clients are unaffected while both bad connections
    // are in flight: pings answer promptly and a tune completes.
    let mut c = Client::connect(&sock).expect("connect");
    for _ in 0..5 {
        let t = Instant::now();
        c.ping().expect("ping while chaos in flight");
        assert!(
            t.elapsed() < Duration::from_secs(1),
            "ping starved by a bad connection"
        );
    }
    let text = workloads().remove(0);
    let reply = c.tune("gpu", "tensorir", TRIALS, 5, &text).expect("tune");
    assert_eq!(reply.source, Source::Tuned);

    // 3. A slow but *complete* request is answered: one byte at a time
    //    is a valid way to speak the protocol.
    {
        let mut s = UnixStream::connect(&sock).expect("connect raw");
        for b in b"ping\n" {
            s.write_all(&[*b]).expect("write byte");
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut resp = [0u8; 5];
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.read_exact(&mut resp).expect("read pong");
        assert_eq!(&resp, b"pong\n");
    }

    // 4. Textual garbage gets a typed reject; undecodable (non-UTF-8)
    //    bytes get the documented connection close. Neither panics.
    {
        let mut s = UnixStream::connect(&sock).expect("connect raw");
        s.write_all(b"frobnicate the database\n")
            .expect("write garbage");
        let _ = s.shutdown(std::net::Shutdown::Write);
        let got = drain(&mut s);
        assert!(
            got.starts_with(b"err "),
            "garbage should be answered with a typed reject, got {:?}",
            String::from_utf8_lossy(&got)
        );
    }
    {
        let mut s = UnixStream::connect(&sock).expect("connect raw");
        s.write_all(b"\x00\xff\xfe not a utf-8 header\n")
            .expect("write bytes");
        let _ = s.shutdown(std::net::Shutdown::Write);
        assert!(
            drain(&mut s).is_empty(),
            "non-UTF-8 headers are answered by closing the connection"
        );
    }

    loris.join().expect("loris thread");

    // The daemon survived all of it and still shuts down cleanly.
    let mut c = Client::connect(&sock).expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(json_field(&stats, "db_degraded"), 0);
    c.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_file(&db);
}
