//! Concurrency and crash-recovery contracts of the serve daemon:
//! N concurrent identical requests cost exactly one search, and a
//! killed-and-restarted daemon answers from disk, warm and bit-identical.

use std::path::PathBuf;

use tir::DataType;
use tir_serve::client::{Client, ClientError, ReconnectPolicy};
use tir_serve::protocol::{RejectCode, Source};
use tir_serve::server::{ServeConfig, Server};
use tir_workloads::ops;

/// Unique socket/db paths per test so parallel test threads don't
/// collide.
fn tmp_paths(name: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let sock = dir.join(format!("tir-serve-test-{name}-{pid}.sock"));
    let db = dir.join(format!("tir-serve-test-{name}-{pid}.db"));
    let _ = std::fs::remove_file(&sock);
    let _ = std::fs::remove_file(&db);
    (sock, db)
}

fn gmm_text() -> String {
    ops::gmm(32, 32, 32, DataType::float16(), DataType::float32()).to_string()
}

#[test]
fn concurrent_same_fingerprint_tunes_once() {
    let (sock, db) = tmp_paths("dedup");
    let server = Server::start(ServeConfig::new(&sock, &db)).expect("start");
    let text = gmm_text();

    const CLIENTS: usize = 6;
    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let sock = &sock;
                let text = &text;
                scope.spawn(move || {
                    let mut c = Client::connect(sock).expect("connect");
                    c.tune("gpu", "tensorir", 8, 5, text).expect("tune")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });

    let tuned = replies.iter().filter(|r| r.source == Source::Tuned).count();
    assert_eq!(
        tuned, 1,
        "{CLIENTS} concurrent identical requests must run exactly one search"
    );
    for r in &replies {
        assert_eq!(
            r.func_text, replies[0].func_text,
            "answers must be identical"
        );
        assert_eq!(
            r.best_time.to_bits(),
            replies[0].best_time.to_bits(),
            "best_time must be bit-identical"
        );
    }

    let mut c = Client::connect(&sock).expect("connect");
    c.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn restart_serves_warm_from_disk() {
    let (sock, db) = tmp_paths("restart");
    let text = gmm_text();

    // First daemon lifetime: tune, then shut down (persisting to disk).
    let server = Server::start(ServeConfig::new(&sock, &db)).expect("start");
    let mut c = Client::connect(&sock).expect("connect");
    let cold = c.tune("gpu", "tensorir", 8, 5, &text).expect("tune");
    assert_eq!(cold.source, Source::Tuned);
    c.shutdown().expect("shutdown");
    server.join();
    assert!(db.exists(), "database must persist across daemon lifetimes");

    // Second lifetime on the same database: warm, free, bit-identical.
    let server = Server::start(ServeConfig::new(&sock, &db)).expect("restart");
    let mut c = Client::connect(&sock).expect("connect");
    let warm = c.tune("gpu", "tensorir", 8, 5, &text).expect("tune");
    assert_eq!(warm.source, Source::Warm, "restart must answer from disk");
    assert_eq!(warm.trials, 0, "warm answer must consume no trials");
    assert_eq!(warm.tuning_cost_s, 0.0, "warm answer must cost nothing");
    assert_eq!(
        warm.func_text, cold.func_text,
        "program must round-trip the disk"
    );
    assert_eq!(
        warm.best_time.to_bits(),
        cold.best_time.to_bits(),
        "best_time must be bit-identical after restart"
    );
    let queried = c
        .query("gpu", "tensorir", &text)
        .expect("query")
        .expect("record present");
    assert_eq!(queried.func_text, cold.func_text);
    c.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn invalid_requests_are_rejected_with_reasons() {
    let (sock, db) = tmp_paths("reject");
    let mut cfg = ServeConfig::new(&sock, &db);
    cfg.queue_capacity = 0; // every cold tune must bounce
    let server = Server::start(cfg).expect("start");
    let mut c = Client::connect(&sock).expect("connect");
    let text = gmm_text();

    let code_of = |r: Result<_, ClientError>| match r {
        Err(ClientError::Rejected { code, .. }) => code,
        other => panic!("expected a rejection, got {other:?}"),
    };
    assert_eq!(
        code_of(c.tune("tpu", "tensorir", 8, 5, &text)),
        RejectCode::UnknownMachine
    );
    assert_eq!(
        code_of(c.tune("gpu", "autotvm", 8, 5, &text)),
        RejectCode::UnknownStrategy
    );
    assert_eq!(
        code_of(c.tune("gpu", "tensorir", 8, 5, "not a program")),
        RejectCode::ParseError
    );
    assert_eq!(
        code_of(c.tune("gpu", "tensorir", 0, 5, &text)),
        RejectCode::BadRequest
    );
    assert_eq!(
        code_of(c.tune("gpu", "tensorir", 8, 5, &text)),
        RejectCode::QueueFull,
        "capacity-0 queue must reject with a reason, not hang"
    );
    // Semantic rejections never poison the connection.
    c.ping().expect("connection still usable");

    // A protocol-level rejection (raised while reading the message)
    // answers with its reason and then closes the connection. Disable
    // the client's auto-redial so the close is observable.
    let mut c2 = Client::connect_with(&sock, ReconnectPolicy::none()).expect("connect");
    assert_eq!(
        code_of(c2.tune("gpu", "tensorir", 8, 12, &text)),
        RejectCode::BadPriority
    );
    assert!(
        c2.ping().is_err(),
        "connection closes after a protocol-level reject"
    );

    c.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn oversized_payload_is_rejected() {
    let (sock, db) = tmp_paths("payload");
    let mut cfg = ServeConfig::new(&sock, &db);
    cfg.max_payload = 64;
    let server = Server::start(cfg).expect("start");
    let mut c = Client::connect(&sock).expect("connect");
    match c.tune("gpu", "tensorir", 8, 5, &gmm_text()) {
        Err(ClientError::Rejected {
            code: RejectCode::PayloadTooLarge,
            ..
        }) => {}
        other => panic!("expected payload_too_large, got {other:?}"),
    }
    // Oversized payloads are protocol-level: the connection closed.
    let mut c = Client::connect(&sock).expect("reconnect");
    c.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_file(&db);
}
