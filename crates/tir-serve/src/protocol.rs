//! The line-delimited wire protocol between tuning clients and the
//! daemon.
//!
//! Every message is one ASCII header line terminated by `\n`, optionally
//! followed by one byte-length-prefixed UTF-8 payload (the length is the
//! last integer on the header line) terminated by `\n`. Floats travel as
//! the 16-hex-digit IEEE-754 bits of an `f64` — the same discipline as
//! the checkpoint and database formats — so `best_time` and
//! `tuning_cost_s` are **bit-exact** over the wire.
//!
//! # Requests
//!
//! | Variant | Wire form |
//! |---|---|
//! | [`Request::Ping`] | `ping\n` |
//! | [`Request::Tune`] | `tune <machine> <strategy> <trials> <priority> <len>\n<program text>\n` |
//! | [`Request::Query`] | `query <machine> <strategy> <len>\n<program text>\n` |
//! | [`Request::Stats`] | `stats\n` |
//! | [`Request::Shutdown`] | `shutdown\n` |
//!
//! `<machine>` is a short machine name (`gpu`, `arm`, `arm-v86`),
//! `<strategy>` a strategy name (`tensorir`, `ansor`, `amos`),
//! `<trials>` the measurement budget, `<priority>` 0–9 (9 served
//! first), and the payload is TVMScript-dialect program text. A
//! complete tune request on the wire:
//!
//! ```text
//! tune gpu tensorir 64 5 123
//! def mm(A: T.Buffer[(16, 16), "float16"], ...):
//!     ...
//! ```
//!
//! # Responses
//!
//! | Variant | Wire form |
//! |---|---|
//! | [`Response::Pong`] | `pong\n` |
//! | [`Response::Result`] | `result <source> <best_time> <trials> <cost> <len>\n<best program>\n` |
//! | [`Response::Miss`] | `miss\n` |
//! | [`Response::Stats`] | `stats <len>\n<json>\n` |
//! | [`Response::Rejected`] | `err <code> <len>\n<message>\n` |
//! | [`Response::Bye`] | `bye\n` |
//!
//! `<source>` is `warm` (served from the database: `trials` is 0 and
//! `cost` is 0.0 — this request paid nothing), `tuned` (a search ran for
//! this request; `trials`/`cost` are its accounting), or `dedup` (this
//! request joined an in-flight tune of the same fingerprint; the
//! accounting is the original tune's). A warm hit on the wire:
//!
//! ```text
//! result warm 3f2e147ae147ae14 0 0000000000000000 87
//! def mm(...):
//!     ...
//! ```
//!
//! `<code>` on a rejection is one of the [`RejectCode`] names; the
//! operator-facing meaning of each is tabulated in
//! `docs/OPERATIONS.md`.
//!
//! # Round-trip
//!
//! ```
//! use tir_serve::protocol::{Request, Response};
//!
//! let req = Request::Tune {
//!     machine: "gpu".into(),
//!     strategy: "tensorir".into(),
//!     trials: 64,
//!     priority: 5,
//!     func_text: "def f():\n    pass".into(),
//! };
//! let mut wire = Vec::new();
//! req.write(&mut wire).unwrap();
//! let back = Request::read(&mut wire.as_slice(), 1 << 20)
//!     .unwrap()          // no I/O error
//!     .unwrap()          // not EOF
//!     .unwrap();         // well-formed
//! assert_eq!(back, req);
//! ```

use std::io::{self, BufRead, Read, Write};

/// Default cap on payload size (program text), in bytes. Requests whose
/// payload exceeds the server's configured cap are rejected with
/// [`RejectCode::PayloadTooLarge`] before the payload is read.
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 20;

/// Why the server refused a request. Each code is one word on the wire;
/// see `docs/OPERATIONS.md` for the operator-facing troubleshooting
/// table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectCode {
    /// The pending-job queue is at capacity; retry later or lower the
    /// request rate.
    QueueFull,
    /// The program payload exceeds the server's size cap.
    PayloadTooLarge,
    /// The header line is malformed (unknown verb, missing fields,
    /// non-numeric counts).
    BadRequest,
    /// The machine name is not one the server knows.
    UnknownMachine,
    /// The strategy name is not one the server knows.
    UnknownStrategy,
    /// The program payload is not valid TVMScript-dialect text.
    ParseError,
    /// The priority is outside 0–9.
    BadPriority,
    /// The server is shutting down and no longer accepts tuning work.
    ShuttingDown,
    /// The tune ran but produced no valid program, or the worker failed
    /// internally.
    Internal,
}

impl RejectCode {
    /// The wire token for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectCode::QueueFull => "queue_full",
            RejectCode::PayloadTooLarge => "payload_too_large",
            RejectCode::BadRequest => "bad_request",
            RejectCode::UnknownMachine => "unknown_machine",
            RejectCode::UnknownStrategy => "unknown_strategy",
            RejectCode::ParseError => "parse_error",
            RejectCode::BadPriority => "bad_priority",
            RejectCode::ShuttingDown => "shutting_down",
            RejectCode::Internal => "internal",
        }
    }

    /// Inverse of [`RejectCode::as_str`].
    pub fn from_token(tok: &str) -> Option<RejectCode> {
        Some(match tok {
            "queue_full" => RejectCode::QueueFull,
            "payload_too_large" => RejectCode::PayloadTooLarge,
            "bad_request" => RejectCode::BadRequest,
            "unknown_machine" => RejectCode::UnknownMachine,
            "unknown_strategy" => RejectCode::UnknownStrategy,
            "parse_error" => RejectCode::ParseError,
            "bad_priority" => RejectCode::BadPriority,
            "shutting_down" => RejectCode::ShuttingDown,
            "internal" => RejectCode::Internal,
            _ => return None,
        })
    }
}

/// Where a [`Response::Result`] came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// Served straight from the persistent database; this request spent
    /// zero trials and zero tuning cost.
    Warm,
    /// A search ran for this request; the accounting fields are its
    /// cost.
    Tuned,
    /// This request joined an identical in-flight tune instead of
    /// re-tuning; the accounting fields are the original tune's.
    Dedup,
}

impl Source {
    /// The wire token for this source.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Warm => "warm",
            Source::Tuned => "tuned",
            Source::Dedup => "dedup",
        }
    }

    /// Inverse of [`Source::as_str`].
    pub fn from_token(tok: &str) -> Option<Source> {
        Some(match tok {
            "warm" => Source::Warm,
            "tuned" => Source::Tuned,
            "dedup" => Source::Dedup,
            _ => return None,
        })
    }
}

/// A parse-level rejection: the code plus a human-readable message.
pub type Reject = (RejectCode, String);

/// One client request. See the module docs for the wire forms.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Tune (or fetch the tuned record of) a workload.
    Tune {
        /// Short machine name (`gpu`, `arm`, `arm-v86`).
        machine: String,
        /// Strategy name (`tensorir`, `ansor`, `amos`).
        strategy: String,
        /// Measurement budget for the search.
        trials: usize,
        /// 0–9; higher priorities are dequeued first.
        priority: u8,
        /// Program text (TVMScript dialect).
        func_text: String,
    },
    /// Database probe: never tunes, answers `result warm …` or `miss`.
    Query {
        /// Short machine name.
        machine: String,
        /// Strategy name.
        strategy: String,
        /// Program text.
        func_text: String,
    },
    /// Server counters as a JSON blob.
    Stats,
    /// Graceful shutdown: drain queued work, persist, exit.
    Shutdown,
}

/// One server response. See the module docs for the wire forms.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// A tuned program (warm, freshly tuned, or deduplicated).
    Result {
        /// Where the answer came from.
        source: Source,
        /// Simulated time of the best program (bit-exact).
        best_time: f64,
        /// Trials this request paid for (0 on warm hits).
        trials: usize,
        /// Tuning cost this request paid for (0.0 on warm hits).
        tuning_cost_s: f64,
        /// The best program's text.
        func_text: String,
    },
    /// Query found no record.
    Miss,
    /// Counters snapshot.
    Stats {
        /// Hand-rolled JSON object.
        json: String,
    },
    /// The request was refused.
    Rejected {
        /// Machine-readable reason.
        code: RejectCode,
        /// Human-readable detail.
        message: String,
    },
    /// Shutdown acknowledged.
    Bye,
}

fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(tok: &str) -> Option<f64> {
    u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
}

/// Reads one `\n`-terminated header line. `Ok(None)` on clean EOF.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    if line.ends_with('\n') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads a `len`-byte payload plus its terminating newline.
///
/// The buffer grows with the bytes that actually arrive — the claimed
/// length is never trusted up front, so a frame promising 2^40 bytes
/// and then hanging up costs memory proportional to what the peer
/// really sent, not what the header advertised.
fn read_blob(r: &mut impl BufRead, len: usize) -> io::Result<Result<String, Reject>> {
    let total = (len as u64).saturating_add(1); // payload + newline
    let mut buf = Vec::new();
    r.by_ref().take(total).read_to_end(&mut buf)?;
    if buf.len() as u64 != total {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-payload",
        ));
    }
    if buf.pop() != Some(b'\n') {
        return Ok(Err((
            RejectCode::BadRequest,
            "payload not newline-terminated (bad length prefix?)".to_string(),
        )));
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Ok(s)),
        Err(_) => Ok(Err((
            RejectCode::BadRequest,
            "payload is not valid UTF-8".to_string(),
        ))),
    }
}

/// Parses and bounds-checks a payload length token.
fn parse_len(tok: &str, max_payload: usize) -> Result<usize, Reject> {
    let len: usize = tok.parse().map_err(|_| {
        (
            RejectCode::BadRequest,
            format!("bad payload length `{tok}`"),
        )
    })?;
    if len > max_payload {
        return Err((
            RejectCode::PayloadTooLarge,
            format!("payload of {len} bytes exceeds the {max_payload}-byte cap"),
        ));
    }
    Ok(len)
}

impl Request {
    /// Serializes the request to its wire form.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            Request::Ping => w.write_all(b"ping\n"),
            Request::Stats => w.write_all(b"stats\n"),
            Request::Shutdown => w.write_all(b"shutdown\n"),
            Request::Tune {
                machine,
                strategy,
                trials,
                priority,
                func_text,
            } => {
                writeln!(
                    w,
                    "tune {machine} {strategy} {trials} {priority} {}",
                    func_text.len()
                )?;
                w.write_all(func_text.as_bytes())?;
                w.write_all(b"\n")
            }
            Request::Query {
                machine,
                strategy,
                func_text,
            } => {
                writeln!(w, "query {machine} {strategy} {}", func_text.len())?;
                w.write_all(func_text.as_bytes())?;
                w.write_all(b"\n")
            }
        }
    }

    /// Reads one request from the wire.
    ///
    /// Three-level result: the outer `Err` is an I/O failure on the
    /// connection, `Ok(None)` is clean EOF (client hung up between
    /// requests), `Ok(Some(Err(reject)))` is a malformed or oversized
    /// request the server should answer with [`Response::Rejected`],
    /// and `Ok(Some(Ok(req)))` is a well-formed request.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `r`, including an unexpected EOF in
    /// the middle of a message.
    pub fn read(
        r: &mut impl BufRead,
        max_payload: usize,
    ) -> io::Result<Option<Result<Request, Reject>>> {
        let Some(line) = read_line(r)? else {
            return Ok(None);
        };
        let toks: Vec<&str> = line.split_whitespace().collect();
        let reject = |msg: String| Ok(Some(Err((RejectCode::BadRequest, msg))));
        match toks.first().copied() {
            Some("ping") => Ok(Some(Ok(Request::Ping))),
            Some("stats") => Ok(Some(Ok(Request::Stats))),
            Some("shutdown") => Ok(Some(Ok(Request::Shutdown))),
            Some("tune") => {
                if toks.len() != 6 {
                    return reject(format!("tune expects 5 fields, got {}", toks.len() - 1));
                }
                let trials: usize = match toks[3].parse() {
                    Ok(t) => t,
                    Err(_) => return reject(format!("bad trials `{}`", toks[3])),
                };
                let priority: u8 = match toks[4].parse() {
                    Ok(p) if p <= 9 => p,
                    _ => {
                        return Ok(Some(Err((
                            RejectCode::BadPriority,
                            format!("priority `{}` is not in 0–9", toks[4]),
                        ))))
                    }
                };
                let len = match parse_len(toks[5], max_payload) {
                    Ok(l) => l,
                    Err(rej) => return Ok(Some(Err(rej))),
                };
                let func_text = match read_blob(r, len)? {
                    Ok(t) => t,
                    Err(rej) => return Ok(Some(Err(rej))),
                };
                Ok(Some(Ok(Request::Tune {
                    machine: toks[1].to_string(),
                    strategy: toks[2].to_string(),
                    trials,
                    priority,
                    func_text,
                })))
            }
            Some("query") => {
                if toks.len() != 4 {
                    return reject(format!("query expects 3 fields, got {}", toks.len() - 1));
                }
                let len = match parse_len(toks[3], max_payload) {
                    Ok(l) => l,
                    Err(rej) => return Ok(Some(Err(rej))),
                };
                let func_text = match read_blob(r, len)? {
                    Ok(t) => t,
                    Err(rej) => return Ok(Some(Err(rej))),
                };
                Ok(Some(Ok(Request::Query {
                    machine: toks[1].to_string(),
                    strategy: toks[2].to_string(),
                    func_text,
                })))
            }
            Some(verb) => reject(format!("unknown verb `{verb}`")),
            None => reject("empty request line".to_string()),
        }
    }
}

impl Response {
    /// Serializes the response to its wire form.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            Response::Pong => w.write_all(b"pong\n"),
            Response::Miss => w.write_all(b"miss\n"),
            Response::Bye => w.write_all(b"bye\n"),
            Response::Result {
                source,
                best_time,
                trials,
                tuning_cost_s,
                func_text,
            } => {
                writeln!(
                    w,
                    "result {} {} {trials} {} {}",
                    source.as_str(),
                    hex_f64(*best_time),
                    hex_f64(*tuning_cost_s),
                    func_text.len()
                )?;
                w.write_all(func_text.as_bytes())?;
                w.write_all(b"\n")
            }
            Response::Stats { json } => {
                writeln!(w, "stats {}", json.len())?;
                w.write_all(json.as_bytes())?;
                w.write_all(b"\n")
            }
            Response::Rejected { code, message } => {
                writeln!(w, "err {} {}", code.as_str(), message.len())?;
                w.write_all(message.as_bytes())?;
                w.write_all(b"\n")
            }
        }
    }

    /// Reads one response from the wire. `Ok(None)` on clean EOF;
    /// `Ok(Some(Err(msg)))` when the bytes are not a well-formed
    /// response (a protocol bug or version skew, not an I/O failure).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `r`.
    pub fn read(r: &mut impl BufRead) -> io::Result<Option<Result<Response, String>>> {
        let Some(line) = read_line(r)? else {
            return Ok(None);
        };
        let toks: Vec<&str> = line.split_whitespace().collect();
        let malformed = |msg: String| Ok(Some(Err(msg)));
        match toks.first().copied() {
            Some("pong") => Ok(Some(Ok(Response::Pong))),
            Some("miss") => Ok(Some(Ok(Response::Miss))),
            Some("bye") => Ok(Some(Ok(Response::Bye))),
            Some("result") => {
                if toks.len() != 6 {
                    return malformed(format!("result expects 5 fields, got {}", toks.len() - 1));
                }
                let Some(source) = Source::from_token(toks[1]) else {
                    return malformed(format!("unknown result source `{}`", toks[1]));
                };
                let (Some(best_time), Ok(trials), Some(tuning_cost_s), Ok(len)) = (
                    parse_hex_f64(toks[2]),
                    toks[3].parse::<usize>(),
                    parse_hex_f64(toks[4]),
                    toks[5].parse::<usize>(),
                ) else {
                    return malformed(format!("malformed result header `{line}`"));
                };
                match read_blob(r, len)? {
                    Ok(func_text) => Ok(Some(Ok(Response::Result {
                        source,
                        best_time,
                        trials,
                        tuning_cost_s,
                        func_text,
                    }))),
                    Err((_, msg)) => malformed(msg),
                }
            }
            Some("stats") => {
                if toks.len() != 2 {
                    return malformed(format!("stats expects 1 field, got {}", toks.len() - 1));
                }
                let Ok(len) = toks[1].parse::<usize>() else {
                    return malformed(format!("bad stats length `{}`", toks[1]));
                };
                match read_blob(r, len)? {
                    Ok(json) => Ok(Some(Ok(Response::Stats { json }))),
                    Err((_, msg)) => malformed(msg),
                }
            }
            Some("err") => {
                if toks.len() != 3 {
                    return malformed(format!("err expects 2 fields, got {}", toks.len() - 1));
                }
                let Some(code) = RejectCode::from_token(toks[1]) else {
                    return malformed(format!("unknown reject code `{}`", toks[1]));
                };
                let Ok(len) = toks[2].parse::<usize>() else {
                    return malformed(format!("bad err length `{}`", toks[2]));
                };
                match read_blob(r, len)? {
                    Ok(message) => Ok(Some(Ok(Response::Rejected { code, message }))),
                    Err((_, msg)) => malformed(msg),
                }
            }
            Some(verb) => malformed(format!("unknown response verb `{verb}`")),
            None => malformed("empty response line".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        let back = Request::read(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .expect("not EOF")
            .expect("well-formed");
        assert_eq!(back, req);
    }

    fn roundtrip_resp(resp: Response) {
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let back = Response::read(&mut wire.as_slice())
            .unwrap()
            .expect("not EOF")
            .expect("well-formed");
        assert_eq!(back, resp);
    }

    #[test]
    fn all_requests_round_trip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Tune {
            machine: "gpu".into(),
            strategy: "tensorir".into(),
            trials: 64,
            priority: 9,
            func_text: "def f():\n    pass\n".into(),
        });
        roundtrip_req(Request::Query {
            machine: "arm".into(),
            strategy: "ansor".into(),
            func_text: "multi\nline\npayload with spaces".into(),
        });
    }

    #[test]
    fn all_responses_round_trip_bit_exact() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Miss);
        roundtrip_resp(Response::Bye);
        roundtrip_resp(Response::Stats {
            json: "{\"a\": 1}".into(),
        });
        roundtrip_resp(Response::Rejected {
            code: RejectCode::QueueFull,
            message: "queue at capacity (64 pending)".into(),
        });
        // Float bit-exactness, including a subnormal and an infinity.
        for t in [1.25e-4, f64::INFINITY, 5e-324, 0.0] {
            let resp = Response::Result {
                source: Source::Warm,
                best_time: t,
                trials: 0,
                tuning_cost_s: 0.0,
                func_text: "def f():\n    pass".into(),
            };
            let mut wire = Vec::new();
            resp.write(&mut wire).unwrap();
            let Response::Result { best_time, .. } = Response::read(&mut wire.as_slice())
                .unwrap()
                .unwrap()
                .unwrap()
            else {
                panic!("wrong variant");
            };
            assert_eq!(best_time.to_bits(), t.to_bits());
        }
    }

    #[test]
    fn oversized_payload_is_rejected_before_reading() {
        let mut wire = Vec::new();
        Request::Tune {
            machine: "gpu".into(),
            strategy: "tensorir".into(),
            trials: 1,
            priority: 0,
            func_text: "x".repeat(100),
        }
        .write(&mut wire)
        .unwrap();
        let rej = Request::read(&mut wire.as_slice(), 10)
            .unwrap()
            .unwrap()
            .expect_err("must reject");
        assert_eq!(rej.0, RejectCode::PayloadTooLarge);
    }

    #[test]
    fn malformed_headers_are_rejections_not_errors() {
        for bad in [
            "frobnicate\n",
            "tune gpu\n",
            "tune gpu tensorir x 0 0\n",
            "\n",
        ] {
            let out = Request::read(&mut bad.as_bytes(), DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .unwrap();
            assert!(out.is_err(), "`{bad}` must be rejected");
        }
        // Bad priority gets its dedicated code.
        let bad = "tune gpu tensorir 8 12 0\n\n";
        let (code, _) = Request::read(&mut bad.as_bytes(), DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert_eq!(code, RejectCode::BadPriority);
    }

    #[test]
    fn eof_is_none() {
        assert!(Request::read(&mut "".as_bytes(), 10).unwrap().is_none());
        assert!(Response::read(&mut "".as_bytes()).unwrap().is_none());
    }

    #[test]
    fn advertised_payload_length_is_not_trusted() {
        // A header claiming a terabyte payload followed by three real
        // bytes must fail as a truncated message, not allocate a
        // terabyte (fuzz-found abort).
        let tb = 1u64 << 40;
        for input in [
            format!("stats {tb}\nhi\n"),
            format!("err queue_full {tb}\nhi\n"),
            format!("result warm {:016x} 0 {:016x} {tb}\nhi\n", 0u64, 0u64),
        ] {
            let err = Response::read(&mut input.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "`{input}`");
        }
        // The degenerate length that would overflow `len + 1`.
        let max = format!("stats {}\nhi\n", usize::MAX);
        assert!(Response::read(&mut max.as_bytes()).is_err());
    }
}
