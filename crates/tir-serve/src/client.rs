//! A blocking client for the daemon's wire protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time;
//! for concurrent requests, open one client per thread (the daemon
//! deduplicates identical in-flight tunes server-side, so N clients
//! tuning the same workload cost one search).
//!
//! # Robustness
//!
//! The client mirrors the measurement harness's `measure_with_retries`
//! semantics on the wire:
//!
//! * **Reconnect with capped backoff** — when the connection drops (the
//!   daemon restarted, a stale socket), the client transparently
//!   redials and replays the request, up to
//!   [`ReconnectPolicy::max_retries`] times with doubling, capped
//!   backoff. Replay is safe because every request is idempotent: a
//!   re-sent tune lands warm or joins the in-flight search.
//! * **Per-request deadline** — [`Client::set_deadline`] bounds every
//!   socket read while awaiting a response; a server that stalls longer
//!   than the deadline yields a typed [`ClientError::Timeout`], which
//!   is *not* retried (the caller decides whether the work is still
//!   worth waiting for).

use std::io::{BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::protocol::{RejectCode, Request, Response, Source};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or was dropped mid-message (after
    /// exhausting [`ReconnectPolicy::max_retries`] redials).
    Io(std::io::Error),
    /// The server's bytes were not a well-formed response (version skew
    /// or a protocol bug).
    Protocol(String),
    /// The server did not answer within the configured
    /// [`Client::set_deadline`]. The connection is dropped (a late
    /// answer must not be misread as the reply to the *next* request);
    /// the next call redials.
    Timeout {
        /// The deadline that expired.
        after: Duration,
    },
    /// The server refused the request; `code` says why (see the
    /// troubleshooting table in `docs/OPERATIONS.md`).
    Rejected {
        /// Machine-readable rejection reason.
        code: RejectCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Timeout { after } => {
                write!(f, "no response within {:.3}s", after.as_secs_f64())
            }
            ClientError::Rejected { code, message } => {
                write!(f, "rejected ({}): {message}", code.as_str())
            }
        }
    }
}

/// Redial policy for dropped connections, mirroring the measurement
/// harness's `RetryPolicy` (doubling backoff with a cap).
#[derive(Clone, Debug)]
pub struct ReconnectPolicy {
    /// Redials attempted per request after the first failure; `0`
    /// disables reconnection.
    pub max_retries: u32,
    /// Delay before the first redial; doubles per retry.
    pub backoff_base: Duration,
    /// Cap on a single backoff delay.
    pub backoff_cap: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_retries: 3,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(200),
        }
    }
}

impl ReconnectPolicy {
    /// No reconnection: the first connection failure surfaces as
    /// [`ClientError::Io`]. Useful in tests that assert on connection
    /// lifecycle, and for callers that manage redialing themselves.
    pub fn none() -> ReconnectPolicy {
        ReconnectPolicy {
            max_retries: 0,
            ..ReconnectPolicy::default()
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A tuned program as served by the daemon. `best_time` and
/// `tuning_cost_s` are transported as IEEE-754 bits, so they are
/// bit-identical to the server's (and the database's) values.
#[derive(Clone, Debug)]
pub struct TuneReply {
    /// Where the answer came from: [`Source::Warm`] (database, zero
    /// cost), [`Source::Tuned`] (a search ran), or [`Source::Dedup`]
    /// (joined an identical in-flight search).
    pub source: Source,
    /// Simulated execution time of the best program, seconds.
    pub best_time: f64,
    /// Trials this request paid for (0 on warm hits).
    pub trials: usize,
    /// Tuning cost this request paid for, seconds (0.0 on warm hits).
    pub tuning_cost_s: f64,
    /// The best program's text (TVMScript dialect).
    pub func_text: String,
}

/// A blocking connection to a `tir-serve` daemon.
///
/// # Examples
///
/// Start an in-process daemon, probe it, and shut it down:
///
/// ```
/// use tir::DataType;
/// use tir_serve::client::Client;
/// use tir_serve::server::{ServeConfig, Server};
/// use tir_workloads::ops;
///
/// let dir = std::env::temp_dir();
/// let sock = dir.join(format!("tir-serve-doc-{}.sock", std::process::id()));
/// let db = dir.join(format!("tir-serve-doc-{}.db", std::process::id()));
/// let server = Server::start(ServeConfig::new(&sock, &db)).unwrap();
///
/// let mut client = Client::connect(&sock).unwrap();
/// client.ping().unwrap();
///
/// // Nothing tuned yet: a query is a miss, never an implicit tune.
/// let gmm = ops::gmm(32, 32, 32, DataType::float16(), DataType::float32());
/// let reply = client.query("gpu", "tensorir", &gmm.to_string()).unwrap();
/// assert!(reply.is_none());
///
/// client.shutdown().unwrap();
/// server.join();
/// # let _ = std::fs::remove_file(&db);
/// ```
pub struct Client {
    socket_path: PathBuf,
    conn: Option<Conn>,
    policy: ReconnectPolicy,
    deadline: Option<Duration>,
}

/// One live dialed connection.
struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Conn {
    fn dial(socket_path: &Path) -> std::io::Result<Conn> {
        let stream = UnixStream::connect(socket_path)?;
        let writer = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl Client {
    /// Connects to the daemon listening on `socket_path`, with the
    /// default [`ReconnectPolicy`] and no deadline.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket does not exist or refuses
    /// the connection (is the daemon running? see `docs/OPERATIONS.md`).
    pub fn connect(socket_path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Client::connect_with(socket_path, ReconnectPolicy::default())
    }

    /// Connects with an explicit redial policy.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the initial dial fails (the policy
    /// governs *re*connection of an established client, not the first
    /// dial — failing fast here keeps "daemon not running" obvious).
    pub fn connect_with(
        socket_path: impl AsRef<Path>,
        policy: ReconnectPolicy,
    ) -> Result<Client, ClientError> {
        let socket_path = socket_path.as_ref().to_path_buf();
        let conn = Conn::dial(&socket_path)?;
        Ok(Client {
            socket_path,
            conn: Some(conn),
            policy,
            deadline: None,
        })
    }

    /// Bounds every subsequent request: if the server stalls longer
    /// than `deadline` while this client awaits its response, the call
    /// fails with [`ClientError::Timeout`]. `None` (the default) waits
    /// indefinitely — cold tunes legitimately take a while.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Sends one request and reads one response, redialing dropped
    /// connections per the [`ReconnectPolicy`] and mapping server
    /// rejections to [`ClientError::Rejected`].
    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut backoff = self.policy.backoff_base;
        let mut retries = 0u32;
        loop {
            match self.try_roundtrip(req) {
                // Only connection-level failures are worth a redial;
                // timeouts, rejections, and protocol skew are not cured
                // by reconnecting (and a timed-out tune may still be
                // running server-side — the caller decides).
                Err(ClientError::Io(_)) if retries < self.policy.max_retries => {
                    retries += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.policy.backoff_cap);
                }
                other => return other,
            }
        }
    }

    /// One attempt: dial if disconnected, write, await the response.
    /// Any failure other than a semantic rejection leaves the stream in
    /// an unknown state, so the connection is dropped (the next attempt
    /// redials).
    fn try_roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let out = (|| {
            if self.conn.is_none() {
                self.conn = Some(Conn::dial(&self.socket_path)?);
            }
            let conn = self.conn.as_mut().expect("dialed above");
            req.write(&mut conn.writer)?;
            conn.writer.flush()?;
            conn.reader.get_ref().set_read_timeout(self.deadline)?;
            match Response::read(&mut conn.reader) {
                Err(e) => match self.deadline {
                    Some(after) if is_timeout(&e) => Err(ClientError::Timeout { after }),
                    _ => Err(ClientError::Io(e)),
                },
                // EOF mid-request means the daemon went away: an I/O
                // condition (retryable), not protocol skew.
                Ok(None) => Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))),
                Ok(Some(Err(msg))) => Err(ClientError::Protocol(msg)),
                Ok(Some(Ok(Response::Rejected { code, message }))) => {
                    Err(ClientError::Rejected { code, message })
                }
                Ok(Some(Ok(resp))) => Ok(resp),
            }
        })();
        if !matches!(&out, Ok(_) | Err(ClientError::Rejected { .. })) {
            self.conn = None;
        }
        out
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connection failure or a non-`pong` answer.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Tunes `func_text` for `machine` under `strategy` with a budget of
    /// `trials`, at `priority` (0–9, higher served first). Already-tuned
    /// workloads answer warm (zero cost) without searching; a larger
    /// budget than the stored one triggers a background re-tune.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with the server's reason (full queue,
    /// unknown machine/strategy, unparseable program, …), or a
    /// connection/protocol error.
    pub fn tune(
        &mut self,
        machine: &str,
        strategy: &str,
        trials: usize,
        priority: u8,
        func_text: &str,
    ) -> Result<TuneReply, ClientError> {
        let req = Request::Tune {
            machine: machine.to_string(),
            strategy: strategy.to_string(),
            trials,
            priority,
            func_text: func_text.to_string(),
        };
        match self.roundtrip(&req)? {
            Response::Result {
                source,
                best_time,
                trials,
                tuning_cost_s,
                func_text,
            } => Ok(TuneReply {
                source,
                best_time,
                trials,
                tuning_cost_s,
                func_text,
            }),
            other => Err(unexpected("result", &other)),
        }
    }

    /// Probes the database without ever tuning: `Ok(None)` when the
    /// workload has no stored record.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] for invalid machine/strategy/program,
    /// or a connection/protocol error.
    pub fn query(
        &mut self,
        machine: &str,
        strategy: &str,
        func_text: &str,
    ) -> Result<Option<TuneReply>, ClientError> {
        let req = Request::Query {
            machine: machine.to_string(),
            strategy: strategy.to_string(),
            func_text: func_text.to_string(),
        };
        match self.roundtrip(&req)? {
            Response::Miss => Ok(None),
            Response::Result {
                source,
                best_time,
                trials,
                tuning_cost_s,
                func_text,
            } => Ok(Some(TuneReply {
                source,
                best_time,
                trials,
                tuning_cost_s,
                func_text,
            })),
            other => Err(unexpected("result or miss", &other)),
        }
    }

    /// Fetches the server's counters as a JSON string.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connection or protocol failure.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Asks the daemon to shut down gracefully: it stops accepting
    /// work, drains already-queued jobs, persists the database, and
    /// exits.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connection or protocol failure.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("bye", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
