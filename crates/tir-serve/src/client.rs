//! A blocking client for the daemon's wire protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time;
//! for concurrent requests, open one client per thread (the daemon
//! deduplicates identical in-flight tunes server-side, so N clients
//! tuning the same workload cost one search).

use std::io::{BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{RejectCode, Request, Response, Source};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or was dropped mid-message.
    Io(std::io::Error),
    /// The server's bytes were not a well-formed response (version skew
    /// or a protocol bug).
    Protocol(String),
    /// The server refused the request; `code` says why (see the
    /// troubleshooting table in `docs/OPERATIONS.md`).
    Rejected {
        /// Machine-readable rejection reason.
        code: RejectCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Rejected { code, message } => {
                write!(f, "rejected ({}): {message}", code.as_str())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A tuned program as served by the daemon. `best_time` and
/// `tuning_cost_s` are transported as IEEE-754 bits, so they are
/// bit-identical to the server's (and the database's) values.
#[derive(Clone, Debug)]
pub struct TuneReply {
    /// Where the answer came from: [`Source::Warm`] (database, zero
    /// cost), [`Source::Tuned`] (a search ran), or [`Source::Dedup`]
    /// (joined an identical in-flight search).
    pub source: Source,
    /// Simulated execution time of the best program, seconds.
    pub best_time: f64,
    /// Trials this request paid for (0 on warm hits).
    pub trials: usize,
    /// Tuning cost this request paid for, seconds (0.0 on warm hits).
    pub tuning_cost_s: f64,
    /// The best program's text (TVMScript dialect).
    pub func_text: String,
}

/// A blocking connection to a `tir-serve` daemon.
///
/// # Examples
///
/// Start an in-process daemon, probe it, and shut it down:
///
/// ```
/// use tir::DataType;
/// use tir_serve::client::Client;
/// use tir_serve::server::{ServeConfig, Server};
/// use tir_workloads::ops;
///
/// let dir = std::env::temp_dir();
/// let sock = dir.join(format!("tir-serve-doc-{}.sock", std::process::id()));
/// let db = dir.join(format!("tir-serve-doc-{}.db", std::process::id()));
/// let server = Server::start(ServeConfig::new(&sock, &db)).unwrap();
///
/// let mut client = Client::connect(&sock).unwrap();
/// client.ping().unwrap();
///
/// // Nothing tuned yet: a query is a miss, never an implicit tune.
/// let gmm = ops::gmm(32, 32, 32, DataType::float16(), DataType::float32());
/// let reply = client.query("gpu", "tensorir", &gmm.to_string()).unwrap();
/// assert!(reply.is_none());
///
/// client.shutdown().unwrap();
/// server.join();
/// # let _ = std::fs::remove_file(&db);
/// ```
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon listening on `socket_path`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket does not exist or refuses
    /// the connection (is the daemon running? see `docs/OPERATIONS.md`).
    pub fn connect(socket_path: impl AsRef<Path>) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(socket_path)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads one response, mapping server
    /// rejections to [`ClientError::Rejected`].
    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        req.write(&mut self.writer)?;
        self.writer.flush()?;
        match Response::read(&mut self.reader)? {
            None => Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            )),
            Some(Err(msg)) => Err(ClientError::Protocol(msg)),
            Some(Ok(Response::Rejected { code, message })) => {
                Err(ClientError::Rejected { code, message })
            }
            Some(Ok(resp)) => Ok(resp),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connection failure or a non-`pong` answer.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Tunes `func_text` for `machine` under `strategy` with a budget of
    /// `trials`, at `priority` (0–9, higher served first). Already-tuned
    /// workloads answer warm (zero cost) without searching; a larger
    /// budget than the stored one triggers a background re-tune.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with the server's reason (full queue,
    /// unknown machine/strategy, unparseable program, …), or a
    /// connection/protocol error.
    pub fn tune(
        &mut self,
        machine: &str,
        strategy: &str,
        trials: usize,
        priority: u8,
        func_text: &str,
    ) -> Result<TuneReply, ClientError> {
        let req = Request::Tune {
            machine: machine.to_string(),
            strategy: strategy.to_string(),
            trials,
            priority,
            func_text: func_text.to_string(),
        };
        match self.roundtrip(&req)? {
            Response::Result {
                source,
                best_time,
                trials,
                tuning_cost_s,
                func_text,
            } => Ok(TuneReply {
                source,
                best_time,
                trials,
                tuning_cost_s,
                func_text,
            }),
            other => Err(unexpected("result", &other)),
        }
    }

    /// Probes the database without ever tuning: `Ok(None)` when the
    /// workload has no stored record.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] for invalid machine/strategy/program,
    /// or a connection/protocol error.
    pub fn query(
        &mut self,
        machine: &str,
        strategy: &str,
        func_text: &str,
    ) -> Result<Option<TuneReply>, ClientError> {
        let req = Request::Query {
            machine: machine.to_string(),
            strategy: strategy.to_string(),
            func_text: func_text.to_string(),
        };
        match self.roundtrip(&req)? {
            Response::Miss => Ok(None),
            Response::Result {
                source,
                best_time,
                trials,
                tuning_cost_s,
                func_text,
            } => Ok(Some(TuneReply {
                source,
                best_time,
                trials,
                tuning_cost_s,
                func_text,
            })),
            other => Err(unexpected("result or miss", &other)),
        }
    }

    /// Fetches the server's counters as a JSON string.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connection or protocol failure.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Asks the daemon to shut down gracefully: it stops accepting
    /// work, drains already-queued jobs, persists the database, and
    /// exits.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connection or protocol failure.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("bye", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
