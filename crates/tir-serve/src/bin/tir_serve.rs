//! `tir-serve` — the tuning daemon's command-line entry point.
//!
//! Binds a Unix socket, loads (or creates) the persistent tuning
//! database, and serves tune/query requests until a client sends
//! `shutdown` — or until the process receives SIGTERM/SIGINT, which an
//! orchestrator (systemd, Kubernetes, ctrl-C) uses to stop it: the
//! daemon drains its queue, compacts the database, and exits cleanly,
//! so the next start serves everything warm. See `docs/OPERATIONS.md`
//! for the operational guide.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tir_serve::server::{ServeConfig, Server};

/// Set by the signal handler; polled by `main`.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// POSIX signal numbers (no `libc` crate in the tree; these values are
/// fixed by the Linux/BSD ABIs this daemon targets).
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)` from the platform C library. `handler` is either a
    /// function pointer or the special constants 0/1 (DFL/IGN).
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The actual handler: async-signal-safe by construction — it only
/// stores to an atomic. Draining and persisting happen on the main
/// thread, which polls [`SIGNALED`].
extern "C" fn on_signal(_signum: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // SAFETY: `on_signal` is async-signal-safe (a single atomic store),
    // and `signal(2)` with a valid function pointer is well-defined for
    // SIGINT/SIGTERM.
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: tir-serve --socket PATH --db PATH [--workers N] [--capacity N] \
         [--threads N] [--max-payload BYTES] [--seed N] [--trace-out PATH] [--no-opt]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut socket = None;
    let mut db = None;
    let mut trace_out: Option<String> = None;
    let mut cfg_workers = None;
    let mut cfg_capacity = None;
    let mut cfg_threads = None;
    let mut cfg_max_payload = None;
    let mut cfg_seed = None;
    let mut no_opt = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--db" => db = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--workers" => cfg_workers = Some(num(&mut args)),
            "--capacity" => cfg_capacity = Some(num(&mut args)),
            "--threads" => cfg_threads = Some(num(&mut args)),
            "--max-payload" => cfg_max_payload = Some(num(&mut args)),
            "--seed" => cfg_seed = Some(num(&mut args) as u64),
            "--no-opt" => no_opt = true,
            _ => usage(),
        }
    }
    let (Some(socket), Some(db)) = (socket, db) else {
        usage()
    };

    let mut cfg = ServeConfig::new(&socket, &db);
    if let Some(v) = cfg_workers {
        cfg.workers = v;
    }
    if let Some(v) = cfg_capacity {
        cfg.queue_capacity = v;
    }
    if let Some(v) = cfg_threads {
        cfg.tune_threads = v;
    }
    if let Some(v) = cfg_max_payload {
        cfg.max_payload = v;
    }
    if let Some(v) = cfg_seed {
        cfg.seed = v;
    }
    if no_opt {
        cfg.exec_backend = tir_exec::ExecBackend::VmUnopt;
    }

    install_signal_handlers();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tir-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("tir-serve: listening on {socket} (db {db})");

    // Wait for either a client `shutdown` or a termination signal; both
    // end in the same graceful drain-and-persist path.
    while !server.is_shutting_down() && !SIGNALED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    if SIGNALED.load(Ordering::SeqCst) {
        eprintln!("tir-serve: termination signal received; draining and persisting");
        server.request_shutdown();
    }
    let report = server.join();
    println!(
        "tir-serve: shut down ({} warm hits, {} cold tunes, {} dedup joins)",
        report.counter("serve.warm_hits"),
        report.counter("serve.cold_tunes"),
        report.counter("serve.dedup_joins"),
    );
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("tir-serve: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("tir-serve: trace written to {path}");
    }
    ExitCode::SUCCESS
}
