//! `serve-smoke` — a scripted end-to-end session against an in-process
//! daemon, producing `BENCH_serve.json`.
//!
//! The script exercises every service path and asserts its contract:
//!
//! 1. ping, query-miss on a fresh database;
//! 2. one cold tune (latency measured);
//! 3. a burst of warm queries (latency distribution measured) — each
//!    must be bit-identical to the cold tune's answer with
//!    `trials: 0`, `tuning_cost_s: 0.0`;
//! 4. N concurrent clients tuning one fresh fingerprint — exactly one
//!    may report `tuned`; the rest join in flight (`dedup`) or arrive
//!    after completion (`warm`), all bit-identical;
//! 5. a budget upgrade — answered warm immediately, re-tuned in the
//!    background (completion observed via `stats`);
//! 6. graceful shutdown, then a **restart on the same database file** —
//!    the previously tuned fingerprint must answer warm from disk,
//!    bit-identical, with zero trials and zero cost;
//! 7. a publish-latency microbenchmark on a 1000-record database:
//!    the journal's O(1) append vs the pre-journal full-snapshot
//!    rewrite, p50 of each.
//!
//! With `--check` the emitted report is additionally validated (the CI
//! gate): well-formed JSON, every `serve.*` lifecycle phase present,
//! the headline counters consistent with the script, and the journal
//! publish at least 10x faster than the rewrite publish.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use tir::DataType;
use tir_autoschedule::{
    journal_path_for, DiskIo, JournaledDb, Strategy, TuningDatabase, TuningRecord,
};
use tir_serve::client::{Client, TuneReply};
use tir_serve::protocol::Source;
use tir_serve::server::{ServeConfig, Server};
use tir_trace::{is_well_formed_json, TraceReport};
use tir_workloads::ops;

const WARM_QUERIES: usize = 50;
const DEDUP_CLIENTS: usize = 8;
/// Size of the pre-seeded database the publish microbenchmark runs on.
const PUBLISH_DB_RECORDS: usize = 1000;
/// Publishes timed per flavor in the microbenchmark.
const PUBLISH_SAMPLES: usize = 32;
/// `--check` gate: a journal append on a [`PUBLISH_DB_RECORDS`]-record
/// database must beat the pre-journal full rewrite by at least this
/// factor (the rewrite is O(records), the append O(1)).
const PUBLISH_SPEEDUP_GATE: f64 = 10.0;

struct Config {
    out: String,
    trials: usize,
    check: bool,
}

fn usage() -> ! {
    eprintln!("usage: serve-smoke [--out PATH] [--trials N] [--check]");
    std::process::exit(2)
}

fn parse_args() -> Config {
    let mut cfg = Config {
        out: "BENCH_serve.json".to_string(),
        trials: 12,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => cfg.out = args.next().unwrap_or_else(|| usage()),
            "--trials" => {
                cfg.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--check" => cfg.check = true,
            _ => usage(),
        }
    }
    cfg
}

fn fail(msg: &str) -> ! {
    eprintln!("serve-smoke: FAILED: {msg}");
    std::process::exit(1)
}

/// Extracts `"key": N` from the server's flat stats JSON.
fn counter_in(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let Some(at) = json.find(&needle) else {
        return 0;
    };
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn assert_warm(reply: &TuneReply, against: &TuneReply, what: &str) {
    if reply.source != Source::Warm {
        fail(&format!(
            "{what}: expected a warm answer, got {:?}",
            reply.source
        ));
    }
    if reply.trials != 0 || reply.tuning_cost_s != 0.0 {
        fail(&format!(
            "{what}: warm answer must cost nothing, got trials {} cost {}",
            reply.trials, reply.tuning_cost_s
        ));
    }
    if reply.func_text != against.func_text
        || reply.best_time.to_bits() != against.best_time.to_bits()
    {
        fail(&format!(
            "{what}: warm answer is not bit-identical to the tuned one"
        ));
    }
}

fn main() -> ExitCode {
    let cfg = parse_args();
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let sock = dir.join(format!("tir-serve-smoke-{pid}.sock"));
    let db = dir.join(format!("tir-serve-smoke-{pid}.db"));
    let _ = std::fs::remove_file(&db); // the session must start cold

    let func = ops::gmm(64, 64, 64, DataType::float16(), DataType::float32());
    let text = func.to_string();
    let func2 = ops::gmm(48, 48, 48, DataType::float16(), DataType::float32());
    let text2 = func2.to_string();

    println!("serve-smoke: starting daemon on {}", sock.display());
    let server =
        Server::start(ServeConfig::new(&sock, &db)).unwrap_or_else(|e| fail(&e.to_string()));
    let mut c = Client::connect(&sock).unwrap_or_else(|e| fail(&e.to_string()));

    // 1. Liveness and a miss on the fresh database.
    c.ping().unwrap_or_else(|e| fail(&e.to_string()));
    match c.query("gpu", "tensorir", &text) {
        Ok(None) => {}
        Ok(Some(_)) => fail("fresh database answered a query"),
        Err(e) => fail(&e.to_string()),
    }

    // 2. Cold tune.
    let t0 = Instant::now();
    let cold = c
        .tune("gpu", "tensorir", cfg.trials, 5, &text)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let cold_latency_s = t0.elapsed().as_secs_f64();
    if cold.source != Source::Tuned {
        fail(&format!("cold tune answered {:?}", cold.source));
    }
    println!(
        "serve-smoke: cold tune in {cold_latency_s:.3}s wall ({} trials, best {} s)",
        cold.trials,
        json_f64(cold.best_time)
    );

    // 3. Warm burst: queries and a same-budget tune, all free and
    // bit-identical.
    let mut warm_lat = Vec::with_capacity(WARM_QUERIES);
    for i in 0..WARM_QUERIES {
        let t = Instant::now();
        let reply = match c.query("gpu", "tensorir", &text) {
            Ok(Some(r)) => r,
            Ok(None) => fail(&format!("warm query {i} missed")),
            Err(e) => fail(&e.to_string()),
        };
        warm_lat.push(t.elapsed().as_secs_f64());
        assert_warm(&reply, &cold, &format!("warm query {i}"));
    }
    warm_lat.sort_by(f64::total_cmp);
    let warm_tune = c
        .tune("gpu", "tensorir", cfg.trials, 5, &text)
        .unwrap_or_else(|e| fail(&e.to_string()));
    assert_warm(&warm_tune, &cold, "same-budget re-tune");
    println!(
        "serve-smoke: {WARM_QUERIES} warm queries, latency min/p50/max {}/{}/{} s",
        json_f64(warm_lat[0]),
        json_f64(warm_lat[WARM_QUERIES / 2]),
        json_f64(warm_lat[WARM_QUERIES - 1]),
    );

    // 4. Concurrent dedup on a fresh fingerprint: exactly one search.
    let replies: Vec<TuneReply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..DEDUP_CLIENTS)
            .map(|_| {
                let sock = &sock;
                let text2 = &text2;
                scope.spawn(move || {
                    let mut c = Client::connect(sock).unwrap_or_else(|e| fail(&e.to_string()));
                    c.tune("gpu", "tensorir", 10, 5, text2)
                        .unwrap_or_else(|e| fail(&e.to_string()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let tuned = replies.iter().filter(|r| r.source == Source::Tuned).count();
    let dedup = replies.iter().filter(|r| r.source == Source::Dedup).count();
    let warm = replies.iter().filter(|r| r.source == Source::Warm).count();
    if tuned != 1 {
        fail(&format!(
            "{DEDUP_CLIENTS} concurrent clients caused {tuned} searches (expected exactly 1)"
        ));
    }
    for (i, r) in replies.iter().enumerate() {
        if r.func_text != replies[0].func_text
            || r.best_time.to_bits() != replies[0].best_time.to_bits()
        {
            fail(&format!("concurrent client {i} got a different answer"));
        }
    }
    println!(
        "serve-smoke: dedup: {DEDUP_CLIENTS} clients -> 1 tuned, {dedup} dedup joins, {warm} warm"
    );

    // 5. Budget upgrade: warm now, re-tuned in the background.
    let upgrade = c
        .tune("gpu", "tensorir", cfg.trials * 2, 5, &text)
        .unwrap_or_else(|e| fail(&e.to_string()));
    assert_warm(&upgrade, &cold, "budget-upgrade request");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = c.stats().unwrap_or_else(|e| fail(&e.to_string()));
        if counter_in(&stats, "background_done") >= 1 {
            break;
        }
        if Instant::now() > deadline {
            fail("background re-tune did not finish within 60s");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // The upgraded record (possibly improved, never regressed) is the
    // reference for the restart check.
    let upgraded = match c.query("gpu", "tensorir", &text) {
        Ok(Some(r)) => r,
        _ => fail("query after background re-tune missed"),
    };
    if upgraded.best_time > cold.best_time {
        fail("background re-tune regressed the stored record");
    }
    println!(
        "serve-smoke: budget upgrade re-tuned in background, best {} s",
        json_f64(upgraded.best_time)
    );

    // 6. Shutdown, restart on the same database, warm from disk.
    let stats = c.stats().unwrap_or_else(|e| fail(&e.to_string()));
    println!("serve-smoke: stats {stats}");
    c.shutdown().unwrap_or_else(|e| fail(&e.to_string()));
    let report = server.join();

    let server2 =
        Server::start(ServeConfig::new(&sock, &db)).unwrap_or_else(|e| fail(&e.to_string()));
    let mut c2 = Client::connect(&sock).unwrap_or_else(|e| fail(&e.to_string()));
    let t = Instant::now();
    let restart_reply = c2
        .tune("gpu", "tensorir", cfg.trials, 5, &text)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let restart_latency_s = t.elapsed().as_secs_f64();
    assert_warm(&restart_reply, &upgraded, "restarted daemon");
    c2.shutdown().unwrap_or_else(|e| fail(&e.to_string()));
    server2.join();
    println!(
        "serve-smoke: restart served the tuned record warm from disk in {restart_latency_s:.6}s"
    );

    // 7. Publish-latency microbenchmark: O(1) journal append vs the
    // pre-journal full-snapshot rewrite, both on a 1k-record database.
    let (journal_p50_s, rewrite_p50_s, publish_speedup) = publish_latency_bench();
    println!(
        "serve-smoke: publish on {PUBLISH_DB_RECORDS} records: journal append p50 {}s, \
         full rewrite p50 {}s ({publish_speedup:.1}x)",
        json_f64(journal_p50_s),
        json_f64(rewrite_p50_s),
    );

    // Report.
    let text_out = render_report(
        &cfg,
        cold_latency_s,
        &warm_lat,
        tuned,
        dedup,
        warm,
        restart_latency_s,
        (journal_p50_s, rewrite_p50_s, publish_speedup),
        &report,
    );
    if let Err(e) = std::fs::write(&cfg.out, &text_out) {
        fail(&format!("cannot write {}: {e}", cfg.out));
    }
    println!("serve-smoke: report written to {}", cfg.out);

    let _ = std::fs::remove_file(&db);
    if cfg.check {
        let errors = check_report(&text_out, publish_speedup, &report);
        if !errors.is_empty() {
            for e in &errors {
                eprintln!("serve-smoke: CHECK FAILED: {e}");
            }
            return ExitCode::FAILURE;
        }
        println!("serve-smoke: check passed: JSON well-formed, all lifecycle phases traced");
    }
    ExitCode::SUCCESS
}

/// Times [`PUBLISH_SAMPLES`] publishes against a pre-seeded
/// [`PUBLISH_DB_RECORDS`]-record database, once through the journal
/// (O(1) append + fsync) and once through the pre-journal path (full
/// snapshot rewrite per publish). Returns `(journal_p50_s,
/// rewrite_p50_s, speedup)`.
fn publish_latency_bench() -> (f64, f64, f64) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let snap = dir.join(format!("tir-smoke-publish-{pid}.db"));
    let journal = journal_path_for(&snap);
    let rewrite = dir.join(format!("tir-smoke-rewrite-{pid}.db"));
    for p in [&snap, &journal, &rewrite] {
        let _ = std::fs::remove_file(p);
    }

    let record = TuningRecord {
        best: ops::gmm(32, 32, 32, DataType::float16(), DataType::float32()),
        best_time: 1.25e-4,
        trials: 16,
        budget: 16,
        tuning_cost_s: 0.25,
    };
    let mut seed = TuningDatabase::new();
    for i in 0..PUBLISH_DB_RECORDS {
        seed.insert(
            "gpu",
            Strategy::TensorIr,
            format!("bench-{i:04}"),
            record.clone(),
        );
    }
    seed.save(&snap)
        .unwrap_or_else(|e| fail(&format!("seeding the bench database: {e}")));

    // Journal flavor: publish is an O(1) append + fsync regardless of
    // database size. Compaction is pushed out of the way so the timer
    // sees pure appends.
    let (mut jdb, _) = JournaledDb::open(Box::new(DiskIo), &snap)
        .unwrap_or_else(|e| fail(&format!("opening the bench database: {e}")));
    jdb.compact_threshold = usize::MAX;
    let mut journal_lat = Vec::with_capacity(PUBLISH_SAMPLES);
    for s in 0..PUBLISH_SAMPLES {
        let key = format!("bench-extra-{s:04}");
        let rec = record.clone();
        let t = Instant::now();
        jdb.publish("gpu", Strategy::TensorIr, key, rec)
            .unwrap_or_else(|e| fail(&format!("journal publish: {e}")));
        journal_lat.push(t.elapsed().as_secs_f64());
    }

    // Rewrite flavor: what every publish cost before the journal —
    // re-encode and atomically rewrite the whole snapshot.
    let mut rewrite_lat = Vec::with_capacity(PUBLISH_SAMPLES);
    for s in 0..PUBLISH_SAMPLES {
        seed.insert(
            "gpu",
            Strategy::TensorIr,
            format!("bench-extra-{s:04}"),
            record.clone(),
        );
        let t = Instant::now();
        seed.save(&rewrite)
            .unwrap_or_else(|e| fail(&format!("rewrite publish: {e}")));
        rewrite_lat.push(t.elapsed().as_secs_f64());
    }

    for p in [&snap, &journal, &rewrite] {
        let _ = std::fs::remove_file(p);
    }
    journal_lat.sort_by(f64::total_cmp);
    rewrite_lat.sort_by(f64::total_cmp);
    let journal_p50 = journal_lat[PUBLISH_SAMPLES / 2];
    let rewrite_p50 = rewrite_lat[PUBLISH_SAMPLES / 2];
    (journal_p50, rewrite_p50, rewrite_p50 / journal_p50)
}

#[allow(clippy::too_many_arguments)]
fn render_report(
    cfg: &Config,
    cold_latency_s: f64,
    warm_lat: &[f64],
    tuned: usize,
    dedup: usize,
    warm: usize,
    restart_latency_s: f64,
    publish: (f64, f64, f64),
    report: &TraceReport,
) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\n");
    out.push_str(&format!("  \"trials\": {},\n", cfg.trials));
    out.push_str(&format!(
        "  \"cold_latency_s\": {},\n",
        json_f64(cold_latency_s)
    ));
    out.push_str(&format!("  \"warm_queries\": {},\n", warm_lat.len()));
    out.push_str(&format!(
        "  \"warm_latency_s_min\": {},\n",
        json_f64(warm_lat[0])
    ));
    out.push_str(&format!(
        "  \"warm_latency_s_p50\": {},\n",
        json_f64(warm_lat[warm_lat.len() / 2])
    ));
    out.push_str(&format!(
        "  \"warm_latency_s_max\": {},\n",
        json_f64(warm_lat[warm_lat.len() - 1])
    ));
    out.push_str(&format!("  \"dedup_clients\": {DEDUP_CLIENTS},\n"));
    out.push_str(&format!("  \"dedup_tuned\": {tuned},\n"));
    out.push_str(&format!("  \"dedup_joined\": {dedup},\n"));
    out.push_str(&format!("  \"dedup_warm\": {warm},\n"));
    out.push_str(&format!(
        "  \"dedup_searches_saved\": {},\n",
        DEDUP_CLIENTS - tuned
    ));
    out.push_str(&format!(
        "  \"restart_warm_latency_s\": {},\n",
        json_f64(restart_latency_s)
    ));
    let (journal_p50_s, rewrite_p50_s, speedup) = publish;
    out.push_str(&format!(
        "  \"publish_db_records\": {PUBLISH_DB_RECORDS},\n"
    ));
    out.push_str(&format!("  \"publish_samples\": {PUBLISH_SAMPLES},\n"));
    out.push_str(&format!(
        "  \"publish_journal_p50_s\": {},\n",
        json_f64(journal_p50_s)
    ));
    out.push_str(&format!(
        "  \"publish_rewrite_p50_s\": {},\n",
        json_f64(rewrite_p50_s)
    ));
    out.push_str(&format!("  \"publish_speedup\": {},\n", json_f64(speedup)));
    // Indent the embedded trace one level so the file stays readable.
    let trace = report.to_json();
    out.push_str("  \"trace\": ");
    for (i, line) in trace.lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str("\n}\n");
    out
}

/// The CI gate: the report must be well-formed, the trace must carry
/// every request-lifecycle phase and headline counter, and a journal
/// publish must beat the full-rewrite publish by the gate factor.
fn check_report(text: &str, publish_speedup: f64, report: &TraceReport) -> Vec<String> {
    let mut errors = Vec::new();
    if !is_well_formed_json(text) {
        errors.push("report is not well-formed JSON".to_string());
    }
    for key in [
        "\"cold_latency_s\"",
        "\"warm_latency_s_p50\"",
        "\"dedup_searches_saved\"",
        "\"restart_warm_latency_s\"",
        "\"publish_journal_p50_s\"",
        "\"publish_rewrite_p50_s\"",
        "\"publish_speedup\"",
        "\"trace\"",
    ] {
        if !text.contains(key) {
            errors.push(format!("missing required key {key}"));
        }
    }
    for phase in [
        "serve.admission",
        "serve.db_lookup",
        "serve.queue_wait",
        "serve.tune",
        "serve.respond",
    ] {
        if report.phase(phase).is_none() {
            errors.push(format!("missing lifecycle phase {phase}"));
        }
    }
    if report.counter("serve.cold_tunes") < 1 {
        errors.push("no cold tune was traced".to_string());
    }
    if report.counter("serve.warm_hits") < WARM_QUERIES as u64 {
        errors.push("warm hits were not traced".to_string());
    }
    if report.counter("serve.background_done") < 1 {
        errors.push("background re-tune was not traced".to_string());
    }
    if publish_speedup < PUBLISH_SPEEDUP_GATE {
        errors.push(format!(
            "journal publish is only {publish_speedup:.1}x faster than the full rewrite \
             on {PUBLISH_DB_RECORDS} records (gate: {PUBLISH_SPEEDUP_GATE}x)"
        ));
    }
    errors
}
