//! # tir-serve — tuning as a service
//!
//! The paper's auto-scheduler (§4.4) amortizes its search cost across
//! users: once an operator has been tuned for a machine, *nobody* should
//! pay that search again. This crate is the amortization vehicle — a
//! long-lived daemon that owns the persistent
//! [`tir_autoschedule::TuningDatabase`] and serves tune/query requests
//! from many concurrent clients over a local Unix socket:
//!
//! * [`protocol`] — the line-delimited wire protocol: requests,
//!   responses, rejection codes, with `f64`s carried as IEEE-754 bits so
//!   results are **bit-exact** over the wire;
//! * [`server`] — the daemon: admission control (bounded queue,
//!   reject-with-reason), a priority job queue drained by a worker pool,
//!   in-flight deduplication (the second requester of a fingerprint
//!   blocks on the first's result instead of re-tuning), warm answers
//!   straight from the database, and background re-tuning on budget
//!   upgrades — all with [`tir_trace`] spans on every request phase;
//! * [`client`] — a blocking client for the protocol, used by the
//!   `serve-smoke` benchmark, the integration tests, and operators'
//!   scripts.
//!
//! The database file on disk uses the same atomic-write,
//! corruption-detecting text format as the tuner's checkpoints: a killed
//! and restarted daemon answers every previously tuned fingerprint from
//! disk, warm, with zero additional trials.
//!
//! Operational documentation — running the daemon, the database file's
//! guarantees, metrics interpretation, and a troubleshooting table for
//! every rejection reason — lives in `docs/OPERATIONS.md` at the
//! repository root.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, TuneReply};
pub use protocol::{RejectCode, Request, Response, Source};
pub use server::{ServeConfig, Server, StartError};
