//! # tir-serve — tuning as a service
//!
//! The paper's auto-scheduler (§4.4) amortizes its search cost across
//! users: once an operator has been tuned for a machine, *nobody* should
//! pay that search again. This crate is the amortization vehicle — a
//! long-lived daemon that owns the persistent
//! [`tir_autoschedule::TuningDatabase`] and serves tune/query requests
//! from many concurrent clients over a local Unix socket:
//!
//! * [`protocol`] — the line-delimited wire protocol: requests,
//!   responses, rejection codes, with `f64`s carried as IEEE-754 bits so
//!   results are **bit-exact** over the wire;
//! * [`server`] — the daemon: admission control (bounded queue,
//!   reject-with-reason), a priority job queue drained by a worker pool,
//!   in-flight deduplication (the second requester of a fingerprint
//!   blocks on the first's result instead of re-tuning), warm answers
//!   straight from the database, and background re-tuning on budget
//!   upgrades — all with [`tir_trace`] spans on every request phase;
//! * [`client`] — a blocking client for the protocol, used by the
//!   `serve-smoke` benchmark, the integration tests, and operators'
//!   scripts.
//!
//! The database is a [`tir_autoschedule::JournaledDb`]: each publish
//! appends one checksummed, fsynced entry to a write-ahead journal
//! (O(1) in the database size) and a compaction folds the journal into
//! the atomic-write snapshot on shutdown. A request is acknowledged
//! only after its record is fsynced, so a killed and restarted daemon —
//! even one killed mid-append — answers every previously acknowledged
//! fingerprint from disk, warm, bit-identically, with zero additional
//! trials. The chaos harness (`tests/serve_chaos.rs`) enforces exactly
//! that at every injected crash point.
//!
//! Operational documentation — running the daemon, the database file's
//! guarantees, metrics interpretation, and a troubleshooting table for
//! every rejection reason — lives in `docs/OPERATIONS.md` at the
//! repository root.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ReconnectPolicy, TuneReply};
pub use protocol::{RejectCode, Request, Response, Source};
pub use server::{ServeConfig, Server, StartError};
