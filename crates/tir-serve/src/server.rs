//! The tuning daemon: a Unix-socket server multiplexing concurrent
//! tune/query requests onto a shared persistent, journaled tuning
//! database ([`JournaledDb`]).
//!
//! # Request lifecycle
//!
//! ```text
//! client ──► admission ──► db lookup ──┬─► warm hit ───────────────► respond
//!            (validate,                ├─► budget upgrade ─► warm ─► respond
//!             reject)                  │        └─► background re-tune job
//!                                      └─► miss ─► in-flight? ─► join (dedup)
//!                                                     └─► enqueue ─► worker
//!                                                          tunes, journals,
//!                                                          publishes ─► respond
//! ```
//!
//! Every phase emits a `serve.*` span into the server's
//! [`tir_trace::Collector`]; unlike the `search.*` spans (which carry
//! deterministic simulated seconds), `serve.*` spans carry **wall-clock
//! seconds** — the daemon's latency is a property of the machine it runs
//! on, not of the simulation, and the spans exist to attribute it.
//!
//! # Concurrency invariants
//!
//! * Lock order is `inflight` before `queue`; the database lock is
//!   never held together with either.
//! * A worker publishes a finished job in the order: database insert +
//!   journal append + fsync → remove from `inflight` → set the job's
//!   result and notify. A request arriving between any two of those
//!   steps therefore either sees the record in the database (warm hit)
//!   or finds the job still in flight (dedup join) — it can never
//!   re-tune a finished fingerprint.
//! * Workers drain the queue completely before exiting on shutdown, so
//!   every admitted request is answered.
//!
//! # Durability invariant
//!
//! The database is a [`JournaledDb`]: each publish appends one fsynced
//! entry to a write-ahead journal (O(1) in the database size), and the
//! requester is notified only **after** that append+fsync returned. So
//! *acknowledged ⇒ durable*: a crash at any instant loses at most tunes
//! that no client was told succeeded. A publish whose journal append
//! fails transiently is retried ([`ServeConfig::save_retries`] attempts
//! with doubling backoff); if all attempts fail, the record is kept in
//! memory, the failure is counted on `serve.db_save_failures`, and the
//! stats response reports `db_degraded: 1` until a later compaction
//! folds the memory state into the snapshot — degradation is never
//! silent. See `docs/OPERATIONS.md` for the recovery runbook.

use std::collections::{BinaryHeap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tir::parser::parse_func;
use tir::PrimFunc;
use tir_autoschedule::{
    tune_workload, workload_key, DbError, FaultIo, IoProfile, JournaledDb, Strategy, TuneOptions,
    TuningRecord, WarmStart,
};
use tir_exec::Machine;
use tir_tensorize::builtin_registry;
use tir_trace::{Collector, Key, TraceReport};

use crate::protocol::{RejectCode, Request, Response, Source};

/// Phase sequence numbers used in span [`Key`]s, so one request's spans
/// sort in lifecycle order under its request id.
const PH_ADMISSION: u64 = 0;
const PH_DB_LOOKUP: u64 = 1;
const PH_QUEUE_WAIT: u64 = 2;
const PH_TUNE: u64 = 3;
const PH_RESPOND: u64 = 4;

/// How often an idle connection thread checks the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(50);
/// How long a connection may stall in the middle of one message before
/// the server drops it (protects shutdown from half-written requests).
const MSG_STALL: Duration = Duration::from_secs(2);
/// Accept-loop poll interval.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Daemon configuration. Construct with [`ServeConfig::new`] and adjust
/// fields as needed.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Path of the Unix socket to listen on. A stale socket file at
    /// this path is removed on startup.
    pub socket_path: PathBuf,
    /// Path of the persistent tuning database. Missing is fine (the
    /// daemon starts empty); an existing-but-corrupt file is a startup
    /// error, never silent data loss.
    pub db_path: PathBuf,
    /// Admission bound: tune requests beyond this many queued jobs are
    /// rejected with [`RejectCode::QueueFull`].
    pub queue_capacity: usize,
    /// Tuning worker threads (each runs one search at a time).
    pub workers: usize,
    /// Maximum request payload (program text) in bytes; larger requests
    /// are rejected with [`RejectCode::PayloadTooLarge`].
    pub max_payload: usize,
    /// `num_threads` passed to each search ([`TuneOptions`]); `1` keeps
    /// individual tunes cheap and lets the worker pool provide the
    /// parallelism.
    pub tune_threads: usize,
    /// Search seed. All tunes served by one daemon use one seed, so
    /// equal requests produce bit-identical results.
    pub seed: u64,
    /// Bytecode backend threaded into every search's
    /// `TuneOptions::exec_backend`. The default optimized VM and the
    /// unoptimized VM are bit-identical; `--no-opt` on the daemon
    /// switches to [`tir_exec::ExecBackend::VmUnopt`] so a suspected
    /// optimizer regression can be bisected in production without a
    /// rebuild. Never changes tuning results.
    pub exec_backend: tir_exec::ExecBackend,
    /// Storage backend for the journaled database: [`IoProfile::Disk`]
    /// in production, [`IoProfile::Fault`] under the chaos harness.
    pub io_profile: IoProfile,
    /// Journal size (bytes) past which a publish folds the journal into
    /// the snapshot inline ([`JournaledDb::compact_threshold`]).
    pub journal_compact_bytes: usize,
    /// Attempts for one publish's journal append before the daemon
    /// gives up, keeps the record memory-only, and reports itself
    /// degraded. Backoff doubles between attempts from 10 ms.
    pub save_retries: usize,
}

impl ServeConfig {
    /// A configuration with the default queue capacity (64), worker
    /// count (2), payload cap (1 MiB), one search thread, and seed 42.
    pub fn new(socket_path: impl AsRef<Path>, db_path: impl AsRef<Path>) -> ServeConfig {
        ServeConfig {
            socket_path: socket_path.as_ref().to_path_buf(),
            db_path: db_path.as_ref().to_path_buf(),
            queue_capacity: 64,
            workers: 2,
            max_payload: crate::protocol::DEFAULT_MAX_PAYLOAD,
            tune_threads: 1,
            seed: 42,
            exec_backend: tir_exec::ExecBackend::default(),
            io_profile: IoProfile::Disk,
            journal_compact_bytes: JournaledDb::DEFAULT_COMPACT_THRESHOLD,
            save_retries: 3,
        }
    }
}

/// Why [`Server::start`] failed.
#[derive(Debug)]
pub enum StartError {
    /// The database file exists but cannot be loaded (I/O failure or
    /// detected corruption). The daemon refuses to start rather than
    /// silently discard tuned records.
    Db(DbError),
    /// Socket setup failed (bind, stale-socket removal, nonblocking
    /// mode).
    Io(std::io::Error),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Db(e) => write!(f, "cannot open tuning database: {e}"),
            StartError::Io(e) => write!(f, "cannot set up server socket: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

/// Identifies one tunable unit: `(machine name, strategy label,
/// workload fingerprint)` — the same triple the database is keyed by.
type JobKey = (String, &'static str, String);

/// A finished tune's reply data, shared verbatim with every joiner.
#[derive(Clone)]
struct Tuned {
    best_time: f64,
    trials: usize,
    tuning_cost_s: f64,
    func_text: String,
}

/// One queued tuning job. Requesters block on `done`/`cv`; the worker
/// that pops the job publishes exactly once.
struct Job {
    machine: Machine,
    strategy: Strategy,
    fingerprint: String,
    func: PrimFunc,
    trials: usize,
    rid: u64,
    background: bool,
    warm: Option<WarmStart>,
    enqueued_at: Instant,
    done: Mutex<Option<Result<Tuned, String>>>,
    cv: Condvar,
}

impl Job {
    fn key(&self) -> JobKey {
        (
            self.machine.name.clone(),
            self.strategy.label(),
            self.fingerprint.clone(),
        )
    }

    /// Blocks until the worker publishes this job's result.
    fn wait(&self) -> Result<Tuned, String> {
        let mut g = self.done.lock().expect("job lock");
        while g.is_none() {
            g = self.cv.wait(g).expect("job lock");
        }
        g.clone().expect("checked above")
    }
}

/// Priority-queue entry: higher priority first, FIFO within a priority.
struct QueueEntry {
    priority: u8,
    seq: u64,
    job: Arc<Job>,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for QueueEntry {}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    cfg: ServeConfig,
    db: Mutex<JournaledDb>,
    inflight: Mutex<HashMap<JobKey, Arc<Job>>>,
    queue: Mutex<BinaryHeap<QueueEntry>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    collector: Collector,
    trace_stream: u64,
    rid: AtomicU64,
    job_seq: AtomicU64,
}

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// call [`Server::join`] (after a client sent `shutdown`, or after
/// [`Server::request_shutdown`]) to stop and collect the trace report.
pub struct Server {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the daemon: loads (or creates) the database, binds the
    /// socket, and spawns the worker pool and accept loop.
    ///
    /// # Errors
    ///
    /// [`StartError::Db`] when the database file exists but cannot be
    /// loaded; [`StartError::Io`] when socket setup fails.
    pub fn start(cfg: ServeConfig) -> Result<Server, StartError> {
        let (mut db, recovery) =
            JournaledDb::open(cfg.io_profile.build(), &cfg.db_path).map_err(StartError::Db)?;
        db.compact_threshold = cfg.journal_compact_bytes;
        match std::fs::remove_file(&cfg.socket_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StartError::Io(e)),
        }
        let listener = UnixListener::bind(&cfg.socket_path).map_err(StartError::Io)?;
        listener.set_nonblocking(true).map_err(StartError::Io)?;

        let collector = Collector::new();
        let trace_stream = collector.stream("serve");
        collector.count("serve.journal_replayed", recovery.journal_replayed as u64);
        collector.count(
            "serve.journal_salvaged_bytes",
            recovery.salvaged_bytes as u64,
        );
        if recovery.salvaged() {
            eprintln!(
                "tir-serve: recovered from a torn journal tail ({} bytes truncated, {} entries replayed)",
                recovery.salvaged_bytes, recovery.journal_replayed
            );
        }
        let shared = Arc::new(Shared {
            cfg,
            db: Mutex::new(db),
            inflight: Mutex::new(HashMap::new()),
            queue: Mutex::new(BinaryHeap::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            collector,
            trace_stream,
            rid: AtomicU64::new(0),
            job_seq: AtomicU64::new(0),
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let sh = shared.clone();
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        let accept = {
            let sh = shared.clone();
            std::thread::spawn(move || accept_loop(&sh, listener))
        };
        Ok(Server {
            shared,
            accept,
            workers,
        })
    }

    /// The socket path clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.shared.cfg.socket_path
    }

    /// Requests shutdown without a client connection: stops accepting,
    /// lets workers drain the queue. Follow with [`Server::join`].
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether shutdown has been requested (by a client's `shutdown`,
    /// by [`Server::request_shutdown`], or internally after a fatal
    /// storage failure). Lets an embedding binary poll for signal-driven
    /// shutdown instead of blocking in [`Server::join`].
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the daemon has shut down (a client sent `shutdown`
    /// or [`Server::request_shutdown`] was called), persists the final
    /// database state (including hit/miss counters), removes the socket
    /// file, and returns the merged trace report.
    pub fn join(self) -> TraceReport {
        let _ = self.accept.join();
        self.shared.queue_cv.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
        {
            // Fold the journal (and any degraded memory-only records)
            // into the snapshot; also persists the hit/miss counters.
            let mut db = self.shared.db.lock().expect("db lock");
            if let Err(e) = db.compact() {
                eprintln!("tir-serve: final database compaction failed: {e}");
            }
        }
        let _ = std::fs::remove_file(&self.shared.cfg.socket_path);
        self.shared.collector.report()
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn accept_loop(shared: &Arc<Shared>, listener: UnixListener) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let sh = shared.clone();
                handlers.push(std::thread::spawn(move || {
                    // An I/O error just drops this one connection.
                    let _ = handle_conn(&sh, stream);
                }));
            }
            Err(e) if is_timeout(&e) => std::thread::sleep(ACCEPT_POLL),
            Err(e) => {
                eprintln!("tir-serve: accept failed: {e}");
                break;
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: UnixStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        // Idle wait: poll for the next request or for shutdown.
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // clean EOF
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        // A message has started; allow a bounded mid-message stall so a
        // wedged client cannot hang shutdown forever.
        reader.get_ref().set_read_timeout(Some(MSG_STALL))?;
        let msg = Request::read(&mut reader, shared.cfg.max_payload)?;
        reader.get_ref().set_read_timeout(Some(IDLE_POLL))?;
        let Some(msg) = msg else { return Ok(()) };

        let rid = shared.rid.fetch_add(1, Ordering::Relaxed);
        let (resp, last) = match msg {
            Ok(Request::Shutdown) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.queue_cv.notify_all();
                (Response::Bye, true)
            }
            Ok(req) => (handle_request(shared, req, rid), false),
            // A reject raised while *reading* the message (bad header,
            // oversized payload) may leave unconsumed payload bytes on
            // the stream; the only safe resync is to answer and close.
            // Semantic rejections (unknown machine, full queue, …) are
            // raised after full consumption and keep the connection.
            Err((code, message)) => (Response::Rejected { code, message }, true),
        };
        if let Response::Rejected { code, .. } = &resp {
            shared
                .collector
                .count(&format!("serve.reject.{}", code.as_str()), 1);
        }
        let t = Instant::now();
        resp.write(&mut writer)?;
        writer.flush()?;
        shared.collector.span(
            "serve.respond",
            Key::coord(shared.trace_stream, rid, PH_RESPOND),
            t.elapsed().as_secs_f64(),
            1,
        );
        if last {
            return Ok(());
        }
    }
}

fn handle_request(shared: &Arc<Shared>, req: Request, rid: u64) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::Bye, // handled by the caller
        Request::Stats => Response::Stats {
            json: stats_json(shared),
        },
        Request::Query {
            machine,
            strategy,
            func_text,
        } => handle_query(shared, rid, &machine, &strategy, &func_text),
        Request::Tune {
            machine,
            strategy,
            trials,
            priority,
            func_text,
        } => handle_tune(
            shared, rid, &machine, &strategy, trials, priority, &func_text,
        ),
    }
}

fn resolve_machine(name: &str) -> Option<Machine> {
    match name {
        "gpu" => Some(Machine::sim_gpu()),
        "arm" => Some(Machine::sim_arm()),
        "arm-v86" => Some(Machine::sim_arm_v86()),
        _ => None,
    }
}

fn resolve_strategy(name: &str) -> Option<Strategy> {
    match name {
        "tensorir" => Some(Strategy::TensorIr),
        "ansor" => Some(Strategy::Ansor),
        "amos" => Some(Strategy::Amos),
        _ => None,
    }
}

/// Validation shared by tune and query: machine, strategy, program.
/// Emits the `serve.admission` span whether or not admission succeeds.
fn admit(
    shared: &Shared,
    rid: u64,
    machine: &str,
    strategy: &str,
    func_text: &str,
) -> Result<(Machine, Strategy, PrimFunc, String), Response> {
    let t = Instant::now();
    let out = match (resolve_machine(machine), resolve_strategy(strategy)) {
        (None, _) => Err(Response::Rejected {
            code: RejectCode::UnknownMachine,
            message: format!("unknown machine `{machine}` (expected gpu, arm, or arm-v86)"),
        }),
        (_, None) => Err(Response::Rejected {
            code: RejectCode::UnknownStrategy,
            message: format!("unknown strategy `{strategy}` (expected tensorir, ansor, or amos)"),
        }),
        (Some(m), Some(s)) => match parse_func(func_text) {
            Ok(f) => {
                let key = workload_key(&f);
                Ok((m, s, f, key))
            }
            Err(e) => Err(Response::Rejected {
                code: RejectCode::ParseError,
                message: format!("program does not parse: {e}"),
            }),
        },
    };
    shared.collector.span(
        "serve.admission",
        Key::coord(shared.trace_stream, rid, PH_ADMISSION),
        t.elapsed().as_secs_f64(),
        1,
    );
    out
}

fn handle_query(
    shared: &Arc<Shared>,
    rid: u64,
    machine: &str,
    strategy: &str,
    func_text: &str,
) -> Response {
    let t_req = Instant::now();
    let (m, s, _func, key) = match admit(shared, rid, machine, strategy, func_text) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let t = Instant::now();
    let hit = {
        let db = shared.db.lock().expect("db lock");
        db.db()
            .peek(&m.name, s, &key)
            .map(|rec| (rec.best.to_string(), rec.best_time))
    };
    shared.collector.span(
        "serve.db_lookup",
        Key::coord(shared.trace_stream, rid, PH_DB_LOOKUP),
        t.elapsed().as_secs_f64(),
        1,
    );
    match hit {
        Some((text, best_time)) => {
            shared.collector.count("serve.warm_hits", 1);
            shared
                .collector
                .observe("serve.latency.warm_s", t_req.elapsed().as_secs_f64());
            Response::Result {
                source: Source::Warm,
                best_time,
                trials: 0,
                tuning_cost_s: 0.0,
                func_text: text,
            }
        }
        None => Response::Miss,
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_tune(
    shared: &Arc<Shared>,
    rid: u64,
    machine: &str,
    strategy: &str,
    trials: usize,
    priority: u8,
    func_text: &str,
) -> Response {
    if trials == 0 {
        return Response::Rejected {
            code: RejectCode::BadRequest,
            message: "trials must be at least 1".to_string(),
        };
    }
    let t_req = Instant::now();
    let (m, s, func, key) = match admit(shared, rid, machine, strategy, func_text) {
        Ok(v) => v,
        Err(resp) => return resp,
    };

    // Database lookup (counts a hit or a miss on the shared counters).
    let t = Instant::now();
    let hit = {
        let mut db = shared.db.lock().expect("db lock");
        db.db_mut()
            .lookup(&m.name, s, &key)
            .map(|rec| (rec.budget, rec.best.clone(), rec.best_time))
    };
    shared.collector.span(
        "serve.db_lookup",
        Key::coord(shared.trace_stream, rid, PH_DB_LOOKUP),
        t.elapsed().as_secs_f64(),
        1,
    );

    if let Some((budget, best, best_time)) = hit {
        let text = best.to_string();
        if trials > budget {
            // Budget upgrade: answer warm now, re-tune in the background
            // warm-started from the stored best (the record can only
            // improve, never regress).
            enqueue_background(
                shared,
                &m,
                s,
                &key,
                &func,
                trials,
                WarmStart { best, best_time },
            );
        }
        shared.collector.count("serve.warm_hits", 1);
        shared
            .collector
            .observe("serve.latency.warm_s", t_req.elapsed().as_secs_f64());
        return Response::Result {
            source: Source::Warm,
            best_time,
            trials: 0,
            tuning_cost_s: 0.0,
            func_text: text,
        };
    }

    // Cold path: join an identical in-flight tune, or enqueue our own.
    enum Path {
        Owner(Arc<Job>),
        Joiner(Arc<Job>),
        Reject(Response),
    }
    let key3: JobKey = (m.name.clone(), s.label(), key.clone());
    let path = {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        if let Some(job) = inflight.get(&key3) {
            Path::Joiner(job.clone())
        } else {
            let mut queue = shared.queue.lock().expect("queue lock");
            if shared.shutdown.load(Ordering::SeqCst) {
                Path::Reject(Response::Rejected {
                    code: RejectCode::ShuttingDown,
                    message: "server is shutting down; tuning work is no longer accepted"
                        .to_string(),
                })
            } else if queue.len() >= shared.cfg.queue_capacity {
                Path::Reject(Response::Rejected {
                    code: RejectCode::QueueFull,
                    message: format!(
                        "job queue at capacity ({} pending); retry later",
                        shared.cfg.queue_capacity
                    ),
                })
            } else {
                let job = Arc::new(Job {
                    machine: m,
                    strategy: s,
                    fingerprint: key,
                    func,
                    trials,
                    rid,
                    background: false,
                    warm: None,
                    enqueued_at: Instant::now(),
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                inflight.insert(key3, job.clone());
                queue.push(QueueEntry {
                    priority,
                    seq: shared.job_seq.fetch_add(1, Ordering::Relaxed),
                    job: job.clone(),
                });
                shared.queue_cv.notify_one();
                Path::Owner(job)
            }
        }
    };

    match path {
        Path::Reject(resp) => resp,
        Path::Owner(job) => match job.wait() {
            Ok(tuned) => {
                shared.collector.count("serve.cold_tunes", 1);
                shared
                    .collector
                    .observe("serve.latency.cold_s", t_req.elapsed().as_secs_f64());
                Response::Result {
                    source: Source::Tuned,
                    best_time: tuned.best_time,
                    trials: tuned.trials,
                    tuning_cost_s: tuned.tuning_cost_s,
                    func_text: tuned.func_text,
                }
            }
            Err(message) => Response::Rejected {
                code: RejectCode::Internal,
                message,
            },
        },
        Path::Joiner(job) => match job.wait() {
            Ok(tuned) => {
                shared.collector.count("serve.dedup_joins", 1);
                Response::Result {
                    source: Source::Dedup,
                    best_time: tuned.best_time,
                    trials: tuned.trials,
                    tuning_cost_s: tuned.tuning_cost_s,
                    func_text: tuned.func_text,
                }
            }
            Err(message) => Response::Rejected {
                code: RejectCode::Internal,
                message,
            },
        },
    }
}

/// Enqueues a background (budget-upgrade) re-tune: lowest priority, no
/// waiting requester. Skipped when the fingerprint is already in
/// flight; dropped (and counted) when the queue is full.
fn enqueue_background(
    shared: &Arc<Shared>,
    machine: &Machine,
    strategy: Strategy,
    fingerprint: &str,
    func: &PrimFunc,
    trials: usize,
    warm: WarmStart,
) {
    let key3: JobKey = (
        machine.name.clone(),
        strategy.label(),
        fingerprint.to_string(),
    );
    let mut inflight = shared.inflight.lock().expect("inflight lock");
    if inflight.contains_key(&key3) {
        shared.collector.count("serve.background_skipped", 1);
        return;
    }
    let mut queue = shared.queue.lock().expect("queue lock");
    if shared.shutdown.load(Ordering::SeqCst) || queue.len() >= shared.cfg.queue_capacity {
        shared.collector.count("serve.background_dropped", 1);
        return;
    }
    let rid = shared.rid.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job {
        machine: machine.clone(),
        strategy,
        fingerprint: fingerprint.to_string(),
        func: func.clone(),
        trials,
        rid,
        background: true,
        warm: Some(warm),
        enqueued_at: Instant::now(),
        done: Mutex::new(None),
        cv: Condvar::new(),
    });
    inflight.insert(key3, job.clone());
    queue.push(QueueEntry {
        priority: 0,
        seq: shared.job_seq.fetch_add(1, Ordering::Relaxed),
        job,
    });
    shared.queue_cv.notify_one();
    shared.collector.count("serve.background_retunes", 1);
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Pop the highest-priority job; on shutdown, drain the queue
        // completely before exiting so no admitted requester is stranded.
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(entry) = queue.pop() {
                    break Some(entry.job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.queue_cv.wait(queue).expect("queue lock");
            }
        };
        let Some(job) = job else { return };

        shared.collector.span(
            "serve.queue_wait",
            Key::coord(shared.trace_stream, job.rid, PH_QUEUE_WAIT),
            job.enqueued_at.elapsed().as_secs_f64(),
            1,
        );

        let t = Instant::now();
        let opts = TuneOptions {
            trials: job.trials,
            num_threads: shared.cfg.tune_threads,
            seed: shared.cfg.seed,
            warm_start: job.warm.clone(),
            exec_backend: shared.cfg.exec_backend,
            ..TuneOptions::default()
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let registry = builtin_registry();
            tune_workload(&job.func, &job.machine, &registry, job.strategy, &opts)
        }));
        shared.collector.span(
            "serve.tune",
            Key::coord(shared.trace_stream, job.rid, PH_TUNE),
            t.elapsed().as_secs_f64(),
            job.trials as u64,
        );

        let done = match outcome {
            Err(_) => Err("tuning worker panicked; the request was not retried".to_string()),
            Ok(result) => match result.best {
                None => Err("search produced no valid program".to_string()),
                Some(best) => {
                    let func_text = best.to_string();
                    // Persist BEFORE removing from inflight (see the
                    // module docs' publication-order invariant), and
                    // BEFORE notifying the requester (the durability
                    // invariant: acknowledged ⇒ journaled + fsynced).
                    let record = TuningRecord {
                        best,
                        best_time: result.best_time,
                        trials: result.trials_measured,
                        budget: job.trials,
                        tuning_cost_s: result.tuning_cost_s,
                    };
                    match publish_with_retries(shared, &job, record) {
                        Ok(()) => Ok(Tuned {
                            best_time: result.best_time,
                            trials: result.trials_measured,
                            tuning_cost_s: result.tuning_cost_s,
                            func_text,
                        }),
                        Err(message) => Err(message),
                    }
                }
            },
        };
        if job.background {
            shared.collector.count("serve.background_done", 1);
        }
        shared
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&job.key());
        *job.done.lock().expect("job lock") = Some(done);
        job.cv.notify_all();
    }
}

/// Base backoff between publish retry attempts; doubles per attempt.
const SAVE_RETRY_BACKOFF: Duration = Duration::from_millis(10);

/// Publishes one finished tune durably, with bounded retries.
///
/// * Success: the record is journaled + fsynced; the caller may
///   acknowledge the requester.
/// * Transient storage failure: retried up to
///   [`ServeConfig::save_retries`] times with doubling backoff, each
///   failure counted on `serve.db_save_failures`. If every attempt
///   fails the record stays in memory (still served warm by this
///   process), the daemon reports `db_degraded` in its stats, and the
///   requester is still answered — the tuning result itself is valid.
///   The next successful publish or the shutdown compaction folds the
///   record to disk.
/// * Simulated crash (chaos harness only — [`FaultIo`] never lets a
///   "dead" process touch storage again): the daemon treats itself as
///   crashed, fails the request, and initiates shutdown, so no client
///   ever gets an acknowledgement a real power loss would not have
///   produced.
fn publish_with_retries(
    shared: &Arc<Shared>,
    job: &Job,
    record: TuningRecord,
) -> Result<(), String> {
    let mut db = shared.db.lock().expect("db lock");
    let attempts = shared.cfg.save_retries.max(1);
    let mut backoff = SAVE_RETRY_BACKOFF;
    for attempt in 1..=attempts {
        match db.publish(
            &job.machine.name,
            job.strategy,
            job.fingerprint.clone(),
            record.clone(),
        ) {
            Ok(_) => return Ok(()),
            Err(e) => {
                shared.collector.count("serve.db_save_failures", 1);
                if let DbError::Io(io) = &e {
                    if FaultIo::is_crash_error(io) {
                        shared.shutdown.store(true, Ordering::SeqCst);
                        shared.queue_cv.notify_all();
                        return Err(format!("database crashed during publish: {e}"));
                    }
                }
                if attempt == attempts {
                    eprintln!(
                        "tir-serve: database publish failed after {attempts} attempts: {e} \
                         (record kept in memory; db degraded until the next compaction)"
                    );
                    return Ok(());
                }
                std::thread::sleep(backoff);
                backoff *= 2;
            }
        }
    }
    unreachable!("loop returns on success, crash, or final attempt")
}

/// Counters snapshot as a small hand-rolled JSON object.
fn stats_json(shared: &Shared) -> String {
    let (records, db_hits, db_misses, journal_bytes, compactions, degraded) = {
        let db = shared.db.lock().expect("db lock");
        (
            db.db().len(),
            db.db().hits(),
            db.db().misses(),
            db.journal_bytes(),
            db.compactions(),
            db.unjournaled() > 0,
        )
    };
    let queue_depth = shared.queue.lock().expect("queue lock").len();
    let inflight = shared.inflight.lock().expect("inflight lock").len();
    let report = shared.collector.report();
    let rejected: u64 = report
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("serve.reject."))
        .map(|(_, v)| v)
        .sum();
    format!(
        "{{\"records\": {records}, \"db_hits\": {db_hits}, \"db_misses\": {db_misses}, \
         \"queue_depth\": {queue_depth}, \"inflight\": {inflight}, \
         \"warm_hits\": {}, \"cold_tunes\": {}, \"dedup_joins\": {}, \
         \"background_retunes\": {}, \"background_done\": {}, \"rejected\": {rejected}, \
         \"journal_bytes\": {journal_bytes}, \"compactions\": {compactions}, \
         \"db_degraded\": {}, \"db_save_failures\": {}}}",
        report.counter("serve.warm_hits"),
        report.counter("serve.cold_tunes"),
        report.counter("serve.dedup_joins"),
        report.counter("serve.background_retunes"),
        report.counter("serve.background_done"),
        degraded as u8,
        report.counter("serve.db_save_failures"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(priority: u8, seq: u64) -> QueueEntry {
        QueueEntry {
            priority,
            seq,
            job: Arc::new(Job {
                machine: Machine::sim_gpu(),
                strategy: Strategy::TensorIr,
                fingerprint: String::new(),
                func: tir::builder::matmul_func("m", 16, 16, 16, tir::DataType::float32()),
                trials: 1,
                rid: seq,
                background: false,
                warm: None,
                enqueued_at: Instant::now(),
                done: Mutex::new(None),
                cv: Condvar::new(),
            }),
        }
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let mut heap = BinaryHeap::new();
        for (p, s) in [(1u8, 0u64), (9, 1), (1, 2), (9, 3), (0, 4)] {
            heap.push(entry(p, s));
        }
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.job.rid)).collect();
        assert_eq!(order, vec![1, 3, 0, 2, 4]);
    }
}
