//! Figure 11: single-operator comparison against vendor libraries on GPU.
//!
//! Paper: TensorIR beats CUTLASS/TensorRT on C1D, C2D, DEP, T2D, DIL by up
//! to 13.9x and reaches >= 75% of their throughput on C3D, GMM, GRP;
//! CUTLASS has no kernels for DEP, GRP, T2D.

use tensorir_bench::{
    fmt_ms, fmt_speedup, print_table, registry, tune_case, vendor_case_time, SINGLE_OP_TRIALS,
};
use tir::DataType;
use tir_autoschedule::Strategy;
use tir_exec::machine::Machine;
use tir_workloads::bench_suite;

fn main() {
    let machine = Machine::sim_gpu();
    let intrins = registry();
    let suite = bench_suite(DataType::float16());
    println!(
        "Figure 11 reproduction: single op vs vendor libraries ({})",
        machine.name
    );

    let mut rows = Vec::new();
    for case in &suite {
        let tir = tune_case(
            case,
            &machine,
            &intrins,
            Strategy::TensorIr,
            SINGLE_OP_TRIALS,
        );
        let cutlass = vendor_case_time("CUTLASS", case, &machine, "wmma_16x16x16_f16");
        let trt = vendor_case_time("TensorRT", case, &machine, "wmma_16x16x16_f16");
        let best_vendor = [cutlass, trt]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        let rel = if best_vendor.is_finite() {
            Some(best_vendor / tir.best_time)
        } else {
            None
        };
        rows.push(vec![
            case.kind.label().to_string(),
            cutlass.map(fmt_ms).unwrap_or_else(|| "unsupported".into()),
            trt.map(fmt_ms).unwrap_or_else(|| "unsupported".into()),
            fmt_ms(tir.best_time),
            fmt_speedup(rel),
        ]);
    }
    print_table(
        "Figure 11: single op vs vendor libraries (SimGPU)",
        &[
            "op",
            "CUTLASS ms",
            "TensorRT ms",
            "TensorIR ms",
            "TensorIR vs best lib",
        ],
        &rows,
    );
    println!("\npaper shape: wins on C1D/C2D/DEP/T2D/DIL (up to 13.9x), >=75% on C3D/GMM/GRP;");
    println!("CUTLASS columns for DEP/GRP/T2D must read 'unsupported'.");
}
