//! Ablation studies for the design choices DESIGN.md §4 calls out:
//!
//! 1. data movement as first-class citizen (AutoCopy/shared staging vs the
//!    AMOS-style fixed copies);
//! 2. validation filtering inside evolutionary search (wasted measurement
//!    budget without it);
//! 3. the learned cost model (sample efficiency vs unranked measurement).

use tensorir_bench::{fmt_ms, print_table, registry};
use tir::DataType;
use tir_autoschedule::sketch_gpu::GpuTensorSketch;
use tir_autoschedule::{tune, Strategy, TuneOptions};
use tir_exec::machine::Machine;
use tir_workloads::{bench_suite, OpKind};

fn main() {
    let machine = Machine::sim_gpu();
    let intrins = registry();

    // --- Ablation 1: first-class data movement ---------------------------
    let suite = bench_suite(DataType::float16());
    let mut rows = Vec::new();
    for case in suite
        .iter()
        .filter(|c| matches!(c.kind, OpKind::GMM | OpKind::C2D | OpKind::C3D))
    {
        let staged = tensorir_bench::tune_case(case, &machine, &intrins, Strategy::TensorIr, 48);
        let fixed = tensorir_bench::tune_case(case, &machine, &intrins, Strategy::Amos, 48);
        rows.push(vec![
            case.kind.label().to_string(),
            fmt_ms(staged.best_time),
            fmt_ms(fixed.best_time),
            format!("{:.2}x", fixed.best_time / staged.best_time),
        ]);
    }
    print_table(
        "Ablation 1: AutoCopy shared-memory staging vs fixed data movement",
        &["op", "staged (ms)", "fixed copies (ms)", "staging gain"],
        &rows,
    );

    // --- Ablation 2: validation filtering --------------------------------
    let func = tir::builder::matmul_func("mm", 512, 512, 512, DataType::float16());
    let wmma = intrins.get("wmma_16x16x16_f16").unwrap();
    let sketch = GpuTensorSketch::new(&func, "C", wmma, true).expect("sketch");
    let with = tune(
        &sketch,
        &machine,
        &TuneOptions {
            trials: 48,
            validate_before_measure: true,
            ..Default::default()
        },
    );
    let without = tune(
        &sketch,
        &machine,
        &TuneOptions {
            trials: 48,
            validate_before_measure: false,
            ..Default::default()
        },
    );
    print_table(
        "Ablation 2: validation filtering in evolutionary search (512^3 matmul)",
        &["config", "best (ms)", "measured", "wasted", "filtered"],
        &[
            vec![
                "with filter".into(),
                fmt_ms(with.best_time),
                with.trials_measured.to_string(),
                with.wasted_measurements.to_string(),
                with.invalid_filtered.to_string(),
            ],
            vec![
                "without filter".into(),
                fmt_ms(without.best_time),
                without.trials_measured.to_string(),
                without.wasted_measurements.to_string(),
                without.invalid_filtered.to_string(),
            ],
        ],
    );

    // --- Ablation 3: cost model ------------------------------------------
    // Sample efficiency is hard to see on this simulator (the top of the
    // tile space is flat), so we measure the model directly: train the
    // GBDT on half of a candidate pool and report its pairwise ranking
    // accuracy on the held-out half.
    use tir_autoschedule::feature::extract_features;
    use tir_autoschedule::sketch::SketchRule;
    use tir_autoschedule::CostModel;
    use tir_exec::simulate;
    use tir_rand::SeedableRng;
    let c2d = suite
        .iter()
        .find(|c| c.kind == OpKind::C2D)
        .expect("C2D in suite");
    // The scalar space has real performance variance (thread counts,
    // register tiling, reduction splits), making it the interesting
    // ranking target.
    let c2d_sketch = tir_autoschedule::sketch_gpu::GpuScalarSketch::new(&c2d.func);
    let mut rng = tir_rand::rngs::StdRng::seed_from_u64(17);
    let mut pool = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while pool.len() < 48 {
        let d = c2d_sketch.sample(&mut rng);
        if !seen.insert(d.clone()) {
            if seen.len() > 4096 {
                break;
            }
            continue;
        }
        if let Ok(f) = c2d_sketch.apply(&d) {
            let t = simulate(&f, &machine);
            pool.push((extract_features(&f), t));
        }
    }
    let half = pool.len() / 2;
    let mut model = CostModel::new();
    model.update(
        pool[..half]
            .iter()
            .map(|(x, t)| (x.clone(), -t.ln()))
            .collect::<Vec<_>>(),
    );
    let test = &pool[half..];
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..test.len() {
        for j in (i + 1)..test.len() {
            if (test[i].1 - test[j].1).abs() < 1e-12 {
                continue;
            }
            total += 1;
            let pred_i_faster = model.predict(&test[i].0) > model.predict(&test[j].0);
            let truly_i_faster = test[i].1 < test[j].1;
            if pred_i_faster == truly_i_faster {
                correct += 1;
            }
        }
    }
    let accuracy = 100.0 * correct as f64 / total.max(1) as f64;
    print_table(
        "Ablation 3: GBDT cost model ranking accuracy (C2D candidates)",
        &["train", "test pairs", "pairwise ranking accuracy"],
        &[vec![
            half.to_string(),
            total.to_string(),
            format!("{accuracy:.1}% (random = 50%)"),
        ]],
    );

    // --- Ablation 4: tuning database --------------------------------------
    // §5.2: "no search is needed to build a model for an operator already
    // tuned" — a second compilation of the same model costs nothing.
    use tir_autoschedule::TuningDatabase;
    let mut db = TuningDatabase::new();
    let model = tir_graph::bert_large(DataType::float16());
    let opts = tir_autoschedule::TuneOptions {
        trials: 8,
        ..Default::default()
    };
    let mut first_cost = 0.0;
    let mut second_cost = 0.0;
    for pass in 0..2 {
        let mut seen = std::collections::HashSet::new();
        for node in &model.nodes {
            let Some(func) = &node.func else { continue };
            if !seen.insert(node.name.clone()) {
                continue;
            }
            let r = db.tune_cached(func, &machine, &intrins, Strategy::TensorIr, &opts);
            if pass == 0 {
                first_cost += r.tuning_cost_s;
            } else {
                second_cost += r.tuning_cost_s;
            }
        }
    }
    print_table(
        "Ablation 4: tuning database (BERT-large, compile twice)",
        &["pass", "tuning cost (s)", "db hits"],
        &[
            vec!["first".into(), format!("{first_cost:.1}"), "0".into()],
            vec![
                "second".into(),
                format!("{second_cost:.1}"),
                db.hits().to_string(),
            ],
        ],
    );
}
