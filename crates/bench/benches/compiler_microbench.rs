//! Microbenchmarks of the compiler itself: transformation, validation,
//! candidate generation, and simulation throughput.
//!
//! Uses a small hand-rolled timing harness (median of timed batches after
//! warmup) instead of an external benchmark framework, so the workspace
//! builds with no external dependencies.

use std::time::Instant;

use tir::builder::matmul_func;
use tir::DataType;
use tir_exec::cost::simulate;
use tir_exec::machine::Machine;
use tir_schedule::Schedule;
use tir_tensorize::{auto_tensorize, builtin_registry};

/// Times `f` and prints a `name: median ns/iter` line.
///
/// Runs a warmup, then picks an iteration count targeting ~20 ms per batch
/// and reports the median of 7 batches.
fn bench_function<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warmup + calibration.
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_millis() < 50 {
        std::hint::black_box(f());
        calib_iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() as u64 / calib_iters.max(1);
    let iters = (20_000_000 / per_iter.max(1)).clamp(1, 1_000_000);
    let mut samples = Vec::new();
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    println!("{name:<40} {median:>14.0} ns/iter  ({iters} iters x 7)");
}

fn bench_split_fuse_reorder() {
    let func = matmul_func("mm", 256, 256, 256, DataType::float32());
    bench_function("schedule/split_reorder_fuse", || {
        let mut sch = Schedule::new(func.clone());
        let block = sch.get_block("C").unwrap();
        let loops = sch.get_loops(&block).unwrap();
        let i = sch.split(&loops[0], &[16, 16]).unwrap();
        let j = sch.split(&loops[1], &[16, 16]).unwrap();
        sch.reorder(&[i[0].clone(), j[0].clone(), i[1].clone(), j[1].clone()])
            .unwrap();
        sch.fuse(&[i[0].clone(), j[0].clone()]).unwrap();
        sch.into_func()
    });
}

fn bench_validation() {
    let func = matmul_func("mm", 256, 256, 256, DataType::float32());
    bench_function("analysis/validate_matmul", || {
        tir_analysis::validate(&func).is_ok()
    });
}

fn bench_auto_tensorize() {
    let func = matmul_func("mm", 256, 256, 256, DataType::float16());
    let reg = builtin_registry();
    let wmma = reg.get("wmma_16x16x16_f16").unwrap().clone();
    bench_function("tensorize/auto_tensorize_matmul", || {
        auto_tensorize(&func, "C", &wmma).unwrap()
    });
}

fn bench_simulate() {
    let func = matmul_func("mm", 256, 256, 256, DataType::float16());
    let machine = Machine::sim_gpu();
    bench_function("exec/simulate_matmul", || simulate(&func, &machine));
}

fn bench_iter_map() {
    use tir::{Expr, Var};
    let i = Var::int("i");
    let j = Var::int("j");
    let fused = Expr::from(&i) * 64 + Expr::from(&j);
    let bindings = [
        fused.clone().floor_div(16),
        fused.clone().floor_mod(16).floor_div(4),
        fused.floor_mod(4),
    ];
    let dom = [(i.clone(), 32i64), (j.clone(), 64i64)];
    bench_function("arith/detect_iter_map", || {
        tir_arith::detect_iter_map(&bindings, &dom).unwrap()
    });
}

fn bench_print_parse() {
    let func = matmul_func("mm", 128, 128, 128, DataType::float32());
    let text = func.to_string();
    bench_function("text/print_matmul", || func.to_string());
    bench_function("text/parse_matmul", || {
        tir::parser::parse_func(&text).unwrap()
    });
}

fn main() {
    bench_split_fuse_reorder();
    bench_validation();
    bench_auto_tensorize();
    bench_simulate();
    bench_iter_map();
    bench_print_parse();
}
