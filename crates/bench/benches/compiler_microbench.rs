//! Criterion microbenchmarks of the compiler itself: transformation,
//! validation, candidate generation, and simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use tir::builder::matmul_func;
use tir::DataType;
use tir_exec::cost::simulate;
use tir_exec::machine::Machine;
use tir_schedule::Schedule;
use tir_tensorize::{auto_tensorize, builtin_registry};

fn bench_split_fuse_reorder(c: &mut Criterion) {
    let func = matmul_func("mm", 256, 256, 256, DataType::float32());
    c.bench_function("schedule/split_reorder_fuse", |b| {
        b.iter(|| {
            let mut sch = Schedule::new(func.clone());
            let block = sch.get_block("C").unwrap();
            let loops = sch.get_loops(&block).unwrap();
            let i = sch.split(&loops[0], &[16, 16]).unwrap();
            let j = sch.split(&loops[1], &[16, 16]).unwrap();
            sch.reorder(&[i[0].clone(), j[0].clone(), i[1].clone(), j[1].clone()])
                .unwrap();
            sch.fuse(&[i[0].clone(), j[0].clone()]).unwrap();
            sch.into_func()
        })
    });
}

fn bench_validation(c: &mut Criterion) {
    let func = matmul_func("mm", 256, 256, 256, DataType::float32());
    c.bench_function("analysis/validate_matmul", |b| {
        b.iter(|| tir_analysis::validate(&func).is_ok())
    });
}

fn bench_auto_tensorize(c: &mut Criterion) {
    let func = matmul_func("mm", 256, 256, 256, DataType::float16());
    let reg = builtin_registry();
    let wmma = reg.get("wmma_16x16x16_f16").unwrap().clone();
    c.bench_function("tensorize/auto_tensorize_matmul", |b| {
        b.iter(|| auto_tensorize(&func, "C", &wmma).unwrap())
    });
}

fn bench_simulate(c: &mut Criterion) {
    let func = matmul_func("mm", 256, 256, 256, DataType::float16());
    let machine = Machine::sim_gpu();
    c.bench_function("exec/simulate_matmul", |b| {
        b.iter(|| simulate(&func, &machine))
    });
}

fn bench_iter_map(c: &mut Criterion) {
    use tir::{Expr, Var};
    let i = Var::int("i");
    let j = Var::int("j");
    let fused = Expr::from(&i) * 64 + Expr::from(&j);
    let bindings = [
        fused.clone().floor_div(16),
        fused.clone().floor_mod(16).floor_div(4),
        fused.floor_mod(4),
    ];
    let dom = [(i.clone(), 32i64), (j.clone(), 64i64)];
    c.bench_function("arith/detect_iter_map", |b| {
        b.iter(|| tir_arith::detect_iter_map(&bindings, &dom).unwrap())
    });
}

fn bench_print_parse(c: &mut Criterion) {
    let func = matmul_func("mm", 128, 128, 128, DataType::float32());
    let text = func.to_string();
    c.bench_function("text/print_matmul", |b| b.iter(|| func.to_string()));
    c.bench_function("text/parse_matmul", |b| {
        b.iter(|| tir::parser::parse_func(&text).unwrap())
    });
}

criterion_group!(
    benches,
    bench_split_fuse_reorder,
    bench_validation,
    bench_auto_tensorize,
    bench_simulate,
    bench_iter_map,
    bench_print_parse
);
criterion_main!(benches);
