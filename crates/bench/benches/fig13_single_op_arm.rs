//! Figure 13: single-operator evaluation on the ARM CPU (int8 `sdot`).
//!
//! Paper: on Graviton2, TensorIR reaches up to 12.5x over TVM thanks to
//! the `sdot` intrinsic, and 85-105% of ArmComputeLib's hand-written
//! kernels, on C2D and GMM.

use tensorir_bench::{
    fmt_ms, fmt_speedup, print_table, registry, tune_case, vendor_case_time, SINGLE_OP_TRIALS,
};
use tir::DataType;
use tir_autoschedule::Strategy;
use tir_exec::machine::Machine;
use tir_workloads::{bench_suite, OpKind};

fn main() {
    let machine = Machine::sim_arm();
    let intrins = registry();
    let suite = bench_suite(DataType::int8());
    println!(
        "Figure 13 reproduction: single op on ARM CPU (int8, {})",
        machine.name
    );
    let mut rows = Vec::new();
    for case in suite
        .iter()
        .filter(|c| matches!(c.kind, OpKind::C2D | OpKind::GMM))
    {
        let tvm = tune_case(case, &machine, &intrins, Strategy::Ansor, SINGLE_OP_TRIALS);
        let tir = tune_case(
            case,
            &machine,
            &intrins,
            Strategy::TensorIr,
            SINGLE_OP_TRIALS,
        );
        let acl = vendor_case_time("ArmComputeLib", case, &machine, "sdot_4x4x4_i8");
        rows.push(vec![
            case.kind.label().to_string(),
            fmt_ms(tvm.best_time),
            fmt_ms(tir.best_time),
            acl.map(fmt_ms).unwrap_or_else(|| "n/a".into()),
            fmt_speedup(Some(tvm.best_time / tir.best_time)),
            acl.map(|a| format!("{:.0}%", 100.0 * a / tir.best_time))
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    print_table(
        "Figure 13: single op on SimARM (int8, sdot)",
        &[
            "op",
            "TVM ms",
            "TensorIR ms",
            "ArmComputeLib ms",
            "TensorIR vs TVM",
            "% of ACL",
        ],
        &rows,
    );
    println!("\npaper shape: up to 12.5x over TVM; 85-105% of ArmComputeLib throughput.");
}
