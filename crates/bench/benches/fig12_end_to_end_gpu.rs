//! Figure 12: end-to-end model latency on the GPU.
//!
//! Paper: TensorIR outperforms PyTorch, TVM, and AMOS by 1.2-8.8x, is ~30%
//! faster than TensorRT on MobileNetV2, reaches 88-100% of TensorRT on
//! ResNet-50 and BERT-large, and runs ViT, which TensorRT does not
//! support.

use tensorir_bench::{fmt_ms, fmt_speedup, print_table, registry, E2E_TRIALS};
use tir_autoschedule::{Strategy, TuneOptions};
use tir_exec::machine::Machine;
use tir_graph::{evaluate_model, gpu_models, Framework};

fn main() {
    let machine = Machine::sim_gpu();
    let intrins = registry();
    let opts = TuneOptions {
        trials: E2E_TRIALS,
        ..Default::default()
    };
    println!(
        "Figure 12 reproduction: end-to-end GPU latency ({})",
        machine.name
    );
    let mut rows = Vec::new();
    for model in gpu_models() {
        let pt = Framework::PyTorch.model_latency(&model, &machine);
        let trt = Framework::TensorRt.model_latency(&model, &machine);
        let tvm = evaluate_model(&model, &machine, &intrins, Strategy::Ansor, &opts)
            .expect("valid model");
        let amos =
            evaluate_model(&model, &machine, &intrins, Strategy::Amos, &opts).expect("valid model");
        let tir = evaluate_model(&model, &machine, &intrins, Strategy::TensorIr, &opts)
            .expect("valid model");
        rows.push(vec![
            model.name.clone(),
            pt.map(fmt_ms).unwrap_or_else(|| "n/a".into()),
            fmt_ms(tvm.latency_s),
            fmt_ms(amos.latency_s),
            trt.map(fmt_ms).unwrap_or_else(|| "unsupported".into()),
            fmt_ms(tir.latency_s),
            fmt_speedup(pt.map(|t| t / tir.latency_s)),
            fmt_speedup(Some(tvm.latency_s / tir.latency_s)),
            fmt_speedup(trt.map(|t| t / tir.latency_s)),
        ]);
    }
    print_table(
        "Figure 12: end-to-end latency (ms) on SimGPU, batch 1, float16",
        &[
            "model",
            "PyTorch",
            "TVM",
            "AMOS",
            "TensorRT",
            "TensorIR",
            "vs PyTorch",
            "vs TVM",
            "vs TensorRT",
        ],
        &rows,
    );
    println!("\npaper shape: 1.2-8.8x over PyTorch/TVM/AMOS; ~0.88-1.3x vs TensorRT;");
    println!("TensorRT column for ViT must read 'unsupported'.");
}
