//! Fused vs unfused end-to-end execution over the model dataflow graphs.
//!
//! Runs ResNet-50 and BERT-large (float16, SimGPU) through
//! [`tir_graph::evaluate_model`] (greedy fusion on) and
//! [`tir_graph::evaluate_model_unfused`] (every node its own kernel) with
//! the same TensorIR strategy and trial budget, prints the comparison
//! table, and emits `BENCH_fusion.json`.
//!
//! With `--check` the bench becomes a CI gate: fusion must never be
//! slower than the unfused baseline on any model, and must win by at
//! least 1.2x on at least one — the graph-level payoff that motivates
//! composing epilogues into anchor kernels at all.

use tensorir_bench::{fmt_ms, print_table, registry, E2E_TRIALS};
use tir::DataType;
use tir_autoschedule::{Strategy, TuneOptions};
use tir_exec::Machine;
use tir_graph::{bert_large, evaluate_model, evaluate_model_unfused, resnet50};
use tir_trace::is_well_formed_json;

struct Row {
    name: String,
    fused_s: f64,
    unfused_s: f64,
    groups: usize,
    nodes: usize,
    fused_ops: usize,
    saved_launch_s: f64,
    saved_traffic_s: f64,
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let machine = Machine::sim_gpu();
    let intrins = registry();
    let opts = TuneOptions {
        trials: E2E_TRIALS,
        ..Default::default()
    };
    println!(
        "Graph-level operator fusion: fused vs unfused end-to-end ({})",
        machine.name
    );

    let mut rows = Vec::new();
    for model in [
        resnet50(DataType::float16()),
        bert_large(DataType::float16()),
    ] {
        let fused = evaluate_model(&model, &machine, &intrins, Strategy::TensorIr, &opts)
            .expect("valid model");
        let unfused = evaluate_model_unfused(&model, &machine, &intrins, Strategy::TensorIr, &opts)
            .expect("valid model");
        rows.push(Row {
            name: model.name.clone(),
            fused_s: fused.latency_s,
            unfused_s: unfused.latency_s,
            groups: fused.per_group.len(),
            nodes: model.nodes.len(),
            fused_ops: fused.per_group.iter().map(|g| g.fused_ops).sum(),
            saved_launch_s: fused.saved_launch_s(),
            saved_traffic_s: fused.saved_traffic_s(),
        });
    }

    print_table(
        "Fused vs unfused end-to-end latency (ms), float16, batch 1",
        &[
            "model",
            "unfused",
            "fused",
            "speedup",
            "kernels",
            "fused ops",
            "saved launch",
            "saved traffic",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    fmt_ms(r.unfused_s),
                    fmt_ms(r.fused_s),
                    format!("{:.2}x", r.unfused_s / r.fused_s),
                    format!("{}/{}", r.groups, r.nodes),
                    r.fused_ops.to_string(),
                    fmt_ms(r.saved_launch_s),
                    fmt_ms(r.saved_traffic_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("(kernels = fusion groups / graph nodes; saved columns are the launch and");
    println!(" DRAM-traffic time the fused kernels eliminated, per inference.)");

    // Hand-rolled JSON (the workspace has no serde dependency).
    let mut json = String::from(
        "{\n  \"benchmark\": \"model_fusion\",\n  \"unit\": \"ms\",\n  \"models\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"unfused_ms\": {:.4}, \"fused_ms\": {:.4}, \"speedup\": {:.3}, \"groups\": {}, \"nodes\": {}, \"fused_ops\": {}, \"saved_launch_ms\": {:.4}, \"saved_traffic_ms\": {:.4}}}{}\n",
            r.name,
            r.unfused_s * 1e3,
            r.fused_s * 1e3,
            r.unfused_s / r.fused_s,
            r.groups,
            r.nodes,
            r.fused_ops,
            r.saved_launch_s * 1e3,
            r.saved_traffic_s * 1e3,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fusion.json");
    std::fs::write(path, &json).expect("write BENCH_fusion.json");
    println!("wrote {path}");

    if check {
        let mut failures = Vec::new();
        if !is_well_formed_json(&std::fs::read_to_string(path).expect("re-read json")) {
            failures.push("BENCH_fusion.json is not well-formed JSON".to_string());
        }
        for r in &rows {
            if r.fused_s > r.unfused_s {
                failures.push(format!(
                    "{}: fused {} slower than unfused {}",
                    r.name,
                    fmt_ms(r.fused_s),
                    fmt_ms(r.unfused_s)
                ));
            }
            if r.fused_ops == 0 {
                failures.push(format!("{}: fusion pass fused nothing", r.name));
            }
            if r.saved_launch_s <= 0.0 {
                failures.push(format!("{}: no launch savings attributed", r.name));
            }
            if r.saved_traffic_s <= 0.0 {
                failures.push(format!("{}: no traffic savings attributed", r.name));
            }
        }
        let best = rows
            .iter()
            .map(|r| r.unfused_s / r.fused_s)
            .fold(0.0, f64::max);
        if best < 1.2 {
            failures.push(format!(
                "best fusion speedup {best:.2}x below the 1.2x acceptance bar"
            ));
        }
        if failures.is_empty() {
            println!(
                "CHECK ok: fusion never slower, best speedup {best:.2}x >= 1.2x, savings attributed"
            );
        } else {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
