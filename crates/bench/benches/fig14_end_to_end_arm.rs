//! Figure 14: end-to-end quantized models on the ARM CPU.
//!
//! Paper: TensorIR outperforms PyTorch (QNNPACK, which lacks `sdot`) and
//! TVM by 1.2-2.5x on quantized ResNet-50 and MobileNetV2.

use tensorir_bench::{fmt_ms, fmt_speedup, print_table, registry, E2E_TRIALS};
use tir_autoschedule::{Strategy, TuneOptions};
use tir_exec::machine::Machine;
use tir_graph::{arm_models, evaluate_model, Framework};

fn main() {
    let machine = Machine::sim_arm();
    let intrins = registry();
    let opts = TuneOptions {
        trials: E2E_TRIALS,
        ..Default::default()
    };
    println!(
        "Figure 14 reproduction: end-to-end int8 on ARM ({})",
        machine.name
    );
    let mut rows = Vec::new();
    for model in arm_models() {
        let pt = Framework::PyTorchQnnpack.model_latency(&model, &machine);
        let tvm = evaluate_model(&model, &machine, &intrins, Strategy::Ansor, &opts)
            .expect("valid model");
        let tir = evaluate_model(&model, &machine, &intrins, Strategy::TensorIr, &opts)
            .expect("valid model");
        rows.push(vec![
            model.name.clone(),
            pt.map(fmt_ms).unwrap_or_else(|| "n/a".into()),
            fmt_ms(tvm.latency_s),
            fmt_ms(tir.latency_s),
            fmt_speedup(pt.map(|t| t / tir.latency_s)),
            fmt_speedup(Some(tvm.latency_s / tir.latency_s)),
        ]);
    }
    print_table(
        "Figure 14: end-to-end latency (ms) on SimARM, batch 1, int8",
        &[
            "model",
            "PyTorch(QNNPACK)",
            "TVM",
            "TensorIR",
            "vs PyTorch",
            "vs TVM",
        ],
        &rows,
    );
    println!("\npaper shape: 1.2-2.5x over PyTorch and TVM (QNNPACK has no sdot path).");
}
