//! Table 1: end-to-end tuning time, TVM vs TensorIR.
//!
//! Paper: TensorIR tunes up to 2x faster (ResNet-50 308 -> 156 min, BERT
//! 410 -> 189 min) because (a) its candidates run faster, so each hardware
//! profile costs less, and (b) divide-and-conquer shrinks the outer search
//! space, so fewer trials are needed. We reproduce both effects: tuning
//! cost = sum over measured candidates of (profile repeats x simulated
//! kernel time) + per-candidate compile overhead.

use tensorir_bench::{print_table, registry, E2E_TRIALS};
use tir_autoschedule::{Strategy, TuneOptions};
use tir_exec::machine::Machine;
use tir_graph::{evaluate_model, gpu_models};

fn main() {
    let machine = Machine::sim_gpu();
    let intrins = registry();
    // TVM needs more trials to converge in its larger (scalar) space; the
    // paper's Table 1 uses equal-quality stopping, which we approximate by
    // giving the flat scalar space a 2x trial budget.
    let tir_opts = TuneOptions {
        trials: E2E_TRIALS,
        ..Default::default()
    };
    let tvm_opts = TuneOptions {
        trials: E2E_TRIALS * 2,
        ..Default::default()
    };
    println!("Table 1 reproduction: tuning time ({})", machine.name);
    let mut rows = Vec::new();
    for model in gpu_models() {
        let tvm = evaluate_model(&model, &machine, &intrins, Strategy::Ansor, &tvm_opts);
        let tir = evaluate_model(&model, &machine, &intrins, Strategy::TensorIr, &tir_opts);
        rows.push(vec![
            model.name.clone(),
            format!("{:.1}", tvm.tuning_cost_s / 60.0),
            format!("{:.1}", tir.tuning_cost_s / 60.0),
            format!("{:.2}x", tvm.tuning_cost_s / tir.tuning_cost_s),
            format!("{}", tvm.trials),
            format!("{}", tir.trials),
        ]);
    }
    print_table(
        "Table 1: tuning time (simulated minutes)",
        &[
            "model",
            "TVM (min)",
            "TensorIR (min)",
            "speedup",
            "TVM trials",
            "TensorIR trials",
        ],
        &rows,
    );
    println!("\npaper: ResNet-50 308->156, MobileNetV2 292->261, BERT 410->189, ViT 247->145");
    println!("(up to ~2x faster tuning; the reproduction should show the same ~1.2-2x band).");
}
