//! Table 1: end-to-end tuning time, TVM vs TensorIR.
//!
//! Paper: TensorIR tunes up to 2x faster (ResNet-50 308 -> 156 min, BERT
//! 410 -> 189 min) because (a) its candidates run faster, so each hardware
//! profile costs less, and (b) divide-and-conquer shrinks the outer search
//! space, so fewer trials are needed. We reproduce both effects: tuning
//! cost = sum over measured candidates of (profile repeats x simulated
//! kernel time) + per-candidate compile overhead, on one simulated device
//! (`num_threads: 1`) for paper-comparable absolute numbers.
//!
//! A second section exercises the parallel candidate-evaluation pipeline
//! on the matmul workload: tuning time (simulated makespan over the
//! build+measure worker farm) at 1/2/4/8 workers, the tuner's own host
//! wall-clock, and the structural-hash candidate-cache hit rate. The
//! fixed seed must make every thread count find the byte-identical best
//! program — the run reports a loud `NO (BUG)` if it does not.

use std::time::Instant;

use tensorir_bench::{print_table, registry, E2E_TRIALS};
use tir_autoschedule::{tune_workload, Strategy, TuneOptions};
use tir_exec::machine::Machine;
use tir_graph::{evaluate_model, gpu_models};
use tir_tensorize::IntrinRegistry;
use tir_workloads::{bench_suite, BenchCase, OpKind};

/// Tunes one workload end-to-end at a given worker count; returns the
/// host wall-clock seconds and the result.
fn timed_tune(
    case: &BenchCase,
    machine: &Machine,
    intrins: &IntrinRegistry,
    threads: usize,
) -> (f64, tir_autoschedule::TuneResult) {
    let opts = TuneOptions {
        trials: 96,
        num_threads: threads,
        ..Default::default()
    };
    let t = Instant::now();
    let r = tune_workload(&case.func, machine, intrins, Strategy::TensorIr, &opts);
    (t.elapsed().as_secs_f64(), r)
}

fn parallel_pipeline_section(machine: &Machine, intrins: &IntrinRegistry) {
    let suite = bench_suite(tir::DataType::float16());
    // GMM is the acceptance workload; C2D shows the cache doing real work
    // (its sketch space maps distinct decisions onto structurally
    // identical programs far more often than the matmul space does).
    for kind in [OpKind::GMM, OpKind::C2D] {
        let case = suite.iter().find(|c| c.kind == kind).expect("suite case");
        let (serial_wall, serial) = timed_tune(case, machine, intrins, 1);
        let serial_best = serial
            .best
            .as_ref()
            .expect("serial found no program")
            .to_string();
        let mut rows = Vec::new();
        let mut all_identical = true;
        for threads in [1usize, 2, 4, 8] {
            let (wall, r) = if threads == 1 {
                (serial_wall, serial.clone())
            } else {
                timed_tune(case, machine, intrins, threads)
            };
            all_identical &= r.best.as_ref().map(|b| b.to_string()) == Some(serial_best.clone());
            rows.push(vec![
                format!("{threads}"),
                format!("{:.1}", r.tuning_cost_s / 60.0),
                format!("{:.2}x", serial.tuning_cost_s / r.tuning_cost_s),
                format!("{wall:.2}"),
                format!(
                    "{}/{} ({:.0}%)",
                    r.cache_hits,
                    r.trials_measured,
                    100.0 * r.cache_hits as f64 / r.trials_measured.max(1) as f64
                ),
            ]);
        }
        print_table(
            &format!(
                "Parallel tuning pipeline: {} ({} trials)",
                case.func.name, serial.trials_measured
            ),
            &[
                "workers",
                "tuning (min)",
                "speedup",
                "host wall (s)",
                "cache hits",
            ],
            &rows,
        );
        println!(
            "best program identical across all worker counts: {}",
            if all_identical { "yes" } else { "NO (BUG)" }
        );
    }
    println!("\n(tuning time = simulated makespan of compile+profile batches over the");
    println!(" worker farm; host wall = the search loop itself, which fans candidate");
    println!(" evaluation across the same number of threads. cache hits are measurements");
    println!(" reused for structurally identical candidates; a hit skips compilation and");
    println!(" profiling entirely, so hit rate directly discounts real tuning cost.)");
}

fn main() {
    let machine = Machine::sim_gpu();
    let intrins = registry();
    // TVM needs more trials to converge in its larger (scalar) space; the
    // paper's Table 1 uses equal-quality stopping, which we approximate by
    // giving the flat scalar space a 2x trial budget. One measurement
    // worker = the paper's single-GPU setup.
    let tir_opts = TuneOptions {
        trials: E2E_TRIALS,
        num_threads: 1,
        ..Default::default()
    };
    let tvm_opts = TuneOptions {
        trials: E2E_TRIALS * 2,
        num_threads: 1,
        ..Default::default()
    };
    println!("Table 1 reproduction: tuning time ({})", machine.name);
    let mut rows = Vec::new();
    for model in gpu_models() {
        let tvm = evaluate_model(&model, &machine, &intrins, Strategy::Ansor, &tvm_opts)
            .expect("valid model");
        let tir = evaluate_model(&model, &machine, &intrins, Strategy::TensorIr, &tir_opts)
            .expect("valid model");
        rows.push(vec![
            model.name.clone(),
            format!("{:.1}", tvm.tuning_cost_s / 60.0),
            format!("{:.1}", tir.tuning_cost_s / 60.0),
            format!("{:.2}x", tvm.tuning_cost_s / tir.tuning_cost_s),
            format!("{}", tvm.trials),
            format!("{}", tir.trials),
        ]);
    }
    print_table(
        "Table 1: tuning time (simulated minutes)",
        &[
            "model",
            "TVM (min)",
            "TensorIR (min)",
            "speedup",
            "TVM trials",
            "TensorIR trials",
        ],
        &rows,
    );
    println!("\npaper: ResNet-50 308->156, MobileNetV2 292->261, BERT 410->189, ViT 247->145");
    println!("(up to ~2x faster tuning; the reproduction should show the same ~1.2-2x band).");

    parallel_pipeline_section(&machine, &intrins);
}
