//! Fault-tolerance of the measurement harness: tuning under injected
//! measurement failures.
//!
//! Real autotuning fleets lose measurements constantly — compile rejects,
//! device timeouts, runner crashes, corrupt profiling counters. The
//! harness invariant (see `tir_autoschedule::measure`) is that *transient*
//! faults change only the tuning bill, never the search trajectory: at any
//! injected fault rate the search must converge to the byte-identical best
//! program with only `tuning_cost_s` and `retries` growing. This bench
//! sweeps transient fault rates over the GMM and C2D workloads and prints
//! the overhead curve, then shows deterministic compile rejects being
//! quarantined (first failure pays, structurally identical re-proposals
//! are skipped for free).

use tensorir_bench::{print_table, registry};
use tir_autoschedule::{
    tune_workload, tune_workload_with, FaultInjector, FaultPlan, Strategy, TuneOptions,
};
use tir_exec::machine::Machine;
use tir_workloads::{bench_suite, OpKind};

fn main() {
    let machine = Machine::sim_gpu();
    let intrins = registry();
    let suite = bench_suite(tir::DataType::float16());
    let opts = TuneOptions {
        trials: 96,
        num_threads: 1,
        ..Default::default()
    };

    println!(
        "Fault-tolerant measurement harness ({}, {} trials)",
        machine.name, opts.trials
    );

    for kind in [OpKind::GMM, OpKind::C2D] {
        let case = suite.iter().find(|c| c.kind == kind).expect("suite case");
        let clean = tune_workload(&case.func, &machine, &intrins, Strategy::TensorIr, &opts);
        let clean_best = clean
            .best
            .as_ref()
            .expect("fault-free run found no program")
            .to_string();
        let mut rows = Vec::new();
        let mut all_identical = true;
        for rate in [0.0, 0.05, 0.1, 0.2, 0.3] {
            let r = if rate == 0.0 {
                clean.clone()
            } else {
                let inj = FaultInjector::sim(FaultPlan::transient(rate));
                tune_workload_with(
                    &case.func,
                    &machine,
                    &intrins,
                    Strategy::TensorIr,
                    &opts,
                    &inj,
                )
            };
            all_identical &= r.best.as_ref().map(|b| b.to_string()) == Some(clean_best.clone());
            rows.push(vec![
                format!("{:.0}%", rate * 100.0),
                format!("{}", r.trials_measured),
                format!("{}", r.retries),
                format!("{}", r.failed_measurements),
                format!("{}", r.quarantined),
                format!("{:.1}", r.tuning_cost_s / 60.0),
                format!(
                    "+{:.1}%",
                    100.0 * (r.tuning_cost_s / clean.tuning_cost_s - 1.0)
                ),
            ]);
        }
        print_table(
            &format!("Transient fault sweep: {}", case.func.name),
            &[
                "fault rate",
                "measured",
                "retries",
                "failed",
                "quarantined",
                "tuning (min)",
                "cost overhead",
            ],
            &rows,
        );
        println!(
            "best program identical across all fault rates: {}",
            if all_identical { "yes" } else { "NO (BUG)" }
        );
    }

    // Deterministic failures: a candidate whose compile is rejected fails
    // the same way every time, so retrying is wasted money. The harness
    // quarantines its structural hash after the first failure.
    let case = suite
        .iter()
        .find(|c| c.kind == OpKind::GMM)
        .expect("suite case");
    let mut rows = Vec::new();
    for reject_rate in [0.1, 0.2, 0.3] {
        let inj = FaultInjector::sim(FaultPlan {
            compile_reject_rate: reject_rate,
            ..Default::default()
        });
        let r = tune_workload_with(
            &case.func,
            &machine,
            &intrins,
            Strategy::TensorIr,
            &opts,
            &inj,
        );
        rows.push(vec![
            format!("{:.0}%", reject_rate * 100.0),
            format!("{}", r.trials_measured),
            format!("{}", r.failed_measurements),
            format!("{}", r.quarantined),
            format!("{}", r.retries),
            if r.best.is_some() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        &format!("Deterministic compile rejects: {}", case.func.name),
        &[
            "reject rate",
            "measured",
            "failed",
            "quarantined",
            "retries",
            "best found",
        ],
        &rows,
    );
    println!("\n(transient faults — timeouts, runner crashes, corrupt readings — are");
    println!(" retried with capped exponential backoff and charged to tuning_cost_s;");
    println!(" the fault draws are a pure function of (seed, candidate, attempt), so");
    println!(" the search trajectory is bit-identical to the fault-free run at every");
    println!(" thread count. deterministic failures are quarantined by structural");
    println!(" hash: zero retries, and re-proposals of a rejected program cost nothing.)");
}
