//! Overhead gate for the observability layer: a tuning run with tracing
//! disabled (either `trace: None` or a [`Collector::disabled`] sink)
//! must cost within 1% of the untraced baseline — the disabled path is a
//! single branch per would-be event, so any measurable regression means
//! instrumentation leaked into the hot path.
//!
//! Wall-clock gating is noisy, so each configuration is timed as the
//! minimum over several interleaved runs, and a failing round is retried
//! with a doubled run count before the gate trips (exit code 1).

use std::sync::Arc;
use std::time::Instant;

use tensorir_bench::{print_table, registry};
use tir::DataType;
use tir_autoschedule::{tune_workload, Strategy, TuneOptions};
use tir_exec::Machine;
use tir_trace::Collector;
use tir_workloads::ops;

const MAX_OVERHEAD: f64 = 0.01;
const ROUNDS: usize = 3;

fn run_once(trace: Option<Arc<Collector>>) -> f64 {
    let func = ops::gmm(128, 128, 128, DataType::float16(), DataType::float32());
    let machine = Machine::sim_gpu();
    let intrins = registry();
    let opts = TuneOptions {
        trials: 32,
        num_threads: 1,
        trace,
        ..TuneOptions::default()
    };
    let t0 = Instant::now();
    let result = tune_workload(&func, &machine, &intrins, Strategy::TensorIr, &opts);
    let dt = t0.elapsed().as_secs_f64();
    assert!(result.best.is_some(), "tuning found no candidate");
    dt
}

/// Minimum wall time per configuration over `runs` interleaved
/// repetitions (interleaving spreads ambient machine noise evenly).
fn measure(runs: usize) -> (f64, f64, f64) {
    let (mut base, mut disabled, mut enabled) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..runs {
        base = base.min(run_once(None));
        disabled = disabled.min(run_once(Some(Arc::new(Collector::disabled()))));
        enabled = enabled.min(run_once(Some(Arc::new(Collector::new()))));
    }
    (base, disabled, enabled)
}

fn main() {
    let mut runs = 5;
    let mut last = (0.0, 0.0, 0.0);
    let mut passed = false;
    for round in 0..ROUNDS {
        let (base, disabled, enabled) = measure(runs);
        last = (base, disabled, enabled);
        let overhead = disabled / base - 1.0;
        if overhead <= MAX_OVERHEAD {
            passed = true;
            break;
        }
        eprintln!(
            "round {round}: disabled-trace overhead {:.2}% > {:.0}% — retrying with {}x runs",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0,
            2 * runs
        );
        runs *= 2;
    }

    let (base, disabled, enabled) = last;
    let row = |label: &str, t: f64| {
        vec![
            label.to_string(),
            format!("{:.2}", t * 1e3),
            format!("{:+.2}%", (t / base - 1.0) * 100.0),
        ]
    };
    print_table(
        "Observability overhead (gmm 128^3, 32 trials, min of runs)",
        &["configuration", "wall (ms)", "vs baseline"],
        &[
            row("trace: None", base),
            row("Collector::disabled()", disabled),
            row("Collector::new()", enabled),
        ],
    );

    if !passed {
        eprintln!(
            "FAIL: disabled-trace overhead {:.2}% exceeds the {:.0}% gate",
            (disabled / base - 1.0) * 100.0,
            MAX_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "gate passed: disabled-trace overhead {:.2}% <= {:.0}%",
        (disabled / base - 1.0) * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
