//! Figure 10: single-operator comparison against ML compilers on the GPU.
//!
//! Paper: on an RTX 3080 with float16 Tensor Cores, TensorIR outperforms
//! TVM (Ansor) and AMOS across C1D/C2D/C3D/DEP/DIL/GMM/GRP/T2D, by up to
//! 7.5x, because it tensorizes *and* schedules data movement; TVM does
//! fine only on light workloads (DEP).

use tensorir_bench::{fmt_ms, fmt_speedup, geomean, print_table, registry, tune_case};
use tir::DataType;
use tir_autoschedule::Strategy;
use tir_exec::machine::Machine;
use tir_workloads::bench_suite;

fn main() {
    let machine = Machine::sim_gpu();
    let intrins = registry();
    let suite = bench_suite(DataType::float16());
    println!(
        "Figure 10 reproduction: single-operator GPU comparison (float16, {})",
        machine.name
    );
    println!("columns: simulated time per op (ms) and TensorIR speedup over each baseline");

    let mut rows = Vec::new();
    let mut sp_tvm = Vec::new();
    let mut sp_amos = Vec::new();
    for case in &suite {
        let tvm = tune_case(
            case,
            &machine,
            &intrins,
            Strategy::Ansor,
            tensorir_bench::SINGLE_OP_TRIALS,
        );
        let amos = tune_case(
            case,
            &machine,
            &intrins,
            Strategy::Amos,
            tensorir_bench::SINGLE_OP_TRIALS,
        );
        let tir = tune_case(
            case,
            &machine,
            &intrins,
            Strategy::TensorIr,
            tensorir_bench::SINGLE_OP_TRIALS,
        );
        let s_tvm = tvm.best_time / tir.best_time;
        let s_amos = amos.best_time / tir.best_time;
        sp_tvm.push(s_tvm);
        sp_amos.push(s_amos);
        rows.push(vec![
            case.kind.label().to_string(),
            fmt_ms(tvm.best_time),
            fmt_ms(amos.best_time),
            fmt_ms(tir.best_time),
            fmt_speedup(Some(s_tvm)),
            fmt_speedup(Some(s_amos)),
        ]);
    }
    print_table(
        "Figure 10: single op vs ML compilers (SimGPU, f16 tensor cores)",
        &[
            "op",
            "TVM(Ansor) ms",
            "AMOS ms",
            "TensorIR ms",
            "vs TVM",
            "vs AMOS",
        ],
        &rows,
    );
    println!(
        "\ngeomean speedup: vs TVM {:.2}x (paper: up to 7.5x max), vs AMOS {:.2}x",
        geomean(&sp_tvm),
        geomean(&sp_amos)
    );
    let max_tvm = sp_tvm.iter().cloned().fold(0.0, f64::max);
    println!("max speedup vs TVM: {max_tvm:.2}x (paper reports up to 7.5x)");
}
