//! Tree-walk interpreter vs bytecode VM vs optimized bytecode VM:
//! execution throughput per workload.
//!
//! Runs each workload to completion on all three backends (VM times
//! include bytecode compilation — and optimization, for `vm_opt` —
//! matching what `Interpreter::run` pays per call), reports ns per
//! interpreter step (one store/eval), and emits `BENCH_interp.json`
//! with the per-workload numbers plus the dispatched instruction mix
//! before/after optimization, so CI can track both speedups.
//!
//! With `--check` the bench becomes a CI gate: the optimized VM must be
//! ≥2x over the unoptimized VM and ≥12x over the tree-walker on the
//! gmm/c2d/c1d workloads, and the emitted JSON must be well-formed.
//! Exits non-zero on any violation.

use std::time::Instant;

use tir::DataType;
use tir_exec::{compile, compile_optimized, run_with, ExecBackend, InstrMixProfile, Tensor};
use tir_trace::is_well_formed_json;
use tir_workloads::ops;

struct Row {
    name: &'static str,
    steps: u64,
    tw_ns_per_step: f64,
    vm_ns_per_step: f64,
    opt_ns_per_step: f64,
    /// Dispatched `(mnemonic, count)` histogram of the unoptimized program.
    mix_before: Vec<(&'static str, u64)>,
    /// Same histogram after the optimizer pipeline.
    mix_after: Vec<(&'static str, u64)>,
}

/// Median wall-time (ns) of `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_case(name: &'static str, func: &tir::PrimFunc) -> Row {
    let args: Vec<Tensor> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i + 1 == func.params.len() {
                Tensor::zeros(p.dtype(), p.shape())
            } else {
                Tensor::random(p.dtype(), p.shape(), 42 + i as u64)
            }
        })
        .collect();
    // One verification pass: bit-exact outputs across all three
    // backends, and the step count that normalizes the timings.
    let tw = run_with(func, args.clone(), ExecBackend::TreeWalk, None).expect("tree-walk");
    let vm = run_with(func, args.clone(), ExecBackend::VmUnopt, None).expect("vm");
    let opt = run_with(func, args.clone(), ExecBackend::Vm, None).expect("vm_opt");
    assert_eq!(tw.outputs, vm.outputs, "vm diverges on {name}");
    assert_eq!(tw.outputs, opt.outputs, "vm_opt diverges on {name}");
    assert_eq!(tw.steps, vm.steps, "vm step count diverges on {name}");
    assert_eq!(tw.steps, opt.steps, "vm_opt step count diverges on {name}");
    let steps = tw.steps;

    // Dispatched-instruction mix before/after optimization (one profiled
    // run each; profiling is monomorphized out of the timed runs below).
    let mut mix_before = InstrMixProfile::new();
    compile(func)
        .expect("compile")
        .run_profiled(args.clone(), u64::MAX, &mut mix_before)
        .expect("profiled run");
    let mut mix_after = InstrMixProfile::new();
    compile_optimized(func)
        .expect("compile_optimized")
        .run_profiled(args.clone(), u64::MAX, &mut mix_after)
        .expect("profiled opt run");

    let reps = 5;
    let tw_ns = median_ns(reps, || {
        let out = run_with(func, args.clone(), ExecBackend::TreeWalk, None).expect("tree-walk");
        std::hint::black_box(out);
    });
    let vm_ns = median_ns(reps, || {
        let out = run_with(func, args.clone(), ExecBackend::VmUnopt, None).expect("vm");
        std::hint::black_box(out);
    });
    let opt_ns = median_ns(reps, || {
        let out = run_with(func, args.clone(), ExecBackend::Vm, None).expect("vm_opt");
        std::hint::black_box(out);
    });
    Row {
        name,
        steps,
        tw_ns_per_step: tw_ns / steps as f64,
        vm_ns_per_step: vm_ns / steps as f64,
        opt_ns_per_step: opt_ns / steps as f64,
        mix_before: mix_before.mix(),
        mix_after: mix_after.mix(),
    }
}

fn mix_json(mix: &[(&'static str, u64)]) -> String {
    let fields: Vec<String> = mix.iter().map(|(m, c)| format!("\"{m}\": {c}")).collect();
    format!("{{{}}}", fields.join(", "))
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let f32_ = DataType::float32();
    let f16 = DataType::float16();
    let cases: Vec<(&'static str, tir::PrimFunc)> = vec![
        ("gmm_64x64x64_f32", ops::gmm(64, 64, 64, f32_, f32_)),
        ("gmm_64x64x64_f16", ops::gmm(64, 64, 64, f16, f16)),
        (
            "c2d_18x18x32_f32",
            ops::c2d(1, 18, 18, 32, 32, 3, 3, 1, f32_),
        ),
        ("dep_32x32x16_f32", ops::dep(1, 32, 32, 16, 3, 3, 1, f32_)),
        ("c1d_64x64_f32", ops::c1d(4, 66, 64, 64, 3, 1, f32_)),
    ];

    println!("Interpreter backends: tree-walk vs VM vs optimized VM (release, per-step cost)");
    println!(
        "{:<20} {:>10} {:>14} {:>10} {:>10} {:>8} {:>8}",
        "workload", "steps", "tree-walk ns", "vm ns", "vm_opt ns", "vm/opt", "tw/opt"
    );
    let mut rows = Vec::new();
    for (name, func) in &cases {
        let row = bench_case(name, func);
        println!(
            "{:<20} {:>10} {:>14.1} {:>10.1} {:>10.1} {:>7.2}x {:>7.2}x",
            row.name,
            row.steps,
            row.tw_ns_per_step,
            row.vm_ns_per_step,
            row.opt_ns_per_step,
            row.vm_ns_per_step / row.opt_ns_per_step,
            row.tw_ns_per_step / row.opt_ns_per_step,
        );
        rows.push(row);
    }

    // Hand-rolled JSON (the workspace has no serde dependency).
    let mut json = String::from(
        "{\n  \"benchmark\": \"interp_vm\",\n  \"unit\": \"ns_per_step\",\n  \"workloads\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"steps\": {}, \"tree_walk\": {:.2}, \"vm\": {:.2}, \"vm_opt\": {:.2}, \"speedup\": {:.2}, \"speedup_opt\": {:.2}, \"opt_over_vm\": {:.2},\n     \"mix_before\": {},\n     \"mix_after\": {}}}{}\n",
            r.name,
            r.steps,
            r.tw_ns_per_step,
            r.vm_ns_per_step,
            r.opt_ns_per_step,
            r.tw_ns_per_step / r.vm_ns_per_step,
            r.tw_ns_per_step / r.opt_ns_per_step,
            r.vm_ns_per_step / r.opt_ns_per_step,
            mix_json(&r.mix_before),
            mix_json(&r.mix_after),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    // Emit at the workspace root regardless of the bench's cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interp.json");
    std::fs::write(path, &json).expect("write BENCH_interp.json");
    println!("wrote {path}");

    if check {
        let mut failures = Vec::new();
        if !is_well_formed_json(&std::fs::read_to_string(path).expect("re-read json")) {
            failures.push("BENCH_interp.json is not well-formed JSON".to_string());
        }
        // The acceptance gate covers the named MAC-shaped workloads;
        // `dep` rides along in the report unchecked.
        for r in rows
            .iter()
            .filter(|r| ["gmm", "c2d", "c1d"].iter().any(|p| r.name.starts_with(p)))
        {
            let over_vm = r.vm_ns_per_step / r.opt_ns_per_step;
            let over_tw = r.tw_ns_per_step / r.opt_ns_per_step;
            if over_vm < 2.0 {
                failures.push(format!(
                    "{}: vm_opt only {over_vm:.2}x over vm (need >= 2x)",
                    r.name
                ));
            }
            if over_tw < 12.0 {
                failures.push(format!(
                    "{}: vm_opt only {over_tw:.2}x over tree-walk (need >= 12x)",
                    r.name
                ));
            }
        }
        if failures.is_empty() {
            println!("CHECK ok: vm_opt >= 2x vm and >= 12x tree-walk on gmm/c2d/c1d");
        } else {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
