//! Tree-walk interpreter vs bytecode VM: execution throughput per
//! workload.
//!
//! Runs each workload to completion on both backends (the VM time
//! includes bytecode compilation, matching what `Interpreter::run` pays
//! per call), reports ns per interpreter step (one store/eval), and
//! emits `BENCH_interp.json` with the per-workload numbers so CI can
//! track the VM speedup.

use std::time::Instant;

use tir::DataType;
use tir_exec::{run_with, ExecBackend, Tensor};
use tir_workloads::ops;

struct Row {
    name: &'static str,
    steps: u64,
    tw_ns_per_step: f64,
    vm_ns_per_step: f64,
}

/// Median wall-time (ns) of `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_case(name: &'static str, func: &tir::PrimFunc) -> Row {
    let args: Vec<Tensor> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i + 1 == func.params.len() {
                Tensor::zeros(p.dtype(), p.shape())
            } else {
                Tensor::random(p.dtype(), p.shape(), 42 + i as u64)
            }
        })
        .collect();
    // One verification pass: bit-exact outputs, and the step count that
    // normalizes the timings.
    let tw = run_with(func, args.clone(), ExecBackend::TreeWalk, None).expect("tree-walk");
    let vm = run_with(func, args.clone(), ExecBackend::Vm, None).expect("vm");
    assert_eq!(tw.outputs, vm.outputs, "backends diverge on {name}");
    assert_eq!(tw.steps, vm.steps, "step counts diverge on {name}");
    let steps = tw.steps;

    let reps = 5;
    let tw_ns = median_ns(reps, || {
        let out = run_with(func, args.clone(), ExecBackend::TreeWalk, None).expect("tree-walk");
        std::hint::black_box(out);
    });
    let vm_ns = median_ns(reps, || {
        let out = run_with(func, args.clone(), ExecBackend::Vm, None).expect("vm");
        std::hint::black_box(out);
    });
    Row {
        name,
        steps,
        tw_ns_per_step: tw_ns / steps as f64,
        vm_ns_per_step: vm_ns / steps as f64,
    }
}

fn main() {
    let f32_ = DataType::float32();
    let f16 = DataType::float16();
    let cases: Vec<(&'static str, tir::PrimFunc)> = vec![
        ("gmm_64x64x64_f32", ops::gmm(64, 64, 64, f32_, f32_)),
        ("gmm_64x64x64_f16", ops::gmm(64, 64, 64, f16, f16)),
        (
            "c2d_18x18x32_f32",
            ops::c2d(1, 18, 18, 32, 32, 3, 3, 1, f32_),
        ),
        ("dep_32x32x16_f32", ops::dep(1, 32, 32, 16, 3, 3, 1, f32_)),
        ("c1d_64x64_f32", ops::c1d(4, 66, 64, 64, 3, 1, f32_)),
    ];

    println!("Interpreter backends: tree-walk vs bytecode VM (release, per-step cost)");
    println!(
        "{:<20} {:>12} {:>16} {:>16} {:>10}",
        "workload", "steps", "tree-walk ns", "vm ns", "speedup"
    );
    let mut rows = Vec::new();
    for (name, func) in &cases {
        let row = bench_case(name, func);
        println!(
            "{:<20} {:>12} {:>16.1} {:>16.1} {:>9.2}x",
            row.name,
            row.steps,
            row.tw_ns_per_step,
            row.vm_ns_per_step,
            row.tw_ns_per_step / row.vm_ns_per_step
        );
        rows.push(row);
    }

    // Hand-rolled JSON (the workspace has no serde dependency).
    let mut json = String::from(
        "{\n  \"benchmark\": \"interp_vm\",\n  \"unit\": \"ns_per_step\",\n  \"workloads\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"steps\": {}, \"tree_walk\": {:.2}, \"vm\": {:.2}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.steps,
            r.tw_ns_per_step,
            r.vm_ns_per_step,
            r.tw_ns_per_step / r.vm_ns_per_step,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    // Emit at the workspace root regardless of the bench's cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interp.json");
    std::fs::write(path, &json).expect("write BENCH_interp.json");
    println!("wrote {path}");
}
