//! Shared harness utilities for the figure/table reproduction benches.
//!
//! Every `benches/figNN_*.rs` target is a custom-harness binary that runs
//! the corresponding experiment on the simulated machines and prints the
//! same rows/series the paper's figure reports. Absolute numbers come from
//! the analytic simulator (DESIGN.md §1); the claims under reproduction
//! are the *relative* ones — who wins, by roughly what factor, and where
//! the crossovers fall.

use tir_autoschedule::{oracle_time, tune_workload, Strategy, TuneOptions, TuneResult};
use tir_exec::machine::Machine;
use tir_tensorize::{builtin_registry, IntrinRegistry};
use tir_workloads::{BenchCase, OpKind};

/// Default measurement budget for single-operator tuning.
pub const SINGLE_OP_TRIALS: usize = 48;
/// Default measurement budget per layer for end-to-end tuning.
pub const E2E_TRIALS: usize = 16;

/// Tunes one benchmark case under a strategy.
pub fn tune_case(
    case: &BenchCase,
    machine: &Machine,
    intrins: &IntrinRegistry,
    strategy: Strategy,
    trials: usize,
) -> TuneResult {
    let opts = TuneOptions {
        trials,
        ..Default::default()
    };
    tune_workload(&case.func, machine, intrins, strategy, &opts)
}

/// Vendor-library efficiency for a single operator: fraction of the tensor
/// peak the library's hand-written kernel reaches, `None` = unsupported.
/// The support matrix follows §5.1: CUTLASS has no DEP/GRP/T2D kernels.
pub fn vendor_efficiency(library: &str, kind: OpKind) -> Option<f64> {
    Some(match (library, kind) {
        ("CUTLASS", OpKind::GMM) => 0.90,
        ("CUTLASS", OpKind::C2D) => 0.72,
        ("CUTLASS", OpKind::C3D) => 0.80,
        ("CUTLASS", OpKind::C1D) => 0.45,
        ("CUTLASS", OpKind::DIL) => 0.40,
        ("CUTLASS", OpKind::DEP | OpKind::GRP | OpKind::T2D) => return None,
        ("TensorRT", OpKind::GMM) => 0.85,
        ("TensorRT", OpKind::C2D) => 0.70,
        ("TensorRT", OpKind::C3D) => 0.75,
        ("TensorRT", OpKind::GRP) => 0.70,
        ("TensorRT", OpKind::C1D) => 0.40,
        ("TensorRT", OpKind::DIL) => 0.35,
        ("TensorRT", OpKind::DEP) => 0.25,
        ("TensorRT", OpKind::T2D) => 0.30,
        ("ArmComputeLib", OpKind::GMM) => 0.95,
        ("ArmComputeLib", OpKind::C2D) => 0.95,
        _ => return None,
    })
}

/// Roofline time of a vendor-library kernel for a case.
pub fn vendor_case_time(
    library: &str,
    case: &BenchCase,
    machine: &Machine,
    tensor_intrin: &str,
) -> Option<f64> {
    let eff = vendor_efficiency(library, case.kind)?;
    let peak = machine
        .tensor_peak(tensor_intrin)
        .unwrap_or_else(|| machine.vector_peak());
    let min_bytes: f64 = case.func.params.iter().map(|p| p.size_bytes() as f64).sum();
    Some(oracle_time(case.macs as f64, min_bytes, peak, eff, machine))
}

/// Normalized throughput (GMACs/s) from a time.
pub fn gmacs_per_s(macs: i64, time_s: f64) -> f64 {
    macs as f64 / time_s / 1e9
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Prints a fixed-width table with a title line.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(|c| c.len()).unwrap_or(0))
                .chain([h.len()])
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Formats a relative-speedup cell (e.g. `3.42x`), or `n/a`.
pub fn fmt_speedup(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.2}x"),
        _ => "n/a".to_string(),
    }
}

/// Formats seconds as milliseconds with 3 decimals.
pub fn fmt_ms(t: f64) -> String {
    format!("{:.3}", t * 1e3)
}

/// The default intrinsic registry used by every experiment.
pub fn registry() -> IntrinRegistry {
    builtin_registry()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn vendor_support_matrix() {
        assert!(vendor_efficiency("CUTLASS", OpKind::GMM).is_some());
        assert!(vendor_efficiency("CUTLASS", OpKind::DEP).is_none());
        assert!(vendor_efficiency("CUTLASS", OpKind::T2D).is_none());
        assert!(vendor_efficiency("TensorRT", OpKind::DEP).is_some());
        assert!(vendor_efficiency("ArmComputeLib", OpKind::C2D).is_some());
        assert!(vendor_efficiency("ArmComputeLib", OpKind::T2D).is_none());
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(Some(2.0)), "2.00x");
        assert_eq!(fmt_speedup(None), "n/a");
    }
}
