//! Trace replay: re-applying a recorded primitive sequence to a fresh
//! program.
//!
//! Loop variables are addressed by *name* during replay; split/fuse derive
//! their new names deterministically from their inputs, so a trace
//! recorded on one build of a workload applies to any alpha-equivalent
//! build. This is the mechanism behind search-record reuse (§5.2) and is
//! what lets the evolutionary search mutate a decision inside a trace and
//! re-materialize the program.
//!
//! Replay covers every §3.2 primitive the [`Schedule`] records. Compound
//! rewrites (`auto_tensorize`'s canonical-form replacement) are not single
//! primitives; traces recorded *after* such a rewrite replay on the
//! rewritten program, not the original workload.

use tir::{AnnValue, MemScope, PrimFunc, ThreadTag};

use crate::schedule::{LoopRef, Result, Schedule, ScheduleError};
use crate::trace::{Trace, TraceArg, TraceStep};

fn arg_str(step: &TraceStep, idx: usize) -> Result<&str> {
    match step.args.get(idx) {
        Some(TraceArg::Str(s)) => Ok(s),
        other => Err(ScheduleError::Precondition(format!(
            "trace step {} argument {idx}: expected string, got {other:?}",
            step.primitive
        ))),
    }
}

fn arg_ints(step: &TraceStep, idx: usize) -> Result<&[i64]> {
    match step.args.get(idx) {
        Some(TraceArg::Ints(v)) => Ok(v),
        other => Err(ScheduleError::Precondition(format!(
            "trace step {} argument {idx}: expected int list, got {other:?}",
            step.primitive
        ))),
    }
}

fn arg_ann(step: &TraceStep, idx: usize) -> AnnValue {
    match step.args.get(idx) {
        Some(TraceArg::Int(v)) => AnnValue::Int(*v),
        Some(TraceArg::Str(s)) => AnnValue::Str(s.clone()),
        _ => AnnValue::Int(0),
    }
}

impl Schedule {
    fn loop_by_name(&self, name: &str) -> Result<LoopRef> {
        self.find_loop_by_name(name)
            .ok_or_else(|| ScheduleError::LoopNotFound(name.to_string()))
    }

    /// Applies one recorded step.
    ///
    /// # Errors
    ///
    /// Fails when the step references names that do not exist or the
    /// primitive's preconditions fail on this program.
    pub fn apply_trace_step(&mut self, step: &TraceStep) -> Result<()> {
        match step.primitive.as_str() {
            "split" => {
                let l = self.loop_by_name(arg_str(step, 0)?)?;
                let factors = arg_ints(step, 1)?.to_vec();
                self.split(&l, &factors)?;
            }
            "fuse" => {
                let loops: Vec<LoopRef> = step
                    .args
                    .iter()
                    .map(|a| match a {
                        TraceArg::Str(s) => self.loop_by_name(s),
                        other => Err(ScheduleError::Precondition(format!(
                            "fuse argument: expected loop name, got {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?;
                self.fuse(&loops)?;
            }
            "reorder" => {
                let loops: Vec<LoopRef> = step
                    .args
                    .iter()
                    .map(|a| match a {
                        TraceArg::Str(s) => self.loop_by_name(s),
                        other => Err(ScheduleError::Precondition(format!(
                            "reorder argument: expected loop name, got {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?;
                self.reorder(&loops)?;
            }
            "parallel" => {
                let l = self.loop_by_name(arg_str(step, 0)?)?;
                self.parallel(&l)?;
            }
            "vectorize" => {
                let l = self.loop_by_name(arg_str(step, 0)?)?;
                self.vectorize(&l)?;
            }
            "unroll" => {
                let l = self.loop_by_name(arg_str(step, 0)?)?;
                self.unroll(&l)?;
            }
            "bind" => {
                let l = self.loop_by_name(arg_str(step, 0)?)?;
                let tag = ThreadTag::from_name(arg_str(step, 1)?).ok_or_else(|| {
                    ScheduleError::Precondition("bind: unknown thread tag".into())
                })?;
                self.bind(&l, tag)?;
            }
            "annotate" => {
                let l = self.loop_by_name(arg_str(step, 0)?)?;
                let key = arg_str(step, 1)?.to_string();
                self.annotate(&l, &key, arg_ann(step, 2))?;
            }
            "annotate_block" => {
                let b = self.get_block(arg_str(step, 0)?)?;
                let key = arg_str(step, 1)?.to_string();
                self.annotate_block(&b, &key, arg_ann(step, 2))?;
            }
            "compute_at" => {
                let b = self.get_block(arg_str(step, 0)?)?;
                let l = self.loop_by_name(arg_str(step, 1)?)?;
                self.compute_at(&b, &l)?;
            }
            "reverse_compute_at" => {
                let b = self.get_block(arg_str(step, 0)?)?;
                let l = self.loop_by_name(arg_str(step, 1)?)?;
                self.reverse_compute_at(&b, &l)?;
            }
            "compute_inline" => {
                let b = self.get_block(arg_str(step, 0)?)?;
                self.compute_inline(&b)?;
            }
            "reverse_compute_inline" => {
                let b = self.get_block(arg_str(step, 0)?)?;
                self.reverse_compute_inline(&b)?;
            }
            "cache_read" => {
                let b = self.get_block(arg_str(step, 0)?)?;
                let buf = self.find_buffer(arg_str(step, 1)?).ok_or_else(|| {
                    ScheduleError::Precondition("cache_read: unknown buffer".into())
                })?;
                let scope = MemScope::from_name(arg_str(step, 2)?);
                let at = arg_str(step, 3)?;
                let at_loop = if at.is_empty() {
                    None
                } else {
                    Some(self.loop_by_name(at)?)
                };
                self.cache_read(&b, &buf, scope, at_loop.as_ref())?;
            }
            "cache_write" => {
                let b = self.get_block(arg_str(step, 0)?)?;
                let scope = MemScope::from_name(arg_str(step, 1)?);
                let at = arg_str(step, 2)?;
                let at_loop = if at.is_empty() {
                    None
                } else {
                    Some(self.loop_by_name(at)?)
                };
                self.cache_write(&b, scope, at_loop.as_ref())?;
            }
            "blockize" => {
                let l = self.loop_by_name(arg_str(step, 0)?)?;
                self.blockize(&l)?;
            }
            "decompose_reduction" => {
                let b = self.get_block(arg_str(step, 0)?)?;
                let l = self.loop_by_name(arg_str(step, 1)?)?;
                self.decompose_reduction(&b, &l)?;
            }
            "merge_reduction" => {
                let init = self.get_block(arg_str(step, 0)?)?;
                let update = self.get_block(arg_str(step, 1)?)?;
                self.merge_reduction(&init, &update)?;
            }
            other => {
                return Err(ScheduleError::Precondition(format!(
                    "unknown primitive in trace: {other}"
                )))
            }
        }
        Ok(())
    }
}

/// Replays a full trace on a fresh function.
///
/// # Errors
///
/// Fails on the first step whose preconditions do not hold.
pub fn replay(func: PrimFunc, trace: &Trace) -> Result<Schedule> {
    let mut sch = Schedule::new(func);
    for step in trace.steps() {
        sch.apply_trace_step(step)?;
    }
    Ok(sch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::builder::matmul_func;
    use tir::structural::func_structural_eq;
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    fn mm() -> PrimFunc {
        matmul_func("mm", 16, 16, 16, DataType::float32())
    }

    #[test]
    fn replay_reproduces_a_full_schedule() {
        // Record a rich schedule touching most primitives.
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").unwrap();
        let loops = sch.get_loops(&block).unwrap();
        let i = sch.split(&loops[0], &[4, 4]).unwrap();
        let j = sch.split(&loops[1], &[4, 4]).unwrap();
        sch.reorder(&[i[0].clone(), j[0].clone(), i[1].clone(), j[1].clone()])
            .unwrap();
        let bid = sch.fuse(&[i[0].clone(), j[0].clone()]).unwrap();
        sch.bind(&bid, ThreadTag::BlockIdxX).unwrap();
        sch.bind(&i[1], ThreadTag::ThreadIdxX).unwrap();
        let a = sch.func().param("A").unwrap().clone();
        sch.cache_read(&block, &a, MemScope::Shared, Some(&j[1]))
            .unwrap();
        sch.cache_write(&block, MemScope::Local, Some(&j[1]))
            .unwrap();
        sch.decompose_reduction(&block, &loops[2]).unwrap();
        sch.annotate_block(&block, "custom", AnnValue::Int(7))
            .unwrap();

        // Replay on a *fresh* alpha-equivalent function.
        let replayed = replay(mm(), sch.trace()).expect("replay");
        assert!(
            func_structural_eq(sch.func(), replayed.func()),
            "--- recorded ---\n{}\n--- replayed ---\n{}",
            sch.func(),
            replayed.func()
        );
        assert_same_semantics(sch.func(), replayed.func(), 1, 0.0);
    }

    #[test]
    fn replay_fails_cleanly_on_missing_names() {
        let mut trace = Trace::default();
        trace.push(TraceStep::new(
            "split",
            vec!["no_such_loop".into(), vec![2i64, 8].into()],
        ));
        let err = replay(mm(), &trace).unwrap_err();
        assert!(matches!(err, ScheduleError::LoopNotFound(_)), "{err}");
    }

    #[test]
    fn replay_rejects_unknown_primitives() {
        let mut trace = Trace::default();
        trace.push(TraceStep::new("frobnicate", vec![]));
        let err = replay(mm(), &trace).unwrap_err();
        assert!(matches!(err, ScheduleError::Precondition(_)), "{err}");
    }

    #[test]
    fn decompose_merge_replays() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").unwrap();
        let loops = sch.get_loops(&block).unwrap();
        let init = sch.decompose_reduction(&block, &loops[2]).unwrap();
        sch.merge_reduction(&init, &block).unwrap();
        let replayed = replay(mm(), sch.trace()).expect("replay");
        assert!(func_structural_eq(sch.func(), replayed.func()));
    }
}
