//! Compute-location primitives: `compute_at`, `reverse_compute_at`,
//! `compute_inline`, `reverse_compute_inline`.
//!
//! These move or dissolve whole blocks while preserving the producer-covers-
//! consumer invariant, using only block-signature information plus region
//! arithmetic (Fig. 6 of the paper).

use std::collections::HashMap;

use tir::simplify::simplify_expr;
use tir::visit::{collect_vars_expr, subst_expr};
use tir::{Block, BlockRealize, Buffer, Expr, IterKind, RangeExpr, Stmt, Var};
use tir_arith::bound::{bound_of, IntBound};

use crate::schedule::{BlockRef, LoopRef, Result, Schedule, ScheduleError};
use crate::trace::TraceStep;

/// Removes loops whose bodies became empty and flattens empty sequences.
pub(crate) fn prune_empty(s: Stmt) -> Stmt {
    match s {
        Stmt::For(f) => {
            let f = *f;
            let body = prune_empty(f.body);
            if matches!(&body, Stmt::Seq(v) if v.is_empty()) {
                Stmt::Seq(vec![])
            } else {
                Stmt::For(Box::new(tir::For { body, ..f }))
            }
        }
        Stmt::Seq(v) => Stmt::seq(
            v.into_iter()
                .map(prune_empty)
                .filter(|st| !matches!(st, Stmt::Seq(v) if v.is_empty()))
                .collect(),
        ),
        Stmt::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => Stmt::IfThenElse {
            cond,
            then_branch: Box::new(prune_empty(*then_branch)),
            else_branch: else_branch.map(|e| Box::new(prune_empty(*e))),
        },
        Stmt::BlockRealize(mut br) => {
            br.block.body = Box::new(prune_empty(*br.block.body));
            Stmt::BlockRealize(br)
        }
        other => other,
    }
}

/// Extracts (removes and returns) the block realize with the given name.
fn extract_block(s: Stmt, name: &str, out: &mut Option<BlockRealize>) -> Stmt {
    match s {
        Stmt::BlockRealize(br) => {
            if br.block.name == name && out.is_none() {
                *out = Some(*br);
                return Stmt::Seq(vec![]);
            }
            let mut br = *br;
            br.block.body = Box::new(extract_block(*br.block.body, name, out));
            Stmt::BlockRealize(Box::new(br))
        }
        Stmt::For(f) => {
            let f = *f;
            let body = extract_block(f.body, name, out);
            Stmt::For(Box::new(tir::For { body, ..f }))
        }
        Stmt::Seq(v) => Stmt::Seq(
            v.into_iter()
                .map(|st| extract_block(st, name, out))
                .collect(),
        ),
        Stmt::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => Stmt::IfThenElse {
            cond,
            then_branch: Box::new(extract_block(*then_branch, name, out)),
            else_branch: else_branch.map(|e| Box::new(extract_block(*e, name, out))),
        },
        other => other,
    }
}

/// The region of `buffer` accessed by block realizes inside `stmt`,
/// expressed in terms of variables *not* bound inside `stmt`: block
/// signature regions are instantiated with their binding values, then all
/// loop variables bound within `stmt` are relaxed away (symbolic min at
/// zero, constant extent from interval analysis).
pub(crate) fn required_region(
    stmt: &Stmt,
    buffer: &Buffer,
    reads: bool,
    writes: bool,
) -> Option<Vec<RangeExpr>> {
    struct Req {
        mins: Vec<Option<Expr>>,
        extents: Vec<i64>,
        any: bool,
    }
    fn relax(
        region: &[RangeExpr],
        subst: &HashMap<Var, Expr>,
        inner: &[(Var, i64)],
        req: &mut Req,
        buffer: &Buffer,
    ) {
        let zero_map: HashMap<Var, Expr> = inner
            .iter()
            .map(|(v, _)| (v.clone(), Expr::int(0)))
            .collect();
        let inner_bounds: HashMap<Var, IntBound> = inner
            .iter()
            .map(|(v, e)| (v.clone(), IntBound::new(0, (*e - 1).max(0))))
            .collect();
        for (d, r) in region.iter().enumerate() {
            let min = simplify_expr(&subst_expr(&r.min, subst));
            let extent_c = r.extent.as_int().unwrap_or(buffer.shape()[d]);
            let min_zeroed = simplify_expr(&subst_expr(&min, &zero_map));
            // Width contributed by inner vars in the min expression.
            let mut env = inner_bounds.clone();
            for v in collect_vars_expr(&min) {
                env.entry(v).or_insert(IntBound::single(0));
            }
            let full = bound_of(&min, &env);
            let at_zero = {
                let env0: HashMap<Var, IntBound> = env
                    .keys()
                    .map(|v| (v.clone(), IntBound::single(0)))
                    .collect();
                bound_of(&min, &env0)
            };
            if full.min < at_zero.min {
                // Negative coefficient on an inner variable (e.g. a flipped
                // convolution kernel): zeroing the inner vars does not give
                // the region minimum, so fall back to the full dimension.
                req.mins[d] = Some(Expr::int(0));
                req.extents[d] = buffer.shape()[d];
                req.any = true;
                continue;
            }
            let width = (full.max - at_zero.max) + extent_c;
            match &mut req.mins[d] {
                Some(existing) if *existing == min_zeroed => {
                    req.extents[d] = req.extents[d].max(width);
                }
                Some(_) => {
                    req.mins[d] = Some(Expr::int(0));
                    req.extents[d] = buffer.shape()[d];
                }
                None => {
                    req.mins[d] = Some(min_zeroed);
                    req.extents[d] = width;
                }
            }
        }
        req.any = true;
    }
    fn walk(
        s: &Stmt,
        buffer: &Buffer,
        reads: bool,
        writes: bool,
        inner: &mut Vec<(Var, i64)>,
        req: &mut Req,
    ) {
        match s {
            Stmt::For(f) => {
                inner.push((f.var.clone(), f.extent.as_int().unwrap_or(1)));
                walk(&f.body, buffer, reads, writes, inner, req);
                inner.pop();
            }
            Stmt::Seq(v) => {
                for st in v {
                    walk(st, buffer, reads, writes, inner, req);
                }
            }
            Stmt::IfThenElse {
                then_branch,
                else_branch,
                ..
            } => {
                walk(then_branch, buffer, reads, writes, inner, req);
                if let Some(e) = else_branch {
                    walk(e, buffer, reads, writes, inner, req);
                }
            }
            Stmt::BlockRealize(br) => {
                let subst: HashMap<Var, Expr> = br
                    .block
                    .iter_vars
                    .iter()
                    .zip(&br.iter_values)
                    .map(|(iv, v)| (iv.var.clone(), v.clone()))
                    .collect();
                if reads {
                    for r in &br.block.reads {
                        if &r.buffer == buffer {
                            relax(&r.region, &subst, inner, req, buffer);
                        }
                    }
                }
                if writes {
                    for w in &br.block.writes {
                        if &w.buffer == buffer {
                            relax(&w.region, &subst, inner, req, buffer);
                        }
                    }
                }
                // Nested blocks: their accesses are already summarized by
                // this block's own signature, so no need to descend.
            }
            _ => {}
        }
    }
    let mut req = Req {
        mins: vec![None; buffer.ndim()],
        extents: vec![0; buffer.ndim()],
        any: false,
    };
    let mut inner = Vec::new();
    walk(stmt, buffer, reads, writes, &mut inner, &mut req);
    if !req.any {
        return None;
    }
    Some(
        req.mins
            .into_iter()
            .zip(req.extents)
            .map(|(min, e)| RangeExpr::new(min.expect("dim visited"), e))
            .collect(),
    )
}

/// Recomputes the read/write signatures of every *non-leaf* block (one
/// containing nested blocks) from its children, bottom-up. Needed after a
/// transformation rewrites buffers inside a nested block: the enclosing
/// blocks' signatures would otherwise go stale.
pub(crate) fn refresh_nested_signatures(s: Stmt) -> Stmt {
    fn buffers_accessed_below(s: &Stmt, reads: &mut Vec<Buffer>, writes: &mut Vec<Buffer>) {
        match s {
            Stmt::BlockRealize(br) => {
                for r in &br.block.reads {
                    if !reads.contains(&r.buffer) {
                        reads.push(r.buffer.clone());
                    }
                }
                for w in &br.block.writes {
                    if !writes.contains(&w.buffer) {
                        writes.push(w.buffer.clone());
                    }
                }
            }
            Stmt::For(f) => buffers_accessed_below(&f.body, reads, writes),
            Stmt::Seq(v) => {
                for st in v {
                    buffers_accessed_below(st, reads, writes);
                }
            }
            Stmt::IfThenElse {
                then_branch,
                else_branch,
                ..
            } => {
                buffers_accessed_below(then_branch, reads, writes);
                if let Some(e) = else_branch {
                    buffers_accessed_below(e, reads, writes);
                }
            }
            _ => {}
        }
    }
    fn has_nested_block(s: &Stmt) -> bool {
        !tir::visit::block_names(s).is_empty()
    }
    match s {
        Stmt::BlockRealize(mut br) => {
            br.block.body = Box::new(refresh_nested_signatures(*br.block.body));
            if has_nested_block(&br.block.body) && br.block.name != "root" {
                let mut read_bufs = Vec::new();
                let mut write_bufs = Vec::new();
                buffers_accessed_below(&br.block.body, &mut read_bufs, &mut write_bufs);
                let local = &br.block.alloc_buffers;
                let mut reads = Vec::new();
                for b in read_bufs {
                    if local.contains(&b) {
                        continue;
                    }
                    if let Some(region) = required_region(&br.block.body, &b, true, false) {
                        reads.push(tir::BufferRegion::new(b, region));
                    }
                }
                let mut writes = Vec::new();
                for b in write_bufs {
                    if local.contains(&b) {
                        continue;
                    }
                    if let Some(region) = required_region(&br.block.body, &b, false, true) {
                        writes.push(tir::BufferRegion::new(b, region));
                    }
                }
                br.block.reads = reads;
                br.block.writes = writes;
            }
            Stmt::BlockRealize(br)
        }
        Stmt::For(f) => {
            let f = *f;
            let body = refresh_nested_signatures(f.body);
            Stmt::For(Box::new(tir::For { body, ..f }))
        }
        Stmt::Seq(v) => Stmt::Seq(v.into_iter().map(refresh_nested_signatures).collect()),
        Stmt::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => Stmt::IfThenElse {
            cond,
            then_branch: Box::new(refresh_nested_signatures(*then_branch)),
            else_branch: else_branch.map(|e| Box::new(refresh_nested_signatures(*e))),
        },
        other => other,
    }
}

/// Builds a loop nest realizing `block` so that its spatial iterators sweep
/// `region` (one range per output dimension, in output-dim order) and its
/// reduction iterators sweep their full domains. Requires the block's write
/// indices to be exactly its spatial iterators in order.
pub(crate) fn realize_over_region(
    block: &Block,
    region: &[RangeExpr],
    guard_shape: &[i64],
) -> Result<Stmt> {
    let spatial_count = block
        .iter_vars
        .iter()
        .filter(|iv| iv.kind == IterKind::Spatial)
        .count();
    if spatial_count != region.len() {
        return Err(ScheduleError::Precondition(format!(
            "block {} has {} spatial iterators but the target region has rank {}",
            block.name,
            spatial_count,
            region.len()
        )));
    }
    let mut bindings: Vec<Expr> = Vec::with_capacity(block.iter_vars.len());
    let mut loops: Vec<(Var, i64)> = Vec::new();
    let mut predicate = Expr::true_();
    let mut spatial_idx = 0usize;
    for iv in &block.iter_vars {
        match iv.kind {
            IterKind::Spatial => {
                let r = &region[spatial_idx];
                let extent = r.extent.as_int().ok_or_else(|| {
                    ScheduleError::Precondition("non-constant region extent".into())
                })?;
                let fresh = Var::int(format!("ax{spatial_idx}"));
                let binding = simplify_expr(&(r.min.clone() + Expr::from(&fresh)));
                let dim = guard_shape[spatial_idx];
                if !can_prove_within(&r.min, extent, dim) {
                    predicate = and_pred(predicate, binding.clone().lt(dim));
                }
                bindings.push(binding);
                loops.push((fresh, extent));
                spatial_idx += 1;
            }
            IterKind::Reduce => {
                let fresh = Var::int(format!("red{}", bindings.len()));
                bindings.push(Expr::from(&fresh));
                loops.push((fresh, iv.extent));
            }
        }
    }
    let realize = BlockRealize::with_predicate(bindings, predicate, block.clone());
    Ok(Stmt::BlockRealize(Box::new(realize)).in_loops(loops))
}

fn and_pred(p: Expr, q: Expr) -> Expr {
    if p.is_const_int(1) {
        q
    } else {
        p.and(q)
    }
}

/// Attempts to prove `min + extent <= dim` (loose: only constant mins
/// succeed; symbolic mins return false and get a runtime guard instead).
fn can_prove_within(min: &Expr, extent: i64, dim: i64) -> bool {
    match min.as_int() {
        Some(m) => m + extent <= dim,
        None => false,
    }
}

impl Schedule {
    /// Removes the realize of `block` from the tree and returns it.
    pub(crate) fn take_block(&mut self, block: &BlockRef) -> Result<BlockRealize> {
        let mut out = None;
        let name = block.name().to_string();
        self.rewrite_body(|body| Ok(prune_empty(extract_block(body, &name, &mut out))))?;
        out.ok_or(ScheduleError::BlockNotFound(name))
    }

    /// Puts a previously extracted realize back at the end of the root
    /// block's body (used by transformations that re-home a block).
    #[allow(dead_code)]
    pub(crate) fn restore_block_at_root(&mut self, br: BlockRealize) -> Result<()> {
        let mut loops = Vec::new();
        let mut bindings = Vec::new();
        for iv in &br.block.iter_vars {
            let fresh = Var::int(format!("r{}", loops.len()));
            bindings.push(Expr::from(&fresh));
            loops.push((fresh, iv.extent));
        }
        let nest = Stmt::BlockRealize(Box::new(BlockRealize::with_predicate(
            bindings,
            br.predicate.clone(),
            br.block,
        )))
        .in_loops(loops);
        self.rewrite_body(|body| match body {
            Stmt::BlockRealize(mut root) => {
                root.block.body = Box::new(Stmt::seq(vec![*root.block.body, nest]));
                Ok(Stmt::BlockRealize(root))
            }
            other => Ok(Stmt::seq(vec![other, nest])),
        })
    }

    /// Moves producer `block` to the top of `loop_ref`'s body, shrinking it
    /// to compute exactly the region its consumers under that loop need
    /// (Fig. 6's compute-at).
    ///
    /// # Errors
    ///
    /// Fails when the block/loop is missing, the block writes more than one
    /// buffer, or no consumer under the loop reads its output; on failure
    /// the schedule is left unchanged (modulo canonical loop regeneration).
    pub fn compute_at(&mut self, block: &BlockRef, loop_ref: &LoopRef) -> Result<()> {
        self.transactional(|s| s.compute_at_impl(block, loop_ref))
    }

    fn compute_at_impl(&mut self, block: &BlockRef, loop_ref: &LoopRef) -> Result<()> {
        let br = self.take_block(block)?;
        if br.block.writes.len() != 1 {
            return Err(ScheduleError::Precondition(format!(
                "compute_at requires a single-output block, {} writes {} buffers",
                br.block.name,
                br.block.writes.len()
            )));
        }
        let buffer = br.block.writes[0].buffer.clone();
        let guard_shape = buffer.shape().to_vec();
        let block_data = br.block.clone();
        let loop_var = loop_ref.var().clone();
        let result = self.rewrite_loop(loop_ref, |f: tir::For| {
            let region = required_region(&f.body, &buffer, true, false).ok_or_else(|| {
                ScheduleError::Precondition(format!(
                    "no consumer of {} under loop {}",
                    buffer.name(),
                    loop_var.name()
                ))
            })?;
            let nest = realize_over_region(&block_data, &region, &guard_shape)?;
            Ok(Stmt::For(Box::new(tir::For {
                body: Stmt::seq(vec![nest, f.body]),
                ..f
            })))
        });
        result?;
        self.record(TraceStep::new(
            "compute_at",
            vec![
                block.name().into(),
                loop_ref.var().name().to_string().into(),
            ],
        ))
    }

    /// Moves consumer `block` to the bottom of `loop_ref`'s body, shrinking
    /// it to consume exactly what is produced under that loop (the paper's
    /// reverse compute-at).
    ///
    /// # Errors
    ///
    /// Fails symmetrically to [`Schedule::compute_at`].
    pub fn reverse_compute_at(&mut self, block: &BlockRef, loop_ref: &LoopRef) -> Result<()> {
        self.transactional(|s| s.reverse_compute_at_impl(block, loop_ref))
    }

    fn reverse_compute_at_impl(&mut self, block: &BlockRef, loop_ref: &LoopRef) -> Result<()> {
        let br = self.take_block(block)?;
        let block_data = br.block.clone();
        let loop_var = loop_ref.var().clone();
        let read_buffers: Vec<Buffer> = br.block.reads.iter().map(|r| r.buffer.clone()).collect();
        let out_shape: Vec<i64> = br.block.writes[0].buffer.shape().to_vec();
        let result = self.rewrite_loop(loop_ref, |f: tir::For| {
            let mut produced_region = None;
            for b in &read_buffers {
                if let Some(r) = required_region(&f.body, b, false, true) {
                    produced_region = Some((b.clone(), r));
                    break;
                }
            }
            let (pbuf, region) = produced_region.ok_or_else(|| {
                ScheduleError::Precondition(format!(
                    "no producer for any input of {} under loop {}",
                    block_data.name,
                    loop_var.name()
                ))
            })?;
            // The consumer must read pbuf at exactly its spatial iterators
            // (identity mapping) so the produced region carries over.
            let spatial_vars: Vec<&Var> = block_data
                .iter_vars
                .iter()
                .filter(|iv| iv.kind == IterKind::Spatial)
                .map(|iv| &iv.var)
                .collect();
            let reads_identity = block_data.reads.iter().any(|r| {
                r.buffer == pbuf
                    && r.region.len() == spatial_vars.len()
                    && r.region
                        .iter()
                        .zip(&spatial_vars)
                        .all(|(rr, v)| rr.min.as_var() == Some(v))
            });
            if !reads_identity {
                return Err(ScheduleError::Precondition(format!(
                    "reverse_compute_at requires {} to read {} at its spatial iterators",
                    block_data.name,
                    pbuf.name()
                )));
            }
            let nest = realize_over_region(&block_data, &region, &out_shape)?;
            Ok(Stmt::For(Box::new(tir::For {
                body: Stmt::seq(vec![f.body, nest]),
                ..f
            })))
        });
        result?;
        self.record(TraceStep::new(
            "reverse_compute_at",
            vec![
                block.name().into(),
                loop_ref.var().name().to_string().into(),
            ],
        ))
    }

    /// Inlines an elementwise producer block into its consumers: the block
    /// body must be a single store of the form `B[v0, .., vn] = f(v0..vn)`.
    ///
    /// # Errors
    ///
    /// Fails when the block has reductions, multiple statements, or
    /// non-identity store indices.
    pub fn compute_inline(&mut self, block: &BlockRef) -> Result<()> {
        self.transactional(|s| s.compute_inline_impl(block))
    }

    fn compute_inline_impl(&mut self, block: &BlockRef) -> Result<()> {
        let br = self.take_block(block)?;
        if br.block.is_reduction() {
            return Err(ScheduleError::Precondition(
                "compute_inline requires a spatial-only block".into(),
            ));
        }
        let Stmt::Store {
            buffer,
            indices,
            value,
        } = (*br.block.body).clone()
        else {
            return Err(ScheduleError::Precondition(
                "compute_inline requires a single-store body".into(),
            ));
        };
        let iter_vars = br.block.iter_var_handles();
        let identity = indices.len() == iter_vars.len()
            && indices
                .iter()
                .zip(&iter_vars)
                .all(|(e, v)| e.as_var() == Some(v));
        if !identity {
            return Err(ScheduleError::Precondition(format!(
                "compute_inline requires identity store indices in block {}",
                block.name()
            )));
        }
        struct Inliner<'a> {
            buffer: &'a Buffer,
            iter_vars: &'a [Var],
            template: &'a Expr,
        }
        impl tir::visit::ExprMutator for Inliner<'_> {
            fn mutate_expr(&mut self, e: Expr) -> Expr {
                if let Expr::Load { buffer, indices } = &e {
                    if buffer == self.buffer {
                        let indices: Vec<Expr> = indices
                            .iter()
                            .map(|i| self.mutate_expr(i.clone()))
                            .collect();
                        let map: HashMap<Var, Expr> =
                            self.iter_vars.iter().cloned().zip(indices).collect();
                        return subst_expr(self.template, &map);
                    }
                }
                self.walk_expr(e)
            }
        }
        impl tir::visit::StmtMutator for Inliner<'_> {
            fn mutate_block(&mut self, mut b: Block) -> Block {
                b.init = b.init.map(|i| Box::new(self.mutate_stmt(*i)));
                b.body = Box::new(self.mutate_stmt(*b.body));
                // Re-derive reads for blocks that referenced the inlined
                // buffer (the inlined expression brings new inputs).
                if b.reads.iter().any(|r| &r.buffer == self.buffer) {
                    let (reads, _) = tir::builder::derive_signature(&b.body, None);
                    let writes: Vec<Buffer> = b.writes.iter().map(|w| w.buffer.clone()).collect();
                    b.reads = reads
                        .into_iter()
                        .filter(|r| !writes.contains(&r.buffer))
                        .collect();
                }
                b
            }
        }
        let mut inliner = Inliner {
            buffer: &buffer,
            iter_vars: &iter_vars,
            template: &value,
        };
        self.rewrite_body(|body| {
            use tir::visit::StmtMutator as _;
            let new_body = inliner.mutate_stmt(body);
            Ok(drop_alloc(new_body, &buffer))
        })?;
        self.record(TraceStep::new("compute_inline", vec![block.name().into()]))
    }

    /// Inlines an elementwise *consumer* into its producer: the consumer's
    /// body must be `D[v..] = f(O[v..])` where `O` is produced by a single
    /// non-reducing block; the producer's stores to `O` are rewritten to
    /// store `f(value)` into `D` directly.
    ///
    /// # Errors
    ///
    /// Fails when the consumer is not a pure elementwise epilogue or the
    /// producer reduces (the epilogue would apply to partial values).
    pub fn reverse_compute_inline(&mut self, block: &BlockRef) -> Result<()> {
        self.transactional(|s| s.reverse_compute_inline_impl(block))
    }

    fn reverse_compute_inline_impl(&mut self, block: &BlockRef) -> Result<()> {
        let br = self.take_block(block)?;
        macro_rules! bail {
            ($br:expr, $msg:expr) => {{
                let _ = $br;
                return Err(ScheduleError::Precondition($msg.into()));
            }};
        }
        if br.block.is_reduction() {
            bail!(br, "reverse_compute_inline requires a spatial block");
        }
        let Stmt::Store {
            buffer: dst,
            indices,
            value,
        } = (*br.block.body).clone()
        else {
            bail!(br, "reverse_compute_inline requires a single store");
        };
        let iter_vars = br.block.iter_var_handles();
        let identity = indices.len() == iter_vars.len()
            && indices
                .iter()
                .zip(&iter_vars)
                .all(|(e, v)| e.as_var() == Some(v));
        if !identity {
            bail!(br, "consumer store indices must be identity");
        }
        let read_bufs: Vec<Buffer> = br.block.reads.iter().map(|r| r.buffer.clone()).collect();
        if read_bufs.len() != 1 {
            bail!(br, "consumer must read exactly one buffer");
        }
        let src = read_bufs[0].clone();
        if src.shape() != dst.shape() {
            bail!(br, "source and destination shapes must match");
        }
        // Reject reduction producers: the epilogue must only see the final
        // value (decompose the reduction first).
        let mut producer_reduces = false;
        tir::visit::for_each_block_realize(&self.func.body, &mut |pbr| {
            if pbr.block.writes.iter().any(|w| w.buffer == src) && pbr.block.is_reduction() {
                producer_reduces = true;
            }
        });
        if producer_reduces {
            bail!(
                br,
                "reverse_compute_inline into a reduction producer is unsound; \
                 use decompose_reduction first"
            );
        }
        struct Rewriter<'a> {
            src: &'a Buffer,
            dst: &'a Buffer,
            iter_vars: &'a [Var],
            template: &'a Expr,
        }
        impl Rewriter<'_> {
            fn apply_epilogue(&self, store_indices: &[Expr], inner_value: Expr) -> Expr {
                let map: HashMap<Var, Expr> = self
                    .iter_vars
                    .iter()
                    .cloned()
                    .zip(store_indices.iter().cloned())
                    .collect();
                struct LoadSwap<'b> {
                    src: &'b Buffer,
                    replacement: &'b Expr,
                }
                impl tir::visit::ExprMutator for LoadSwap<'_> {
                    fn mutate_expr(&mut self, e: Expr) -> Expr {
                        if let Expr::Load { buffer, .. } = &e {
                            if buffer == self.src {
                                return self.replacement.clone();
                            }
                        }
                        self.walk_expr(e)
                    }
                }
                use tir::visit::ExprMutator as _;
                let substituted = subst_expr(self.template, &map);
                LoadSwap {
                    src: self.src,
                    replacement: &inner_value,
                }
                .mutate_expr(substituted)
            }
        }
        use tir::visit::ExprMutator as _;
        impl tir::visit::ExprMutator for Rewriter<'_> {}
        impl tir::visit::StmtMutator for Rewriter<'_> {
            fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
                if let Stmt::Store {
                    buffer,
                    indices,
                    value,
                } = &s
                {
                    if buffer == self.src {
                        let value = self.mutate_expr(value.clone());
                        let new_value = self.apply_epilogue(indices, value);
                        return Stmt::Store {
                            buffer: self.dst.clone(),
                            indices: indices.clone(),
                            value: new_value,
                        };
                    }
                }
                self.walk_stmt(s)
            }

            fn mutate_block(&mut self, mut b: Block) -> Block {
                b.init = b.init.map(|i| Box::new(self.mutate_stmt(*i)));
                b.body = Box::new(self.mutate_stmt(*b.body));
                for w in &mut b.writes {
                    if &w.buffer == self.src {
                        w.buffer = self.dst.clone();
                    }
                }
                b
            }
        }
        let mut rewriter = Rewriter {
            src: &src,
            dst: &dst,
            iter_vars: &iter_vars,
            template: &value,
        };
        self.rewrite_body(|body| {
            use tir::visit::StmtMutator as _;
            let new_body = rewriter.mutate_stmt(body);
            Ok(drop_alloc(new_body, &src))
        })?;
        self.record(TraceStep::new(
            "reverse_compute_inline",
            vec![block.name().into()],
        ))
    }
}

/// Removes `buffer` from every block's allocation list (after inlining).
fn drop_alloc(s: Stmt, buffer: &Buffer) -> Stmt {
    match s {
        Stmt::BlockRealize(mut br) => {
            br.block.alloc_buffers.retain(|b| b != buffer);
            br.block.body = Box::new(drop_alloc(*br.block.body, buffer));
            Stmt::BlockRealize(br)
        }
        Stmt::For(f) => {
            let f = *f;
            let body = drop_alloc(f.body, buffer);
            Stmt::For(Box::new(tir::For { body, ..f }))
        }
        Stmt::Seq(v) => Stmt::Seq(v.into_iter().map(|st| drop_alloc(st, buffer)).collect()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use tir::builder::{compute, matmul_func};
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    /// B = A + 1; C = exp(B): Fig. 4's pipeline, as a function.
    fn add_exp() -> tir::PrimFunc {
        let a = Buffer::new("A", DataType::float32(), vec![64, 64]);
        let b = Buffer::new("B", DataType::float32(), vec![64, 64]);
        let c = Buffer::new("C", DataType::float32(), vec![64, 64]);
        let s1 = compute("B", &b, |iv| {
            a.load(iv.iter().map(Expr::from).collect()) + Expr::f32(1.0)
        });
        let s2 = compute("C", &c, |iv| Expr::Call {
            name: "exp".into(),
            args: vec![b.load(iv.iter().map(Expr::from).collect())],
            dtype: DataType::float32(),
        });
        let mut f = tir::PrimFunc::new("add_exp", vec![a, c], Stmt::seq(vec![s1, s2]));
        f.root_block_mut().expect("root").alloc_buffers.push(b);
        f
    }

    /// Matmul followed by ReLU (the Fig. 8 workload shape).
    fn matmul_relu(n: i64) -> tir::PrimFunc {
        let base = matmul_func("mm", n, n, n, DataType::float32());
        let c = base.params[2].clone();
        let d = Buffer::new("D", DataType::float32(), vec![n, n]);
        let relu = compute("D", &d, |iv| {
            c.load(iv.iter().map(Expr::from).collect())
                .max(Expr::f32(0.0))
        });
        let a = base.params[0].clone();
        let b = base.params[1].clone();
        let root_body = match &base.body {
            Stmt::BlockRealize(br) => (*br.block.body).clone(),
            _ => unreachable!("root convention"),
        };
        let mut f = tir::PrimFunc::new(
            "matmul_relu",
            vec![a, b, d],
            Stmt::seq(vec![root_body, relu]),
        );
        f.root_block_mut().expect("root").alloc_buffers.push(c);
        f
    }

    #[test]
    fn compute_at_fig6() {
        let reference = add_exp();
        let mut sch = Schedule::new(add_exp());
        let c_block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&c_block).expect("loops");
        let i_split = sch.split(&loops[0], &[8, 8]).expect("split");
        let b_block = sch.get_block("B").expect("B");
        sch.compute_at(&b_block, &i_split[0]).expect("compute_at");
        let b_loops = sch.get_loops(&b_block).expect("b loops");
        assert!(b_loops.len() >= 3, "expected nested placement");
        assert_same_semantics(&reference, sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn compute_at_missing_consumer_fails_and_restores() {
        let mut sch = Schedule::new(add_exp());
        let b_block = sch.get_block("B").expect("B");
        let b_loops = sch.get_loops(&b_block).expect("loops");
        let err = sch.compute_at(&b_block, &b_loops[0].clone()).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::Precondition(_) | ScheduleError::LoopNotFound(_)
        ));
        sch.get_block("B").expect("B restored");
        assert_same_semantics(&add_exp(), sch.func(), 1, 0.0);
    }

    #[test]
    fn reverse_compute_at_epilogue() {
        let reference = matmul_relu(16);
        let mut sch = Schedule::new(matmul_relu(16));
        let mm = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&mm).expect("loops");
        let i_split = sch.split(&loops[0], &[4, 4]).expect("split");
        let relu = sch.get_block("D").expect("D");
        sch.reverse_compute_at(&relu, &i_split[0])
            .expect("reverse_compute_at");
        assert_same_semantics(&reference, sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn compute_inline_elementwise() {
        let reference = add_exp();
        let mut sch = Schedule::new(add_exp());
        let b_block = sch.get_block("B").expect("B");
        sch.compute_inline(&b_block).expect("inline");
        assert!(sch.get_block("B").is_err(), "B dissolved");
        let text = sch.func().to_string();
        assert!(text.contains("exp(A["), "inlined into consumer: {text}");
        // Inlining removes the f32 rounding of the intermediate buffer, so
        // allow a small tolerance (real fusing compilers do the same).
        assert_same_semantics(&reference, sch.func(), 1, 1e-5);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn compute_inline_rejects_reduction() {
        let mut sch = Schedule::new(matmul_relu(8));
        let mm = sch.get_block("C").expect("C");
        let err = sch.compute_inline(&mm).unwrap_err();
        assert!(matches!(err, ScheduleError::Precondition(_)));
        sch.get_block("C").expect("C restored");
    }

    #[test]
    fn reverse_compute_inline_epilogue() {
        let reference = add_exp();
        let mut sch = Schedule::new(add_exp());
        let c_block = sch.get_block("C").expect("C");
        sch.reverse_compute_inline(&c_block).expect("rev inline");
        assert!(sch.get_block("C").is_err());
        let text = sch.func().to_string();
        assert!(text.contains("C["), "B's store now writes C: {text}");
        assert_same_semantics(&reference, sch.func(), 1, 1e-5);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn reverse_compute_inline_rejects_reduction_producer() {
        let mut sch = Schedule::new(matmul_relu(8));
        let relu = sch.get_block("D").expect("D");
        let err = sch.reverse_compute_inline(&relu).unwrap_err();
        assert!(matches!(err, ScheduleError::Precondition(_)), "{err}");
        sch.get_block("D").expect("D restored");
        assert_same_semantics(&matmul_relu(8), sch.func(), 1, 0.0);
    }
}
