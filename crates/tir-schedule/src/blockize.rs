//! Blockization: wrapping a loop subtree into a new (outer) block, the
//! transformation that isolates a tensorizable sub-computation (Fig. 7).

use std::collections::HashMap;

use tir::simplify::simplify_expr;
use tir::visit::{collect_vars_expr, subst_expr};
use tir::{Block, BlockRealize, Expr, IterKind, IterVar, Stmt, Var};

use crate::compute_location::required_region;
use crate::schedule::{BlockRef, LoopRef, Result, Schedule, ScheduleError};
use crate::trace::TraceStep;

impl Schedule {
    /// Creates a new block isolating the subtree rooted at `loop_ref`.
    ///
    /// The subtree must be a perfect loop nest containing exactly one block
    /// realize, and every binding of that block must be separable as
    /// `outer_part + inner_part` where the inner part (over the loops at or
    /// inside `loop_ref`) is a compact zero-based combination. The inner
    /// block keeps its iterator domains; the new outer block gets one
    /// iterator per inner-block iterator with domain `extent / inner_extent`.
    ///
    /// Returns a reference to the new outer block, named `{block}_o`.
    ///
    /// # Errors
    ///
    /// Fails when the subtree shape or the bindings do not satisfy the
    /// conditions above.
    pub fn blockize(&mut self, loop_ref: &LoopRef) -> Result<BlockRef> {
        let mut outer_name = String::new();
        self.rewrite_loop(loop_ref, |f: tir::For| {
            // Collect the inner loop chain and the single block realize.
            let mut inner_loops: Vec<tir::For> = Vec::new();
            let mut current = Stmt::For(Box::new(f));
            let realize: BlockRealize = loop {
                match current {
                    Stmt::For(fr) => {
                        let fr = *fr;
                        let body = fr.body.clone();
                        inner_loops.push(tir::For {
                            body: Stmt::Seq(vec![]),
                            ..fr
                        });
                        current = body;
                    }
                    Stmt::BlockRealize(br) => break *br,
                    other => {
                        return Err(ScheduleError::Precondition(format!(
                            "blockize requires a perfect loop nest over a single \
                             block, found {other:?}"
                        )))
                    }
                }
            };
            let inner_vars: Vec<Var> = inner_loops.iter().map(|l| l.var.clone()).collect();
            let inner_dom: Vec<(Var, i64)> = inner_loops
                .iter()
                .map(|l| {
                    l.extent
                        .as_int()
                        .map(|e| (l.var.clone(), e))
                        .ok_or_else(|| {
                            ScheduleError::Precondition(
                                "blockize requires constant loop extents".into(),
                            )
                        })
                })
                .collect::<Result<_>>()?;
            if !realize.predicate.is_const_int(1) {
                return Err(ScheduleError::Precondition(
                    "blockize of predicated blocks is not supported; pad first".into(),
                ));
            }

            // Separate each binding into outer + inner parts.
            let zero_inner: HashMap<Var, Expr> = inner_vars
                .iter()
                .map(|v| (v.clone(), Expr::int(0)))
                .collect();
            let mut outer_iter_vars: Vec<IterVar> = Vec::new();
            let mut outer_bindings: Vec<Expr> = Vec::new();
            let mut new_inner_bindings: Vec<Expr> = Vec::new();
            for (iv, value) in realize.block.iter_vars.iter().zip(&realize.iter_values) {
                let outer_part = simplify_expr(&subst_expr(value, &zero_inner));
                let inner_part = {
                    // inner = value - outer_part, but computed by zeroing
                    // the outer variables instead (avoids symbolic subtraction).
                    let outer_vars: Vec<Var> = collect_vars_expr(value)
                        .into_iter()
                        .filter(|v| !inner_vars.contains(v))
                        .collect();
                    let zero_outer: HashMap<Var, Expr> = outer_vars
                        .iter()
                        .map(|v| (v.clone(), Expr::int(0)))
                        .collect();
                    simplify_expr(&subst_expr(value, &zero_outer))
                };
                // Verify separability: value == outer_part + inner_part.
                let recomposed = simplify_expr(&(outer_part.clone() + inner_part.clone()));
                if !tir::structural::expr_structural_eq(&recomposed, &simplify_expr(value)) {
                    return Err(ScheduleError::Precondition(format!(
                        "binding {value} is not separable into outer + inner parts"
                    )));
                }
                // Inner extent via strict affine detection over inner loops.
                let inner_extent = if inner_part.is_const_int(0) {
                    1
                } else {
                    let dom_map: HashMap<Var, i64> = inner_dom.iter().cloned().collect();
                    tir_arith::iter_map::normalize(&inner_part, &dom_map)
                        .ok()
                        .and_then(|s| s.strict_extent())
                        .ok_or_else(|| {
                            ScheduleError::Precondition(format!(
                                "inner binding part {inner_part} is not a compact \
                                 zero-based iterator combination"
                            ))
                        })?
                };
                if iv.extent % inner_extent != 0 {
                    return Err(ScheduleError::Precondition(format!(
                        "iterator {} extent {} not divisible by inner extent {}",
                        iv.var.name(),
                        iv.extent,
                        inner_extent
                    )));
                }
                let outer_extent = iv.extent / inner_extent;
                let u = Var::int(format!("{}_o", iv.var.name()));
                let outer_binding = if inner_extent == 1 {
                    outer_part
                } else {
                    simplify_expr(&outer_part.floor_div(inner_extent))
                };
                outer_bindings.push(outer_binding);
                new_inner_bindings
                    .push(simplify_expr(&(Expr::from(&u) * inner_extent + inner_part)));
                outer_iter_vars.push(match iv.kind {
                    IterKind::Spatial => IterVar::spatial(u, outer_extent),
                    IterKind::Reduce => IterVar::reduce(u, outer_extent),
                });
            }

            // Rebuild the inner subtree with the rewritten bindings.
            let inner_realize = BlockRealize::new(new_inner_bindings, realize.block.clone());
            let mut inner_stmt = Stmt::BlockRealize(Box::new(inner_realize));
            for l in inner_loops.into_iter().rev() {
                inner_stmt = Stmt::For(Box::new(tir::For {
                    body: inner_stmt,
                    ..l
                }));
            }

            // Outer block signature: relax the inner subtree's accesses.
            let mut reads = Vec::new();
            for r in &realize.block.reads {
                if let Some(region) = required_region(&inner_stmt, &r.buffer, true, false) {
                    reads.push(tir::BufferRegion::new(r.buffer.clone(), region));
                }
            }
            let mut writes = Vec::new();
            for w in &realize.block.writes {
                if let Some(region) = required_region(&inner_stmt, &w.buffer, false, true) {
                    writes.push(tir::BufferRegion::new(w.buffer.clone(), region));
                }
            }
            outer_name = format!("{}_o", realize.block.name);
            let outer_block = Block::new(
                outer_name.clone(),
                outer_iter_vars,
                reads,
                writes,
                inner_stmt,
            );
            Ok(Stmt::BlockRealize(Box::new(BlockRealize::new(
                outer_bindings,
                outer_block,
            ))))
        })?;
        self.record(TraceStep::new(
            "blockize",
            vec![loop_ref.var().name().to_string().into()],
        ))?;
        self.get_block(&outer_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use tir::builder::matmul_func;
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    fn mm(n: i64) -> tir::PrimFunc {
        matmul_func("mm", n, n, n, DataType::float32())
    }

    /// The Fig. 2 flow: tile 64x64x64 matmul by 4x4x4 and isolate the
    /// inner computation as a block.
    fn tiled_for_blockize(n: i64, tile: i64) -> (Schedule, LoopRef) {
        let mut sch = Schedule::new(mm(n));
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        let i = sch.split(&loops[0], &[-1, tile]).expect("split i");
        let j = sch.split(&loops[1], &[-1, tile]).expect("split j");
        let k = sch.split(&loops[2], &[-1, tile]).expect("split k");
        sch.reorder(&[
            i[0].clone(),
            j[0].clone(),
            k[0].clone(),
            i[1].clone(),
            j[1].clone(),
            k[1].clone(),
        ])
        .expect("tile reorder");
        (sch, i[1].clone())
    }

    #[test]
    fn blockize_fig7() {
        let (mut sch, inner_i) = tiled_for_blockize(16, 4);
        let outer = sch.blockize(&inner_i).expect("blockize");
        assert_eq!(outer.name(), "C_o");
        // The outer block has 3 iterators of extent 4 (= 16/4).
        let br = tir::visit::find_block(&sch.func().body, "C_o").expect("C_o");
        assert_eq!(br.block.iter_vars.len(), 3);
        assert!(br.block.iter_vars.iter().all(|iv| iv.extent == 4));
        // Reduction kind is preserved on the k iterator.
        assert_eq!(br.block.iter_vars[2].kind, IterKind::Reduce);
        // Inner block still exists, now nested.
        sch.get_block("C").expect("inner C");
        assert_same_semantics(&mm(16), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn blockize_outer_signature_covers_tiles() {
        let (mut sch, inner_i) = tiled_for_blockize(16, 4);
        sch.blockize(&inner_i).expect("blockize");
        let br = tir::visit::find_block(&sch.func().body, "C_o").expect("C_o");
        // Write region of C must be a 4x4 tile.
        let w = &br.block.writes[0];
        assert!(w.region[0].extent.is_const_int(4), "{}", w.region[0].extent);
        assert!(w.region[1].extent.is_const_int(4));
        // Read of A must be a 4x4 tile as well.
        let a_read = br
            .block
            .reads
            .iter()
            .find(|r| r.buffer.name() == "A")
            .expect("A read");
        assert!(a_read.region[0].extent.is_const_int(4));
        assert!(a_read.region[1].extent.is_const_int(4));
    }

    #[test]
    fn blockize_requires_divisible_tiles() {
        // 10x10x10 with tile 4 → predicated partial tiles → reject.
        let mut sch = Schedule::new(mm(10));
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        let i = sch.split(&loops[0], &[-1, 4]).expect("split");
        let err = sch.blockize(&i[1]).unwrap_err();
        assert!(matches!(err, ScheduleError::Precondition(_)), "{err}");
    }

    #[test]
    fn blockize_whole_nest_gives_unit_outer() {
        // Blockizing at the outermost loop: outer block has extent-1 iters.
        let mut sch = Schedule::new(mm(8));
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        let outer = sch.blockize(&loops[0]).expect("blockize all");
        let br = tir::visit::find_block(&sch.func().body, outer.name()).expect("outer");
        assert!(br.block.iter_vars.iter().all(|iv| iv.extent == 1));
        assert_same_semantics(&mm(8), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn blockized_outer_loops_remain_schedulable() {
        // After blockize, outer loops can still be transformed without
        // touching the inner block (the paper's core claim).
        let (mut sch, inner_i) = tiled_for_blockize(16, 4);
        sch.blockize(&inner_i).expect("blockize");
        let outer = sch.get_block("C_o").expect("C_o");
        let outer_loops = sch.get_loops(&outer).expect("outer loops");
        assert_eq!(outer_loops.len(), 3);
        sch.reorder(&[outer_loops[1].clone(), outer_loops[0].clone()])
            .expect("reorder outer");
        sch.fuse(&[outer_loops[1].clone(), outer_loops[0].clone()])
            .expect("fuse outer");
        assert_same_semantics(&mm(16), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }
}
