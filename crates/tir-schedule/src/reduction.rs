//! Reduction decomposition: transforming between the init-block and
//! two-block representations of a reduction (§3.1 "Reduction Block and
//! Initialization").

use std::collections::HashMap;

use tir::simplify::simplify_expr;
use tir::visit::{collect_vars_expr, subst_expr, subst_stmt};
use tir::{Block, BlockRealize, Expr, IterKind, IterVar, Stmt, Var};

use crate::schedule::{BlockRef, LoopRef, Result, Schedule, ScheduleError};
use crate::trace::TraceStep;

impl Schedule {
    /// Splits a reduction block into an explicit initialization block
    /// (inserted immediately before `loop_ref`) and an update block (the
    /// original block with its `init` removed).
    ///
    /// `loop_ref` must enclose the block, and every reduction iterator must
    /// bind only to loops at or inside `loop_ref` (otherwise the init would
    /// re-run mid-reduction).
    ///
    /// Returns a reference to the new init block, named `{block}_init`.
    ///
    /// # Errors
    ///
    /// Fails when preconditions do not hold or the block has no init.
    pub fn decompose_reduction(
        &mut self,
        block: &BlockRef,
        loop_ref: &LoopRef,
    ) -> Result<BlockRef> {
        // Gather info about the block realize and the loops between
        // loop_ref and the block.
        let br = tir::visit::find_block(&self.func.body, block.name())
            .ok_or_else(|| ScheduleError::BlockNotFound(block.name().to_string()))?
            .clone();
        if br.block.init.is_none() {
            return Err(ScheduleError::Precondition(format!(
                "block {} has no init statement",
                block.name()
            )));
        }
        let all_loops = self.loop_infos(block)?;
        let pivot = all_loops
            .iter()
            .position(|li| &li.var == loop_ref.var())
            .ok_or_else(|| {
                ScheduleError::Precondition(format!(
                    "loop {} does not enclose block {}",
                    loop_ref.var().name(),
                    block.name()
                ))
            })?;
        let outer_vars: Vec<Var> = all_loops[..pivot].iter().map(|li| li.var.clone()).collect();
        let inner: Vec<(Var, i64)> = all_loops[pivot..]
            .iter()
            .map(|li| (li.var.clone(), li.extent))
            .collect();

        // Every reduction binding must live at or inside the pivot loop.
        for (iv, value) in br.block.iter_vars.iter().zip(&br.iter_values) {
            if iv.kind == IterKind::Reduce {
                let used = collect_vars_expr(value);
                if used.iter().any(|v| outer_vars.contains(v)) {
                    return Err(ScheduleError::Precondition(format!(
                        "reduction iterator {} binds to a loop outside {}",
                        iv.var.name(),
                        loop_ref.var().name()
                    )));
                }
            }
        }

        // Build the init block: spatial iterators only, with inner loop
        // variables in spatial bindings replaced by fresh init loops.
        let mut fresh_loops: Vec<(Var, i64)> = Vec::new();
        let mut var_map: HashMap<Var, Expr> = HashMap::new();
        for (v, extent) in &inner {
            let fresh = Var::int(format!("{}_init", v.name()));
            var_map.insert(v.clone(), Expr::from(&fresh));
            fresh_loops.push((fresh, *extent));
        }
        // Reduce bindings are irrelevant to the init block; spatial only.
        let mut init_iter_vars: Vec<IterVar> = Vec::new();
        let mut init_bindings: Vec<Expr> = Vec::new();
        let mut spatial_map: HashMap<Var, Expr> = HashMap::new();
        for (iv, value) in br.block.iter_vars.iter().zip(&br.iter_values) {
            if iv.kind == IterKind::Spatial {
                let fresh = iv.var.fresh_copy();
                spatial_map.insert(iv.var.clone(), Expr::from(&fresh));
                init_iter_vars.push(IterVar::spatial(fresh, iv.extent));
                init_bindings.push(simplify_expr(&subst_expr(value, &var_map)));
            }
        }
        let init_body = subst_stmt(
            br.block.init.as_deref().expect("checked above"),
            &spatial_map,
        );
        let init_writes = br
            .block
            .writes
            .iter()
            .map(|w| tir::BufferRegion {
                buffer: w.buffer.clone(),
                region: w
                    .region
                    .iter()
                    .map(|r| tir::RangeExpr {
                        min: subst_expr(&r.min, &spatial_map),
                        extent: subst_expr(&r.extent, &spatial_map),
                    })
                    .collect(),
            })
            .collect();
        // Predicate: original with reduce-related inner vars zeroed.
        let init_predicate = {
            let mut zero_map = var_map.clone();
            // Any remaining inner vars not used spatially become 0.
            for (v, _) in &inner {
                zero_map.entry(v.clone()).or_insert_with(|| Expr::int(0));
            }
            simplify_expr(&subst_expr(&br.predicate, &zero_map))
        };
        let init_name = format!("{}_init", block.name());
        let init_block = Block::new(
            init_name.clone(),
            init_iter_vars,
            vec![],
            init_writes,
            init_body,
        );
        // Only keep fresh loops actually used by the init bindings.
        let used_vars: Vec<Var> = init_bindings.iter().flat_map(collect_vars_expr).collect();
        let kept_loops: Vec<(Var, i64)> = fresh_loops
            .into_iter()
            .filter(|(v, _)| used_vars.contains(v))
            .collect();
        let init_nest = Stmt::BlockRealize(Box::new(BlockRealize::with_predicate(
            init_bindings,
            init_predicate,
            init_block,
        )))
        .in_loops(kept_loops);

        // Remove init from the original block.
        self.rewrite_block(block, |mut br: BlockRealize| {
            br.block.init = None;
            Ok(Stmt::BlockRealize(Box::new(br)))
        })?;
        // Insert the init nest before the pivot loop.
        self.rewrite_loop(loop_ref, |f: tir::For| {
            Ok(Stmt::seq(vec![init_nest, Stmt::For(Box::new(f))]))
        })?;
        self.record(TraceStep::new(
            "decompose_reduction",
            vec![
                block.name().into(),
                loop_ref.var().name().to_string().into(),
            ],
        ))?;
        self.get_block(&init_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use tir::builder::matmul_func;
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    fn mm() -> tir::PrimFunc {
        matmul_func("mm", 8, 8, 8, DataType::float32())
    }

    #[test]
    fn decompose_at_reduction_loop() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        // loops = [i, j, k]; decompose at k: init becomes a (j-free) store
        // before the k loop, inside i, j.
        let init = sch
            .decompose_reduction(&block, &loops[2])
            .expect("decompose");
        assert_eq!(init.name(), "C_init");
        // The update block no longer has an init.
        let br = tir::visit::find_block(&sch.func().body, "C").expect("C");
        assert!(br.block.init.is_none());
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn decompose_at_outer_loop() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        // Decompose at j: the init nest re-creates a fresh j loop.
        let init = sch
            .decompose_reduction(&block, &loops[1])
            .expect("decompose");
        let init_loops = sch.get_loops(&init).expect("init loops");
        assert_eq!(init_loops.len(), 2, "i plus the fresh j_init loop");
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn decompose_rejects_reduce_outside() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        // Reorder so k is outermost; then decomposing at the innermost
        // loop would leave the reduction binding outside — rejected.
        sch.reorder(&[loops[2].clone(), loops[0].clone(), loops[1].clone()])
            .expect("reorder");
        let new_loops = sch.get_loops(&block).expect("loops");
        let err = sch.decompose_reduction(&block, &new_loops[2]).unwrap_err();
        assert!(matches!(err, ScheduleError::Precondition(_)), "{err}");
    }

    #[test]
    fn decompose_after_split_of_reduction_loop() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        let k_split = sch.split(&loops[2], &[2, 4]).expect("split k");
        let init = sch
            .decompose_reduction(&block, &k_split[0])
            .expect("decompose at ko");
        assert_eq!(init.name(), "C_init");
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }
}

impl Schedule {
    /// The inverse of [`Schedule::decompose_reduction`]: dissolves a
    /// standalone initialization block back into its update block's `init`
    /// statement (§3.1: "transformations between the two-block-based
    /// representation and the init-block-based representation").
    ///
    /// The init block must be spatial-only, write exactly the buffer the
    /// update block reduces into, and its store indices must be its own
    /// iterator variables (the shape `decompose_reduction` produces).
    ///
    /// # Errors
    ///
    /// Fails when the blocks do not form a decomposed-reduction pair.
    pub fn merge_reduction(
        &mut self,
        init_block: &BlockRef,
        update_block: &BlockRef,
    ) -> Result<()> {
        let init_name = init_block.name().to_string();
        let update_name = update_block.name().to_string();
        self.transactional(|sch| {
            let init_br = sch.take_block(&BlockRef(init_name.clone()))?;
            if init_br.block.is_reduction() || init_br.block.init.is_some() {
                return Err(ScheduleError::Precondition(
                    "init block must be spatial-only without its own init".into(),
                ));
            }
            let Stmt::Store {
                buffer: init_buf,
                indices: init_idx,
                value: init_value,
            } = (*init_br.block.body).clone()
            else {
                return Err(ScheduleError::Precondition(
                    "init block body must be a single store".into(),
                ));
            };
            let init_vars = init_br.block.iter_var_handles();
            let identity = init_idx.len() == init_vars.len()
                && init_idx
                    .iter()
                    .zip(&init_vars)
                    .all(|(e, v)| e.as_var() == Some(v));
            if !identity {
                return Err(ScheduleError::Precondition(
                    "init block must store at its own iterator variables".into(),
                ));
            }
            sch.rewrite_block(&BlockRef(update_name.clone()), |mut br| {
                if br.block.init.is_some() {
                    return Err(ScheduleError::Precondition(format!(
                        "update block {update_name} already has an init"
                    )));
                }
                // The update block must reduce into the same buffer at its
                // spatial iterators.
                let Stmt::Store {
                    buffer, indices, ..
                } = &*br.block.body
                else {
                    return Err(ScheduleError::Precondition(
                        "update block body must be a single store".into(),
                    ));
                };
                if buffer != &init_buf {
                    return Err(ScheduleError::Precondition(format!(
                        "init writes {} but the update block reduces into {}",
                        init_buf.name(),
                        buffer.name()
                    )));
                }
                // Map init iterator variables to the update block's store
                // indices positionally.
                if indices.len() != init_vars.len() {
                    return Err(ScheduleError::Precondition(
                        "init/update output ranks differ".into(),
                    ));
                }
                let map: std::collections::HashMap<Var, Expr> = init_vars
                    .iter()
                    .cloned()
                    .zip(indices.iter().cloned())
                    .collect();
                let init_stmt = Stmt::Store {
                    buffer: init_buf.clone(),
                    indices: indices.clone(),
                    value: tir::visit::subst_expr(&init_value, &map),
                };
                br.block.init = Some(Box::new(init_stmt));
                Ok(Stmt::BlockRealize(Box::new(br)))
            })?;
            sch.record(TraceStep::new(
                "merge_reduction",
                vec![init_name.clone().into(), update_name.clone().into()],
            ))
        })
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use crate::schedule::Schedule;
    use tir::builder::matmul_func;
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    #[test]
    fn decompose_then_merge_round_trips() {
        let reference = matmul_func("mm", 8, 8, 8, DataType::float32());
        let mut sch = Schedule::new(reference.clone());
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        let init = sch
            .decompose_reduction(&block, &loops[2])
            .expect("decompose");
        // Merge back.
        sch.merge_reduction(&init, &block).expect("merge");
        assert!(sch.get_block("C_init").is_err(), "init block dissolved");
        let br = tir::visit::find_block(&sch.func().body, "C").expect("C");
        assert!(br.block.init.is_some(), "init restored");
        assert_same_semantics(&reference, sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn merge_rejects_wrong_pairs() {
        let reference = matmul_func("mm", 8, 8, 8, DataType::float32());
        let mut sch = Schedule::new(reference.clone());
        let block = sch.get_block("C").expect("C");
        // Merging C (a reduction with init) as the "init block" must fail
        // and leave the schedule untouched.
        let err = sch.merge_reduction(&block, &block).unwrap_err();
        assert!(matches!(err, ScheduleError::Precondition(_)), "{err}");
        assert_same_semantics(&reference, sch.func(), 1, 0.0);
    }

    #[test]
    fn merge_after_outer_decompose() {
        let reference = matmul_func("mm", 16, 16, 16, DataType::float32());
        let mut sch = Schedule::new(reference.clone());
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        let init = sch
            .decompose_reduction(&block, &loops[1])
            .expect("decompose at j");
        sch.merge_reduction(&init, &block).expect("merge");
        assert_same_semantics(&reference, sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }
}
