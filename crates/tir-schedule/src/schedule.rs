//! The schedule state: a program plus primitives that rewrite it.
//!
//! Unlike schedule-tree compilers, every primitive here is an independent
//! TensorIR → TensorIR transformation (§3.2 "Separation of Scheduling and
//! TensorIR"): the [`Schedule`] merely holds the current `PrimFunc`, a
//! trace of applied primitives, and lookup helpers. Blocks are addressed by
//! name and loops by the identity of their loop variable, both of which are
//! stable across rewrites that do not touch them.

use std::fmt;

use tir::{ForKind, PrimFunc, Stmt, Var};

use crate::trace::{Trace, TraceStep};

/// A reference to a block, by (unique) name.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BlockRef(pub(crate) String);

impl BlockRef {
    /// The referenced block's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

/// A reference to a loop, by loop-variable identity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LoopRef(pub(crate) Var);

impl LoopRef {
    /// The loop variable identifying this loop.
    pub fn var(&self) -> &Var {
        &self.0
    }
}

/// Information about one loop in a block's surrounding nest.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// The loop variable.
    pub var: Var,
    /// Constant extent.
    pub extent: i64,
    /// Loop kind.
    pub kind: ForKind,
}

/// A scheduling failure.
#[derive(Clone, Debug)]
pub enum ScheduleError {
    /// No block with the given name exists.
    BlockNotFound(String),
    /// No loop with the given variable exists.
    LoopNotFound(String),
    /// The primitive's preconditions were not met.
    Precondition(String),
    /// The transformed program failed validation.
    Invalid(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::BlockNotFound(b) => write!(f, "block not found: {b}"),
            ScheduleError::LoopNotFound(l) => write!(f, "loop not found: {l}"),
            ScheduleError::Precondition(m) => write!(f, "precondition violated: {m}"),
            ScheduleError::Invalid(m) => write!(f, "transformed program is invalid: {m}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Schedule result type.
pub type Result<T> = std::result::Result<T, ScheduleError>;

/// A schedulable program with its transformation trace.
///
/// # Examples
///
/// ```
/// use tir::builder::matmul_func;
/// use tir::DataType;
/// use tir_schedule::Schedule;
///
/// let mut sch = Schedule::new(matmul_func("mm", 64, 64, 64, DataType::float32()));
/// let block = sch.get_block("C")?;
/// let loops = sch.get_loops(&block)?;
/// let new_loops = sch.split(&loops[0], &[16, 4])?;
/// assert_eq!(new_loops.len(), 2);
/// # Ok::<(), tir_schedule::ScheduleError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Schedule {
    pub(crate) func: PrimFunc,
    pub(crate) trace: Trace,
    /// When set, every primitive re-runs the whole-program analyzer
    /// ([`tir_analysis::analyze`]) after applying itself, rolls back, and
    /// returns [`ScheduleError::Invalid`] if the transformed program fails.
    /// Defaults to on in debug builds (so the test suite exercises it) and
    /// off in release builds (opt in with [`Schedule::set_auto_verify`]).
    auto_verify: bool,
    /// Body snapshot taken by the first structural rewrite since the last
    /// committed primitive; used to roll back when auto-verify rejects.
    undo: Option<Stmt>,
}

impl Schedule {
    /// Starts scheduling a function.
    pub fn new(func: PrimFunc) -> Self {
        Schedule {
            func,
            trace: Trace::default(),
            auto_verify: cfg!(debug_assertions),
            undo: None,
        }
    }

    /// Re-runs the static analyzer (structural validation, bounds, race and
    /// memory-scope checks) on the current program.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Invalid`] carrying every diagnostic the
    /// analyzer produced, joined with `"; "`.
    pub fn verify(&self) -> Result<()> {
        match tir_analysis::verify_scheduled(&self.func) {
            Ok(()) => Ok(()),
            Err(errors) => {
                let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
                Err(ScheduleError::Invalid(msgs.join("; ")))
            }
        }
    }

    /// Whether primitives automatically re-verify the program (see
    /// [`Schedule::verify`]).
    pub fn auto_verify(&self) -> bool {
        self.auto_verify
    }

    /// Turns the after-every-primitive analyzer gate on or off. Tests that
    /// deliberately build illegal schedules (to exercise downstream
    /// validation) turn it off; release users can turn it on to debug a
    /// schedule pipeline.
    pub fn set_auto_verify(&mut self, on: bool) {
        self.auto_verify = on;
    }

    /// Remembers `backup` as the rollback point for the in-flight primitive
    /// (first snapshot since the last commit wins).
    fn stash_undo(&mut self, backup: Stmt) {
        if self.auto_verify && self.undo.is_none() {
            self.undo = Some(backup);
        }
    }

    /// The current program.
    pub fn func(&self) -> &PrimFunc {
        &self.func
    }

    /// Consumes the schedule, returning the final program.
    pub fn into_func(self) -> PrimFunc {
        self.func
    }

    /// The trace of primitives applied so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Commits a successful primitive: pushes its trace step and, when
    /// auto-verify is on, re-runs the analyzer on the transformed program.
    /// A rejection pops the step, restores the pre-primitive body, and
    /// surfaces as [`ScheduleError::Invalid`].
    pub(crate) fn record(&mut self, step: TraceStep) -> Result<()> {
        self.trace.push(step);
        if self.auto_verify {
            if let Err(e) = self.verify() {
                let len = self.trace.len();
                self.trace.truncate(len - 1);
                if let Some(body) = self.undo.take() {
                    self.func.body = body;
                }
                return Err(e);
            }
        }
        self.undo = None;
        Ok(())
    }

    /// Runs `f`; on error, restores the program and trace to their prior
    /// state so failed primitives leave the schedule untouched.
    pub(crate) fn transactional<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        let backup = self.func.clone();
        let trace_len = self.trace.len();
        let result = f(self);
        self.undo = None;
        match result {
            Ok(v) => Ok(v),
            Err(e) => {
                self.func = backup;
                self.trace.truncate(trace_len);
                Err(e)
            }
        }
    }

    /// Looks up a block by name.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::BlockNotFound`] if absent.
    pub fn get_block(&self, name: &str) -> Result<BlockRef> {
        if tir::visit::find_block(&self.func.body, name).is_some() {
            Ok(BlockRef(name.to_string()))
        } else {
            Err(ScheduleError::BlockNotFound(name.to_string()))
        }
    }

    /// Names of all blocks in the program, outer-first.
    pub fn block_names(&self) -> Vec<String> {
        tir::visit::block_names(&self.func.body)
    }

    /// The loops enclosing `block`, outermost first, up to (not including)
    /// the nearest enclosing block.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::BlockNotFound`] if the block is absent.
    pub fn get_loops(&self, block: &BlockRef) -> Result<Vec<LoopRef>> {
        Ok(self
            .loop_infos(block)?
            .into_iter()
            .map(|li| LoopRef(li.var))
            .collect())
    }

    /// Like [`Schedule::get_loops`] but with extents and kinds.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::BlockNotFound`] if the block is absent.
    pub fn loop_infos(&self, block: &BlockRef) -> Result<Vec<LoopInfo>> {
        fn walk(s: &Stmt, name: &str, stack: &mut Vec<LoopInfo>, out: &mut Option<Vec<LoopInfo>>) {
            if out.is_some() {
                return;
            }
            match s {
                Stmt::For(f) => {
                    stack.push(LoopInfo {
                        var: f.var.clone(),
                        extent: f.extent.as_int().unwrap_or(-1),
                        kind: f.kind,
                    });
                    walk(&f.body, name, stack, out);
                    stack.pop();
                }
                Stmt::Seq(v) => {
                    for st in v {
                        walk(st, name, stack, out);
                    }
                }
                Stmt::IfThenElse {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, name, stack, out);
                    if let Some(e) = else_branch {
                        walk(e, name, stack, out);
                    }
                }
                Stmt::BlockRealize(br) => {
                    if br.block.name == name {
                        *out = Some(stack.clone());
                        return;
                    }
                    let mut fresh = Vec::new();
                    if let Some(init) = &br.block.init {
                        walk(init, name, &mut fresh, out);
                    }
                    walk(&br.block.body, name, &mut fresh, out);
                }
                _ => {}
            }
        }
        let mut stack = Vec::new();
        let mut out = None;
        walk(&self.func.body, block.name(), &mut stack, &mut out);
        out.ok_or_else(|| ScheduleError::BlockNotFound(block.name().to_string()))
    }

    /// Extent of a loop.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::LoopNotFound`] if absent or non-constant.
    pub fn loop_extent(&self, loop_ref: &LoopRef) -> Result<i64> {
        let mut found = None;
        find_loop(&self.func.body, loop_ref.var(), &mut |f| {
            found = f.extent.as_int();
        });
        found.ok_or_else(|| ScheduleError::LoopNotFound(loop_ref.var().name().to_string()))
    }

    /// Rewrites the loop identified by `loop_ref` with `f`. Used by every
    /// loop-level primitive.
    pub(crate) fn rewrite_loop(
        &mut self,
        loop_ref: &LoopRef,
        f: impl FnOnce(tir::For) -> Result<Stmt>,
    ) -> Result<()> {
        let backup = self.func.body.clone();
        let body = std::mem::replace(&mut self.func.body, Stmt::Seq(vec![]));
        let mut f = Some(f);
        match rewrite_loop_in(body, loop_ref.var(), &mut f) {
            Ok((new_body, true)) => {
                self.func.body = new_body;
                self.stash_undo(backup);
                Ok(())
            }
            Ok((_, false)) => {
                self.func.body = backup;
                Err(ScheduleError::LoopNotFound(
                    loop_ref.var().name().to_string(),
                ))
            }
            Err(e) => {
                self.func.body = backup;
                Err(e)
            }
        }
    }

    /// Rewrites the block realize identified by `block` with `f`.
    pub(crate) fn rewrite_block(
        &mut self,
        block: &BlockRef,
        f: impl FnOnce(tir::BlockRealize) -> Result<Stmt>,
    ) -> Result<()> {
        let backup = self.func.body.clone();
        let body = std::mem::replace(&mut self.func.body, Stmt::Seq(vec![]));
        let mut f = Some(f);
        match rewrite_block_in(body, block.name(), &mut f) {
            Ok((new_body, true)) => {
                self.func.body = new_body;
                self.stash_undo(backup);
                Ok(())
            }
            Ok((_, false)) => {
                self.func.body = backup;
                Err(ScheduleError::BlockNotFound(block.name().to_string()))
            }
            Err(e) => {
                self.func.body = backup;
                Err(e)
            }
        }
    }

    /// Replaces the subtree rooted at `loop_ref` with an arbitrary
    /// statement. Used by whole-nest rewrites such as tensorization
    /// candidate generation.
    ///
    /// # Errors
    ///
    /// Fails when the loop is missing.
    pub fn replace_loop_subtree(&mut self, loop_ref: &LoopRef, stmt: Stmt) -> Result<()> {
        self.rewrite_loop(loop_ref, |_| Ok(stmt))
    }

    /// Block names contained in the subtree rooted at `loop_ref`.
    ///
    /// # Errors
    ///
    /// Fails when the loop is missing.
    pub fn blocks_under_loop(&self, loop_ref: &LoopRef) -> Result<Vec<String>> {
        let mut names = None;
        find_loop(&self.func.body, loop_ref.var(), &mut |f| {
            names = Some(tir::visit::block_names(&f.body));
        });
        names.ok_or_else(|| ScheduleError::LoopNotFound(loop_ref.var().name().to_string()))
    }

    /// Finds a buffer by name among parameters, allocations and accessed
    /// buffers.
    pub fn find_buffer(&self, name: &str) -> Option<tir::Buffer> {
        if let Some(b) = self.func.params.iter().find(|b| b.name() == name) {
            return Some(b.clone());
        }
        let mut found = None;
        tir::visit::for_each_block_realize(&self.func.body, &mut |br| {
            if found.is_some() {
                return;
            }
            found = br
                .block
                .alloc_buffers
                .iter()
                .find(|b| b.name() == name)
                .cloned();
        });
        found.or_else(|| {
            tir::visit::collect_accessed_buffers(&self.func.body)
                .into_iter()
                .find(|b| b.name() == name)
        })
    }

    /// Registers a buffer in the root block's allocation list.
    ///
    /// # Errors
    ///
    /// Fails when the function body does not follow the root-block
    /// convention.
    pub fn alloc_buffer_at_root(&mut self, buffer: tir::Buffer) -> Result<()> {
        self.alloc_at_root(buffer)
    }

    /// Attaches an annotation to a block.
    ///
    /// # Errors
    ///
    /// Fails when the block is missing.
    pub fn annotate_block(
        &mut self,
        block: &BlockRef,
        key: &str,
        value: tir::AnnValue,
    ) -> Result<()> {
        let key_owned = key.to_string();
        let value_copy = value.clone();
        self.rewrite_block(block, |mut br: tir::BlockRealize| {
            br.block.annotations.insert(key_owned, value);
            Ok(Stmt::BlockRealize(Box::new(br)))
        })?;
        self.record(TraceStep::new(
            "annotate_block",
            vec![
                block.name().into(),
                key.into(),
                crate::loop_transform::ann_to_arg(&value_copy),
            ],
        ))
    }

    /// Finds a loop reference by its variable's *name* (first match in a
    /// pre-order walk). Loop-variable names are deterministic (split and
    /// fuse derive them from their inputs), which makes recorded traces
    /// replayable on freshly built programs.
    pub fn find_loop_by_name(&self, name: &str) -> Option<LoopRef> {
        fn walk(s: &Stmt, name: &str, out: &mut Option<Var>) {
            if out.is_some() {
                return;
            }
            match s {
                Stmt::For(f) => {
                    if f.var.name() == name {
                        *out = Some(f.var.clone());
                        return;
                    }
                    walk(&f.body, name, out);
                }
                Stmt::Seq(v) => v.iter().for_each(|st| walk(st, name, out)),
                Stmt::IfThenElse {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, name, out);
                    if let Some(e) = else_branch {
                        walk(e, name, out);
                    }
                }
                Stmt::BlockRealize(br) => {
                    if let Some(init) = &br.block.init {
                        walk(init, name, out);
                    }
                    walk(&br.block.body, name, out);
                }
                _ => {}
            }
        }
        let mut out = None;
        walk(&self.func.body, name, &mut out);
        out.map(LoopRef)
    }

    /// Replaces the whole function body (used by global transformations).
    pub(crate) fn rewrite_body(&mut self, f: impl FnOnce(Stmt) -> Result<Stmt>) -> Result<()> {
        let backup = self.func.body.clone();
        let body = std::mem::replace(&mut self.func.body, Stmt::Seq(vec![]));
        match f(body) {
            Ok(new_body) => {
                self.func.body = new_body;
                self.stash_undo(backup);
                Ok(())
            }
            Err(e) => {
                self.func.body = backup;
                Err(e)
            }
        }
    }
}

/// Calls `visit` on the `For` node with the given variable, if present.
pub(crate) fn find_loop(s: &Stmt, var: &Var, visit: &mut impl FnMut(&tir::For)) {
    match s {
        Stmt::For(f) => {
            if &f.var == var {
                visit(f);
            } else {
                find_loop(&f.body, var, visit);
            }
        }
        Stmt::Seq(v) => {
            for st in v {
                find_loop(st, var, visit);
            }
        }
        Stmt::IfThenElse {
            then_branch,
            else_branch,
            ..
        } => {
            find_loop(then_branch, var, visit);
            if let Some(e) = else_branch {
                find_loop(e, var, visit);
            }
        }
        Stmt::BlockRealize(br) => {
            if let Some(init) = &br.block.init {
                find_loop(init, var, visit);
            }
            find_loop(&br.block.body, var, visit);
        }
        _ => {}
    }
}

type LoopRewriter<'a> = &'a mut Option<Box<dyn FnOnce(tir::For) -> Result<Stmt> + 'a>>;

fn rewrite_loop_in(
    s: Stmt,
    var: &Var,
    f: &mut Option<impl FnOnce(tir::For) -> Result<Stmt>>,
) -> Result<(Stmt, bool)> {
    if f.is_none() {
        return Ok((s, false));
    }
    match s {
        Stmt::For(fr) => {
            if &fr.var == var {
                let func = f.take().expect("checked above");
                return Ok((func(*fr)?, true));
            }
            let fr = *fr;
            let (body, applied) = rewrite_loop_in(fr.body, var, f)?;
            Ok((Stmt::For(Box::new(tir::For { body, ..fr })), applied))
        }
        Stmt::Seq(v) => {
            let mut out = Vec::with_capacity(v.len());
            let mut any = false;
            for st in v {
                let (st, applied) = rewrite_loop_in(st, var, f)?;
                any |= applied;
                out.push(st);
            }
            Ok((Stmt::seq(out), any))
        }
        Stmt::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => {
            let (t, mut any) = rewrite_loop_in(*then_branch, var, f)?;
            let e = match else_branch {
                Some(e) => {
                    let (e, applied) = rewrite_loop_in(*e, var, f)?;
                    any |= applied;
                    Some(Box::new(e))
                }
                None => None,
            };
            Ok((
                Stmt::IfThenElse {
                    cond,
                    then_branch: Box::new(t),
                    else_branch: e,
                },
                any,
            ))
        }
        Stmt::BlockRealize(br) => {
            let mut br = *br;
            let mut any = false;
            if let Some(init) = br.block.init {
                let (init, applied) = rewrite_loop_in(*init, var, f)?;
                any |= applied;
                br.block.init = Some(Box::new(init));
            }
            let (body, applied) = rewrite_loop_in(*br.block.body, var, f)?;
            any |= applied;
            br.block.body = Box::new(body);
            Ok((Stmt::BlockRealize(Box::new(br)), any))
        }
        other => Ok((other, false)),
    }
}

fn rewrite_block_in(
    s: Stmt,
    name: &str,
    f: &mut Option<impl FnOnce(tir::BlockRealize) -> Result<Stmt>>,
) -> Result<(Stmt, bool)> {
    if f.is_none() {
        return Ok((s, false));
    }
    match s {
        Stmt::For(fr) => {
            let fr = *fr;
            let (body, applied) = rewrite_block_in(fr.body, name, f)?;
            Ok((Stmt::For(Box::new(tir::For { body, ..fr })), applied))
        }
        Stmt::Seq(v) => {
            let mut out = Vec::with_capacity(v.len());
            let mut any = false;
            for st in v {
                let (st, applied) = rewrite_block_in(st, name, f)?;
                any |= applied;
                out.push(st);
            }
            Ok((Stmt::seq(out), any))
        }
        Stmt::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => {
            let (t, mut any) = rewrite_block_in(*then_branch, name, f)?;
            let e = match else_branch {
                Some(e) => {
                    let (e, applied) = rewrite_block_in(*e, name, f)?;
                    any |= applied;
                    Some(Box::new(e))
                }
                None => None,
            };
            Ok((
                Stmt::IfThenElse {
                    cond,
                    then_branch: Box::new(t),
                    else_branch: e,
                },
                any,
            ))
        }
        Stmt::BlockRealize(br) => {
            if br.block.name == name {
                let func = f.take().expect("checked above");
                return Ok((func(*br)?, true));
            }
            let mut br = *br;
            let mut any = false;
            if let Some(init) = br.block.init {
                let (init, applied) = rewrite_block_in(*init, name, f)?;
                any |= applied;
                br.block.init = Some(Box::new(init));
            }
            let (body, applied) = rewrite_block_in(*br.block.body, name, f)?;
            any |= applied;
            br.block.body = Box::new(body);
            Ok((Stmt::BlockRealize(Box::new(br)), any))
        }
        other => Ok((other, false)),
    }
}

// Silence the unused-alias lint on older toolchains where the helper alias
// is only used in signatures.
#[allow(dead_code)]
fn _assert_alias(_: LoopRewriter<'_>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::builder::matmul_func;
    use tir::DataType;

    #[test]
    fn block_and_loop_lookup() {
        let sch = Schedule::new(matmul_func("mm", 8, 8, 8, DataType::float32()));
        let block = sch.get_block("C").expect("block C");
        assert!(sch.get_block("missing").is_err());
        let loops = sch.get_loops(&block).expect("loops");
        assert_eq!(loops.len(), 3);
        assert_eq!(sch.loop_extent(&loops[0]).expect("extent"), 8);
        let infos = sch.loop_infos(&block).expect("infos");
        assert!(infos.iter().all(|li| li.kind == ForKind::Serial));
    }

    #[test]
    fn loops_do_not_cross_block_boundaries() {
        // The root block isolates: loops of C must not include anything
        // outside the root block's body (there is nothing outside here).
        let sch = Schedule::new(matmul_func("mm", 4, 4, 4, DataType::float32()));
        let root = sch.get_block("root").expect("root");
        assert!(sch.get_loops(&root).expect("root loops").is_empty());
    }

    #[test]
    fn rewrite_loop_replaces_subtree() {
        let mut sch = Schedule::new(matmul_func("mm", 4, 4, 4, DataType::float32()));
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        // Replace the innermost loop with an empty sequence (nonsense, but
        // exercises the rewriter).
        sch.rewrite_loop(&loops[2], |_| Ok(Stmt::Seq(vec![])))
            .expect("rewrite");
        assert!(sch.get_loops(&block).is_err(), "block C should be gone");
    }
}

#[cfg(test)]
mod lookup_tests {
    use super::*;
    use tir::builder::matmul_func;
    use tir::DataType;

    #[test]
    fn blocks_under_loop_and_find_buffer() {
        let sch = Schedule::new(matmul_func("mm", 8, 8, 8, DataType::float32()));
        let block = sch.get_block("C").unwrap();
        let loops = sch.get_loops(&block).unwrap();
        assert_eq!(
            sch.blocks_under_loop(&loops[0]).unwrap(),
            vec!["C".to_string()]
        );
        assert!(sch.find_buffer("A").is_some());
        assert!(sch.find_buffer("C").is_some());
        assert!(sch.find_buffer("nope").is_none());
        assert!(sch.find_loop_by_name(loops[1].var().name()).is_some());
        assert!(sch.find_loop_by_name("ghost_loop").is_none());
    }

    #[test]
    fn find_buffer_sees_allocations() {
        let mut sch = Schedule::new(matmul_func("mm", 8, 8, 8, DataType::float32()));
        let block = sch.get_block("C").unwrap();
        sch.cache_write(&block, tir::MemScope::Local, None).unwrap();
        assert!(sch.find_buffer("C_local").is_some());
    }
}
