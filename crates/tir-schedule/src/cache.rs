//! Caching primitives: `cache_read` and `cache_write`.
//!
//! These introduce staging blocks that move data between memory scopes
//! (global → shared → registers / tensor-core fragments), the block-
//! hierarchy transformation the paper pairs with blockization (§3.2) and
//! the mechanism behind AutoCopy data-movement blocks (§4.3).

use tir::visit::replace_buffers;
use tir::{
    AnnValue, Block, BlockRealize, Buffer, BufferRegion, Expr, IterVar, MemScope, RangeExpr, Stmt,
    Var,
};

use crate::compute_location::{refresh_nested_signatures, required_region};
use crate::schedule::{BlockRef, LoopRef, Result, Schedule, ScheduleError};
use crate::trace::TraceStep;

fn sanitize(scope: &MemScope) -> String {
    scope.as_str().replace('.', "_")
}

/// Builds a copy block `dst[idx] = src[idx]` sweeping `region`, with block
/// iterator domains equal to the full buffer dims (bindings `min + ax`).
fn copy_block_nest(
    name: &str,
    src: &Buffer,
    dst: &Buffer,
    region: &[RangeExpr],
    annotations: &[(&str, AnnValue)],
) -> Result<Stmt> {
    let ndim = src.ndim();
    let mut loops: Vec<(Var, i64)> = Vec::with_capacity(ndim);
    let mut bindings: Vec<Expr> = Vec::with_capacity(ndim);
    let mut block_vars: Vec<Var> = Vec::with_capacity(ndim);
    for (d, r) in region.iter().enumerate() {
        let extent = r
            .extent
            .as_int()
            .ok_or_else(|| ScheduleError::Precondition("non-constant region extent".into()))?;
        let ax = Var::int(format!("ax{d}"));
        bindings.push(tir::simplify::simplify_expr(
            &(r.min.clone() + Expr::from(&ax)),
        ));
        loops.push((ax, extent));
        block_vars.push(Var::int(format!("v{d}")));
    }
    let idx: Vec<Expr> = block_vars.iter().map(Expr::from).collect();
    let body = Stmt::store(dst.clone(), idx.clone(), src.load(idx.clone()));
    let iter_vars: Vec<IterVar> = block_vars
        .iter()
        .zip(src.shape())
        .map(|(v, &e)| IterVar::spatial(v.clone(), e))
        .collect();
    let mut block = Block::new(
        name,
        iter_vars,
        vec![BufferRegion::point(src.clone(), idx.clone())],
        vec![BufferRegion::point(dst.clone(), idx)],
        body,
    );
    // Generated copies are idempotent and may legitimately have
    // overlapping (halo) or non-surjective bindings; the validator relaxes
    // loop-nest binding checks for them (region cover still applies).
    block
        .annotations
        .insert("tir.copy".to_string(), AnnValue::Int(1));
    for (k, v) in annotations {
        block.annotations.insert((*k).to_string(), v.clone());
    }
    let realize = BlockRealize::new(bindings, block);
    Ok(Stmt::BlockRealize(Box::new(realize)).in_loops(loops))
}

impl Schedule {
    /// Registers a buffer in the root block's allocation list.
    pub(crate) fn alloc_at_root(&mut self, buffer: Buffer) -> Result<()> {
        self.rewrite_body(|body| match body {
            Stmt::BlockRealize(mut root) => {
                root.block.alloc_buffers.push(buffer);
                Ok(Stmt::BlockRealize(root))
            }
            other => Err(ScheduleError::Precondition(format!(
                "function body is not a root block: {other:?}"
            ))),
        })
    }

    /// Creates a staging copy of `buffer` in `scope` for the reads of
    /// `block`, inserting the copy block at the top of `at_loop`'s body
    /// (or at the start of the root block when `at_loop` is `None`). The
    /// consumer block is rewritten to read the staged copy.
    ///
    /// Returns a reference to the new copy block, named
    /// `{buffer}_{scope}`.
    ///
    /// # Errors
    ///
    /// Fails when the block does not read the buffer or the loop is
    /// missing.
    pub fn cache_read(
        &mut self,
        block: &BlockRef,
        buffer: &Buffer,
        scope: MemScope,
        at_loop: Option<&LoopRef>,
    ) -> Result<BlockRef> {
        // Check the consumer actually reads the buffer.
        let reads_it = {
            let br = tir::visit::find_block(&self.func.body, block.name())
                .ok_or_else(|| ScheduleError::BlockNotFound(block.name().to_string()))?;
            br.block.reads.iter().any(|r| &r.buffer == buffer)
        };
        if !reads_it {
            return Err(ScheduleError::Precondition(format!(
                "block {} does not read buffer {}",
                block.name(),
                buffer.name()
            )));
        }
        let cache_name = format!("{}_{}", buffer.name(), sanitize(&scope));
        let cache = buffer.derive(cache_name.clone(), scope);

        // Insert the copy nest.
        match at_loop {
            Some(l) => {
                let buffer_c = buffer.clone();
                let cache_c = cache.clone();
                let name_c = cache_name.clone();
                self.rewrite_loop(l, |f: tir::For| {
                    let region =
                        required_region(&f.body, &buffer_c, true, false).ok_or_else(|| {
                            ScheduleError::Precondition(format!(
                                "no read of {} under the target loop",
                                buffer_c.name()
                            ))
                        })?;
                    let nest = copy_block_nest(&name_c, &buffer_c, &cache_c, &region, &[])?;
                    Ok(Stmt::For(Box::new(tir::For {
                        body: Stmt::seq(vec![nest, f.body]),
                        ..f
                    })))
                })?;
            }
            None => {
                let region = buffer.full_region().region;
                let nest = copy_block_nest(&cache_name, buffer, &cache, &region, &[])?;
                self.rewrite_body(|body| match body {
                    Stmt::BlockRealize(mut root) => {
                        root.block.body = Box::new(Stmt::seq(vec![nest, *root.block.body]));
                        Ok(Stmt::BlockRealize(root))
                    }
                    other => Ok(Stmt::seq(vec![nest, other])),
                })?;
            }
        }
        // Redirect the consumer block's reads.
        let mut map = std::collections::HashMap::new();
        map.insert(buffer.clone(), cache.clone());
        self.rewrite_block(block, |br: BlockRealize| {
            Ok(replace_buffers(&Stmt::BlockRealize(Box::new(br)), &map))
        })?;
        let scope_str = cache.scope().as_str().to_string();
        self.alloc_at_root(cache)?;
        // The rewritten block may be nested: refresh enclosing block
        // signatures so they describe the new buffer.
        self.rewrite_body(|body| Ok(refresh_nested_signatures(body)))?;
        self.record(TraceStep::new(
            "cache_read",
            vec![
                block.name().into(),
                buffer.name().to_string().into(),
                scope_str.into(),
                at_loop
                    .map(|l| l.var().name().to_string())
                    .unwrap_or_default()
                    .into(),
            ],
        ))?;
        self.get_block(&cache_name)
    }

    /// Makes `block` accumulate into a private copy of its output buffer in
    /// `scope`, adding a write-back copy block at the bottom of `at_loop`'s
    /// body (or at the end of the root block when `None`).
    ///
    /// Returns a reference to the write-back block, named
    /// `{buffer}_{scope}_wb`.
    ///
    /// # Errors
    ///
    /// Fails when the block writes zero or multiple buffers.
    pub fn cache_write(
        &mut self,
        block: &BlockRef,
        scope: MemScope,
        at_loop: Option<&LoopRef>,
    ) -> Result<BlockRef> {
        let out_buffer = {
            let br = tir::visit::find_block(&self.func.body, block.name())
                .ok_or_else(|| ScheduleError::BlockNotFound(block.name().to_string()))?;
            if br.block.writes.len() != 1 {
                return Err(ScheduleError::Precondition(format!(
                    "cache_write requires a single-output block, {} writes {}",
                    block.name(),
                    br.block.writes.len()
                )));
            }
            br.block.writes[0].buffer.clone()
        };
        let cache_name = format!("{}_{}", out_buffer.name(), sanitize(&scope));
        let wb_name = format!("{cache_name}_wb");
        let scope_str = scope.as_str().to_string();
        let cache = out_buffer.derive(cache_name, scope);

        // Compute the written region under the attach loop *before*
        // renaming (regions reference the original buffer).
        let region = match at_loop {
            Some(l) => {
                let mut region = None;
                let out_c = out_buffer.clone();
                crate::schedule::find_loop(&self.func.body, l.var(), &mut |f| {
                    region = required_region(&f.body, &out_c, false, true);
                });
                region.ok_or_else(|| {
                    ScheduleError::Precondition(format!(
                        "no write of {} under the target loop",
                        out_buffer.name()
                    ))
                })?
            }
            None => out_buffer.full_region().region,
        };

        // Redirect the producer block to the private accumulator.
        let mut map = std::collections::HashMap::new();
        map.insert(out_buffer.clone(), cache.clone());
        self.rewrite_block(block, |br: BlockRealize| {
            Ok(replace_buffers(&Stmt::BlockRealize(Box::new(br)), &map))
        })?;

        // Insert the write-back copy.
        let nest = copy_block_nest(&wb_name, &cache, &out_buffer, &region, &[])?;
        match at_loop {
            Some(l) => {
                self.rewrite_loop(l, |f: tir::For| {
                    Ok(Stmt::For(Box::new(tir::For {
                        body: Stmt::seq(vec![f.body, nest]),
                        ..f
                    })))
                })?;
            }
            None => {
                self.rewrite_body(|body| match body {
                    Stmt::BlockRealize(mut root) => {
                        root.block.body = Box::new(Stmt::seq(vec![*root.block.body, nest]));
                        Ok(Stmt::BlockRealize(root))
                    }
                    other => Ok(Stmt::seq(vec![other, nest])),
                })?;
            }
        }
        self.alloc_at_root(cache)?;
        self.rewrite_body(|body| Ok(refresh_nested_signatures(body)))?;
        self.record(TraceStep::new(
            "cache_write",
            vec![
                block.name().into(),
                scope_str.into(),
                at_loop
                    .map(|l| l.var().name().to_string())
                    .unwrap_or_default()
                    .into(),
            ],
        ))?;
        self.get_block(&wb_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use tir::builder::matmul_func;
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    fn mm() -> tir::PrimFunc {
        matmul_func("mm", 16, 16, 16, DataType::float32())
    }

    #[test]
    fn cache_read_full_buffer() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let a = sch.func().param("A").expect("A").clone();
        let copy = sch
            .cache_read(&block, &a, MemScope::Shared, None)
            .expect("cache_read");
        assert_eq!(copy.name(), "A_shared");
        // The consumer now reads the staged copy.
        let br = tir::visit::find_block(&sch.func().body, "C").expect("C");
        assert!(br.block.reads.iter().all(|r| r.buffer.name() != "A"));
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn cache_read_at_loop_stages_tile() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        let a = sch.func().param("A").expect("A").clone();
        sch.cache_read(&block, &a, MemScope::Shared, Some(&loops[0]))
            .expect("cache_read");
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
        // The staged copy should cover one row (i fixed) of A: extent 1 x 16.
        let copy = tir::visit::find_block(&sch.func().body, "A_shared").expect("copy");
        assert_eq!(copy.block.iter_vars.len(), 2);
    }

    #[test]
    fn cache_read_requires_reader() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let c = sch.func().param("C").expect("C buf").clone();
        // C (output) is not in the reads of block C (self-read filtered).
        let err = sch
            .cache_read(&block, &c, MemScope::Shared, None)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Precondition(_)));
    }

    #[test]
    fn cache_write_accumulator() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let wb = sch
            .cache_write(&block, MemScope::Local, None)
            .expect("cache_write");
        assert_eq!(wb.name(), "C_local_wb");
        // The compute block now writes C_local.
        let br = tir::visit::find_block(&sch.func().body, "C").expect("C");
        assert_eq!(br.block.writes[0].buffer.name(), "C_local");
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn cache_write_at_tile_loop() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        sch.cache_write(&block, MemScope::Local, Some(&loops[1]))
            .expect("cache_write");
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn cache_read_then_write_pipeline() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("C");
        let loops = sch.get_loops(&block).expect("loops");
        let a = sch.func().param("A").expect("A").clone();
        let b = sch.func().param("B").expect("B").clone();
        sch.cache_read(&block, &a, MemScope::Shared, Some(&loops[0]))
            .expect("stage A");
        sch.cache_read(&block, &b, MemScope::Shared, Some(&loops[0]))
            .expect("stage B");
        sch.cache_write(&block, MemScope::Local, Some(&loops[0]))
            .expect("accumulate locally");
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }
}
