//! Schedule traces: a replayable record of applied primitives.
//!
//! The evolutionary search (§4.4) mutates *decisions* (tile sizes,
//! annotation values) inside a recorded trace and replays it on a fresh
//! program; the trace also doubles as human-readable provenance for a
//! scheduled function.

use std::fmt;

/// One argument of a trace step.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceArg {
    /// Integer argument.
    Int(i64),
    /// Integer list (e.g. split factors).
    Ints(Vec<i64>),
    /// String argument (block names, scopes, intrinsic names).
    Str(String),
}

impl fmt::Display for TraceArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceArg::Int(v) => write!(f, "{v}"),
            TraceArg::Ints(v) => write!(f, "{v:?}"),
            TraceArg::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for TraceArg {
    fn from(v: i64) -> Self {
        TraceArg::Int(v)
    }
}
impl From<&str> for TraceArg {
    fn from(v: &str) -> Self {
        TraceArg::Str(v.to_string())
    }
}
impl From<String> for TraceArg {
    fn from(v: String) -> Self {
        TraceArg::Str(v)
    }
}
impl From<Vec<i64>> for TraceArg {
    fn from(v: Vec<i64>) -> Self {
        TraceArg::Ints(v)
    }
}

/// One recorded primitive application.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceStep {
    /// Primitive name (e.g. `"split"`).
    pub primitive: String,
    /// Arguments in call order.
    pub args: Vec<TraceArg>,
    /// Whether the arguments contain a *sampled decision* the search may
    /// mutate (tile sizes, cache scopes, annotation values).
    pub is_decision: bool,
}

impl TraceStep {
    /// Creates a non-decision step.
    pub fn new(primitive: &str, args: Vec<TraceArg>) -> Self {
        TraceStep {
            primitive: primitive.to_string(),
            args,
            is_decision: false,
        }
    }

    /// Creates a decision step (mutable by the search).
    pub fn decision(primitive: &str, args: Vec<TraceArg>) -> Self {
        TraceStep {
            primitive: primitive.to_string(),
            args,
            is_decision: true,
        }
    }
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.primitive)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if self.is_decision {
            write!(f, "  # decision")?;
        }
        Ok(())
    }
}

/// The full record of primitives applied to a schedule.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct Trace {
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Appends a step.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// The recorded steps in application order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of steps recorded.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no primitive has been applied.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Drops steps beyond `len` (transaction rollback).
    pub fn truncate(&mut self, len: usize) {
        self.steps.truncate(len);
    }

    /// Indices of the decision steps (the mutation points for search).
    pub fn decision_points(&self) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_decision)
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_formats() {
        let mut t = Trace::default();
        t.push(TraceStep::new(
            "split",
            vec!["i".into(), vec![16i64, 4].into()],
        ));
        t.push(TraceStep::decision(
            "sample_tile",
            vec![vec![4i64, 4].into()],
        ));
        assert_eq!(t.len(), 2);
        assert_eq!(t.decision_points(), vec![1]);
        let text = t.to_string();
        assert!(text.contains("split(\"i\", [16, 4])"), "{text}");
        assert!(text.contains("# decision"), "{text}");
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert!(t.decision_points().is_empty());
    }
}
