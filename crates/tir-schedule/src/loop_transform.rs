//! Loop transformations: `split`, `fuse`, `reorder` and loop annotations
//! (`parallel`, `vectorize`, `unroll`, `bind`).
//!
//! These mutate the loop nests *outside* blocks and never look inside a
//! block body (Fig. 6 of the paper): bindings are rewritten through
//! variable substitution and predicates are added for partial tiles.

use std::collections::HashMap;

use tir::simplify::simplify_stmt;
use tir::visit::subst_stmt;
use tir::{Expr, For, ForKind, Stmt, ThreadTag, Var};

use crate::schedule::{LoopRef, Result, Schedule, ScheduleError};
use crate::trace::TraceStep;

/// Adds `conjunct` to the predicate of every block realize in `s`, without
/// descending into block bodies (loop variables cannot occur deeper).
fn add_predicate(s: Stmt, conjunct: &Expr) -> Stmt {
    match s {
        Stmt::BlockRealize(mut br) => {
            br.predicate = if br.predicate.is_const_int(1) {
                conjunct.clone()
            } else {
                br.predicate.and(conjunct.clone())
            };
            Stmt::BlockRealize(br)
        }
        Stmt::For(mut f) => {
            f.body = add_predicate(f.body, conjunct);
            Stmt::For(f)
        }
        Stmt::Seq(v) => Stmt::Seq(
            v.into_iter()
                .map(|st| add_predicate(st, conjunct))
                .collect(),
        ),
        Stmt::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => Stmt::IfThenElse {
            cond,
            then_branch: Box::new(add_predicate(*then_branch, conjunct)),
            else_branch: else_branch.map(|e| Box::new(add_predicate(*e, conjunct))),
        },
        other => Stmt::IfThenElse {
            cond: conjunct.clone(),
            then_branch: Box::new(other),
            else_branch: None,
        },
    }
}

impl Schedule {
    /// Splits a loop into a nest of loops with the given factors
    /// (outermost first). Exactly one factor may be `-1`, meaning "infer
    /// from the extent". When the factor product exceeds the extent, the
    /// inner blocks are guarded with a bounds predicate (partial tiles).
    ///
    /// Returns references to the new loops, outermost first.
    ///
    /// # Errors
    ///
    /// Fails when the loop is missing, a factor is invalid, or more than
    /// one factor is `-1`.
    pub fn split(&mut self, loop_ref: &LoopRef, factors: &[i64]) -> Result<Vec<LoopRef>> {
        if factors.len() < 2 {
            return Err(ScheduleError::Precondition(
                "split needs at least two factors".into(),
            ));
        }
        let extent = self.loop_extent(loop_ref)?;
        let inferred = factors.iter().filter(|&&f| f == -1).count();
        if inferred > 1 {
            return Err(ScheduleError::Precondition(
                "at most one split factor may be inferred (-1)".into(),
            ));
        }
        if factors.iter().any(|&f| f == 0 || f < -1) {
            return Err(ScheduleError::Precondition(format!(
                "invalid split factors {factors:?}"
            )));
        }
        let known: i64 = factors.iter().filter(|&&f| f > 0).product();
        let factors: Vec<i64> = factors
            .iter()
            .map(|&f| {
                if f == -1 {
                    (extent + known - 1) / known
                } else {
                    f
                }
            })
            .collect();
        let product: i64 = factors.iter().product();
        if product < extent {
            return Err(ScheduleError::Precondition(format!(
                "split factors {factors:?} (product {product}) do not cover extent {extent}"
            )));
        }

        let base_name = loop_ref.var().name().to_string();
        let new_vars: Vec<Var> = (0..factors.len())
            .map(|k| Var::int(format!("{base_name}_{k}")))
            .collect();
        // v = ((v0 * f1 + v1) * f2 + v2) ...
        let mut value = Expr::from(&new_vars[0]);
        for (var, factor) in new_vars.iter().zip(&factors).skip(1) {
            value = value * *factor + Expr::from(var);
        }
        let needs_guard = product != extent;

        self.rewrite_loop(loop_ref, |f: For| {
            let mut map = HashMap::new();
            map.insert(f.var.clone(), value.clone());
            let mut body = subst_stmt(&f.body, &map);
            if needs_guard {
                body = add_predicate(body, &value.clone().lt(extent));
            }
            let mut stmt = body;
            for (k, (var, factor)) in new_vars.iter().zip(&factors).enumerate().rev() {
                let kind = if k == 0 { f.kind } else { ForKind::Serial };
                stmt = Stmt::For(Box::new(For::with_kind(var.clone(), *factor, kind, stmt)));
            }
            Ok(simplify_stmt(&stmt))
        })?;
        self.record(TraceStep::new(
            "split",
            vec![base_name.into(), factors.clone().into()],
        ))?;
        Ok(new_vars.into_iter().map(LoopRef).collect())
    }

    /// Fuses a chain of perfectly nested loops (outermost first) into one.
    ///
    /// # Errors
    ///
    /// Fails when the loops are not a perfect nest in the given order.
    pub fn fuse(&mut self, loops: &[LoopRef]) -> Result<LoopRef> {
        if loops.len() < 2 {
            return Err(ScheduleError::Precondition(
                "fuse needs at least two loops".into(),
            ));
        }
        let extents: Vec<i64> = loops
            .iter()
            .map(|l| self.loop_extent(l))
            .collect::<Result<_>>()?;
        let fused_name = loops
            .iter()
            .map(|l| l.var().name().to_string())
            .collect::<Vec<_>>()
            .join("_")
            + "_fused";
        let fused = Var::int(fused_name.clone());
        let total: i64 = extents.iter().product();
        let vars: Vec<Var> = loops.iter().map(|l| l.var().clone()).collect();

        self.rewrite_loop(&loops[0].clone(), |outer: For| {
            // Verify the perfect nest and collect the innermost body.
            let mut kinds = vec![outer.kind];
            let mut current = outer.body;
            let mut chain_vars = vec![outer.var.clone()];
            for l in &loops[1..] {
                match current {
                    Stmt::For(f) if &f.var == l.var() => {
                        kinds.push(f.kind);
                        chain_vars.push(f.var.clone());
                        current = f.body;
                    }
                    other => {
                        return Err(ScheduleError::Precondition(format!(
                            "loops are not perfectly nested at {}: found {}",
                            l.var().name(),
                            match &other {
                                Stmt::For(f) => format!("loop {}", f.var.name()),
                                _ => "non-loop statement".to_string(),
                            }
                        )))
                    }
                }
            }
            if kinds.iter().any(|k| *k != ForKind::Serial) {
                return Err(ScheduleError::Precondition(
                    "fuse requires serial loops".into(),
                ));
            }
            // l_k = (fused // prod_{j>k} E_j) % E_k  (outermost: no modulo).
            let mut map = HashMap::new();
            let mut div = 1i64;
            for (k, var) in chain_vars.iter().enumerate().rev() {
                let mut e = Expr::from(&fused);
                if div != 1 {
                    e = e.floor_div(div);
                }
                if k != 0 {
                    e = e.floor_mod(extents[k]);
                }
                map.insert(var.clone(), e);
                div *= extents[k];
            }
            let body = subst_stmt(&current, &map);
            Ok(simplify_stmt(&Stmt::For(Box::new(For::serial(
                fused.clone(),
                total,
                body,
            )))))
        })?;
        self.record(TraceStep::new(
            "fuse",
            vars.iter().map(|v| v.name().to_string().into()).collect(),
        ))?;
        Ok(LoopRef(fused))
    }

    /// Reorders loops on one nesting chain. `order` lists the loops in
    /// their desired new order (outermost first); loops on the chain that
    /// are not mentioned keep their positions.
    ///
    /// # Errors
    ///
    /// Fails when the loops do not lie on a single chain of perfectly
    /// nested loops.
    pub fn reorder(&mut self, order: &[LoopRef]) -> Result<()> {
        if order.len() < 2 {
            return Ok(());
        }
        // Find which of the referenced loops is outermost in the function.
        let target_vars: Vec<Var> = order.iter().map(|l| l.var().clone()).collect();
        let names: Vec<String> = target_vars.iter().map(|v| v.name().to_string()).collect();
        // Locate the outermost: walk the body; the first For whose var is in
        // target_vars is the chain head.
        fn find_head(s: &Stmt, targets: &[Var]) -> Option<Var> {
            match s {
                Stmt::For(f) => {
                    if targets.contains(&f.var) {
                        Some(f.var.clone())
                    } else {
                        find_head(&f.body, targets)
                    }
                }
                Stmt::Seq(v) => v.iter().find_map(|st| find_head(st, targets)),
                Stmt::IfThenElse {
                    then_branch,
                    else_branch,
                    ..
                } => find_head(then_branch, targets)
                    .or_else(|| else_branch.as_ref().and_then(|e| find_head(e, targets))),
                Stmt::BlockRealize(br) => {
                    let from_init = br.block.init.as_ref().and_then(|i| find_head(i, targets));
                    from_init.or_else(|| find_head(&br.block.body, targets))
                }
                _ => None,
            }
        }
        let head = find_head(&self.func.body, &target_vars)
            .ok_or_else(|| ScheduleError::LoopNotFound(names.join(", ")))?;

        self.rewrite_loop(&LoopRef(head), |outer: For| {
            // Collect the chain until all targets are found.
            let mut chain: Vec<For> = Vec::new();
            let mut found = 0usize;
            let mut current = Stmt::For(Box::new(outer));
            loop {
                match current {
                    Stmt::For(f) => {
                        let f = *f;
                        if target_vars.contains(&f.var) {
                            found += 1;
                        }
                        let body = f.body.clone();
                        chain.push(f);
                        if found == target_vars.len() {
                            current = body;
                            break;
                        }
                        current = body;
                    }
                    _ => {
                        return Err(ScheduleError::Precondition(format!(
                            "loops {names:?} are not on a single nesting chain"
                        )))
                    }
                }
            }
            let innermost_body = current;
            // Permute: positions of targets get the new order.
            let mut order_iter = target_vars.iter();
            let new_chain: Vec<&For> = chain
                .iter()
                .map(|f| {
                    if target_vars.contains(&f.var) {
                        let next = order_iter.next().expect("counted above");
                        chain
                            .iter()
                            .find(|c| &c.var == next)
                            .expect("target on chain")
                    } else {
                        f
                    }
                })
                .collect();
            let mut stmt = innermost_body;
            for f in new_chain.into_iter().rev() {
                stmt = Stmt::For(Box::new(For {
                    var: f.var.clone(),
                    extent: f.extent.clone(),
                    kind: f.kind,
                    body: stmt,
                    annotations: f.annotations.clone(),
                }));
            }
            Ok(stmt)
        })?;
        self.record(TraceStep::new(
            "reorder",
            names.into_iter().map(Into::into).collect(),
        ))
    }

    fn set_loop_kind(&mut self, loop_ref: &LoopRef, kind: ForKind, prim: &str) -> Result<()> {
        self.rewrite_loop(loop_ref, |mut f: For| {
            f.kind = kind;
            Ok(Stmt::For(Box::new(f)))
        })?;
        self.record(TraceStep::new(
            prim,
            vec![loop_ref.var().name().to_string().into()],
        ))
    }

    /// Marks a loop parallel (CPU threads).
    ///
    /// # Errors
    ///
    /// Fails when the loop is missing.
    pub fn parallel(&mut self, loop_ref: &LoopRef) -> Result<()> {
        self.set_loop_kind(loop_ref, ForKind::Parallel, "parallel")
    }

    /// Maps a loop to SIMD lanes.
    ///
    /// # Errors
    ///
    /// Fails when the loop is missing.
    pub fn vectorize(&mut self, loop_ref: &LoopRef) -> Result<()> {
        self.set_loop_kind(loop_ref, ForKind::Vectorized, "vectorize")
    }

    /// Requests full unrolling of a loop.
    ///
    /// # Errors
    ///
    /// Fails when the loop is missing.
    pub fn unroll(&mut self, loop_ref: &LoopRef) -> Result<()> {
        self.set_loop_kind(loop_ref, ForKind::Unrolled, "unroll")
    }

    /// Binds a loop to a GPU thread axis.
    ///
    /// # Errors
    ///
    /// Fails when the loop is missing.
    pub fn bind(&mut self, loop_ref: &LoopRef, tag: ThreadTag) -> Result<()> {
        self.rewrite_loop(loop_ref, |mut f: For| {
            f.kind = ForKind::ThreadBinding(tag);
            Ok(Stmt::For(Box::new(f)))
        })?;
        self.record(TraceStep::new(
            "bind",
            vec![
                loop_ref.var().name().to_string().into(),
                tag.as_str().into(),
            ],
        ))
    }

    /// Attaches an annotation to a loop.
    ///
    /// # Errors
    ///
    /// Fails when the loop is missing.
    pub fn annotate(&mut self, loop_ref: &LoopRef, key: &str, value: tir::AnnValue) -> Result<()> {
        let key_owned = key.to_string();
        let value_copy = value.clone();
        self.rewrite_loop(loop_ref, |mut f: For| {
            f.annotations.insert(key_owned, value);
            Ok(Stmt::For(Box::new(f)))
        })?;
        self.record(TraceStep::new(
            "annotate",
            vec![
                loop_ref.var().name().to_string().into(),
                key.into(),
                ann_to_arg(&value_copy),
            ],
        ))
    }
}

/// Encodes an annotation value as a trace argument.
pub(crate) fn ann_to_arg(v: &tir::AnnValue) -> crate::trace::TraceArg {
    match v {
        tir::AnnValue::Int(i) => (*i).into(),
        tir::AnnValue::Str(s) => s.clone().into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use tir::builder::matmul_func;
    use tir::DataType;
    use tir_exec::assert_same_semantics;

    fn mm() -> tir::PrimFunc {
        matmul_func("mm", 16, 16, 16, DataType::float32())
    }

    #[test]
    fn split_preserves_semantics() {
        let reference = mm();
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        let new = sch.split(&loops[0], &[4, 4]).expect("split");
        assert_eq!(new.len(), 2);
        assert_eq!(sch.get_loops(&block).expect("loops").len(), 4);
        assert_same_semantics(&reference, sch.func(), 1, 0.0);
    }

    #[test]
    fn split_with_inferred_factor() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        let new = sch.split(&loops[1], &[-1, 8]).expect("split");
        assert_eq!(sch.loop_extent(&new[0]).expect("extent"), 2);
        assert_eq!(sch.loop_extent(&new[1]).expect("extent"), 8);
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
    }

    #[test]
    fn split_partial_tile_adds_predicate() {
        let reference = matmul_func("mm", 10, 10, 10, DataType::float32());
        let mut sch = Schedule::new(reference.clone());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        sch.split(&loops[0], &[4, 3]).expect("split 10 -> 4x3");
        let text = sch.func().to_string();
        assert!(text.contains("T.where"), "{text}");
        assert_same_semantics(&reference, sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn split_rejects_bad_factors() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        assert!(sch.split(&loops[0], &[4]).is_err());
        assert!(sch.split(&loops[0], &[-1, -1]).is_err());
        assert!(sch.split(&loops[0], &[2, 2]).is_err()); // covers only 4 < 16
        assert!(sch.split(&loops[0], &[0, 4]).is_err());
    }

    #[test]
    fn fuse_preserves_semantics() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        let fused = sch.fuse(&loops[0..2]).expect("fuse");
        assert_eq!(sch.loop_extent(&fused).expect("extent"), 256);
        assert_eq!(sch.get_loops(&block).expect("loops").len(), 2);
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn fuse_requires_perfect_nest() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        // loops[0] and loops[2] are not adjacent.
        let picked = vec![loops[0].clone(), loops[2].clone()];
        assert!(sch.fuse(&picked).is_err());
    }

    #[test]
    fn reorder_preserves_semantics() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        // k, j, i order.
        sch.reorder(&[loops[2].clone(), loops[1].clone(), loops[0].clone()])
            .expect("reorder");
        let new_loops = sch.get_loops(&block).expect("loops");
        assert_eq!(new_loops[0].var(), loops[2].var());
        assert_eq!(new_loops[2].var(), loops[0].var());
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn reorder_partial_keeps_unlisted_positions() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        // Swap only i and k; j stays in the middle.
        sch.reorder(&[loops[2].clone(), loops[0].clone()])
            .expect("reorder");
        let new_loops = sch.get_loops(&block).expect("loops");
        assert_eq!(new_loops[1].var(), loops[1].var());
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
    }

    #[test]
    fn split_then_reorder_then_fuse_pipeline() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        let io = sch.split(&loops[0], &[4, 4]).expect("split i");
        let jo = sch.split(&loops[1], &[4, 4]).expect("split j");
        sch.reorder(&[io[0].clone(), jo[0].clone(), io[1].clone(), jo[1].clone()])
            .expect("tile reorder");
        sch.fuse(&[io[0].clone(), jo[0].clone()]).expect("fuse");
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
        tir_analysis::assert_valid(sch.func());
    }

    #[test]
    fn annotations_and_kinds() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        sch.parallel(&loops[0]).expect("parallel");
        sch.vectorize(&loops[1]).expect("vectorize");
        sch.unroll(&loops[2]).expect("unroll");
        sch.annotate(&loops[2], "pragma_test", tir::AnnValue::Int(1))
            .expect("annotate");
        let infos = sch.loop_infos(&block).expect("infos");
        assert_eq!(infos[0].kind, ForKind::Parallel);
        assert_eq!(infos[1].kind, ForKind::Vectorized);
        assert_eq!(infos[2].kind, ForKind::Unrolled);
        // Reduction loop k is loops[2]; parallel i and vectorized j are
        // spatial — validation must still pass, and semantics hold.
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
    }

    #[test]
    fn bind_thread_axes() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        sch.bind(&loops[0], ThreadTag::BlockIdxX).expect("bind bx");
        sch.bind(&loops[1], ThreadTag::ThreadIdxX).expect("bind tx");
        tir_analysis::assert_valid(sch.func());
        assert_same_semantics(&mm(), sch.func(), 1, 0.0);
    }

    #[test]
    fn trace_records_steps() {
        let mut sch = Schedule::new(mm());
        let block = sch.get_block("C").expect("block");
        let loops = sch.get_loops(&block).expect("loops");
        sch.split(&loops[0], &[4, 4]).expect("split");
        sch.parallel(&loops[1]).expect("parallel");
        let t = sch.trace().to_string();
        assert!(t.contains("split("), "{t}");
        assert!(t.contains("parallel("), "{t}");
    }
}
