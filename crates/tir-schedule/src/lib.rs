//! # tir-schedule — scheduling transformations for TensorIR
//!
//! Each primitive of §3.2 is an independent TensorIR → TensorIR rewrite
//! with its own validity checks. Implemented primitives:
//!
//! * loop transformations — [`Schedule::split`], [`Schedule::fuse`],
//!   [`Schedule::reorder`], plus loop annotations ([`Schedule::parallel`],
//!   [`Schedule::vectorize`], [`Schedule::unroll`], [`Schedule::bind`],
//!   [`Schedule::annotate`]).
//! * compute-location mutation — `compute_at`, `reverse_compute_at`,
//!   `compute_inline`, `reverse_compute_inline`.
//! * block-hierarchy changes — `blockize`, `cache_read`, `cache_write`,
//!   `decompose_reduction`.
//!
//! Every primitive records itself in the schedule [`trace::Trace`], which
//! the auto-scheduler's evolutionary search replays and mutates.

#![warn(missing_docs)]

mod blockize;
mod cache;
mod compute_location;
mod loop_transform;
mod reduction;
pub mod replay;
pub mod schedule;
pub mod trace;

pub use replay::replay;
pub use schedule::{BlockRef, LoopInfo, LoopRef, Result, Schedule, ScheduleError};
pub use trace::{Trace, TraceArg, TraceStep};
