//! Benchmark shape suite: the concrete operator instances the figures run.
//!
//! The paper evaluates standard model layers on an RTX 3080 / Graviton2;
//! our substrate is an analytic simulator, so the suite uses
//! representative layer shapes (ResNet/MobileNet/BERT-style) that exercise
//! the same compute/data-movement regimes while staying fast to analyze.

use tir::{DataType, PrimFunc};

use crate::ops;

/// The operator families of Figure 10/11.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// 1-D convolution.
    C1D,
    /// 2-D convolution.
    C2D,
    /// 3-D convolution.
    C3D,
    /// Depthwise 2-D convolution.
    DEP,
    /// Dilated 2-D convolution.
    DIL,
    /// General matrix multiply.
    GMM,
    /// Grouped 2-D convolution.
    GRP,
    /// Transposed 2-D convolution.
    T2D,
}

impl OpKind {
    /// All eight operator kinds, in the paper's figure order.
    pub fn all() -> [OpKind; 8] {
        [
            OpKind::C1D,
            OpKind::C2D,
            OpKind::C3D,
            OpKind::DEP,
            OpKind::DIL,
            OpKind::GMM,
            OpKind::GRP,
            OpKind::T2D,
        ]
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::C1D => "C1D",
            OpKind::C2D => "C2D",
            OpKind::C3D => "C3D",
            OpKind::DEP => "DEP",
            OpKind::DIL => "DIL",
            OpKind::GMM => "GMM",
            OpKind::GRP => "GRP",
            OpKind::T2D => "T2D",
        }
    }
}

/// One benchmark case: an operator instance plus bookkeeping.
#[derive(Clone, Debug)]
pub struct BenchCase {
    /// Operator family.
    pub kind: OpKind,
    /// The workload function.
    pub func: PrimFunc,
    /// Multiply-accumulate count (for throughput reporting).
    pub macs: i64,
}

fn conv_macs(out_spatial: i64, co: i64, reduce: i64) -> i64 {
    out_spatial * co * reduce
}

/// Builds the single-operator benchmark suite for a given data type
/// (float16 on the GPU machine, int8 on the ARM machine).
pub fn bench_suite(dtype: DataType) -> Vec<BenchCase> {
    let acc = if dtype == DataType::int8() {
        DataType::int32()
    } else {
        dtype
    };
    vec![
        // C1D: sequence conv: N=8, L=512, ci=co=256, k=3.
        BenchCase {
            kind: OpKind::C1D,
            func: ops::c1d(8, 514, 256, 256, 3, 1, dtype),
            macs: conv_macs(8 * 512, 256, 3 * 256),
        },
        // C2D: ResNet-style block: 8x58x58x128 -> 56x56x128, 3x3.
        BenchCase {
            kind: OpKind::C2D,
            func: ops::c2d(8, 58, 58, 128, 128, 3, 3, 1, dtype),
            macs: conv_macs(8 * 56 * 56, 128, 3 * 3 * 128),
        },
        // C3D: video conv: 4x18x18x18x64 -> 16x16x16x64, 3x3x3.
        BenchCase {
            kind: OpKind::C3D,
            func: ops::c3d(4, 18, 18, 18, 64, 64, 3, 1, dtype),
            macs: conv_macs(4 * 16 * 16 * 16, 64, 27 * 64),
        },
        // DEP: MobileNet-style depthwise: 8x114x114x256, 3x3.
        BenchCase {
            kind: OpKind::DEP,
            func: ops::dep(8, 114, 114, 256, 3, 3, 1, dtype),
            macs: 8 * 112 * 112 * 256 * 9,
        },
        // DIL: dilated 3x3, dilation 2, same output volume as C2D.
        BenchCase {
            kind: OpKind::DIL,
            func: ops::dil(8, 60, 60, 128, 128, 3, 3, 2, dtype),
            macs: conv_macs(8 * 56 * 56, 128, 9 * 128),
        },
        // GMM: 1024 x 1024 x 1024.
        BenchCase {
            kind: OpKind::GMM,
            func: ops::gmm(1024, 1024, 1024, dtype, acc),
            macs: 1024 * 1024 * 1024,
        },
        // GRP: grouped conv: 8 groups of 32 -> 32 channels at 28x28.
        BenchCase {
            kind: OpKind::GRP,
            func: ops::grp(8, 30, 30, 8, 32, 32, 3, 3, 1, dtype),
            macs: 8 * 28 * 28 * 8 * 32 * 9 * 32,
        },
        // T2D: GAN-style upsampling: 8x16x16x256 -> 34x34x128, 4x4 stride 2.
        BenchCase {
            kind: OpKind::T2D,
            func: ops::t2d(8, 16, 16, 256, 128, 4, 4, 2, dtype),
            macs: 8 * 34 * 34 * 128 * 16 * 256,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_kinds() {
        let suite = bench_suite(DataType::float16());
        assert_eq!(suite.len(), 8);
        let kinds: Vec<OpKind> = suite.iter().map(|c| c.kind).collect();
        assert_eq!(kinds, OpKind::all());
        for case in &suite {
            assert!(case.macs > 0, "{:?}", case.kind);
            tir_analysis::assert_valid(&case.func);
        }
    }

    #[test]
    fn int8_suite_uses_i32_accumulators() {
        let suite = bench_suite(DataType::int8());
        let gmm = suite.iter().find(|c| c.kind == OpKind::GMM).expect("gmm");
        assert_eq!(gmm.func.params[2].dtype(), DataType::int32());
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(OpKind::GMM.label(), "GMM");
        assert_eq!(OpKind::T2D.label(), "T2D");
    }
}
