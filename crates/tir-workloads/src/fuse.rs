//! Epilogue composition: build one `PrimFunc` computing an anchor operator
//! (matmul, conv, …) followed by a chain of elementwise epilogues.
//!
//! This is the code-generation half of graph-level operator fusion
//! (`tir-graph::fusion` decides *what* to fuse; this module builds the
//! fused kernel). The anchor's output buffer and every intermediate of the
//! epilogue chain become block-local allocations in the
//! [`FUSED_SCOPE`] memory scope — on-chip storage that never round-trips
//! through DRAM — so the roofline cost model charges their traffic at the
//! on-chip bandwidth instead of global bandwidth, which is exactly the
//! traffic a fusing compiler eliminates. [`compose_unfused`] builds the
//! same computation with global-memory intermediates: the reference for
//! bit-exactness differentials and for quantifying what fusion saves.
//!
//! The composed function keeps the anchor's main block name (`"C"` for
//! every generator in this crate), so the auto-scheduler tensorizes the
//! anchor exactly as it would standalone and flat-schedules the epilogue
//! blocks as `other_blocks`.

use std::collections::HashMap;

use tir::builder::compute;
use tir::visit::replace_buffers;
use tir::{Buffer, DataType, Expr, MemScope, PrimFunc, Stmt};

/// Memory scope of fused intermediates: on-chip storage produced and
/// consumed inside one fused kernel. Charged at the machine's on-chip
/// (shared) bandwidth by the cost model and exempt from the thread-scope
/// visibility checks (it is private to the fused kernel by construction).
pub const FUSED_SCOPE: &str = "fused";

/// One elementwise epilogue step applied to the running value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Epilogue {
    /// `max(x, 0)`.
    Relu,
    /// `x + R` for an extra same-shape input tensor `R` (residual add).
    AddInput,
    /// `x + bias[last_axis]` for an extra 1-D input over the last axis.
    BiasAdd,
    /// `0.5 * x * (1 + erf(x / sqrt(2)))` — float dtypes only.
    Gelu,
}

impl Epilogue {
    /// Short name used in fused-kernel and block names.
    pub fn label(self) -> &'static str {
        match self {
            Epilogue::Relu => "relu",
            Epilogue::AddInput => "add",
            Epilogue::BiasAdd => "bias",
            Epilogue::Gelu => "gelu",
        }
    }

    /// How many extra input tensors this step appends to the signature.
    pub fn extra_inputs(self) -> usize {
        match self {
            Epilogue::AddInput | Epilogue::BiasAdd => 1,
            Epilogue::Relu | Epilogue::Gelu => 0,
        }
    }
}

fn zero(dt: DataType) -> Expr {
    if dt.is_float() {
        Expr::Float(0.0, dt)
    } else {
        Expr::Int(0, dt)
    }
}

fn erf(x: Expr, dt: DataType) -> Expr {
    Expr::Call {
        name: "erf".into(),
        args: vec![x],
        dtype: dt,
    }
}

/// Composes `anchor` with an epilogue chain into one fused `PrimFunc`:
/// intermediates live in the [`FUSED_SCOPE`] on-chip scope.
///
/// The result's parameters are the anchor's inputs, then the extra inputs
/// of each epilogue step in order, then the final output. The anchor's
/// output and every chain intermediate become root-block allocations.
///
/// # Panics
///
/// Panics if `steps` is empty, if the anchor does not follow the
/// root-block convention, or on a [`Epilogue::Gelu`] over a non-float
/// anchor output.
pub fn fuse_epilogue(anchor: &PrimFunc, steps: &[Epilogue], name: &str) -> PrimFunc {
    compose(anchor, steps, name, true)
}

/// Same computation as [`fuse_epilogue`], with every intermediate in
/// global memory: what running the chain unfused (one kernel per op,
/// intermediates round-tripping through DRAM) computes. Bit-exact against
/// the fused composition; the reference side of the fusion differential.
pub fn compose_unfused(anchor: &PrimFunc, steps: &[Epilogue], name: &str) -> PrimFunc {
    compose(anchor, steps, name, false)
}

fn compose(anchor: &PrimFunc, steps: &[Epilogue], name: &str, fused: bool) -> PrimFunc {
    assert!(!steps.is_empty(), "epilogue chain must be non-empty");
    let out = anchor
        .params
        .last()
        .expect("anchor function has parameters")
        .clone();
    let scope_of = || {
        if fused {
            MemScope::Custom(FUSED_SCOPE.into())
        } else {
            MemScope::Global
        }
    };
    let (anchor_body, anchor_allocs) = match &anchor.body {
        Stmt::BlockRealize(br) => ((*br.block.body).clone(), br.block.alloc_buffers.clone()),
        other => panic!("anchor must follow the root-block convention, got {other:?}"),
    };

    // The anchor now produces the first chain intermediate instead of its
    // output parameter. Buffers have identity semantics, so retargeting is
    // a substitution through loads/stores/regions/allocations.
    let stage0 = out.derive(format!("{}_s0", out.name()), scope_of());
    let mut map = HashMap::new();
    map.insert(out.clone(), stage0.clone());
    let mut stmts = vec![replace_buffers(&anchor_body, &map)];
    let mut allocs: Vec<Buffer> = anchor_allocs
        .into_iter()
        .map(|b| map.get(&b).cloned().unwrap_or(b))
        .collect();
    allocs.push(stage0.clone());

    let mut extra_params: Vec<Buffer> = Vec::new();
    let mut cur = stage0;
    for (i, step) in steps.iter().enumerate() {
        let dt = cur.dtype();
        let last = i + 1 == steps.len();
        let dst = if last {
            Buffer::new("D", dt, cur.shape().to_vec())
        } else {
            out.derive(format!("{}_s{}", out.name(), i + 1), scope_of())
        };
        let block_name = format!("{}{}", step.label(), i);
        let src = cur.clone();
        let stmt = match step {
            Epilogue::Relu => compute(&block_name, &dst, |iv| {
                src.load(iv.iter().map(Expr::from).collect()).max(zero(dt))
            }),
            Epilogue::AddInput => {
                let r = Buffer::new(format!("R{i}"), dt, cur.shape().to_vec());
                extra_params.push(r.clone());
                compute(&block_name, &dst, |iv| {
                    let idx: Vec<Expr> = iv.iter().map(Expr::from).collect();
                    src.load(idx.clone()) + r.load(idx)
                })
            }
            Epilogue::BiasAdd => {
                let channels = *cur.shape().last().expect("output has at least one axis");
                let b = Buffer::new(format!("Bias{i}"), dt, vec![channels]);
                extra_params.push(b.clone());
                compute(&block_name, &dst, |iv| {
                    let idx: Vec<Expr> = iv.iter().map(Expr::from).collect();
                    let ch = idx.last().expect("at least one axis").clone();
                    src.load(idx) + b.load(vec![ch])
                })
            }
            Epilogue::Gelu => {
                assert!(dt.is_float(), "Gelu requires a float dtype, got {dt}");
                compute(&block_name, &dst, |iv| {
                    let x = src.load(iv.iter().map(Expr::from).collect());
                    let inv_sqrt2 = Expr::Float(std::f64::consts::FRAC_1_SQRT_2, dt);
                    Expr::Float(0.5, dt)
                        * x.clone()
                        * (Expr::Float(1.0, dt) + erf(x * inv_sqrt2, dt))
                })
            }
        };
        if !last {
            allocs.push(dst.clone());
        }
        stmts.push(stmt);
        cur = dst;
    }

    let mut params: Vec<Buffer> = anchor.params[..anchor.params.len() - 1].to_vec();
    params.extend(extra_params);
    params.push(cur);
    let mut func = PrimFunc::new(name, params, Stmt::seq(stmts));
    func.root_block_mut()
        .expect("PrimFunc::new builds a root block")
        .alloc_buffers = allocs;
    func
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{batch_matmul, c2d, dep, gmm};

    fn anchors(dtype: DataType) -> Vec<(&'static str, PrimFunc)> {
        let acc = if dtype == DataType::int8() {
            DataType::int32()
        } else {
            dtype
        };
        vec![
            ("gmm", gmm(16, 16, 16, dtype, acc)),
            ("c2d", c2d(1, 8, 8, 4, 8, 3, 3, 1, dtype)),
            ("dep", dep(1, 8, 8, 4, 3, 3, 1, dtype)),
            ("bmm", batch_matmul(2, 8, 8, 8, dtype, acc)),
        ]
    }

    #[test]
    fn fused_matches_unfused_across_anchors_epilogues_and_dtypes() {
        let chains: Vec<Vec<Epilogue>> = vec![
            vec![Epilogue::Relu],
            vec![Epilogue::AddInput],
            vec![Epilogue::BiasAdd, Epilogue::Relu],
            vec![Epilogue::AddInput, Epilogue::Relu],
        ];
        for dtype in [DataType::float16(), DataType::float32(), DataType::int8()] {
            for (label, anchor) in anchors(dtype) {
                for chain in &chains {
                    let name = format!("{label}_fused");
                    let fused = fuse_epilogue(&anchor, chain, &name);
                    let unfused = compose_unfused(&anchor, chain, &name);
                    tir_analysis::assert_valid(&fused);
                    tir_analysis::assert_valid(&unfused);
                    tir_exec::assert_same_semantics(&fused, &unfused, 1, 0.0);
                }
            }
        }
    }

    #[test]
    fn gelu_chain_matches_unfused_on_floats() {
        for dtype in [DataType::float16(), DataType::float32()] {
            let anchor = gmm(16, 16, 16, dtype, dtype);
            let chain = [Epilogue::BiasAdd, Epilogue::Gelu];
            let fused = fuse_epilogue(&anchor, &chain, "gmm_bias_gelu");
            let unfused = compose_unfused(&anchor, &chain, "gmm_bias_gelu");
            tir_analysis::assert_valid(&fused);
            tir_exec::assert_same_semantics(&fused, &unfused, 1, 0.0);
        }
    }

    #[test]
    fn fused_relu_computes_relu_of_matmul() {
        // Ground truth independent of the composition machinery: run the
        // fused kernel and recompute max(A·B, 0) from the same inputs.
        let dt = DataType::float32();
        let anchor = gmm(8, 8, 8, dt, dt);
        let fused = fuse_epilogue(&anchor, &[Epilogue::Relu], "mm_relu");
        let out = tir_exec::run_on_random_inputs(&fused, 1, 7).expect("run");
        let (a, b, d) = (&out[0], &out[1], &out[2]);
        for i in 0..8 {
            for j in 0..8 {
                let mut acc = 0.0;
                for k in 0..8 {
                    acc += a.get(&[i, k]) * b.get(&[k, j]);
                }
                let expect = acc.max(0.0);
                assert!(
                    (d.get(&[i, j]) - expect).abs() < 1e-4,
                    "D[{i},{j}] = {} vs {expect}",
                    d.get(&[i, j])
                );
            }
        }
    }

    #[test]
    fn fused_intermediates_live_in_the_fused_scope() {
        let dt = DataType::float16();
        let anchor = gmm(16, 16, 16, dt, dt);
        let chain = [Epilogue::BiasAdd, Epilogue::Relu];
        let fused = fuse_epilogue(&anchor, &chain, "mm_bias_relu");
        let root = fused.root_block().expect("root");
        let fused_scope = MemScope::Custom(FUSED_SCOPE.into());
        let scoped = root
            .alloc_buffers
            .iter()
            .filter(|b| *b.scope() == fused_scope)
            .count();
        // Anchor output + one chain intermediate.
        assert_eq!(scoped, 2, "allocs: {:?}", root.alloc_buffers);
        // Signature: A, B, Bias, D.
        assert_eq!(fused.params.len(), 4);
        assert_eq!(fused.params[2].shape(), &[16]);
        // The unfused reference keeps intermediates in global memory.
        let unfused = compose_unfused(&anchor, &chain, "mm_bias_relu");
        let root_u = unfused.root_block().expect("root");
        assert!(root_u
            .alloc_buffers
            .iter()
            .all(|b| *b.scope() == MemScope::Global));
    }

    #[test]
    fn fused_signature_extra_inputs_follow_the_chain_order() {
        let dt = DataType::float32();
        let anchor = c2d(1, 8, 8, 4, 8, 3, 3, 1, dt);
        let chain = [Epilogue::BiasAdd, Epilogue::AddInput, Epilogue::Relu];
        let fused = fuse_epilogue(&anchor, &chain, "conv_bias_add_relu");
        // A, W, Bias, R, D.
        assert_eq!(fused.params.len(), 5);
        assert_eq!(fused.params[2].shape(), &[8], "bias over channels");
        assert_eq!(
            fused.params[3].shape(),
            anchor.params[2].shape(),
            "residual matches the conv output shape"
        );
        let unfused = compose_unfused(&anchor, &chain, "conv_bias_add_relu");
        tir_exec::assert_same_semantics(&fused, &unfused, 1, 0.0);
    }
}
