//! Operator generators: every workload of the paper's single-operator
//! evaluation (§5.1) as a TensorIR function.
//!
//! All convolutions use NHWC layout and *valid* padding (callers pre-pad
//! shapes), matching how the benchmark harness instantiates them. The main
//! compute block of every generator is named `"C"`.

use tir::builder::{compute, reduce_compute};
use tir::{Buffer, DataType, Expr, PrimFunc, Stmt};

fn zero(dtype: DataType) -> Expr {
    if dtype.is_float() {
        Expr::Float(0.0, dtype)
    } else {
        Expr::Int(0, dtype)
    }
}

fn acc_cast(e: Expr, from: DataType, to: DataType) -> Expr {
    if from == to {
        e
    } else {
        e.cast(to)
    }
}

/// Accumulator type for a storage type: int8 accumulates in int32 (the
/// quantized-inference convention every library in §5.3 follows).
pub fn accumulator_of(dtype: DataType) -> DataType {
    if dtype == DataType::int8() {
        DataType::int32()
    } else {
        dtype
    }
}

/// General matrix multiply `C[m, n] += A[m, k] * B[k, n]` (GMM).
pub fn gmm(m: i64, n: i64, k: i64, dtype: DataType, acc: DataType) -> PrimFunc {
    let a = Buffer::new("A", dtype, vec![m, k]);
    let b = Buffer::new("B", dtype, vec![k, n]);
    let c = Buffer::new("C", acc, vec![m, n]);
    let body = reduce_compute("C", &c, &[k], zero(acc), |sp, rd| {
        acc_cast(
            a.load(vec![Expr::from(&sp[0]), Expr::from(&rd[0])]),
            dtype,
            acc,
        ) * acc_cast(
            b.load(vec![Expr::from(&rd[0]), Expr::from(&sp[1])]),
            dtype,
            acc,
        )
    });
    PrimFunc::new("gmm", vec![a, b, c], body)
}

/// Batched matrix multiply `C[b, m, n] += A[b, m, k] * B[b, k, n]`.
pub fn batch_matmul(bs: i64, m: i64, n: i64, k: i64, dtype: DataType, acc: DataType) -> PrimFunc {
    let a = Buffer::new("A", dtype, vec![bs, m, k]);
    let b = Buffer::new("B", dtype, vec![bs, k, n]);
    let c = Buffer::new("C", acc, vec![bs, m, n]);
    let body = reduce_compute("C", &c, &[k], zero(acc), |sp, rd| {
        acc_cast(
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]),
                Expr::from(&rd[0]),
            ]),
            dtype,
            acc,
        ) * acc_cast(
            b.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&rd[0]),
                Expr::from(&sp[2]),
            ]),
            dtype,
            acc,
        )
    });
    PrimFunc::new("batch_matmul", vec![a, b, c], body)
}

/// 1-D convolution (C1D), NWC layout, valid padding.
pub fn c1d(
    n: i64,
    l: i64,
    ci: i64,
    co: i64,
    kernel: i64,
    stride: i64,
    dtype: DataType,
) -> PrimFunc {
    let lo = (l - kernel) / stride + 1;
    let acc = accumulator_of(dtype);
    let a = Buffer::new("A", dtype, vec![n, l, ci]);
    let w = Buffer::new("W", dtype, vec![kernel, ci, co]);
    let c = Buffer::new("C", acc, vec![n, lo, co]);
    let body = reduce_compute("C", &c, &[kernel, ci], zero(acc), |sp, rd| {
        acc_cast(
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) * stride + Expr::from(&rd[0]),
                Expr::from(&rd[1]),
            ]),
            dtype,
            acc,
        ) * acc_cast(
            w.load(vec![
                Expr::from(&rd[0]),
                Expr::from(&rd[1]),
                Expr::from(&sp[2]),
            ]),
            dtype,
            acc,
        )
    });
    PrimFunc::new("c1d", vec![a, w, c], body)
}

/// 2-D convolution (C2D), NHWC layout, valid padding.
#[allow(clippy::too_many_arguments)]
pub fn c2d(
    n: i64,
    h: i64,
    w_: i64,
    ci: i64,
    co: i64,
    kh: i64,
    kw: i64,
    stride: i64,
    dtype: DataType,
) -> PrimFunc {
    conv2d_general(n, h, w_, ci, co, kh, kw, stride, 1, dtype, "c2d")
}

/// Dilated 2-D convolution (DIL): like C2D with kernel dilation.
#[allow(clippy::too_many_arguments)]
pub fn dil(
    n: i64,
    h: i64,
    w_: i64,
    ci: i64,
    co: i64,
    kh: i64,
    kw: i64,
    dilation: i64,
    dtype: DataType,
) -> PrimFunc {
    conv2d_general(n, h, w_, ci, co, kh, kw, 1, dilation, dtype, "dil")
}

#[allow(clippy::too_many_arguments)]
fn conv2d_general(
    n: i64,
    h: i64,
    w_: i64,
    ci: i64,
    co: i64,
    kh: i64,
    kw: i64,
    stride: i64,
    dilation: i64,
    dtype: DataType,
    name: &str,
) -> PrimFunc {
    let ho = (h - (kh - 1) * dilation - 1) / stride + 1;
    let wo = (w_ - (kw - 1) * dilation - 1) / stride + 1;
    let acc = accumulator_of(dtype);
    let a = Buffer::new("A", dtype, vec![n, h, w_, ci]);
    let w = Buffer::new("W", dtype, vec![kh, kw, ci, co]);
    let c = Buffer::new("C", acc, vec![n, ho, wo, co]);
    let body = reduce_compute("C", &c, &[kh, kw, ci], zero(acc), |sp, rd| {
        acc_cast(
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) * stride + Expr::from(&rd[0]) * dilation,
                Expr::from(&sp[2]) * stride + Expr::from(&rd[1]) * dilation,
                Expr::from(&rd[2]),
            ]),
            dtype,
            acc,
        ) * acc_cast(
            w.load(vec![
                Expr::from(&rd[0]),
                Expr::from(&rd[1]),
                Expr::from(&rd[2]),
                Expr::from(&sp[3]),
            ]),
            dtype,
            acc,
        )
    });
    PrimFunc::new(name, vec![a, w, c], body)
}

/// 3-D convolution (C3D), NDHWC layout, valid padding.
#[allow(clippy::too_many_arguments)]
pub fn c3d(
    n: i64,
    d: i64,
    h: i64,
    w_: i64,
    ci: i64,
    co: i64,
    k: i64,
    stride: i64,
    dtype: DataType,
) -> PrimFunc {
    let do_ = (d - k) / stride + 1;
    let ho = (h - k) / stride + 1;
    let wo = (w_ - k) / stride + 1;
    let acc = accumulator_of(dtype);
    let a = Buffer::new("A", dtype, vec![n, d, h, w_, ci]);
    let w = Buffer::new("W", dtype, vec![k, k, k, ci, co]);
    let c = Buffer::new("C", acc, vec![n, do_, ho, wo, co]);
    let body = reduce_compute("C", &c, &[k, k, k, ci], zero(acc), |sp, rd| {
        acc_cast(
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) * stride + Expr::from(&rd[0]),
                Expr::from(&sp[2]) * stride + Expr::from(&rd[1]),
                Expr::from(&sp[3]) * stride + Expr::from(&rd[2]),
                Expr::from(&rd[3]),
            ]),
            dtype,
            acc,
        ) * acc_cast(
            w.load(vec![
                Expr::from(&rd[0]),
                Expr::from(&rd[1]),
                Expr::from(&rd[2]),
                Expr::from(&rd[3]),
                Expr::from(&sp[4]),
            ]),
            dtype,
            acc,
        )
    });
    PrimFunc::new("c3d", vec![a, w, c], body)
}

/// Depthwise 2-D convolution (DEP), NHWC layout.
#[allow(clippy::too_many_arguments)]
pub fn dep(
    n: i64,
    h: i64,
    w_: i64,
    c_: i64,
    kh: i64,
    kw: i64,
    stride: i64,
    dtype: DataType,
) -> PrimFunc {
    let ho = (h - kh) / stride + 1;
    let wo = (w_ - kw) / stride + 1;
    let acc = accumulator_of(dtype);
    let a = Buffer::new("A", dtype, vec![n, h, w_, c_]);
    let w = Buffer::new("W", dtype, vec![kh, kw, c_]);
    let c = Buffer::new("C", acc, vec![n, ho, wo, c_]);
    let body = reduce_compute("C", &c, &[kh, kw], zero(acc), |sp, rd| {
        acc_cast(
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) * stride + Expr::from(&rd[0]),
                Expr::from(&sp[2]) * stride + Expr::from(&rd[1]),
                Expr::from(&sp[3]),
            ]),
            dtype,
            acc,
        ) * acc_cast(
            w.load(vec![
                Expr::from(&rd[0]),
                Expr::from(&rd[1]),
                Expr::from(&sp[3]),
            ]),
            dtype,
            acc,
        )
    });
    PrimFunc::new("dep", vec![a, w, c], body)
}

/// Grouped 2-D convolution (GRP), NHWC with an explicit group dimension:
/// `A[n, h, w, g, ci_g]`, `W[g, kh, kw, ci_g, co_g]`, `C[n, h, w, g, co_g]`.
#[allow(clippy::too_many_arguments)]
pub fn grp(
    n: i64,
    h: i64,
    w_: i64,
    groups: i64,
    ci_g: i64,
    co_g: i64,
    kh: i64,
    kw: i64,
    stride: i64,
    dtype: DataType,
) -> PrimFunc {
    let ho = (h - kh) / stride + 1;
    let wo = (w_ - kw) / stride + 1;
    let acc = accumulator_of(dtype);
    let a = Buffer::new("A", dtype, vec![n, h, w_, groups, ci_g]);
    let w = Buffer::new("W", dtype, vec![groups, kh, kw, ci_g, co_g]);
    let c = Buffer::new("C", acc, vec![n, ho, wo, groups, co_g]);
    let body = reduce_compute("C", &c, &[kh, kw, ci_g], zero(acc), |sp, rd| {
        acc_cast(
            a.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) * stride + Expr::from(&rd[0]),
                Expr::from(&sp[2]) * stride + Expr::from(&rd[1]),
                Expr::from(&sp[3]),
                Expr::from(&rd[2]),
            ]),
            dtype,
            acc,
        ) * acc_cast(
            w.load(vec![
                Expr::from(&sp[3]),
                Expr::from(&rd[0]),
                Expr::from(&rd[1]),
                Expr::from(&rd[2]),
                Expr::from(&sp[4]),
            ]),
            dtype,
            acc,
        )
    });
    PrimFunc::new("grp", vec![a, w, c], body)
}

/// Transposed 2-D convolution (T2D), NHWC.
///
/// Implemented in gather form over a zero-inserted, zero-padded staging of
/// the input (block `"P"`): `P[n, y, x, ci]` holds `A[n, (y-kh+1)/s,
/// (x-kw+1)/s, ci]` where the offsets are stride-aligned and in range, and
/// zero elsewhere; the compute block `"C"` is then a regular convolution of
/// `P` with the spatially flipped weights. Output size is
/// `(h-1)*stride + kh`.
#[allow(clippy::too_many_arguments)]
pub fn t2d(
    n: i64,
    h: i64,
    w_: i64,
    ci: i64,
    co: i64,
    kh: i64,
    kw: i64,
    stride: i64,
    dtype: DataType,
) -> PrimFunc {
    let ho = (h - 1) * stride + kh;
    let wo = (w_ - 1) * stride + kw;
    // P covers output coordinates plus the kernel halo.
    let ph = ho + kh - 1;
    let pw = wo + kw - 1;
    let acc = accumulator_of(dtype);
    let a = Buffer::new("A", dtype, vec![n, h, w_, ci]);
    let w = Buffer::new("W", dtype, vec![kh, kw, ci, co]);
    let c = Buffer::new("C", acc, vec![n, ho, wo, co]);
    let p = Buffer::new("P", dtype, vec![n, ph, pw, ci]);

    let pad = compute("P", &p, |iv| {
        let y = Expr::from(&iv[1]) - (kh - 1);
        let x = Expr::from(&iv[2]) - (kw - 1);
        let aligned = y
            .clone()
            .floor_mod(stride)
            .eq_(0)
            .and(x.clone().floor_mod(stride).eq_(0));
        let in_range = y
            .clone()
            .cmp(tir::CmpOp::Ge, 0)
            .and(y.clone().lt((h - 1) * stride + 1))
            .and(x.clone().cmp(tir::CmpOp::Ge, 0))
            .and(x.clone().lt((w_ - 1) * stride + 1));
        Expr::select(
            aligned.and(in_range),
            a.load(vec![
                Expr::from(&iv[0]),
                y.floor_div(stride),
                x.floor_div(stride),
                Expr::from(&iv[3]),
            ]),
            zero(dtype),
        )
    });

    let body = reduce_compute("C", &c, &[kh, kw, ci], zero(acc), |sp, rd| {
        acc_cast(
            p.load(vec![
                Expr::from(&sp[0]),
                Expr::from(&sp[1]) + Expr::from(&rd[0]),
                Expr::from(&sp[2]) + Expr::from(&rd[1]),
                Expr::from(&rd[2]),
            ]),
            dtype,
            acc,
        ) * acc_cast(
            w.load(vec![
                // Spatially flipped kernel.
                Expr::int(kh - 1) - Expr::from(&rd[0]),
                Expr::int(kw - 1) - Expr::from(&rd[1]),
                Expr::from(&rd[2]),
                Expr::from(&sp[3]),
            ]),
            dtype,
            acc,
        )
    });
    let mut f = PrimFunc::new("t2d", vec![a, w, c], Stmt::seq(vec![pad, body]));
    f.root_block_mut()
        .expect("root block")
        .alloc_buffers
        .push(p);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir_exec::{run_on_random_inputs, Interpreter, Tensor};

    #[test]
    fn all_ops_build_and_validate() {
        let dt = DataType::float32();
        for f in [
            gmm(16, 16, 16, dt, dt),
            batch_matmul(2, 8, 8, 8, dt, dt),
            c1d(1, 18, 4, 8, 3, 1, dt),
            c2d(1, 10, 10, 4, 8, 3, 3, 1, dt),
            c3d(1, 6, 6, 6, 2, 4, 3, 1, dt),
            dep(1, 10, 10, 4, 3, 3, 1, dt),
            dil(1, 12, 12, 4, 8, 3, 3, 2, dt),
            grp(1, 8, 8, 2, 2, 4, 3, 3, 1, dt),
            t2d(1, 4, 4, 2, 4, 3, 3, 2, dt),
        ] {
            tir_analysis::assert_valid(&f);
            run_on_random_inputs(&f, 1, 1).unwrap_or_else(|e| {
                panic!("{} failed to execute: {e}", f.name);
            });
        }
    }

    #[test]
    fn gmm_matches_reference() {
        let f = gmm(4, 5, 6, DataType::float32(), DataType::float32());
        let a = Tensor::random(DataType::float32(), &[4, 6], 1);
        let b = Tensor::random(DataType::float32(), &[6, 5], 2);
        let c = Tensor::zeros(DataType::float32(), &[4, 5]);
        let out = Interpreter::run(&f, vec![a.clone(), b.clone(), c]).expect("run");
        for i in 0..4 {
            for j in 0..5 {
                let mut acc = 0.0f64;
                for kk in 0..6 {
                    acc += a.get(&[i, kk]) * b.get(&[kk, j]);
                }
                let got = out[2].get(&[i, j]);
                assert!(
                    (got - acc as f32 as f64).abs() < 1e-4,
                    "C[{i},{j}] = {got}, want {acc}"
                );
            }
        }
    }

    #[test]
    fn c2d_matches_reference() {
        let (n, h, w_, ci, co, k) = (1, 6, 6, 2, 3, 3);
        let f = c2d(n, h, w_, ci, co, k, k, 1, DataType::float32());
        let a = Tensor::random(DataType::float32(), &[n, h, w_, ci], 3);
        let w = Tensor::random(DataType::float32(), &[k, k, ci, co], 4);
        let c = Tensor::zeros(DataType::float32(), &[n, 4, 4, co]);
        let out = Interpreter::run(&f, vec![a.clone(), w.clone(), c]).expect("run");
        for y in 0..4 {
            for x in 0..4 {
                for f_ in 0..co {
                    let mut acc = 0.0f64;
                    for rh in 0..k {
                        for rw in 0..k {
                            for rc in 0..ci {
                                acc += a.get(&[0, y + rh, x + rw, rc]) * w.get(&[rh, rw, rc, f_]);
                            }
                        }
                    }
                    let got = out[2].get(&[0, y, x, f_]);
                    assert!((got - acc).abs() < 1e-3, "mismatch at [{y},{x},{f_}]");
                }
            }
        }
    }

    #[test]
    fn t2d_matches_scatter_reference() {
        // Reference: scatter formulation of transposed convolution.
        let (n, h, w_, ci, co, k, s) = (1, 3, 3, 2, 2, 3, 2);
        let f = t2d(n, h, w_, ci, co, k, k, s, DataType::float32());
        let ho = (h - 1) * s + k;
        let a = Tensor::random(DataType::float32(), &[n, h, w_, ci], 5);
        let w = Tensor::random(DataType::float32(), &[k, k, ci, co], 6);
        let c = Tensor::zeros(DataType::float32(), &[n, ho, ho, co]);
        let out = Interpreter::run(&f, vec![a.clone(), w.clone(), c]).expect("run");
        // scatter: out[y*s + rh, x*s + rw, f] += in[y, x, c] * w[rh, rw, c, f]
        let mut expect = vec![0.0f64; (ho * ho * co) as usize];
        for y in 0..h {
            for x in 0..w_ {
                for cc in 0..ci {
                    for rh in 0..k {
                        for rw in 0..k {
                            for f_ in 0..co {
                                let oy = y * s + rh;
                                let ox = x * s + rw;
                                expect[((oy * ho + ox) * co + f_) as usize] +=
                                    a.get(&[0, y, x, cc]) * w.get(&[rh, rw, cc, f_]);
                            }
                        }
                    }
                }
            }
        }
        for oy in 0..ho {
            for ox in 0..ho {
                for f_ in 0..co {
                    let got = out[2].get(&[0, oy, ox, f_]);
                    let want = expect[((oy * ho + ox) * co + f_) as usize] as f32 as f64;
                    assert!(
                        (got - want).abs() < 1e-3,
                        "T2D mismatch at [{oy},{ox},{f_}]: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn dep_matches_reference() {
        let (h, c_, k) = (6, 3, 3);
        let f = dep(1, h, h, c_, k, k, 1, DataType::float32());
        let a = Tensor::random(DataType::float32(), &[1, h, h, c_], 7);
        let w = Tensor::random(DataType::float32(), &[k, k, c_], 8);
        let c = Tensor::zeros(DataType::float32(), &[1, 4, 4, c_]);
        let out = Interpreter::run(&f, vec![a.clone(), w.clone(), c]).expect("run");
        let mut acc = 0.0f64;
        for rh in 0..k {
            for rw in 0..k {
                acc += a.get(&[0, rh, rw, 1]) * w.get(&[rh, rw, 1]);
            }
        }
        assert!((out[2].get(&[0, 0, 0, 1]) - acc).abs() < 1e-3);
    }

    #[test]
    fn int8_gmm_accumulates_in_i32() {
        let f = gmm(8, 8, 8, DataType::int8(), DataType::int32());
        let outs = run_on_random_inputs(&f, 1, 11).expect("run");
        // All results must be exact integers.
        assert!(outs[2].data().iter().all(|v| v.fract() == 0.0));
    }
}
