//! # tir-workloads — the paper's operator workload suite
//!
//! Generators for every operator in the single-operator evaluation (§5.1):
//! 1-D/2-D/3-D convolution, depthwise, dilated, grouped, and transposed
//! convolution, plus (batched) matrix multiply — each as a TensorIR
//! [`tir::PrimFunc`] whose main compute block is named `"C"`.
//!
//! [`suite`] lists the concrete benchmark shapes used by the figures, and
//! [`fuse`] composes an anchor operator with elementwise epilogue chains
//! into one fused `PrimFunc` (the code-generation half of graph-level
//! operator fusion).

#![warn(missing_docs)]

pub mod fuse;
pub mod ops;
pub mod suite;

pub use fuse::{compose_unfused, fuse_epilogue, Epilogue, FUSED_SCOPE};
pub use ops::{batch_matmul, c1d, c2d, c3d, dep, dil, gmm, grp, t2d};
pub use suite::{bench_suite, BenchCase, OpKind};
