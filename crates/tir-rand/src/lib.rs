//! # tir-rand — deterministic pseudo-randomness for the auto-scheduler
//!
//! A minimal, dependency-free PRNG with the small API surface the search
//! actually uses: seeding from a `u64` and uniform sampling from integer
//! ranges. Everything in this repository that consumes randomness
//! (evolutionary search, sketch sampling, property tests) goes through this
//! crate, so tuning runs are bit-for-bit reproducible from a seed — a hard
//! requirement for the parallel candidate-evaluation pipeline, whose
//! per-worker generators are derived from `TuneOptions::seed`.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64; both are public-domain algorithms with well-studied
//! statistical quality, far exceeding what an evolutionary tuner needs.

#![warn(missing_docs)]

/// Re-exported generators, mirroring the layout callers import from.
pub mod rngs {
    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64.
    ///
    /// Identical seeds produce identical streams on every platform and in
    /// every thread — the property the deterministic parallel search in
    /// `tir-autoschedule` is built on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Next raw 64-bit output (xoshiro256**).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Integer types that can be sampled uniformly from a half-open range.
pub trait RangeSample: Copy {
    /// Uniform sample in `[lo, hi)`; `hi > lo` required.
    fn sample(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

/// Uniform `u64` in `[0, n)` by rejection sampling (no modulo bias).
fn uniform_u64(rng: &mut rngs::StdRng, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

impl RangeSample for usize {
    fn sample(rng: &mut rngs::StdRng, lo: usize, hi: usize) -> usize {
        lo + uniform_u64(rng, (hi - lo) as u64) as usize
    }
}

impl RangeSample for u64 {
    fn sample(rng: &mut rngs::StdRng, lo: u64, hi: u64) -> u64 {
        lo + uniform_u64(rng, hi - lo)
    }
}

impl RangeSample for i64 {
    fn sample(rng: &mut rngs::StdRng, lo: i64, hi: i64) -> i64 {
        lo.wrapping_add(uniform_u64(rng, hi.wrapping_sub(lo) as u64) as i64)
    }
}

impl RangeSample for u8 {
    fn sample(rng: &mut rngs::StdRng, lo: u8, hi: u8) -> u8 {
        lo + uniform_u64(rng, (hi - lo) as u64) as u8
    }
}

/// Sampling conveniences on a generator.
pub trait RngExt {
    /// Uniform sample from a non-empty half-open range.
    fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T;
    /// Uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64;
}

impl RngExt for rngs::StdRng {
    fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    fn random_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives an independent child seed from a parent seed and a stream index.
///
/// Used by the parallel search to give every population slot its own
/// generator: the result only depends on `(seed, indices)`, never on thread
/// scheduling, so any thread count replays the identical search.
pub fn derive_seed(seed: u64, indices: &[u64]) -> u64 {
    // SplitMix64-style mixing of the seed with each index.
    let mut x = seed ^ 0xA076_1D64_78BD_642F;
    for &i in indices {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derive_seed(42, &[1, 2]);
        assert_eq!(a, derive_seed(42, &[1, 2]));
        assert_ne!(a, derive_seed(42, &[2, 1]));
        assert_ne!(a, derive_seed(43, &[1, 2]));
    }
}
