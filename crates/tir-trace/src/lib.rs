//! # tir-trace — deterministic observability for the tuning pipeline
//!
//! The auto-tuner is a black box between `tune_with` and `TuneResult`
//! without this crate: the paper's evaluation (§5, Table 1) attributes
//! tuning time to phases — sketch generation, evolutionary search,
//! measurement, cost-model refits — and that attribution is the primary
//! lever for search-efficiency work. This crate provides the
//! dependency-free tracing substrate the rest of the workspace threads
//! through its hot layers:
//!
//! * [`Span`] — a named phase record carrying a **deterministic simulated
//!   duration** (`sim_s`, the same quantity charged to `tuning_cost_s`)
//!   and an item count, ordered by a total [`Key`];
//! * counters — named `u64` tallies (cache hits, quarantine drops, verify
//!   rejections, retries, VM instruction mix);
//! * histograms — named distributions bucketed by **binary exponent** of
//!   the observed value, so bucketing never depends on platform `libm`;
//! * [`Collector`] — the thread-safe sink: workers record into per-thread
//!   [`TraceBuffer`]s that are absorbed wholesale (one lock per buffer),
//!   and [`Collector::report`] merges everything deterministically by
//!   sorting spans on their keys — reports are **byte-identical at any
//!   thread count**;
//! * [`TraceReport`] / [`TraceReport::to_json`] — a hand-rolled JSON
//!   export (crates.io is unreachable offline, so no serde).
//!
//! # Determinism contract
//!
//! Everything recorded must be a pure function of the run configuration,
//! never of thread scheduling or wall clock:
//!
//! * span durations are simulated seconds (or zero for pure-CPU phases,
//!   which report item counts instead) — **never** wall-clock;
//! * every span carries a unique [`Key`]; the report sorts by it, so the
//!   arrival order of per-thread buffers cannot leak into the output;
//! * counters and histogram buckets are `u64` sums — associative and
//!   commutative, so merge order cannot change them;
//! * stream ids are allocated by the (single-threaded) coordinator via
//!   [`Collector::stream`], in deterministic order.
//!
//! # Zero overhead when disabled
//!
//! A [`Collector::disabled`] collector short-circuits every record call
//! on a single branch, and the callers gate on `Option<Arc<Collector>>`
//! being `None` — the disabled path does no allocation, no locking, and
//! no formatting. The `trace_overhead` bench gates this at <1%.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Total order of a span within a run.
///
/// `stream` identifies one logical sub-search (a sketch, a model layer),
/// allocated sequentially by the coordinator; `generation` and `slot`
/// locate the span in the search's iteration space; `seq` disambiguates
/// multiple events from one site (e.g. measurement attempts). The merge
/// sorts on the full tuple, so keys must be unique per span for the
/// report to be byte-identical regardless of buffer arrival order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Logical sub-search id from [`Collector::stream`].
    pub stream: u64,
    /// Generation (or layer index) within the stream.
    pub generation: u64,
    /// Slot within the generation (candidate rank, worker slot); the
    /// coordinator's own per-phase spans use [`Key::COORD`].
    pub slot: u64,
    /// Event sequence number within the slot (attempt counter, phase
    /// index).
    pub seq: u64,
}

impl Key {
    /// Slot value marking coordinator-emitted (not per-candidate) spans.
    pub const COORD: u64 = u64::MAX;

    /// A coordinator span key: `(stream, generation, COORD, seq)`.
    pub fn coord(stream: u64, generation: u64, seq: u64) -> Key {
        Key {
            stream,
            generation,
            slot: Key::COORD,
            seq,
        }
    }
}

/// One recorded span: a named phase with a deterministic simulated
/// duration and an item count.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Phase name, dot-separated by convention (`search.measure`,
    /// `measure.fault.timeout`, `graph.layer.conv1`).
    pub name: String,
    /// Total-order key; unique per span.
    pub key: Key,
    /// Simulated seconds attributed to this span (never wall-clock).
    pub sim_s: f64,
    /// Items processed (candidates, samples, attempts).
    pub items: u64,
}

/// Fixed-structure histogram: counts per binary exponent of the observed
/// value. Bucketing reads the IEEE-754 exponent bits directly, so it is
/// bit-deterministic across platforms (no `libm` involved).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Count per bucket, keyed by unbiased binary exponent: an
    /// observation `v` lands in bucket `e` with `2^e <= v < 2^(e+1)`.
    /// Zero and subnormal observations land in bucket `i32::MIN`;
    /// non-finite observations are dropped.
    pub buckets: BTreeMap<i32, u64>,
    /// Total observations (including dropped non-finite ones).
    pub count: u64,
}

/// Bucket index of one observation: its unbiased binary exponent.
fn bucket_of(value: f64) -> Option<i32> {
    if !value.is_finite() {
        return None;
    }
    let v = value.abs();
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Zero or subnormal: one catch-all underflow bucket.
        return Some(i32::MIN);
    }
    Some(biased - 1023)
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        if let Some(b) = bucket_of(value) {
            *self.buckets.entry(b).or_default() += 1;
        }
    }

    /// Folds another histogram into this one (bucketwise sum).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        for (b, n) in &other.buckets {
            *self.buckets.entry(*b).or_default() += n;
        }
    }
}

/// Everything a thread records before flushing: spans, counter deltas,
/// and histogram observations, buffered without locks.
#[derive(Debug, Default)]
struct Batch {
    spans: Vec<Span>,
    counts: Vec<(String, u64)>,
    observations: Vec<(String, f64)>,
}

impl Batch {
    fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counts.is_empty() && self.observations.is_empty()
    }
}

/// Merged collector state behind the lock.
#[derive(Debug, Default)]
struct Inner {
    spans: Vec<Span>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    streams: Vec<(u64, String)>,
}

impl Inner {
    fn absorb(&mut self, batch: Batch) {
        self.spans.extend(batch.spans);
        for (name, n) in batch.counts {
            *self.counters.entry(name).or_default() += n;
        }
        for (name, v) in batch.observations {
            self.histograms.entry(name).or_default().observe(v);
        }
    }
}

/// The thread-safe trace sink.
///
/// Single-threaded sites record directly ([`Collector::span`],
/// [`Collector::count`], [`Collector::observe`]); fan-out workers build a
/// local [`TraceBuffer`] and flush it once, paying one lock per buffer
/// instead of one per event. [`Collector::report`] merges and sorts
/// everything into a deterministic [`TraceReport`].
#[derive(Default)]
pub struct Collector {
    enabled: bool,
    next_stream: AtomicU64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// An enabled collector.
    pub fn new() -> Collector {
        Collector {
            enabled: true,
            next_stream: AtomicU64::new(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A no-op collector: every record call returns on one branch, and
    /// [`Collector::report`] is empty. Exists so the overhead bench can
    /// measure the disabled path against the no-collector baseline.
    pub fn disabled() -> Collector {
        Collector {
            enabled: false,
            next_stream: AtomicU64::new(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Allocates the next stream id and names it in the report's stream
    /// table. Must be called from deterministic (coordinator) code: ids
    /// are handed out in call order.
    pub fn stream(&self, label: &str) -> u64 {
        if !self.enabled {
            return 0;
        }
        let id = self.next_stream.fetch_add(1, Ordering::Relaxed);
        self.inner
            .lock()
            .expect("trace lock")
            .streams
            .push((id, label.to_string()));
        id
    }

    /// Records one span.
    pub fn span(&self, name: &str, key: Key, sim_s: f64, items: u64) {
        if !self.enabled {
            return;
        }
        self.inner.lock().expect("trace lock").spans.push(Span {
            name: name.to_string(),
            key,
            sim_s,
            items,
        });
    }

    /// Adds `n` to the named counter.
    pub fn count(&self, name: &str, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        *self
            .inner
            .lock()
            .expect("trace lock")
            .counters
            .entry(name.to_string())
            .or_default() += n;
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .expect("trace lock")
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// A lock-free per-thread buffer; flushed into the collector when
    /// dropped (or explicitly via [`TraceBuffer::flush`]).
    pub fn buffer(&self) -> TraceBuffer<'_> {
        TraceBuffer {
            collector: self,
            batch: Batch::default(),
        }
    }

    /// Merges everything recorded so far into a deterministic report:
    /// spans sorted by `(key, name)`, counters and histograms by name,
    /// phases aggregated from spans in sorted order.
    pub fn report(&self) -> TraceReport {
        let inner = self.inner.lock().expect("trace lock");
        let mut spans = inner.spans.clone();
        spans.sort_by(|a, b| a.key.cmp(&b.key).then_with(|| a.name.cmp(&b.name)));
        // Aggregate phases in sorted-span order so the f64 sums are a
        // pure function of the recorded set, not of arrival order.
        let mut phases: BTreeMap<String, Phase> = BTreeMap::new();
        for s in &spans {
            let p = phases.entry(s.name.clone()).or_insert_with(|| Phase {
                name: s.name.clone(),
                sim_s: 0.0,
                items: 0,
                spans: 0,
            });
            p.sim_s += s.sim_s;
            p.items += s.items;
            p.spans += 1;
        }
        let mut streams = inner.streams.clone();
        streams.sort();
        TraceReport {
            spans,
            phases: phases.into_values().collect(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            streams,
        }
    }
}

/// A per-thread (or per-candidate) event buffer: records without taking
/// any lock, then flushes wholesale into its [`Collector`].
#[derive(Debug)]
pub struct TraceBuffer<'c> {
    collector: &'c Collector,
    batch: Batch,
}

impl TraceBuffer<'_> {
    /// Buffers one span.
    pub fn span(&mut self, name: &str, key: Key, sim_s: f64, items: u64) {
        if !self.collector.enabled {
            return;
        }
        self.batch.spans.push(Span {
            name: name.to_string(),
            key,
            sim_s,
            items,
        });
    }

    /// Buffers a counter increment.
    pub fn count(&mut self, name: &str, n: u64) {
        if !self.collector.enabled || n == 0 {
            return;
        }
        self.batch.counts.push((name.to_string(), n));
    }

    /// Buffers a histogram observation.
    pub fn observe(&mut self, name: &str, value: f64) {
        if !self.collector.enabled {
            return;
        }
        self.batch.observations.push((name.to_string(), value));
    }

    /// Flushes the buffered events into the collector now (one lock).
    pub fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.batch);
        self.collector
            .inner
            .lock()
            .expect("trace lock")
            .absorb(batch);
    }
}

impl Drop for TraceBuffer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Aggregated view of all spans sharing a name.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Span name.
    pub name: String,
    /// Total simulated seconds across spans, summed in key order.
    pub sim_s: f64,
    /// Total items.
    pub items: u64,
    /// Number of spans aggregated.
    pub spans: u64,
}

/// A merged, deterministic snapshot of a [`Collector`].
///
/// Two runs that record the same events — regardless of thread count or
/// buffer flush order — produce byte-identical [`TraceReport::to_json`]
/// output.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// All spans, sorted by `(key, name)`.
    pub spans: Vec<Span>,
    /// Per-name aggregation of spans, sorted by name.
    pub phases: Vec<Phase>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Stream table: `(id, label)` sorted by id.
    pub streams: Vec<(u64, String)>,
}

impl TraceReport {
    /// Total simulated seconds of all phases whose name starts with
    /// `prefix`, summed in phase (name) order.
    pub fn phase_sim_s(&self, prefix: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name.starts_with(prefix))
            .map(|p| p.sim_s)
            .sum()
    }

    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The aggregated phase of `name`, if any span carried it.
    pub fn phase(&self, name: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Renders the report as JSON (hand-rolled: the build is offline, so
    /// no serde). Output is deterministic: every collection is sorted and
    /// floats use Rust's shortest-roundtrip formatting.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"version\": 1,\n  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json_string(&mut out, &p.name);
            out.push_str(&format!(
                ", \"sim_s\": {}, \"items\": {}, \"spans\": {}}}",
                json_f64(p.sim_s),
                p.items,
                p.spans
            ));
        }
        out.push_str("\n  ],\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_string(&mut out, name);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("\n  },\n  \"histograms\": [");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json_string(&mut out, name);
            out.push_str(&format!(", \"count\": {}, \"buckets\": [", h.count));
            for (j, (e, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                if *e == i32::MIN {
                    out.push_str(&format!("{{\"exp2\": null, \"count\": {n}}}"));
                } else {
                    out.push_str(&format!("{{\"exp2\": {e}, \"count\": {n}}}"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"streams\": [");
        for (i, (id, label)) in self.streams.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {{\"id\": {id}, \"label\": "));
            json_string(&mut out, label);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json_string(&mut out, &s.name);
            out.push_str(&format!(
                ", \"stream\": {}, \"gen\": {}, \"slot\": {}, \"seq\": {}, \"sim_s\": {}, \"items\": {}}}",
                s.key.stream,
                s.key.generation,
                s.key.slot,
                s.key.seq,
                json_f64(s.sim_s),
                s.items
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Formats an `f64` as a JSON number. Rust's `{}` formatting is the
/// shortest round-trip representation — deterministic for identical bits.
/// Non-finite values (not representable in JSON) become `null`.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    format!("{v}")
}

/// Appends a JSON string literal (with escaping) to `out`.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal JSON well-formedness check (syntax only, no schema): used by
/// the `tune_profile` CI gate to validate emitted reports without a JSON
/// dependency.
pub fn is_well_formed_json(text: &str) -> bool {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if !p.value() {
        return false;
    }
    p.skip_ws();
    p.pos == p.bytes.len()
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, s: &str) -> bool {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn object(&mut self) -> bool {
        if !self.eat(b'{') {
            return false;
        }
        self.skip_ws();
        if self.eat(b'}') {
            return true;
        }
        loop {
            self.skip_ws();
            if !self.string() {
                return false;
            }
            self.skip_ws();
            if !self.eat(b':') || !self.value() {
                return false;
            }
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return self.eat(b'}');
        }
    }

    fn array(&mut self) -> bool {
        if !self.eat(b'[') {
            return false;
        }
        self.skip_ws();
        if self.eat(b']') {
            return true;
        }
        loop {
            if !self.value() {
                return false;
            }
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return self.eat(b']');
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat(b'"') {
            return false;
        }
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return true,
                b'\\' => {
                    // Accept any escape head; \uXXXX needs 4 hex digits.
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.peek(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return false;
                                }
                                self.pos += 1;
                            }
                        }
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        _ => return false,
                    }
                }
                _ => {}
            }
        }
        false
    }

    fn number(&mut self) -> bool {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        self.pos > start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::disabled();
        c.span("x", Key::default(), 1.0, 1);
        c.count("n", 5);
        c.observe("h", 0.5);
        assert_eq!(c.stream("s"), 0);
        let r = c.report();
        assert!(r.spans.is_empty() && r.counters.is_empty() && r.histograms.is_empty());
    }

    #[test]
    fn report_is_independent_of_arrival_order() {
        let mk = |order: &[usize]| {
            let c = Collector::new();
            let events = [
                ("b", Key::coord(1, 0, 1), 2.0, 3u64),
                ("a", Key::coord(1, 0, 0), 1.0, 1),
                ("a", Key::coord(1, 1, 0), 4.0, 2),
            ];
            for &i in order {
                let (n, k, s, it) = events[i];
                c.span(n, k, s, it);
            }
            c.count("hits", 2);
            c.count("hits", 3);
            c.report().to_json()
        };
        assert_eq!(mk(&[0, 1, 2]), mk(&[2, 1, 0]));
        assert_eq!(mk(&[1, 2, 0]), mk(&[0, 2, 1]));
    }

    #[test]
    fn buffers_merge_like_direct_records() {
        let direct = Collector::new();
        direct.span("p", Key::coord(1, 0, 0), 1.5, 2);
        direct.count("c", 7);
        direct.observe("h", 0.25);

        let buffered = Collector::new();
        {
            let mut b = buffered.buffer();
            b.span("p", Key::coord(1, 0, 0), 1.5, 2);
            b.count("c", 7);
            b.observe("h", 0.25);
        } // drop flushes
        assert_eq!(direct.report().to_json(), buffered.report().to_json());
    }

    #[test]
    fn concurrent_buffers_are_deterministic() {
        let run = |threads: usize| {
            let c = Collector::new();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let c = &c;
                    s.spawn(move || {
                        let mut b = c.buffer();
                        for g in 0..8u64 {
                            b.span("w", Key::coord(1, g, t as u64), 0.125 * g as f64, 1);
                            b.count("n", 1);
                            b.observe("v", g as f64);
                        }
                    });
                }
            });
            c.report().to_json()
        };
        // Same event set from 4 threads, twice: identical bytes (merge
        // sorts on keys). Note each thread emits distinct seqs.
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn histogram_buckets_by_binary_exponent() {
        let mut h = Histogram::default();
        h.observe(1.0); // exp 0
        h.observe(1.5); // exp 0
        h.observe(2.0); // exp 1
        h.observe(0.25); // exp -2
        h.observe(0.0); // underflow bucket
        h.observe(f64::NAN); // dropped, still counted
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets[&0], 2);
        assert_eq!(h.buckets[&1], 1);
        assert_eq!(h.buckets[&-2], 1);
        assert_eq!(h.buckets[&i32::MIN], 1);
    }

    #[test]
    fn phase_aggregation_and_helpers() {
        let c = Collector::new();
        let s = c.stream("sketch");
        c.span("search.measure", Key::coord(s, 0, 4), 1.0, 8);
        c.span("search.measure", Key::coord(s, 1, 4), 2.0, 8);
        c.span("search.evolve", Key::coord(s, 0, 0), 0.0, 32);
        let r = c.report();
        let m = r.phase("search.measure").expect("phase");
        assert_eq!(m.sim_s, 3.0);
        assert_eq!(m.items, 16);
        assert_eq!(m.spans, 2);
        assert_eq!(r.phase_sim_s("search."), 3.0);
        assert_eq!(r.streams, vec![(1, "sketch".to_string())]);
    }

    #[test]
    fn json_is_well_formed() {
        let c = Collector::new();
        let s = c.stream("a \"quoted\"\nlabel");
        c.span("p.x", Key::coord(s, 0, 0), 0.125, 3);
        c.count("c", 9);
        c.observe("h", 3.5);
        c.observe("h", 0.0);
        let json = c.report().to_json();
        assert!(is_well_formed_json(&json), "{json}");
        // Empty report too.
        assert!(is_well_formed_json(&Collector::new().report().to_json()));
    }

    #[test]
    fn json_checker_rejects_garbage() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2,]",
            "{\"a\" 1}",
            "nulll",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{\"bad\\escape\": 1}",
        ] {
            assert!(!is_well_formed_json(bad), "accepted: {bad:?}");
        }
        for good in [
            "null",
            "-1.5e-3",
            "[]",
            "{}",
            "{\"a\": [1, {\"b\": \"\\u00e9\"}], \"c\": true}",
        ] {
            assert!(is_well_formed_json(good), "rejected: {good:?}");
        }
    }

    #[test]
    fn span_order_ties_break_on_name() {
        let c = Collector::new();
        c.span("zz", Key::coord(1, 0, 0), 1.0, 1);
        c.span("aa", Key::coord(1, 0, 0), 2.0, 1);
        let r = c.report();
        assert_eq!(r.spans[0].name, "aa");
        assert_eq!(r.spans[1].name, "zz");
    }
}
