//! Reduction-pattern detection on block bodies.
//!
//! Recognizes update statements of the form
//! `out[idx] = combine(out[idx], term)` for commutative combiners, which is
//! what `decompose_reduction`, tensorization matching (§4.2) and
//! cross-thread reduction lowering all need.

use tir::structural::expr_structural_eq;
use tir::{BinOp, Block, Buffer, DataType, Expr, Stmt};

/// A commutative reduction combiner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Sum reduction (`+`), identity 0.
    Add,
    /// Max reduction, identity -inf / INT_MIN.
    Max,
    /// Min reduction, identity +inf / INT_MAX.
    Min,
}

impl ReduceOp {
    /// The identity element of the combiner for a given type.
    pub fn identity(self, dtype: DataType) -> Expr {
        match (self, dtype.is_float()) {
            (ReduceOp::Add, true) => Expr::Float(0.0, dtype),
            (ReduceOp::Add, false) => Expr::Int(0, dtype),
            (ReduceOp::Max, true) => Expr::Float(f64::NEG_INFINITY, dtype),
            (ReduceOp::Max, false) => Expr::Int(i64::MIN / 2, dtype),
            (ReduceOp::Min, true) => Expr::Float(f64::INFINITY, dtype),
            (ReduceOp::Min, false) => Expr::Int(i64::MAX / 2, dtype),
        }
    }

    /// Applies the combiner to two expressions.
    pub fn combine(self, a: Expr, b: Expr) -> Expr {
        match self {
            ReduceOp::Add => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// A detected reduction update.
#[derive(Clone, Debug)]
pub struct ReductionInfo {
    /// The output buffer being reduced into.
    pub buffer: Buffer,
    /// Output indices (in block iterator variables).
    pub indices: Vec<Expr>,
    /// The combiner.
    pub op: ReduceOp,
    /// The per-iteration term combined into the output.
    pub term: Expr,
}

/// Detects the reduction pattern in a single store statement.
pub fn detect_reduction_store(stmt: &Stmt) -> Option<ReductionInfo> {
    let Stmt::Store {
        buffer,
        indices,
        value,
    } = stmt
    else {
        return None;
    };
    let self_load = |e: &Expr| -> bool {
        matches!(e, Expr::Load { buffer: b, indices: i } if b == buffer
            && i.len() == indices.len()
            && i.iter().zip(indices).all(|(x, y)| expr_structural_eq(x, y)))
    };
    if let Expr::Bin(op, a, b) = value {
        let rop = match op {
            BinOp::Add => ReduceOp::Add,
            BinOp::Max => ReduceOp::Max,
            BinOp::Min => ReduceOp::Min,
            _ => return None,
        };
        let term = if self_load(a) {
            (**b).clone()
        } else if self_load(b) {
            (**a).clone()
        } else {
            return None;
        };
        return Some(ReductionInfo {
            buffer: buffer.clone(),
            indices: indices.clone(),
            op: rop,
            term,
        });
    }
    None
}

/// Detects the reduction pattern of a block: the block must have at least
/// one reduce iterator and a body that is a single reduction store
/// (possibly wrapped in serial loops, which become part of the term's
/// context and are not descended into here).
pub fn detect_block_reduction(block: &Block) -> Option<ReductionInfo> {
    if !block.is_reduction() {
        return None;
    }
    detect_reduction_store(&block.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::builder::matmul_func;
    use tir::visit::find_block;
    use tir::Var;

    #[test]
    fn detects_matmul_sum() {
        let f = matmul_func("mm", 4, 4, 4, DataType::float32());
        let br = find_block(&f.body, "C").expect("block");
        let info = detect_block_reduction(&br.block).expect("reduction");
        assert_eq!(info.op, ReduceOp::Add);
        assert_eq!(info.buffer.name(), "C");
        assert!(matches!(info.term, Expr::Bin(BinOp::Mul, ..)));
    }

    #[test]
    fn detects_max_reduction() {
        let out = Buffer::new("O", DataType::float32(), vec![4]);
        let input = Buffer::new("I", DataType::float32(), vec![4, 8]);
        let (v, k) = (Var::int("v"), Var::int("k"));
        let stmt = Stmt::store(
            out.clone(),
            vec![Expr::from(&v)],
            out.load(vec![Expr::from(&v)])
                .max(input.load(vec![Expr::from(&v), Expr::from(&k)])),
        );
        let info = detect_reduction_store(&stmt).expect("max reduction");
        assert_eq!(info.op, ReduceOp::Max);
    }

    #[test]
    fn rejects_non_reduction() {
        let out = Buffer::new("O", DataType::float32(), vec![4]);
        let v = Var::int("v");
        let stmt = Stmt::store(out.clone(), vec![Expr::from(&v)], Expr::f32(1.0));
        assert!(detect_reduction_store(&stmt).is_none());
        // Store reading a *different* element of the same buffer is not a
        // reduction.
        let stmt = Stmt::store(
            out.clone(),
            vec![Expr::from(&v)],
            out.load(vec![Expr::from(&v) + 1]) + Expr::f32(1.0),
        );
        assert!(detect_reduction_store(&stmt).is_none());
    }

    #[test]
    fn identities() {
        assert_eq!(
            ReduceOp::Add.identity(DataType::float32()),
            Expr::Float(0.0, DataType::float32())
        );
        assert!(matches!(
            ReduceOp::Max.identity(DataType::float32()),
            Expr::Float(v, _) if v == f64::NEG_INFINITY
        ));
        assert_eq!(
            ReduceOp::Min.identity(DataType::int32()),
            Expr::Int(i64::MAX / 2, DataType::int32())
        );
    }
}
