//! Producer-consumer dependency analysis from block signatures.
//!
//! As in the paper (§3.1), dependencies are tracked *through buffers*, not
//! between statements: block P produces for block C when P writes a buffer
//! that C reads. The indirection is what makes layout transformations and
//! re-computation legal schedule moves.

use std::collections::{HashMap, HashSet};

use tir::visit::for_each_block_realize;
use tir::{Buffer, Stmt};

/// The producer/consumer structure of the blocks under one scope.
#[derive(Debug, Default)]
pub struct BlockScope {
    /// Block names in program order (outer-first walk).
    pub order: Vec<String>,
    /// For each buffer, the names of blocks writing it.
    pub writers: HashMap<Buffer, Vec<String>>,
    /// For each buffer, the names of blocks reading it.
    pub readers: HashMap<Buffer, Vec<String>>,
    /// Edges `producer -> consumers`.
    pub consumers: HashMap<String, Vec<String>>,
    /// Edges `consumer -> producers`.
    pub producers: HashMap<String, Vec<String>>,
}

impl BlockScope {
    /// Builds the dependency structure of all blocks inside `stmt`
    /// (including nested ones), using only block signatures.
    pub fn build(stmt: &Stmt) -> BlockScope {
        let mut scope = BlockScope::default();
        for_each_block_realize(stmt, &mut |br| {
            let name = br.block.name.clone();
            scope.order.push(name.clone());
            for r in &br.block.reads {
                scope
                    .readers
                    .entry(r.buffer.clone())
                    .or_default()
                    .push(name.clone());
            }
            for w in &br.block.writes {
                scope
                    .writers
                    .entry(w.buffer.clone())
                    .or_default()
                    .push(name.clone());
            }
        });
        for (buffer, writers) in &scope.writers {
            if let Some(readers) = scope.readers.get(buffer) {
                for w in writers {
                    for r in readers {
                        if w == r {
                            continue;
                        }
                        push_unique(scope.consumers.entry(w.clone()).or_default(), r);
                        push_unique(scope.producers.entry(r.clone()).or_default(), w);
                    }
                }
            }
        }
        scope
    }

    /// Names of blocks consuming the output of `block`.
    pub fn consumers_of(&self, block: &str) -> &[String] {
        self.consumers.get(block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Names of blocks producing inputs of `block`.
    pub fn producers_of(&self, block: &str) -> &[String] {
        self.producers.get(block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `block` is the sole writer of each buffer it writes.
    pub fn is_sole_writer(&self, block: &str) -> bool {
        self.writers
            .values()
            .all(|ws| !ws.contains(&block.to_string()) || ws.len() == 1)
    }

    /// Buffers written by exactly one block and read only by blocks in the
    /// scope (candidates for inlining / scope-local staging).
    pub fn single_producer_buffers(&self) -> Vec<Buffer> {
        self.writers
            .iter()
            .filter(|(_, ws)| ws.len() == 1)
            .map(|(b, _)| b.clone())
            .collect()
    }

    /// Topological order check: every producer appears before each of its
    /// consumers in program order. Returns the first violation.
    pub fn check_program_order(&self) -> Result<(), (String, String)> {
        let pos: HashMap<&String, usize> =
            self.order.iter().enumerate().map(|(i, n)| (n, i)).collect();
        for (p, cs) in &self.consumers {
            for c in cs {
                if let (Some(&pi), Some(&ci)) = (pos.get(p), pos.get(c)) {
                    if pi > ci {
                        return Err((p.clone(), c.clone()));
                    }
                }
            }
        }
        Ok(())
    }
}

fn push_unique(v: &mut Vec<String>, item: &str) {
    if !v.iter().any(|x| x == item) {
        v.push(item.to_string());
    }
}

/// Returns the set of buffer names that are intermediates: written and read
/// inside the statement (excluding function parameters the caller filters).
pub fn intermediate_buffers(stmt: &Stmt) -> Vec<Buffer> {
    let scope = BlockScope::build(stmt);
    let read_set: HashSet<&Buffer> = scope.readers.keys().collect();
    scope
        .writers
        .keys()
        .filter(|b| read_set.contains(b))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::builder::compute;
    use tir::{Buffer, DataType, Expr};

    /// B = A + 1; C = exp(B) — the paper's Fig. 4 pipeline.
    fn fused_add_exp() -> (Buffer, Buffer, Buffer, Stmt) {
        let a = Buffer::new("A", DataType::float32(), vec![64, 64]);
        let b = Buffer::new("B", DataType::float32(), vec![64, 64]);
        let c = Buffer::new("C", DataType::float32(), vec![64, 64]);
        let s1 = compute("B", &b, |iv| {
            a.load(iv.iter().map(Expr::from).collect()) + Expr::f32(1.0)
        });
        let s2 = compute("C", &c, |iv| Expr::Call {
            name: "exp".into(),
            args: vec![b.load(iv.iter().map(Expr::from).collect())],
            dtype: DataType::float32(),
        });
        (a, b, c, Stmt::seq(vec![s1, s2]))
    }

    #[test]
    fn builds_producer_consumer_edges() {
        let (_, b, _, stmt) = fused_add_exp();
        let scope = BlockScope::build(&stmt);
        assert_eq!(scope.consumers_of("B"), &["C".to_string()]);
        assert_eq!(scope.producers_of("C"), &["B".to_string()]);
        assert!(scope.producers_of("B").is_empty());
        assert_eq!(scope.writers[&b], vec!["B".to_string()]);
    }

    #[test]
    fn program_order_is_valid() {
        let (.., stmt) = fused_add_exp();
        let scope = BlockScope::build(&stmt);
        assert_eq!(scope.order, vec!["B".to_string(), "C".to_string()]);
        scope.check_program_order().expect("order ok");
    }

    #[test]
    fn reversed_order_detected() {
        let (_, _, _, stmt) = fused_add_exp();
        let reversed = match stmt {
            Stmt::Seq(mut v) => {
                v.reverse();
                Stmt::Seq(v)
            }
            other => other,
        };
        let scope = BlockScope::build(&reversed);
        let (p, c) = scope.check_program_order().unwrap_err();
        assert_eq!((p.as_str(), c.as_str()), ("B", "C"));
    }

    #[test]
    fn intermediates_found() {
        let (_, b, _, stmt) = fused_add_exp();
        let mids = intermediate_buffers(&stmt);
        assert_eq!(mids, vec![b]);
    }
}
