//! Buffer access-region analysis.
//!
//! Computes, for a block (or any statement), the rectangular regions of each
//! buffer it touches — either as concrete integer boxes (bounds over all
//! enclosing loops) or as symbolic [`RangeExpr`]s in terms of a chosen set
//! of free variables (used by `cache_read`/`compute_at` to materialize
//! exactly the needed sub-region).

use std::collections::HashMap;

use tir::simplify::simplify_expr;
use tir::visit::{ExprVisitor, StmtVisitor};
use tir::{Buffer, BufferRegion, Expr, RangeExpr, Stmt, Var};
use tir_arith::bound::{bound_of, IntBound};

/// A concrete rectangular region: one interval per dimension.
pub type Box_ = Vec<IntBound>;

/// Whether box `a` covers box `b` in every dimension.
pub fn box_covers(a: &[IntBound], b: &[IntBound]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.contains(*y))
}

/// Convex union of two boxes.
///
/// # Panics
///
/// Panics if the ranks differ.
pub fn box_union(a: &[IntBound], b: &[IntBound]) -> Box_ {
    assert_eq!(a.len(), b.len(), "rank mismatch in box union");
    a.iter().zip(b).map(|(x, y)| x.union(*y)).collect()
}

/// Evaluates a [`BufferRegion`]'s expressions to a concrete box under the
/// given variable bounds.
pub fn region_to_box(region: &BufferRegion, vars: &HashMap<Var, IntBound>) -> Box_ {
    region
        .region
        .iter()
        .map(|r| {
            let min = bound_of(&r.min, vars);
            let extent = bound_of(&r.extent, vars);
            IntBound::new(min.min, min.max + extent.max - 1)
        })
        .collect()
}

/// All buffer accesses of a statement body, with concrete boxes computed
/// under `vars` bounds. Inner serial loops encountered during the walk add
/// their iteration ranges to the bound environment.
#[derive(Default, Debug)]
pub struct AccessSet {
    /// Per-buffer read boxes (convex union of all reads).
    pub reads: Vec<(Buffer, Box_)>,
    /// Per-buffer write boxes.
    pub writes: Vec<(Buffer, Box_)>,
}

impl AccessSet {
    fn add(list: &mut Vec<(Buffer, Box_)>, buffer: &Buffer, b: Box_) {
        if let Some((_, existing)) = list.iter_mut().find(|(buf, _)| buf == buffer) {
            *existing = box_union(existing, &b);
        } else {
            list.push((buffer.clone(), b));
        }
    }

    /// The read box for a buffer, if any.
    pub fn read_box(&self, buffer: &Buffer) -> Option<&Box_> {
        self.reads
            .iter()
            .find(|(b, _)| b == buffer)
            .map(|(_, bx)| bx)
    }

    /// The write box for a buffer, if any.
    pub fn write_box(&self, buffer: &Buffer) -> Option<&Box_> {
        self.writes
            .iter()
            .find(|(b, _)| b == buffer)
            .map(|(_, bx)| bx)
    }
}

struct AccessCollector {
    vars: HashMap<Var, IntBound>,
    set: AccessSet,
}

impl AccessCollector {
    fn index_box(&self, indices: &[Expr]) -> Box_ {
        indices.iter().map(|i| bound_of(i, &self.vars)).collect()
    }
}

impl ExprVisitor for AccessCollector {
    fn visit_expr(&mut self, e: &Expr) {
        if let Expr::Load { buffer, indices } = e {
            let b = self.index_box(indices);
            AccessSet::add(&mut self.set.reads, buffer, b);
        }
        self.walk_expr(e);
    }
}

impl StmtVisitor for AccessCollector {
    fn visit_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Store {
                buffer,
                indices,
                value,
            } => {
                let b = self.index_box(indices);
                AccessSet::add(&mut self.set.writes, buffer, b);
                for i in indices {
                    self.visit_expr(i);
                }
                self.visit_expr(value);
            }
            Stmt::For(f) => {
                let extent = bound_of(&f.extent, &self.vars);
                let prev = self
                    .vars
                    .insert(f.var.clone(), IntBound::new(0, (extent.max - 1).max(0)));
                self.visit_stmt(&f.body);
                match prev {
                    Some(p) => {
                        self.vars.insert(f.var.clone(), p);
                    }
                    None => {
                        self.vars.remove(&f.var);
                    }
                }
            }
            Stmt::BlockRealize(br) => {
                // Bind block iterator variables to their binding values'
                // bounds and continue into the block body.
                for v in &br.iter_values {
                    self.visit_expr(v);
                }
                let mut prev = Vec::new();
                for (iv, value) in br.block.iter_vars.iter().zip(&br.iter_values) {
                    let b = bound_of(value, &self.vars);
                    prev.push((iv.var.clone(), self.vars.insert(iv.var.clone(), b)));
                }
                if let Some(init) = &br.block.init {
                    self.visit_stmt(init);
                }
                self.visit_stmt(&br.block.body);
                for (var, p) in prev {
                    match p {
                        Some(b) => {
                            self.vars.insert(var, b);
                        }
                        None => {
                            self.vars.remove(&var);
                        }
                    }
                }
            }
            other => self.walk_stmt(other),
        }
    }
}

/// Computes concrete access boxes for every buffer touched by `stmt`,
/// given bounds for its free variables.
pub fn collect_accesses(stmt: &Stmt, vars: &HashMap<Var, IntBound>) -> AccessSet {
    let mut c = AccessCollector {
        vars: vars.clone(),
        set: AccessSet::default(),
    };
    c.visit_stmt(stmt);
    c.set
}

/// Computes a *symbolic* access region of `stmt` for one buffer, expressed
/// in terms of the free variables of `stmt` (typically block iterators):
/// inner loop variables are eliminated by taking `min_expr = index[inner=0]`
/// and a constant extent from interval analysis.
///
/// Assumes indices are affine with non-negative coefficients on inner loop
/// variables — true for every program this compiler produces. Returns
/// `None` if the buffer is not accessed.
pub fn relaxed_region(
    stmt: &Stmt,
    buffer: &Buffer,
    include_reads: bool,
    include_writes: bool,
) -> Option<BufferRegion> {
    /// Collected access sites: (indices, enclosing loop vars + extents).
    type Sites = Vec<(Vec<Expr>, Vec<(Var, i64)>)>;
    struct Collector<'a> {
        buffer: &'a Buffer,
        include_reads: bool,
        include_writes: bool,
        inner: Vec<(Var, i64)>,
        found: Sites,
    }
    impl ExprVisitor for Collector<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if self.include_reads {
                if let Expr::Load { buffer, indices } = e {
                    if buffer == self.buffer {
                        self.found.push((indices.clone(), self.inner.clone()));
                    }
                }
            }
            self.walk_expr(e);
        }
    }
    impl StmtVisitor for Collector<'_> {
        fn visit_stmt(&mut self, s: &Stmt) {
            match s {
                Stmt::Store {
                    buffer,
                    indices,
                    value,
                } => {
                    if self.include_writes && buffer == self.buffer {
                        self.found.push((indices.clone(), self.inner.clone()));
                    }
                    for i in indices {
                        self.visit_expr(i);
                    }
                    self.visit_expr(value);
                }
                Stmt::For(f) => {
                    let extent = f.extent.as_int().unwrap_or(1);
                    self.inner.push((f.var.clone(), extent));
                    self.visit_stmt(&f.body);
                    self.inner.pop();
                }
                other => self.walk_stmt(other),
            }
        }
    }
    let mut c = Collector {
        buffer,
        include_reads,
        include_writes,
        inner: Vec::new(),
        found: Vec::new(),
    };
    c.visit_stmt(stmt);
    if c.found.is_empty() {
        return None;
    }

    let ndim = buffer.ndim();
    let mut mins: Vec<Option<Expr>> = vec![None; ndim];
    let mut extents: Vec<i64> = vec![0; ndim];
    for (indices, inner) in &c.found {
        let zero_map: HashMap<Var, Expr> = inner
            .iter()
            .map(|(v, _)| (v.clone(), Expr::int(0)))
            .collect();
        let inner_bounds: HashMap<Var, IntBound> = inner
            .iter()
            .map(|(v, e)| (v.clone(), IntBound::new(0, (*e - 1).max(0))))
            .collect();
        for (d, idx) in indices.iter().enumerate() {
            let min_expr = simplify_expr(&tir::visit::subst_expr(idx, &zero_map));
            // Width of the access along this dim, over inner vars only:
            // bound of (idx - min) with outer vars treated as exact symbols.
            // We get it by bounding idx with inner vars in range and all
            // other vars pinned to 0, relative to idx with everything at 0.
            let mut env = inner_bounds.clone();
            for v in tir::visit::collect_vars_expr(idx) {
                env.entry(v).or_insert(IntBound::single(0));
            }
            let full = bound_of(idx, &env);
            let at_zero = {
                let env0: HashMap<Var, IntBound> = env
                    .keys()
                    .map(|v| (v.clone(), IntBound::single(0)))
                    .collect();
                bound_of(idx, &env0)
            };
            if full.min < at_zero.min {
                // Negative inner-variable coefficient: the zero-substituted
                // expression is not the region minimum; use the full dim.
                mins[d] = Some(Expr::int(0));
                extents[d] = buffer.shape()[d];
                continue;
            }
            let width = full.max - at_zero.max + 1;
            match &mut mins[d] {
                Some(existing) if *existing == min_expr => {
                    extents[d] = extents[d].max(width);
                }
                Some(_) => {
                    // Differing symbolic mins: fall back to the full dim.
                    mins[d] = Some(Expr::int(0));
                    extents[d] = buffer.shape()[d];
                }
                None => {
                    mins[d] = Some(min_expr);
                    extents[d] = width;
                }
            }
        }
    }
    let region = mins
        .into_iter()
        .zip(extents)
        .map(|(min, extent)| RangeExpr::new(min.expect("all dims visited"), extent))
        .collect();
    Some(BufferRegion::new(buffer.clone(), region))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::builder::matmul_func;
    use tir::DataType;

    #[test]
    fn matmul_full_boxes() {
        let f = matmul_func("mm", 8, 8, 8, DataType::float32());
        let set = collect_accesses(&f.body, &HashMap::new());
        let a = f.param("A").expect("A");
        let c = f.param("C").expect("C");
        assert_eq!(
            set.read_box(a).expect("A read"),
            &vec![IntBound::new(0, 7), IntBound::new(0, 7)]
        );
        assert_eq!(
            set.write_box(c).expect("C write"),
            &vec![IntBound::new(0, 7), IntBound::new(0, 7)]
        );
    }

    #[test]
    fn box_ops() {
        let a = vec![IntBound::new(0, 7), IntBound::new(0, 7)];
        let b = vec![IntBound::new(2, 5), IntBound::new(0, 7)];
        assert!(box_covers(&a, &b));
        assert!(!box_covers(&b, &a));
        assert_eq!(box_union(&a, &b), a);
    }

    #[test]
    fn relaxed_region_strips_inner_loops() {
        // body: for y in 0..4: C[vy*4 + y] = ...
        let c = Buffer::new("C", DataType::float32(), vec![64]);
        let vy = Var::int("vy");
        let y = Var::int("y");
        let body = Stmt::store(
            c.clone(),
            vec![Expr::from(&vy) * 4 + Expr::from(&y)],
            Expr::f32(0.0),
        )
        .in_loop(y, 4);
        let region = relaxed_region(&body, &c, false, true).expect("region");
        assert_eq!(region.region.len(), 1);
        assert_eq!(simplify_expr(&region.region[0].min), Expr::from(&vy) * 4);
        assert!(region.region[0].extent.is_const_int(4));
    }

    #[test]
    fn relaxed_region_merges_disjoint_mins_to_full() {
        let c = Buffer::new("C", DataType::float32(), vec![64]);
        let vy = Var::int("vy");
        let s = Stmt::seq(vec![
            Stmt::store(c.clone(), vec![Expr::from(&vy)], Expr::f32(0.0)),
            Stmt::store(c.clone(), vec![Expr::from(&vy) + 32], Expr::f32(0.0)),
        ]);
        let region = relaxed_region(&s, &c, false, true).expect("region");
        assert!(region.region[0].min.is_const_int(0));
        assert!(region.region[0].extent.is_const_int(64));
    }

    #[test]
    fn region_to_box_under_bounds() {
        let c = Buffer::new("C", DataType::float32(), vec![64]);
        let vy = Var::int("vy");
        let region = BufferRegion::new(c, vec![RangeExpr::new(Expr::from(&vy) * 4, 4)]);
        let vars: HashMap<Var, IntBound> =
            [(vy.clone(), IntBound::new(0, 15))].into_iter().collect();
        assert_eq!(region_to_box(&region, &vars), vec![IntBound::new(0, 63)]);
    }
}
